"""Legacy setup shim: lets ``pip install -e . --no-use-pep517`` work in
offline environments that lack the ``wheel`` package (all metadata lives in
pyproject.toml)."""

from setuptools import setup

setup()
