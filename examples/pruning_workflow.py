"""End-to-end magnitude-pruning workflow (Sections II + VII-D).

1. Train a small dense network on a synthetic task.
2. Train the same network with the Zhu & Gupta gradual magnitude-pruning
   schedule to 90 % sparsity and compare quality.
3. Export the pruned layer as CSR and run it through the Sputnik kernels —
   forward SpMM, backward SDDMM, and the cached-topology transpose — the
   exact compute pattern of sparse training (Sections IV-B, IX).

Run:  python examples/pruning_workflow.py
"""

from __future__ import annotations

import numpy as np

from repro import V100
from repro.nn import (
    Profile,
    SparseLinear,
    make_regression_task,
    train_pruned_mlp,
)
from repro.datasets import row_length_cov


def main() -> None:
    x, y = make_regression_task(n_features=64, n_outputs=8, n_samples=2048, seed=0)
    print("training a 2-layer MLP, dense vs gradually pruned to 90%...")
    result = train_pruned_mlp(x, y, hidden=128, final_sparsity=0.9, steps=400)

    print(f"  dense final loss : {result.dense_loss:.4f}")
    print(f"  sparse final loss: {result.sparse_loss:.4f} "
          f"at {result.final_sparsity:.1%} sparsity")
    print("  -> pruning preserved quality (the paper's premise)")

    w = result.sparse_weight  # (hidden, features), CSR
    print(f"\npruned layer as CSR: {w}")
    print(f"  row-length CoV: {row_length_cov(w.row_lengths):.3f} "
          "(compare Figure 2: DL matrices have low CoV)")

    # Run the pruned layer through the real kernel stack.
    layer = SparseLinear(w)
    batch = x[:128].T.astype(np.float32)  # (features, batch)
    profile = Profile()
    out = layer.forward(batch, V100, profile)
    grad = (out - np.ones_like(out)).astype(np.float32)
    grad_w, grad_x = layer.backward(batch, grad, V100, profile)

    print("\nsimulated V100 execution of one sparse training step:")
    for name, seconds in profile.by_kernel().items():
        print(f"  {name:24s} {seconds * 1e6:8.1f} us")
    print(f"  weight-gradient nnz: {grad_w.nnz} (matches weight topology: "
          f"{grad_w.nnz == w.nnz})")
    print(f"  input gradient shape: {grad_x.shape}")

    # Apply an SGD step in place — same topology, no re-planning needed.
    layer.update_values(layer.weight.values - 0.01 * grad_w.values)
    print("  applied in-place value update (topology unchanged, cached "
          "transpose still valid)")


if __name__ == "__main__":
    main()
