"""Sparse attention: the Section VII-C Transformer workload.

Builds the paper's banded + distance-decayed-random attention mask
(Figure 11), runs a full sparse attention head — SDDMM for the sampled
Q K^T, sparse softmax, SpMM against V — and compares cost and memory
against dense attention as the sequence grows. This is the computation that
gives the sparse Transformer its 2.1x speedup and 12.8x memory saving
(Table III).

Run:  python examples/sparse_attention.py
"""

from __future__ import annotations

import numpy as np

from repro import V100
from repro.datasets import banded_random_mask, dense_causal_mask, mask_statistics
from repro.nn import Profile, dense_attention, sparse_attention
from repro.nn import TransformerConfig, benchmark_transformer


def one_head_demo() -> None:
    seq, dk = 1024, 64
    rng = np.random.default_rng(1)
    mask = banded_random_mask(seq, band=64, off_diagonal_sparsity=0.95, seed=7)
    stats = mask_statistics(mask, band=64)
    print(f"attention mask: seq={seq}, nnz={mask.nnz:,} "
          f"(causal sparsity {stats['causal_sparsity']:.2%}, "
          f"off-band density {stats['off_band_density']:.3f})")

    q, k, v = (rng.standard_normal((seq, dk)).astype(np.float32) for _ in range(3))

    dense_profile, sparse_profile = Profile(), Profile()
    dense_out = dense_attention(q, k, v, V100, dense_profile)
    sparse_out = sparse_attention(q, k, v, mask, V100, sparse_profile)

    print(f"\none attention head (seq {seq}, head dim {dk}):")
    print(f"  dense : {dense_profile.runtime_s * 1e6:8.1f} us "
          f"({', '.join(dense_profile.by_kernel())})")
    print(f"  sparse: {sparse_profile.runtime_s * 1e6:8.1f} us "
          f"({', '.join(sparse_profile.by_kernel())})")
    print(f"  speedup: {dense_profile.runtime_s / sparse_profile.runtime_s:.2f}x")

    # Sanity: with a *full* causal mask, sparse attention is exact.
    full = dense_causal_mask(256)
    qq, kk, vv = (rng.standard_normal((256, dk)).astype(np.float32) for _ in range(3))
    exact = sparse_attention(qq, kk, vv, full, V100)
    ref = dense_attention(qq, kk, vv, V100)
    assert np.allclose(exact, ref, atol=1e-3)
    print("  exactness check vs dense causal attention: OK")
    del dense_out, sparse_out


def full_model_table() -> None:
    print("\nTable III reproduction (3 layers, 8 heads, seq 12,288, batch 8):")
    config = TransformerConfig()
    mask = config.attention_mask()
    for variant in ("dense", "sparse"):
        r = benchmark_transformer(
            config, V100, variant, mask=mask if variant == "sparse" else None
        )
        mem = f"{r.memory_gb:.2f} GB" if r.fits else "OOM"
        print(f"  {variant:6s}: {r.tokens_per_second:9,.0f} tokens/s, {mem}")


if __name__ == "__main__":
    one_head_demo()
    full_model_table()
