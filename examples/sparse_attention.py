"""Sparse attention: the Section VII-C Transformer workload.

Builds the paper's banded + distance-decayed-random attention mask
(Figure 11), then runs a full multi-head sparse attention layer through
the BATCHED operator path: all heads share the mask's topology (Section
VII-C1), so the stack goes down as three batched dispatches — batched
SDDMM for the sampled Q K^T, one batched sparse softmax, one batched
SpMM against V — each a single plan and a single z-scaled launch. The
per-head loop is kept only as the comparison baseline. This is the
computation that gives the sparse Transformer its 2.1x speedup and
12.8x memory saving (Table III).

Run:  python examples/sparse_attention.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import V100
from repro.datasets import banded_random_mask, dense_causal_mask, mask_statistics
from repro.nn import (
    Profile,
    TransformerConfig,
    benchmark_transformer,
    dense_attention,
    dense_attention_batched,
    sparse_attention,
    sparse_attention_batched,
)


def multi_head_demo() -> None:
    seq, heads, dk = 1024, 8, 64
    rng = np.random.default_rng(1)
    mask = banded_random_mask(seq, band=64, off_diagonal_sparsity=0.95, seed=7)
    stats = mask_statistics(mask, band=64)
    print(f"attention mask: seq={seq}, nnz={mask.nnz:,} "
          f"(causal sparsity {stats['causal_sparsity']:.2%}, "
          f"off-band density {stats['off_band_density']:.3f})")

    q, k, v = (
        rng.standard_normal((heads, seq, dk)).astype(np.float32)
        for _ in range(3)
    )

    # Dense vs sparse, both batched across all heads.
    dense_profile, sparse_profile = Profile(), Profile()
    dense_out = dense_attention_batched(q, k, v, V100, dense_profile)
    sparse_out = sparse_attention_batched(q, k, v, mask, V100, sparse_profile)

    print(f"\n{heads}-head attention layer (seq {seq}, head dim {dk}):")
    print(f"  dense : {dense_profile.runtime_s * 1e6:8.1f} us "
          f"({', '.join(dense_profile.by_kernel())})")
    print(f"  sparse: {sparse_profile.runtime_s * 1e6:8.1f} us "
          f"({', '.join(sparse_profile.by_kernel())})")
    print(f"  speedup: {dense_profile.runtime_s / sparse_profile.runtime_s:.2f}x")

    # The batch vs the per-head loop: identical numerics, one launch (and
    # one plan lookup, one dispatch) per stage instead of one per head.
    loop_profile = Profile()
    t0 = time.perf_counter()
    loop_out = np.stack([
        sparse_attention(q[i], k[i], v[i], mask, V100, loop_profile)
        for i in range(heads)
    ])
    wall_loop = time.perf_counter() - t0
    t0 = time.perf_counter()
    sparse_attention_batched(q, k, v, mask, V100)
    wall_batched = time.perf_counter() - t0
    assert np.allclose(sparse_out, loop_out, atol=1e-5)
    print(f"  batched vs per-head loop: {len(sparse_profile.records)} "
          f"launches vs {len(loop_profile.records)}, simulated "
          f"{sparse_profile.runtime_s * 1e6:.1f} us vs "
          f"{loop_profile.runtime_s * 1e6:.1f} us, wall "
          f"{wall_batched * 1e3:.2f} ms vs {wall_loop * 1e3:.2f} ms "
          f"({wall_loop / wall_batched:.1f}x)")

    # Sanity: with a *full* causal mask, sparse attention is exact.
    full = dense_causal_mask(256)
    qq, kk, vv = (rng.standard_normal((256, dk)).astype(np.float32) for _ in range(3))
    exact = sparse_attention_batched(qq[None], kk[None], vv[None], full, V100)
    ref = dense_attention(qq, kk, vv, V100)
    assert np.allclose(exact[0], ref, atol=1e-3)
    print("  exactness check vs dense causal attention: OK")
    del dense_out


def full_model_table() -> None:
    print("\nTable III reproduction (3 layers, 8 heads, seq 12,288, batch 8):")
    config = TransformerConfig()
    mask = config.attention_mask()
    for variant in ("dense", "sparse"):
        r = benchmark_transformer(
            config, V100, variant, mask=mask if variant == "sparse" else None
        )
        mem = f"{r.memory_gb:.2f} GB" if r.fits else "OOM"
        print(f"  {variant:6s}: {r.tokens_per_second:9,.0f} tokens/s, {mem}")


if __name__ == "__main__":
    multi_head_demo()
    full_model_table()
