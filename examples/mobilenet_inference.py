"""Sparse MobileNetV1 inference: the Section VII-D application.

Builds dense and 90 %-sparse MobileNetV1 models (batch-norm fused, fused
bias+ReLU, first layer dense), runs batch-1 inference on the simulated
V100 with a per-kernel time breakdown, and prints the Table IV
accuracy/throughput trade-off.

Run:  python examples/mobilenet_inference.py
"""

from __future__ import annotations

import numpy as np

from repro import V100
from repro.nn import MobileNetV1, Profile, benchmark_mobilenet


def breakdown(width: float, sparse: bool) -> None:
    model = MobileNetV1(width=width, sparse=sparse, seed=0)
    rng = np.random.default_rng(2)
    image = rng.standard_normal((3, 224, 224)).astype(np.float32)
    profile = Profile()
    logits = model.forward(image, V100, profile)

    label = "sparse" if sparse else "dense"
    print(f"\n{label} MobileNetV1 (width {width}), batch-1 inference:")
    print(f"  total: {profile.runtime_s * 1e6:8.1f} us "
          f"({1.0 / profile.runtime_s:.0f} frames/s)")
    for name, seconds in sorted(profile.by_kernel().items(), key=lambda kv: -kv[1]):
        pct = 100 * seconds / profile.runtime_s
        print(f"    {name:26s} {seconds * 1e6:8.1f} us ({pct:4.1f}%)")
    print(f"  weights: {model.weight_bytes() / 1e6:.1f} MB, "
          f"top-5 logits: {np.argsort(-logits)[:5].tolist()}")


def table4() -> None:
    print("\nTable IV trade-off (accuracy is the paper's reference value):")
    print(f"  {'model':>7s} {'width':>6s} {'top-1':>7s} {'frames/s':>9s}")
    for width, sparse in [(1.0, False), (1.4, False), (1.3, True), (1.8, True)]:
        r = benchmark_mobilenet(width, sparse, V100, use_oracle=False)
        print(f"  {r.variant:>7s} {r.width:6.1f} {100 * r.accuracy:6.1f}% "
              f"{r.throughput_fps:9.0f}")
    print("  -> at matched accuracy the (wider) sparse model is faster — "
        "the Figure 12 result")


if __name__ == "__main__":
    breakdown(1.0, sparse=False)
    breakdown(1.3, sparse=True)
    table4()
