"""Weight-sparse recurrent networks: the Figure 1 / Figure 10 workload.

Runs an LSTM with 90 %-sparse weights over a sequence, timing every step on
the simulated V100, and sweeps sparsity on the Figure 1 problem to find
where sparse computation overtakes dense.

Run:  python examples/sparse_rnn.py
"""

from __future__ import annotations

import numpy as np

from repro import V100
from repro.bench import dense_spmm_time, sputnik_spmm_time
from repro.datasets import MatrixSpec
from repro.nn import Profile, random_cell


def lstm_sequence_demo() -> None:
    hidden, batch, steps = 1024, 64, 8
    cell = random_cell("lstm", hidden, sparsity=0.9, seed=0)
    rng = np.random.default_rng(1)

    h = np.zeros((hidden, batch), np.float32)
    c = np.zeros((hidden, batch), np.float32)
    profile = Profile()
    for _ in range(steps):
        x = rng.standard_normal((hidden, batch)).astype(np.float32)
        h, c = cell.step(x, (h, c), V100, profile)

    print(f"sparse LSTM: hidden {hidden}, batch {batch}, {steps} steps")
    print(f"  simulated time: {profile.runtime_s * 1e3:.3f} ms "
          f"({profile.runtime_s / steps * 1e6:.1f} us/step)")
    print(f"  kernels: {', '.join(profile.by_kernel())}")
    print(f"  hidden-state norm stays bounded: {np.linalg.norm(h):.1f}")


def figure1_sweep() -> None:
    m, k, n = 8192, 2048, 128  # the Figure 1 LSTM problem
    print(f"\nFigure 1 sweep (M={m}, K={k}, N={n}):")
    print(f"  {'sparsity':>9s} {'sparse (us)':>12s} {'dense (us)':>11s} {'winner':>7s}")
    dense_t = None
    for sparsity in (0.6, 0.7, 0.8, 0.9, 0.95):
        cov = float(np.sqrt(sparsity / ((1 - sparsity) * k)))
        a = MatrixSpec(
            "ex", "lstm", "w", m, k, sparsity, cov, seed=3
        ).materialize()
        sparse_t = sputnik_spmm_time(a, n, V100).runtime_s
        if dense_t is None:
            dense_t = dense_spmm_time(a, n, V100).runtime_s
        winner = "sparse" if sparse_t < dense_t else "dense"
        print(f"  {sparsity:9.2f} {sparse_t * 1e6:12.1f} {dense_t * 1e6:11.1f} "
              f"{winner:>7s}")
    print("  -> sparse overtakes dense at moderate sparsity "
          "(paper: ~71% on real hardware)")


if __name__ == "__main__":
    lstm_sequence_demo()
    figure1_sweep()
