"""Quickstart: run the paper's SpMM and SDDMM kernels on a sparse problem.

Builds a moderately sparse matrix like the ones found in pruned neural
networks, multiplies it against a dense batch with the Sputnik-style SpMM,
compares against the cuSPARSE and dense-GEMM baselines on the simulated
V100, and computes a sparse-weight gradient with the SDDMM — the full
Section IV computation pattern, dispatched through the unified
:mod:`repro.ops` layer (swap kernels with a backend string; repeated calls
on one topology reuse cached plans).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import CSRMatrix, V100, ops

M, K, N = 2048, 1024, 128
SPARSITY = 0.85


def main() -> None:
    rng = np.random.default_rng(0)

    # A pruned weight matrix: moderate sparsity, no structure (Section II).
    dense_weights = rng.standard_normal((M, K)).astype(np.float32)
    dense_weights *= rng.random((M, K)) >= SPARSITY
    weights = CSRMatrix.from_dense(dense_weights)
    print(f"weight matrix: {weights}")

    # Forward pass: Y = W X (one SpMM). Every backend is one registry
    # string away from the same call.
    x = rng.standard_normal((K, N)).astype(np.float32)
    ours = ops.spmm(weights, x, V100)
    cus = ops.spmm(weights, x, V100, backend="cusparse")
    dense = ops.spmm(weights, x, V100, backend="dense")

    print(f"\nSpMM ({M}x{K} @ {SPARSITY:.0%} sparse, N={N}, fp32, simulated V100):")
    print(f"  sputnik : {ours.runtime_s * 1e6:8.1f} us "
          f"({ours.throughput_flops / 1e12:.2f} TFLOPs useful)")
    print(f"  cuSPARSE: {cus.runtime_s * 1e6:8.1f} us "
          f"({cus.runtime_s / ours.runtime_s:.2f}x slower)")
    print(f"  dense   : {dense.runtime_s * 1e6:8.1f} us "
          f"({dense.runtime_s / ours.runtime_s:.2f}x slower)")

    # Every kernel is numerically exact.
    reference = dense_weights @ x
    assert np.allclose(ours.output, reference, atol=1e-3)
    assert np.allclose(cus.output, reference, atol=1e-3)
    print("  numerics: all kernels match the dense reference")

    # Backward pass w.r.t. the weights: dW = dY X^T masked to the weight
    # topology (one SDDMM, Section IV-B).
    grad_y = rng.standard_normal((M, N)).astype(np.float32)
    grad_w = ops.sddmm(grad_y, x, weights, V100)
    print(f"\nSDDMM weight gradient: {grad_w.runtime_s * 1e6:.1f} us, "
          f"{grad_w.output.nnz} gradient values (one per weight)")

    # Mixed precision (Section V-D3): fp16 data, fp32 math, int16 indices.
    half = weights.astype(np.float16)
    mixed = ops.spmm(half, x.astype(np.float16), V100)
    print(f"\nmixed-precision SpMM: {mixed.runtime_s * 1e6:.1f} us "
          f"({ours.runtime_s / mixed.runtime_s:.2f}x faster than fp32), "
          f"matrix storage {half.memory_bytes() / weights.memory_bytes():.2f}x")

    # A second pass over the same topology reuses the cached plan — the
    # paper's setup/compute split (Section IX) made automatic.
    again = ops.spmm(weights, x, V100)
    assert (again.output == ours.output).all()
    assert again.runtime_s == ours.runtime_s
    ctx = ops.default_context(V100)
    print(f"\nexecution context: {ctx}")
    print(ctx.telemetry.summary())


if __name__ == "__main__":
    main()
