"""Row-swizzle load balancing (Section V-C).

Two sources of load imbalance are addressed by re-ordering *when* rows are
processed, without touching the parallelization scheme:

- **Row binning** — heavy row bundles are scheduled first so SMs receive
  roughly equal totals (exploiting the in-order Volta dispatch, this is a
  guided-self-scheduling-style heuristic).
- **Row bundling** — rows of similar length are grouped into the bundles a
  warp processes together, so subwarps in a warp diverge less.

Thanks to the online hardware scheduler, both reduce to a single argsort of
row indices by decreasing row length (Section V-C2); bundles are then just
consecutive runs of the sorted order. The explicit first-wave pairing
heuristic the paper sketches is also provided for study.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix


def row_swizzle(row_lengths: np.ndarray) -> np.ndarray:
    """Row indices sorted by decreasing length (the paper's swizzle array).

    A stable sort keeps equal-length rows in their natural order, which
    preserves locality between neighbouring rows of the original matrix.
    The result is what ``a.row_indices`` holds in Figure 8, line 13.
    """
    lengths = np.asarray(row_lengths)
    if lengths.ndim != 1:
        raise ValueError("row_lengths must be 1-D")
    if np.any(lengths < 0):
        raise ValueError("row lengths must be non-negative")
    return np.argsort(-lengths, kind="stable")


def merge_swizzle(
    old_order: np.ndarray,
    new_lengths: np.ndarray,
    edited_rows: np.ndarray,
) -> np.ndarray:
    """Repair a swizzle order after editing a subset of rows.

    Bit-identical to ``row_swizzle(new_lengths)`` without re-sorting the
    whole matrix. The stable argsort orders rows by the strict lexicographic
    key ``(-length, row)``; unedited rows keep their relative order under
    that key, so the repaired order is a merge of the surviving old order
    with the edited rows re-keyed by their new lengths — O(n) plus an
    O(e log e) sort of the e edited rows.
    """
    old_order = np.asarray(old_order, dtype=np.int64)
    lengths = np.asarray(new_lengths, dtype=np.int64)
    n = old_order.size
    if lengths.shape != (n,):
        raise ValueError(
            f"new_lengths has shape {lengths.shape}, expected ({n},)"
        )
    if np.any(lengths < 0):
        raise ValueError("row lengths must be non-negative")
    edited = np.unique(np.asarray(edited_rows, dtype=np.int64))
    if edited.size == 0:
        return old_order.copy()
    if edited[0] < 0 or edited[-1] >= n:
        raise ValueError(f"edited rows out of range for {n} rows")
    # ``-length * n + row`` is strictly increasing in lex (-length, row)
    # order because 0 <= row < n, so merging by this scalar key reproduces
    # the stable sort exactly.
    key = -lengths * np.int64(n) + np.arange(n, dtype=np.int64)
    keep = np.ones(n, dtype=bool)
    keep[edited] = False
    kept = old_order[keep[old_order]]
    inserted = edited[np.argsort(key[edited], kind="stable")]
    slots = np.searchsorted(key[kept], key[inserted], side="left")
    slots += np.arange(inserted.size, dtype=np.int64)
    out = np.empty(n, dtype=np.int64)
    fill = np.ones(n, dtype=bool)
    fill[slots] = False
    out[slots] = inserted
    out[fill] = kept
    return out


def identity_swizzle(n_rows: int) -> np.ndarray:
    """The no-op ordering used when load balancing is disabled."""
    return np.arange(n_rows, dtype=np.int64)


def bundle_rows(order: np.ndarray, bundle_size: int) -> list[np.ndarray]:
    """Split an ordering into consecutive bundles of ``bundle_size`` rows.

    With a sorted ``order`` this implements row bundling: each bundle (the
    rows one thread block processes) holds rows of similar length.
    """
    if bundle_size <= 0:
        raise ValueError("bundle_size must be positive")
    order = np.asarray(order)
    n_full = len(order) // bundle_size
    bundles = list(order[: n_full * bundle_size].reshape(n_full, bundle_size))
    if len(order) % bundle_size:
        bundles.append(order[n_full * bundle_size :])
    return bundles


def bundle_weights(row_lengths: np.ndarray, order: np.ndarray, bundle_size: int) -> np.ndarray:
    """Total nonzeros per bundle under an ordering (heaviness of each unit)."""
    lengths = np.asarray(row_lengths)[np.asarray(order)]
    n = len(lengths)
    pad = (-n) % bundle_size
    if pad:
        lengths = np.concatenate([lengths, np.zeros(pad, dtype=lengths.dtype)])
    return lengths.reshape(-1, bundle_size).sum(axis=1)


def paired_first_wave_order(row_lengths: np.ndarray, wave_size: int) -> np.ndarray:
    """The explicit binning heuristic from Section V-C2.

    Pick the heaviest ``wave_size`` rows as the first wave, then pair the
    *next* heaviest ``wave_size`` rows with them in reverse order of
    heaviness, and so on — so every scheduling slot accumulates a similar
    total. Provided for analysis; the production kernels rely on the plain
    sorted order plus the hardware's online dispatch, which the paper shows
    is equivalent in effect.
    """
    if wave_size <= 0:
        raise ValueError("wave_size must be positive")
    sorted_rows = row_swizzle(row_lengths)
    n = len(sorted_rows)
    pad = (-n) % wave_size
    padded = np.concatenate([sorted_rows, np.full(pad, -1, dtype=np.int64)])
    waves = padded.reshape(-1, wave_size)
    waves[1::2] = waves[1::2, ::-1]  # serpentine pairing
    out = waves.reshape(-1)
    return out[out >= 0]


def group_rows(order: np.ndarray, rows_per_block: int) -> np.ndarray:
    """Pad an ordering to a whole number of blocks and shape it
    ``(n_blocks_y, rows_per_block)`` with ``-1`` marking absent rows."""
    order = np.asarray(order, dtype=np.int64)
    n = len(order)
    pad = (-n) % rows_per_block
    padded = np.concatenate([order, np.full(pad, -1, dtype=np.int64)])
    return padded.reshape(-1, rows_per_block)


def swizzled_row_groups(
    a: CSRMatrix, rows_per_block: int, enabled: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Rows each thread block processes, in scheduling order.

    Returns ``(order, grouped)`` where ``order`` is the row permutation and
    ``grouped`` is an ``(n_blocks_y, rows_per_block)`` int array padded with
    ``-1`` for absent rows (grids rarely divide evenly).
    """
    order = (
        row_swizzle(a.row_lengths) if enabled else identity_swizzle(a.n_rows)
    )
    return order, group_rows(order, rows_per_block)
