"""Sparse softmax kernel (Section VII-C1).

The sparse Transformer needs a softmax over the nonzero values of the
attention-score matrix: the paper notes "we additionally wrote a kernel that
computes the softmax function on a sparse matrix". Each warp owns one row
and makes three passes over its values (max, exponentiate-and-sum,
normalize), all through coalesced vector loads — a bandwidth-bound kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import DeviceSpec
from ..gpu.executor import BlockCosts, ExecutionResult, KernelLaunch, execute
from ..gpu.occupancy import BlockResources
from ..sparse.csr import CSRMatrix
from ..sparse.ops import (
    sparse_softmax_batched_reference,
    sparse_softmax_reference,
)
from .types import KernelResult

#: Warps (rows) per thread block.
WARPS_PER_BLOCK = 4
#: Instruction cost of one exp evaluation (MUFU.EX2 plus range reduction).
EXP_INSTRUCTIONS = 4.0
#: Value passes over the row: max, exp+sum, normalize.
PASSES = 3


def build_launch(a: CSRMatrix, device: DeviceSpec) -> KernelLaunch:
    """Cost the sparse-softmax launch for matrix ``a``."""
    warp = device.warp_size
    rows_per_block = WARPS_PER_BLOCK
    gy = -(-a.n_rows // rows_per_block)
    lengths = a.row_lengths.astype(np.float64)
    pad = (-a.n_rows) % rows_per_block
    grouped = np.concatenate([lengths, np.zeros(pad)]).reshape(gy, rows_per_block)

    vb = float(a.value_bytes)
    steps = np.ceil(grouped / warp)
    fma = (steps * (1.0 + EXP_INSTRUCTIONS + 1.0)).sum(axis=1)
    # Loads/stores per pass plus two warp reductions (max and sum).
    other = (PASSES * steps + steps + 2.0 * 5.0 + 8.0).sum(axis=1)
    read_bytes = (grouped * vb * 2.0).sum(axis=1)  # values read twice from DRAM
    l2_bytes = (grouped * vb).sum(axis=1)  # third pass hits L2
    write_bytes = (grouped * vb).sum(axis=1)

    return KernelLaunch(
        name="sparse_softmax",
        n_blocks=gy,
        resources=BlockResources(
            threads=warp * WARPS_PER_BLOCK, registers_per_thread=24
        ),
        costs=BlockCosts(
            fma_instructions=fma,
            other_instructions=other,
            dram_bytes=read_bytes + write_bytes,
            l2_bytes=l2_bytes,
        ),
        flops=float(PASSES * a.nnz),
    )


@dataclass
class SparseSoftmaxPlan:
    """Reusable sparse-softmax plan for one (topology, device).

    The kernel is bandwidth-bound and keyed entirely by the matrix's row
    structure, so one plan serves every set of values sharing the topology
    (e.g. attention scores across heads and layers)."""

    device: DeviceSpec
    launch: KernelLaunch
    execution: ExecutionResult
    shape: tuple[int, int]
    nnz: int


def plan_sparse_softmax(a: CSRMatrix, device: DeviceSpec) -> SparseSoftmaxPlan:
    """Build the sparse-softmax plan: costed launch plus simulated run."""
    if a.nnz == 0:
        raise ValueError("softmax of an empty sparse matrix is undefined")
    launch = build_launch(a, device)
    return SparseSoftmaxPlan(
        device=device,
        launch=launch,
        execution=execute(launch, device),
        shape=a.shape,
        nnz=a.nnz,
    )


def execute_sparse_softmax(
    plan: SparseSoftmaxPlan, a: CSRMatrix, scale: float = 1.0
) -> KernelResult:
    """Run a planned sparse softmax on (possibly new) values."""
    if a.shape != plan.shape or a.nnz != plan.nnz:
        raise ValueError(
            f"matrix {a.shape} (nnz={a.nnz}) does not match the planned "
            f"operand {plan.shape} (nnz={plan.nnz})"
        )
    return KernelResult(
        output=sparse_softmax_reference(a, scale=scale),
        execution=plan.execution,
    )


def sparse_softmax(
    a: CSRMatrix, device: DeviceSpec, scale: float = 1.0
) -> KernelResult:
    """Row-wise softmax over CSR nonzeros: numerics + simulated cost."""
    return execute_sparse_softmax(plan_sparse_softmax(a, device), a, scale=scale)


@dataclass
class SparseSoftmaxBatchedPlan:
    """Batched sparse-softmax plan: ``h`` value columns, one launch.

    Each warp's three row passes tile ``h`` times along z (the row
    structure is shared), paying one per-launch overhead for the whole
    ``(nnz, H)`` value matrix.
    """

    #: Batch size (value columns sharing the topology).
    h: int
    device: DeviceSpec
    launch: KernelLaunch
    execution: ExecutionResult
    shape: tuple[int, int]
    nnz: int


def plan_sparse_softmax_batched(
    a: CSRMatrix, h: int, device: DeviceSpec
) -> SparseSoftmaxBatchedPlan:
    """Plan ``h`` row softmaxes over ``a``'s topology as ONE launch."""
    if h <= 0:
        raise ValueError("batch size must be positive")
    if a.nnz == 0:
        raise ValueError("softmax of an empty sparse matrix is undefined")
    launch = build_launch(a, device).batched(h)
    return SparseSoftmaxBatchedPlan(
        h=h,
        device=device,
        launch=launch,
        execution=execute(launch, device),
        shape=a.shape,
        nnz=a.nnz,
    )


def execute_sparse_softmax_batched(
    plan: SparseSoftmaxBatchedPlan,
    a: CSRMatrix,
    values: np.ndarray,
    scale: float = 1.0,
) -> KernelResult:
    """Run a planned batched softmax over a ``(nnz, H)`` value matrix."""
    if a.shape != plan.shape or a.nnz != plan.nnz:
        raise ValueError(
            f"matrix {a.shape} (nnz={a.nnz}) does not match the planned "
            f"operand {plan.shape} (nnz={plan.nnz})"
        )
    values = np.asarray(values)
    if values.ndim != 2 or values.shape != (a.nnz, plan.h):
        raise ValueError(
            f"value matrix shape {values.shape} != ({a.nnz}, {plan.h})"
        )
    return KernelResult(
        output=sparse_softmax_batched_reference(a, values, scale=scale),
        execution=plan.execution,
    )


def sparse_softmax_batched(
    a: CSRMatrix,
    values: np.ndarray,
    device: DeviceSpec,
    scale: float = 1.0,
) -> KernelResult:
    """Batched row softmax over shared topology: one amortized launch."""
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError(f"value matrix must be (nnz, H), got {values.shape}")
    plan = plan_sparse_softmax_batched(a, values.shape[1], device)
    return execute_sparse_softmax_batched(plan, a, values, scale=scale)
