"""Sputnik-style SpMM: ``A (sparse, CSR) @ B (dense) => C (dense)``.

This is the paper's Figure 8 kernel, executed numerically in numpy and
costed block-by-block on the GPU model:

- hierarchical 1-D tiling with subwarp tiling (Sections V-A, V-B1),
- reverse-offset memory alignment for vector loads on CSR rows (V-B2),
- row-swizzle load balancing (V-C),
- index pre-scaling, split/unrolled residue handling, and the mixed
  fp16/fp32 regime with int16 metadata (V-D).

Warp divergence is charged faithfully: subwarps in a warp execute in
lockstep, so a warp's main loop runs for the *longest* of its rows and
shorter rows ride along predicated off — exactly the imbalance row bundling
exists to remove.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import DeviceSpec
from ..gpu.executor import BlockCosts, ExecutionResult, KernelLaunch, execute
from ..gpu.memory import dram_bytes_with_reuse, l1_hit_fraction
from ..gpu.occupancy import BlockResources, compute_occupancy
from ..sparse.csr import CSRMatrix
from ..sparse.ops import spmm_batched_reference, spmm_flops, spmm_reference
from .config import SpmmConfig
from .roma import (
    ROMA_MASK_INSTRUCTIONS,
    ROMA_PRELUDE_INSTRUCTIONS,
    AlignedRows,
    align_rows,
    unaligned_rows,
)
from .repair import (
    TopologyDelta,
    repair_column_histogram,
    touched_columns,
)
from .swizzle import (
    group_rows,
    identity_swizzle,
    merge_swizzle,
    swizzled_row_groups,
)
from .tiling import SpmmTiling, derive_tiling
from .types import KernelResult

#: Prelude instructions every subwarp executes (offset loads, index math).
BASE_PRELUDE_INSTRUCTIONS = 10
#: Extra prelude load when the row swizzle indirection is enabled (Fig. 8).
SWIZZLE_LOAD_INSTRUCTIONS = 1
#: Per-element instruction penalty in the residue loop without the
#: split-and-unroll optimization (bounds checks + scalar shared loads).
RESIDUE_SCALAR_PENALTY = 3.0
#: Whole-kernel pipeline factor without residue unrolling: the bounds-
#: checked scalar tail inhibits the compiler's scheduling of the entire
#: main loop (registers, dual issue), an effect Table II measures at
#: ~6-12% and that per-instruction counting alone cannot capture.
RESIDUE_PIPELINE_FACTOR = 0.92
#: Width (elements) of one 128-bit shared-memory load of fp32 values.
SMEM_WIDE_LOAD_ELEMENTS = 4
#: Sustained fraction of the SM's issue/math rate: sparse gathers keep the
#: kernel off the dense pipelines (calibrated once, see DESIGN.md Sec. 5).
PIPELINE_EFFICIENCY = 0.62
#: How far the column-synchronized subwarp streams drift apart, in units of
#: each row's B-tile footprint (sizes the L1 reuse window).
COLUMN_DESYNC_SPREAD = 2.0


def _validate(a: CSRMatrix, b: np.ndarray, config: SpmmConfig) -> np.ndarray:
    if a.values.dtype != config.value_dtype:
        raise TypeError(
            f"sparse values are {a.values.dtype} but config precision "
            f"{config.precision!r} needs {config.value_dtype}"
        )
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[0] != a.n_cols:
        raise ValueError(f"B shape {b.shape} incompatible with A {a.shape}")
    if b.dtype != config.value_dtype:
        raise TypeError(
            f"dense operand is {b.dtype}, expected {config.value_dtype}"
        )
    n = b.shape[1]
    if config.vector_width > 1 and n % config.vector_width:
        raise ValueError(
            f"N={n} not divisible by vector width {config.vector_width}; "
            "pad the batch (Section VII-A1) or resolve a config via "
            "repro.tune"
        )
    return b


def _analyze(
    a: CSRMatrix, config: SpmmConfig, device: DeviceSpec
) -> tuple[SpmmTiling, np.ndarray, np.ndarray, AlignedRows]:
    """Derive the per-matrix execution structure: tiling geometry, the
    swizzled row order/groups, and the (ROMA-aligned) row extents.

    This is the expensive, values-independent part of launch construction —
    exactly what a cached :class:`SpmmPlan` amortizes across calls.
    """
    tiling = derive_tiling(config, device.warp_size)
    order, groups = swizzled_row_groups(
        a, tiling.block_items_y, config.load_balance
    )
    use_vector_a = config.vector_width > 1 and config.roma
    extents = (
        align_rows(a, config.vector_width) if use_vector_a else unaligned_rows(a)
    )
    return tiling, order, groups, extents


def _launch_from_analysis(
    a: CSRMatrix,
    n: int,
    config: SpmmConfig,
    device: DeviceSpec,
    tiling: SpmmTiling,
    groups: np.ndarray,
    extents: AlignedRows,
    touched_cols: int | None = None,
) -> KernelLaunch:
    """Cost the SpMM launch from a precomputed analysis (see ``_analyze``).

    ``touched_cols`` (the count of distinct referenced columns) may be
    supplied by plan repair, which maintains it incrementally; when absent
    it is derived from the column indices as usual.
    """
    gx, gy = tiling.grid(a.n_rows, n)
    vb = config.element_bytes
    ib = config.index_bytes
    b_vb = vb

    use_vector_a = config.vector_width > 1 and config.roma
    lengths = np.where(groups >= 0, extents.lengths[groups], 0).astype(np.float64)

    # (gy, warps, subwarps): lockstep execution means a warp runs for its
    # longest row; actual bytes moved follow the true row lengths.
    per_warp = lengths.reshape(gy, tiling.warps_per_block, tiling.subwarps_per_warp)
    warp_max = per_warp.max(axis=2)
    warp_sum = per_warp.sum(axis=2)

    bik = float(config.block_items_k)
    residue = np.mod(warp_max, bik)
    full_steps = warp_max - residue

    tix = float(tiling.thread_items_x)
    vw = float(config.vector_width)
    a_chunk = tiling.subwarp_threads * (vw if use_vector_a else 1.0)

    fma = warp_max * tix
    b_loads = warp_max * (tix / vw)
    a_loads = 2.0 * np.ceil(warp_max / a_chunk)
    c_stores = np.full_like(warp_max, tix / vw)

    smem_reads = 2.0 * full_steps / SMEM_WIDE_LOAD_ELEMENTS
    if config.residue_unroll:
        smem_reads += 2.0 * residue / SMEM_WIDE_LOAD_ELEMENTS
        residue_penalty = 0.0 * residue
    else:
        smem_reads += 2.0 * residue
        residue_penalty = RESIDUE_SCALAR_PENALTY * residue

    prescale_cost = (
        0.5 * a_loads if config.index_prescale else b_loads
    )

    prelude = float(BASE_PRELUDE_INSTRUCTIONS)
    if config.load_balance:
        prelude += SWIZZLE_LOAD_INSTRUCTIONS
    if use_vector_a:
        prelude += ROMA_PRELUDE_INSTRUCTIONS + ROMA_MASK_INSTRUCTIONS

    other = (
        b_loads
        + a_loads
        + c_stores
        + smem_reads
        + residue_penalty
        + prescale_cost
        + prelude
    )

    fma_block = fma.sum(axis=1)
    other_block = other.sum(axis=1)

    # Shared-memory traffic: each lockstep step every lane reads one value
    # and one (pre-scaled) index; stages are written once per real element.
    lane_read_bytes = device.warp_size * (vb + 4.0 if config.index_prescale else vb + ib)
    smem_block = (warp_max * lane_read_bytes + warp_sum * (vb + ib)).sum(axis=1)

    # Global-memory traffic follows the true (not lockstep) row lengths.
    rows_sum_block = warp_sum.sum(axis=1)
    rows_present = (groups >= 0).sum(axis=1).astype(np.float64)

    widths = np.full(gx, float(tiling.block_items_x))
    widths[-1] = n - (gx - 1) * tiling.block_items_x

    a_bytes_y = rows_sum_block * (vb + ib)
    b_bytes = np.multiply.outer(rows_sum_block, widths) * b_vb
    c_bytes = np.multiply.outer(rows_present, widths) * vb

    smem_staging = (
        tiling.block_items_y
        * config.block_items_k
        * ((4 if config.index_prescale else ib) + vb)
    )
    resources = BlockResources(
        threads=tiling.threads_per_block,
        shared_mem_bytes=int(smem_staging),
        registers_per_thread=32 + 2 * int(tix),
    )

    # Dense-operand locality (Section V-B1): CSR column indices are sorted,
    # so the lockstep subwarps of every resident block stream through B's
    # rows in roughly synchronized column order. Re-reads of a B row by
    # other resident rows land inside a small sliding window that the L1
    # easily holds — the "locality serviced through caches" the paper
    # predicts for subwarp tiling.
    if touched_cols is None:
        touched_cols = len(np.unique(a.column_indices)) if a.nnz else 0
    occ = compute_occupancy(resources, device)
    resident = min(occ.blocks_per_sm, -(-gx * gy // device.num_sms))
    rows_per_sm = resident * tiling.block_items_y
    avg_row = a.nnz / a.n_rows if a.n_rows else 0.0
    loads_per_elem = (
        rows_per_sm * avg_row / touched_cols if touched_cols else 0.0
    )
    window = rows_per_sm * tiling.block_items_x * b_vb * COLUMN_DESYNC_SPREAD
    l1_cap = max(0, device.l1_capacity_per_sm - resident * smem_staging)
    l1_frac = l1_hit_fraction(loads_per_elem, window, l1_cap)

    l1_block = (b_bytes * l1_frac).reshape(-1)
    store_bytes = c_bytes.reshape(-1)

    # A is re-read once per x-tile, but consecutively (block_idx sweeps x
    # fastest), so re-reads hit L2; only the first pass reaches DRAM. The
    # B misses that escape L1 hit L2 as long as B's touched slice fits.
    a_block = np.broadcast_to(a_bytes_y[:, None], (gy, gx)).reshape(-1)
    b_rest = (b_bytes * (1.0 - l1_frac)).reshape(-1)
    b_total = float(b_rest.sum())
    unique_b = min(float(touched_cols * n * b_vb), b_total)
    b_dram = dram_bytes_with_reuse(b_total, unique_b, device.l2_capacity)
    b_ratio = b_dram / b_total if b_total else 0.0

    dram_block = a_block / gx + b_rest * b_ratio + store_bytes
    l2_block = a_block * (1.0 - 1.0 / gx) + b_rest * (1.0 - b_ratio)

    # Expand per-y costs over the x grid: block_idx = x + y * gx, so each
    # y's costs repeat gx times consecutively (instruction costs do not
    # depend on x thanks to predication).
    def expand(per_y: np.ndarray) -> np.ndarray:
        return np.repeat(per_y, gx)

    costs = BlockCosts(
        fma_instructions=expand(fma_block),
        other_instructions=expand(other_block),
        dram_bytes=dram_block,
        l2_bytes=l2_block,
        l1_bytes=l1_block,
        smem_bytes=expand(smem_block),
    )
    return KernelLaunch(
        name=f"sputnik_spmm_{config.precision}",
        n_blocks=gx * gy,
        resources=resources,
        costs=costs,
        flops=spmm_flops(a, n),
        pipeline_efficiency=PIPELINE_EFFICIENCY
        * (1.0 if config.residue_unroll else RESIDUE_PIPELINE_FACTOR),
    )


def build_launch(
    a: CSRMatrix, n: int, config: SpmmConfig, device: DeviceSpec
) -> KernelLaunch:
    """Cost the SpMM launch for ``A @ B`` with ``B`` having ``n`` columns.

    Separated from :func:`spmm` so benchmarks can cost a problem without
    paying for the numeric multiply.
    """
    tiling, order, groups, extents = _analyze(a, config, device)
    del order
    return _launch_from_analysis(a, n, config, device, tiling, groups, extents)


@dataclass
class SpmmPlan:
    """Reusable execution plan for SpMM on one (topology, config, device).

    Everything here depends only on the sparse operand's *structure* (and
    precision), never on its values — so a plan stays valid across weight
    updates with a fixed topology and can be cached per matrix (the
    ``repro.ops`` plan cache does exactly that).
    """

    config: SpmmConfig
    n: int
    device: DeviceSpec
    tiling: SpmmTiling
    #: The swizzled row-processing order (Section V-C).
    row_order: np.ndarray
    #: Rows per thread block in scheduling order, ``-1``-padded.
    row_groups: np.ndarray
    #: ROMA-aligned (or raw) per-row extents (Section V-B2).
    extents: AlignedRows
    launch: KernelLaunch
    execution: ExecutionResult
    #: Shape of the planned sparse operand, for execute-time validation.
    m: int
    k: int
    #: Per-column nonzero counts, carried by repaired plans so the next
    #: repair updates it incrementally instead of re-scanning the matrix.
    #: ``None`` on cold-built plans (computed on first repair).
    col_counts: np.ndarray | None = None


def plan_spmm(
    a: CSRMatrix,
    n: int,
    device: DeviceSpec,
    config: SpmmConfig | None = None,
) -> SpmmPlan:
    """Build the full SpMM plan: analysis, costed launch, simulated run.

    The plan is pure derived state — :func:`execute_spmm` adds only the
    numeric multiply.
    """
    if config is None:
        from ..tune import default_spmm_config

        config = default_spmm_config(a, n)
    tiling, order, groups, extents = _analyze(a, config, device)
    launch = _launch_from_analysis(a, n, config, device, tiling, groups, extents)
    return SpmmPlan(
        config=config,
        n=n,
        device=device,
        tiling=tiling,
        row_order=order,
        row_groups=groups,
        extents=extents,
        launch=launch,
        execution=execute(launch, device),
        m=a.n_rows,
        k=a.n_cols,
    )


def repair_spmm_plan(
    plan: SpmmPlan, a: CSRMatrix, delta: TopologyDelta
) -> SpmmPlan:
    """Repair a parent plan for the edited topology ``a`` (DESIGN.md §17).

    Reuses the parent's swizzle order (merged over the edited rows) and
    its column histogram (updated incrementally) instead of re-running the
    full O(nnz log nnz) column analysis; the row extents and the launch
    cost vectors are cheap and recomputed outright. The result is
    bit-identical to ``plan_spmm(a, n, device, config)``. Inconsistencies
    raise :class:`~repro.reliability.errors.PlanRepairError`, which the
    dispatch layer converts into a cold re-plan.
    """
    from ..reliability.errors import PlanRepairError

    if a.shape != (plan.m, plan.k):
        raise PlanRepairError(
            f"edited topology {a.shape} does not match the parent plan's "
            f"operand ({plan.m}, {plan.k})"
        )
    config = plan.config
    if a.values.dtype != config.value_dtype:
        raise PlanRepairError(
            f"edited topology holds {a.values.dtype} values but the parent "
            f"plan is {config.precision}"
        )
    tiling = plan.tiling
    if config.load_balance:
        order = merge_swizzle(plan.row_order, a.row_lengths, delta.rows)
    else:
        order = identity_swizzle(a.n_rows)
    groups = group_rows(order, tiling.block_items_y)
    use_vector_a = config.vector_width > 1 and config.roma
    extents = (
        align_rows(a, config.vector_width) if use_vector_a else unaligned_rows(a)
    )
    counts = repair_column_histogram(plan.col_counts, delta, a)
    launch = _launch_from_analysis(
        a,
        plan.n,
        config,
        plan.device,
        tiling,
        groups,
        extents,
        touched_cols=touched_columns(counts),
    )
    return SpmmPlan(
        config=config,
        n=plan.n,
        device=plan.device,
        tiling=tiling,
        row_order=order,
        row_groups=groups,
        extents=extents,
        launch=launch,
        execution=execute(launch, plan.device),
        m=a.n_rows,
        k=a.n_cols,
        col_counts=counts,
    )


def execute_spmm(plan: SpmmPlan, a: CSRMatrix, b: np.ndarray) -> KernelResult:
    """Run a planned SpMM: exact numerics plus the plan's simulated cost."""
    if a.shape != (plan.m, plan.k):
        raise ValueError(
            f"matrix {a.shape} does not match the planned operand "
            f"({plan.m}, {plan.k})"
        )
    b = _validate(a, b, plan.config)
    if b.shape[1] != plan.n:
        raise ValueError(f"B has {b.shape[1]} columns but the plan has N={plan.n}")
    return KernelResult(output=spmm_reference(a, b), execution=plan.execution)


@dataclass
class SpmmBatchedPlan:
    """Batched SpMM plan: ``h`` shared-topology products in one launch.

    Built from the same values-independent analysis as :class:`SpmmPlan`,
    then the costed launch is scaled along the grid's z axis via
    :meth:`~repro.gpu.executor.KernelLaunch.batched` — one plan, one
    launch, one per-launch overhead for the whole stack (Section VII-C1).
    """

    config: SpmmConfig
    n: int
    #: Batch size (heads / batch items sharing the topology).
    h: int
    device: DeviceSpec
    launch: KernelLaunch
    execution: ExecutionResult
    #: Shape of the planned sparse operand, for execute-time validation.
    m: int
    k: int


def plan_spmm_batched(
    a: CSRMatrix,
    n: int,
    h: int,
    device: DeviceSpec,
    config: SpmmConfig | None = None,
) -> SpmmBatchedPlan:
    """Plan ``h`` SpMMs sharing ``a``'s topology as ONE batched launch."""
    if h <= 0:
        raise ValueError("batch size must be positive")
    if config is None:
        from ..tune import default_spmm_config

        config = default_spmm_config(a, n)
    tiling, order, groups, extents = _analyze(a, config, device)
    del order
    launch = _launch_from_analysis(
        a, n, config, device, tiling, groups, extents
    ).batched(h)
    return SpmmBatchedPlan(
        config=config,
        n=n,
        h=h,
        device=device,
        launch=launch,
        execution=execute(launch, device),
        m=a.n_rows,
        k=a.n_cols,
    )


def execute_spmm_batched(
    plan: SpmmBatchedPlan,
    a: CSRMatrix,
    b_stack: np.ndarray,
    values: np.ndarray | None = None,
) -> KernelResult:
    """Run a planned batched SpMM: one fused multiply, one costed launch.

    ``b_stack`` is ``(H, k, n)``. With ``values`` of shape ``(H, nnz)``
    each batch item multiplies its own value set against the shared
    structure (per-head attention probabilities); otherwise all items
    share ``a``'s values (a weight matrix applied across a batch).
    """
    if a.shape != (plan.m, plan.k):
        raise ValueError(
            f"matrix {a.shape} does not match the planned operand "
            f"({plan.m}, {plan.k})"
        )
    b_stack = np.asarray(b_stack)
    if b_stack.ndim != 3 or b_stack.shape[0] != plan.h:
        raise ValueError(
            f"B stack shape {b_stack.shape} does not carry the planned "
            f"batch size H={plan.h}"
        )
    # Per-head validation, vectorized: every slab shares shape and dtype.
    _validate(a, b_stack[0], plan.config)
    if b_stack.shape[2] != plan.n:
        raise ValueError(
            f"B has {b_stack.shape[2]} columns but the plan has N={plan.n}"
        )
    if values is not None:
        values = np.asarray(values)
        if values.shape != (plan.h, a.nnz):
            raise ValueError(
                f"per-head values shape {values.shape} != "
                f"({plan.h}, {a.nnz})"
            )
        if values.dtype != plan.config.value_dtype:
            raise TypeError(
                f"per-head values are {values.dtype}, expected "
                f"{plan.config.value_dtype}"
            )
    return KernelResult(
        output=spmm_batched_reference(a, b_stack, values),
        execution=plan.execution,
    )


def spmm_batched(
    a: CSRMatrix,
    b_stack: np.ndarray,
    device: DeviceSpec,
    config: SpmmConfig | None = None,
    values: np.ndarray | None = None,
) -> KernelResult:
    """Batched Sputnik SpMM: numerics + one amortized simulated launch."""
    b_stack = np.asarray(b_stack)
    if b_stack.ndim != 3:
        raise ValueError(f"B stack must be (H, k, n), got {b_stack.shape}")
    plan = plan_spmm_batched(
        a, b_stack.shape[2], b_stack.shape[0], device, config
    )
    return execute_spmm_batched(plan, a, b_stack, values)


def spmm(
    a: CSRMatrix,
    b: np.ndarray,
    device: DeviceSpec,
    config: SpmmConfig | None = None,
) -> KernelResult:
    """Run Sputnik SpMM: exact numerics plus simulated execution cost."""
    if config is None:
        from ..tune import default_spmm_config

        config = default_spmm_config(a, np.asarray(b).shape[1])
    b = _validate(a, b, config)
    return execute_spmm(plan_spmm(a, b.shape[1], device, config), a, b)
