"""The paper's contribution: Sputnik-style sparse kernels for deep learning.

Public entry points:

- :func:`spmm` — sparse matrix × dense matrix (Section V).
- :func:`sddmm` — sampled dense–dense matmul, ``A B^T ∘ I[C]`` (Section VI).
- :func:`sparse_softmax` — row softmax over CSR values (Section VII-C).
- :class:`SpmmConfig` / :class:`SddmmConfig` — per-optimization toggles for
  ablation (Table II).

Config-selection policies (the Section VII heuristics, the oracle, and
the autotuner) live in :mod:`repro.tune`; this package keeps only the
selection math they share (:mod:`repro.core.selection`).
"""

from .csc_spmm import (
    csc_as_transposed_csr,
    execute_spmm_csc,
    plan_spmm_csc,
    spmm_csc,
)
from .config import Precision, SddmmConfig, SpmmConfig, value_dtype
from .roma import (
    ROMA_MASK_INSTRUCTIONS,
    ROMA_PRELUDE_INSTRUCTIONS,
    AlignedRows,
    align_rows,
    masked_gather,
    masked_gather_reference,
    unaligned_rows,
)
from .sddmm import (
    SddmmBatchedPlan,
    SddmmPlan,
    execute_sddmm,
    execute_sddmm_batched,
    plan_sddmm,
    plan_sddmm_batched,
    sddmm,
    sddmm_batched,
)
from .selection import (
    next_power_of_two,
    pad_batch_for_vectors,
    widest_vector_width,
)
from .sparse_softmax import (
    SparseSoftmaxBatchedPlan,
    SparseSoftmaxPlan,
    execute_sparse_softmax,
    execute_sparse_softmax_batched,
    plan_sparse_softmax,
    plan_sparse_softmax_batched,
    sparse_softmax,
    sparse_softmax_batched,
)
from .spmm import (
    SpmmBatchedPlan,
    SpmmPlan,
    execute_spmm,
    execute_spmm_batched,
    plan_spmm,
    plan_spmm_batched,
    spmm,
    spmm_batched,
)
from .swizzle import (
    bundle_rows,
    bundle_weights,
    identity_swizzle,
    paired_first_wave_order,
    row_swizzle,
    swizzled_row_groups,
)
from .tiling import SpmmTiling, derive_tiling
from .types import KernelResult

__all__ = [
    "spmm",
    "spmm_csc",
    "csc_as_transposed_csr",
    "sddmm",
    "sparse_softmax",
    "spmm_batched",
    "sddmm_batched",
    "sparse_softmax_batched",
    "SpmmPlan",
    "SddmmPlan",
    "SparseSoftmaxPlan",
    "SpmmBatchedPlan",
    "SddmmBatchedPlan",
    "SparseSoftmaxBatchedPlan",
    "plan_spmm",
    "plan_sddmm",
    "plan_sparse_softmax",
    "plan_spmm_batched",
    "plan_sddmm_batched",
    "plan_sparse_softmax_batched",
    "plan_spmm_csc",
    "execute_spmm",
    "execute_sddmm",
    "execute_sparse_softmax",
    "execute_spmm_batched",
    "execute_sddmm_batched",
    "execute_sparse_softmax_batched",
    "execute_spmm_csc",
    "SpmmConfig",
    "SddmmConfig",
    "Precision",
    "value_dtype",
    "KernelResult",
    "SpmmTiling",
    "derive_tiling",
    "pad_batch_for_vectors",
    "next_power_of_two",
    "widest_vector_width",
    "row_swizzle",
    "identity_swizzle",
    "bundle_rows",
    "bundle_weights",
    "paired_first_wave_order",
    "swizzled_row_groups",
    "align_rows",
    "unaligned_rows",
    "masked_gather",
    "masked_gather_reference",
    "AlignedRows",
    "ROMA_PRELUDE_INSTRUCTIONS",
    "ROMA_MASK_INSTRUCTIONS",
]
