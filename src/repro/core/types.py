"""Common result type returned by every kernel (ours and the baselines)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..gpu.executor import ExecutionResult


@dataclass
class KernelResult:
    """A kernel's numeric output paired with its simulated execution.

    ``output`` is a dense ``np.ndarray`` for SpMM-like kernels and a
    :class:`~repro.sparse.CSRMatrix` for SDDMM-like kernels.

    ``reliability`` is populated by policy-dispatched calls (a
    :class:`~repro.reliability.policy.DispatchReport` recording retries,
    fallbacks, and degraded-mode re-runs); plain single-backend calls
    leave it ``None``.
    """

    output: Any
    execution: ExecutionResult
    reliability: Any = None

    @property
    def runtime_s(self) -> float:
        return self.execution.runtime_s

    @property
    def throughput_flops(self) -> float:
        return self.execution.throughput_flops
