"""Sputnik-style SDDMM: ``(A @ B^T) ∘ I[C] => D`` (Section VI).

The output is sparse, so thread blocks map to 1-D strips of consecutive
nonzeros rather than output tiles: block ``(x, y)`` owns nonzeros
``[x*T, (x+1)*T)`` of row ``y``. Because the number of nonzeros per row is
unknown at launch time, the kernel launches the *maximum* grid that could be
needed (one x-slot per possible strip) and unneeded blocks exit early; the
paper measures that overhead as negligible and so do we — it is charged as
an analytic scheduler-drag term rather than materialized block-by-block.

The transposed right-hand operand is handled the way the paper chose: each
thread computes a slice of every output in the strip and the strip is
finished with warp-shuffle reductions, trading registers for shared memory
to preserve L1 capacity (Section VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import DeviceSpec
from ..gpu.executor import BlockCosts, ExecutionResult, KernelLaunch, execute
from ..gpu.memory import dram_bytes_with_reuse, l1_hit_fraction
from ..gpu.occupancy import BlockResources, compute_occupancy
from ..sparse.csr import CSRMatrix
from ..sparse.ops import sddmm_batched_reference, sddmm_flops, sddmm_reference
from .config import SddmmConfig
from .repair import (
    TopologyDelta,
    repair_column_histogram,
    touched_columns,
)
from .swizzle import identity_swizzle, merge_swizzle, row_swizzle
from .types import KernelResult

#: Instructions an unneeded thread block executes before returning early.
EARLY_EXIT_INSTRUCTIONS = 8
#: Warp-shuffle + add instructions to reduce one output's 32 partials.
SHUFFLE_REDUCE_INSTRUCTIONS = 10
#: Prelude: offsets, strip bounds check, output addressing.
PRELUDE_INSTRUCTIONS = 8
#: Sustained fraction of the SM's issue/math rate (gather-dependent loads
#: and shuffle chains); calibrated once per kernel family.
PIPELINE_EFFICIENCY = 0.62


def _validate(
    lhs: np.ndarray, rhs: np.ndarray, mask: CSRMatrix, config: SddmmConfig
) -> tuple[np.ndarray, np.ndarray]:
    if config.precision != "fp32":
        raise NotImplementedError(
            "the paper's SDDMM kernels are single-precision only"
        )
    lhs = np.asarray(lhs, dtype=np.float32)
    rhs = np.asarray(rhs, dtype=np.float32)
    if not config.transposed_rhs:
        # General variant (footnote 1): rhs arrives as (k, n_cols).
        if rhs.ndim != 2:
            raise ValueError("rhs must be 2-D")
        rhs = np.ascontiguousarray(rhs.T)
    if lhs.ndim != 2 or rhs.ndim != 2 or lhs.shape[1] != rhs.shape[1]:
        raise ValueError(
            f"operands {lhs.shape} x {rhs.shape}^T must share the inner dim"
        )
    if lhs.shape[0] != mask.n_rows or rhs.shape[0] != mask.n_cols:
        raise ValueError(
            f"operands {lhs.shape} x {rhs.shape}^T incompatible with mask "
            f"{mask.shape}"
        )
    k = lhs.shape[1]
    if config.vector_width > 1 and k % config.vector_width:
        raise ValueError(
            f"K={k} not divisible by vector width {config.vector_width}"
        )
    return lhs, rhs


def build_launch(
    mask: CSRMatrix,
    k: int,
    config: SddmmConfig,
    device: DeviceSpec,
    *,
    order: np.ndarray | None = None,
    touched_cols: int | None = None,
) -> tuple[KernelLaunch, float]:
    """Cost the SDDMM launch; returns ``(real-work launch, early-exit drag)``.

    The drag term (seconds) accounts for the over-provisioned grid's empty
    blocks flowing through the scheduler. ``order`` and ``touched_cols``
    may be supplied by a planner that already holds them (plan repair
    maintains both incrementally); when absent they are derived from the
    mask as usual.
    """
    t = config.nonzeros_per_block
    vw = float(config.vector_width)
    warp = device.warp_size

    if order is None:
        order = (
            row_swizzle(mask.row_lengths)
            if config.load_balance
            else identity_swizzle(mask.n_rows)
        )
    lengths = mask.row_lengths[order]

    # Strips per row, flattened in block_idx order (x fastest, then y).
    strips_per_row = -(-lengths // t)
    n_real = int(strips_per_row.sum())
    if n_real == 0:
        raise ValueError("mask has no nonzeros; nothing to compute")
    row_of_strip = np.repeat(np.arange(mask.n_rows), strips_per_row)
    strip_in_row = np.arange(n_real) - np.repeat(
        np.cumsum(strips_per_row) - strips_per_row, strips_per_row
    )
    strip_nnz = np.minimum(
        lengths[row_of_strip] - strip_in_row * t, t
    ).astype(np.float64)

    fma = strip_nnz * k / warp
    lhs_loads = np.full(n_real, k / (warp * vw))
    rhs_loads = strip_nnz * k / (warp * vw)
    if config.transposed_rhs:
        # Per-output partial sums across the warp need a shuffle reduction
        # (the register-based transpose handling of Section VI-A).
        reduce_instr = strip_nnz * SHUFFLE_REDUCE_INSTRUCTIONS / 1.0
    else:
        # Footnote 1: a non-transposed right operand is trivially coalesced
        # — one output per lane, no cross-lane reduction.
        reduce_instr = np.zeros(n_real)
    io_instr = 4.0 + PRELUDE_INSTRUCTIONS  # indices load + output store + prelude
    if config.scale_by_values:
        # Footnote 1: element-wise scaling adds 1 load and 1 multiply per
        # output prior to the store.
        io_instr += 2.0 * t / warp
    other = lhs_loads + rhs_loads + reduce_instr + io_instr

    # Honor the config's precision regime: mixed configs load/store fp16
    # values (the index bytes already follow the mask's operand dtype).
    eb = float(config.value_dtype.itemsize)
    lhs_bytes = np.full(n_real, k * eb)
    rhs_bytes = strip_nnz * k * eb
    out_bytes = strip_nnz * (eb + mask.index_bytes)
    if config.scale_by_values:
        out_bytes = out_bytes + strip_nnz * eb  # read the mask's values

    resources = BlockResources(
        threads=warp,
        shared_mem_bytes=0,
        # Partials for a whole strip live in registers (the paper's explicit
        # choice over a shared-memory transpose, Section VI-A).
        registers_per_thread=32 + t,
    )

    # L1 locality — the reason the kernel avoids a shared-memory transpose
    # (Section VI-A: "we found L1 cache capacity to be important"):
    # consecutive strips of a row reuse the lhs row, and strips resident on
    # one SM reference overlapping rhs rows.
    occ = compute_occupancy(resources, device)
    resident = min(occ.blocks_per_sm, -(-n_real // device.num_sms))
    if touched_cols is None:
        touched_cols = len(np.unique(mask.column_indices))
    strip_mean = float(strip_nnz.mean())
    l1_cap = float(device.l1_capacity_per_sm)

    # lhs: consecutive strips of a row reuse the same lhs row.
    lhs_lpe = min(float(strips_per_row.mean()), float(resident))
    lhs_l1 = l1_hit_fraction(lhs_lpe, resident * k * eb, l1_cap)

    # rhs: the strips resident on an SM come from nearby mask rows at
    # similar strip offsets; with sorted indices and the low row-length
    # variation of DL matrices their column windows overlap, so each rhs
    # row in the window is read ~(resident x density) times before moving
    # on. The live window is the distinct columns currently in flight.
    density = (
        mask.nnz / (mask.n_rows * touched_cols) if touched_cols else 0.0
    )
    rhs_lpe = resident * density
    distinct_in_flight = (
        resident * strip_mean / rhs_lpe if rhs_lpe > 0 else 0.0
    )
    rhs_l1 = l1_hit_fraction(rhs_lpe, distinct_in_flight * k * eb, l1_cap)

    l1_bytes = lhs_bytes * lhs_l1 + rhs_bytes * rhs_l1
    load_bytes = lhs_bytes * (1.0 - lhs_l1) + rhs_bytes * (1.0 - rhs_l1)
    total_loads = float(load_bytes.sum())
    unique_loads = min(
        (mask.n_rows + touched_cols) * k * eb, total_loads
    )
    dram_reads = dram_bytes_with_reuse(total_loads, unique_loads, device.l2_capacity)
    ratio = dram_reads / total_loads if total_loads else 0.0

    costs = BlockCosts(
        fma_instructions=fma,
        other_instructions=other,
        dram_bytes=load_bytes * ratio + out_bytes,
        l2_bytes=load_bytes * (1.0 - ratio),
        l1_bytes=l1_bytes,
        smem_bytes=0.0,
    )
    launch = KernelLaunch(
        name="sputnik_sddmm",
        n_blocks=n_real,
        resources=resources,
        costs=costs,
        flops=sddmm_flops(mask, k),
        pipeline_efficiency=PIPELINE_EFFICIENCY,
    )

    if config.dynamic_parallelism:
        # The Section VI-A alternative: per-row child grids replace the
        # over-provisioned launch — no empty blocks, one extra API launch.
        drag = device.launch_overhead_s
    else:
        # Over-provisioned grid: one x-slot per possible strip per row.
        max_strips = -(-mask.n_cols // t)
        n_empty = mask.n_rows * max_strips - n_real
        slots = device.num_sms * device.max_blocks_per_sm
        exit_time = EARLY_EXIT_INSTRUCTIONS / (
            device.issue_width * device.core_clock_hz
        )
        drag = n_empty * exit_time / slots
    return launch, drag


@dataclass
class SddmmPlan:
    """Reusable execution plan for SDDMM on one (topology, config, device).

    Depends only on the mask's structure and the inner dimension ``k`` —
    never on operand values — so it can be cached per mask and reused
    across attention heads/layers sharing one connectivity pattern.
    """

    config: SddmmConfig
    k: int
    device: DeviceSpec
    launch: KernelLaunch
    #: Early-exit scheduler drag of the over-provisioned grid (seconds).
    drag: float
    #: Simulated execution, drag included.
    execution: ExecutionResult
    #: Shape of the planned mask, for execute-time validation.
    mask_shape: tuple[int, int]
    nnz: int
    #: The strip scheduling order, kept so plan repair can merge it after
    #: a topology edit instead of re-sorting. ``None`` on plans built
    #: before repair support (older store entries).
    row_order: np.ndarray | None = None
    #: Per-column nonzero counts, carried by repaired plans so the next
    #: repair updates it incrementally. ``None`` on cold-built plans.
    col_counts: np.ndarray | None = None


def plan_sddmm(
    mask: CSRMatrix,
    k: int,
    device: DeviceSpec,
    config: SddmmConfig | None = None,
) -> SddmmPlan:
    """Build the full SDDMM plan: costed launch plus simulated run."""
    if config is None:
        from ..tune import default_sddmm_config

        config = default_sddmm_config(mask, k)
    order = (
        row_swizzle(mask.row_lengths)
        if config.load_balance
        else identity_swizzle(mask.n_rows)
    )
    launch, drag = build_launch(mask, k, config, device, order=order)
    return SddmmPlan(
        config=config,
        k=k,
        device=device,
        launch=launch,
        drag=drag,
        execution=execute(launch, device).add_overhead(drag),
        mask_shape=mask.shape,
        nnz=mask.nnz,
        row_order=order,
    )


def repair_sddmm_plan(
    plan: SddmmPlan, mask: CSRMatrix, delta: TopologyDelta
) -> SddmmPlan:
    """Repair a parent plan for the edited mask (DESIGN.md §17).

    Merges the parent's strip order over the edited rows and repairs its
    column histogram incrementally; the per-strip cost vectors are cheap
    and rebuilt outright. Bit-identical to ``plan_sddmm(mask, k, device,
    config)``; inconsistencies raise ``PlanRepairError`` (dispatch falls
    back to a cold re-plan).
    """
    from ..reliability.errors import PlanRepairError

    if mask.shape != plan.mask_shape:
        raise PlanRepairError(
            f"edited mask {mask.shape} does not match the parent plan's "
            f"mask {plan.mask_shape}"
        )
    config = plan.config
    if config.load_balance:
        if plan.row_order is not None:
            order = merge_swizzle(plan.row_order, mask.row_lengths, delta.rows)
        else:  # pre-repair store entry: re-sort (still skips np.unique)
            order = row_swizzle(mask.row_lengths)
    else:
        order = identity_swizzle(mask.n_rows)
    counts = repair_column_histogram(plan.col_counts, delta, mask)
    launch, drag = build_launch(
        mask,
        plan.k,
        config,
        plan.device,
        order=order,
        touched_cols=touched_columns(counts),
    )
    return SddmmPlan(
        config=config,
        k=plan.k,
        device=plan.device,
        launch=launch,
        drag=drag,
        execution=execute(launch, plan.device).add_overhead(drag),
        mask_shape=mask.shape,
        nnz=mask.nnz,
        row_order=order,
        col_counts=counts,
    )


def execute_sddmm(
    plan: SddmmPlan, lhs: np.ndarray, rhs: np.ndarray, mask: CSRMatrix
) -> KernelResult:
    """Run a planned SDDMM: exact numerics plus the plan's simulated cost."""
    if mask.shape != plan.mask_shape or mask.nnz != plan.nnz:
        raise ValueError(
            f"mask {mask.shape} (nnz={mask.nnz}) does not match the planned "
            f"mask {plan.mask_shape} (nnz={plan.nnz})"
        )
    lhs, rhs = _validate(lhs, rhs, mask, plan.config)
    if lhs.shape[1] != plan.k:
        raise ValueError(f"inner dim {lhs.shape[1]} but the plan has K={plan.k}")
    return KernelResult(
        output=sddmm_reference(
            lhs, rhs, mask, scale_by_values=plan.config.scale_by_values
        ),
        execution=plan.execution,
    )


@dataclass
class SddmmBatchedPlan:
    """Batched SDDMM plan: ``h`` shared-mask products in one launch.

    The real-work grid tiles ``h`` times along z (identical strips per
    batch item — the mask is shared) and the early-exit drag of the
    over-provisioned grid scales with it, but only ONE per-launch
    overhead is paid for the whole stack.
    """

    config: SddmmConfig
    k: int
    #: Batch size (heads sharing the mask topology).
    h: int
    device: DeviceSpec
    launch: KernelLaunch
    #: Early-exit scheduler drag, already scaled to the batched grid.
    drag: float
    #: Simulated execution, drag included.
    execution: ExecutionResult
    mask_shape: tuple[int, int]
    nnz: int


def plan_sddmm_batched(
    mask: CSRMatrix,
    k: int,
    h: int,
    device: DeviceSpec,
    config: SddmmConfig | None = None,
) -> SddmmBatchedPlan:
    """Plan ``h`` SDDMMs sharing ``mask``'s topology as ONE launch."""
    if h <= 0:
        raise ValueError("batch size must be positive")
    if config is None:
        from ..tune import default_sddmm_config

        config = default_sddmm_config(mask, k)
    base, drag = build_launch(mask, k, config, device)
    launch = base.batched(h)
    return SddmmBatchedPlan(
        config=config,
        k=k,
        h=h,
        device=device,
        launch=launch,
        drag=drag * h,
        execution=execute(launch, device).add_overhead(drag * h),
        mask_shape=mask.shape,
        nnz=mask.nnz,
    )


def execute_sddmm_batched(
    plan: SddmmBatchedPlan,
    lhs_stack: np.ndarray,
    rhs_stack: np.ndarray,
    mask: CSRMatrix,
) -> KernelResult:
    """Run a planned batched SDDMM: one fused call, one costed launch.

    ``lhs_stack`` is ``(H, rows, k)``, ``rhs_stack`` ``(H, cols, k)``;
    the output is the column-stacked ``(nnz, H)`` value matrix (one
    column per batch item, all sharing ``mask``'s topology).
    """
    if mask.shape != plan.mask_shape or mask.nnz != plan.nnz:
        raise ValueError(
            f"mask {mask.shape} (nnz={mask.nnz}) does not match the planned "
            f"mask {plan.mask_shape} (nnz={plan.nnz})"
        )
    lhs_stack = np.asarray(lhs_stack)
    rhs_stack = np.asarray(rhs_stack)
    if lhs_stack.ndim != 3 or lhs_stack.shape[0] != plan.h:
        raise ValueError(
            f"lhs stack shape {lhs_stack.shape} does not carry the planned "
            f"batch size H={plan.h}"
        )
    if not plan.config.transposed_rhs:
        raise NotImplementedError(
            "batched SDDMM implements the paper's deep-learning variant "
            "(transposed rhs) only"
        )
    # Per-head validation on the first slab; the stack shares its shape.
    _validate(lhs_stack[0], rhs_stack[0], mask, plan.config)
    if lhs_stack.shape[2] != plan.k:
        raise ValueError(
            f"inner dim {lhs_stack.shape[2]} but the plan has K={plan.k}"
        )
    return KernelResult(
        output=sddmm_batched_reference(
            lhs_stack,
            rhs_stack,
            mask,
            scale_by_values=plan.config.scale_by_values,
        ),
        execution=plan.execution,
    )


def sddmm_batched(
    lhs_stack: np.ndarray,
    rhs_stack: np.ndarray,
    mask: CSRMatrix,
    device: DeviceSpec,
    config: SddmmConfig | None = None,
) -> KernelResult:
    """Batched Sputnik SDDMM: numerics + one amortized simulated launch."""
    lhs_stack = np.asarray(lhs_stack)
    if lhs_stack.ndim != 3:
        raise ValueError(
            f"lhs stack must be (H, rows, k), got {lhs_stack.shape}"
        )
    plan = plan_sddmm_batched(
        mask, lhs_stack.shape[2], lhs_stack.shape[0], device, config
    )
    return execute_sddmm_batched(plan, lhs_stack, rhs_stack, mask)


def sddmm(
    lhs: np.ndarray,
    rhs: np.ndarray,
    mask: CSRMatrix,
    device: DeviceSpec,
    config: SddmmConfig | None = None,
) -> KernelResult:
    """Run Sputnik SDDMM: exact numerics plus simulated execution cost."""
    if config is None:
        from ..tune import default_sddmm_config

        config = default_sddmm_config(mask, np.asarray(lhs).shape[1])
    lhs, rhs = _validate(lhs, rhs, mask, config)
    plan = plan_sddmm(mask, lhs.shape[1], device, config)
    return KernelResult(
        output=sddmm_reference(
            lhs, rhs, mask, scale_by_values=config.scale_by_values
        ),
        execution=plan.execution,
    )
