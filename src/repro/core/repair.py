"""Incremental plan repair for dynamic sparse topologies (DESIGN.md Sec. 17).

Dynamic sparse training (RigL-style drop/grow) mutates a weight matrix's
topology every N steps, editing a small fraction of its rows. Every plan in
the cache stack is keyed by a structural fingerprint, so each mutation is a
cold miss and a full re-plan — and the expensive part of planning is the
O(nnz log nnz) column analysis (``np.unique`` over the column indices) that
an edit of 5% of the rows barely changes.

This module holds the pieces of repair that are independent of any one
kernel:

- :class:`TopologyDelta` — the edited-row diff between a parent topology
  and its child, carrying enough of the parent (edited rows' old column
  slices) that the parent matrix itself can be dropped.
- :func:`edited_rows` — structural diff between two same-shape CSR
  matrices, for callers that mutated a topology without tracking rows.
- :func:`repair_column_histogram` — the incremental replacement for the
  per-plan ``np.unique`` column analysis: maintain a column histogram,
  subtract the edited rows' old columns, add their new ones. The number of
  touched columns (``count_nonzero``) is bit-identical to
  ``len(np.unique(column_indices))``.

Kernel-specific repair lives next to each planner (``core.spmm``,
``core.sddmm``, ``dist.partition``); the cache-lookup policy (exact hit ->
repairable ancestor -> cold build) lives in ``ops.context``. Every
inconsistency raises :class:`~repro.reliability.errors.PlanRepairError`,
which dispatch treats as "fall back to a cold re-plan" — a failed repair
can never surface a corrupt plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..reliability.errors import PlanRepairError
from ..sparse.csr import CSRMatrix


@dataclass(frozen=True)
class TopologyDelta:
    """Edited-row diff between a parent topology and its child.

    Registered with an execution context under the child fingerprint; the
    plan lookup then walks ``child -> parent`` to find a repairable
    ancestor plan. ``old_lengths``/``old_cols`` preserve the edited rows'
    parent-side structure so histogram repair never needs the parent
    matrix itself.
    """

    #: Structural fingerprint of the pre-edit topology.
    parent: str
    #: Structural fingerprint of the post-edit topology.
    child: str
    #: Sorted, unique edited row ids (int64).
    rows: np.ndarray
    #: Parent row lengths of the edited rows, aligned with ``rows``.
    old_lengths: np.ndarray
    #: Concatenated parent column indices of the edited rows (int64).
    old_cols: np.ndarray
    #: Whether unedited rows carry their parent values unchanged (true for
    #: drop/grow updates; lets shard materialization reuse value slices).
    values_preserved: bool = True

    @property
    def n_rows_edited(self) -> int:
        return int(self.rows.size)


def _as_sorted_rows(rows: np.ndarray, n_rows: int) -> np.ndarray:
    rows = np.unique(np.asarray(rows, dtype=np.int64))
    if rows.size and (rows[0] < 0 or rows[-1] >= n_rows):
        raise PlanRepairError(
            f"edited rows out of range for a {n_rows}-row topology"
        )
    return rows


def make_delta(
    parent: CSRMatrix,
    child: CSRMatrix,
    rows: np.ndarray,
    *,
    parent_fp: str,
    child_fp: str,
    values_preserved: bool = True,
) -> TopologyDelta:
    """Build a :class:`TopologyDelta` from both matrices and the row set.

    Fingerprints are passed in (they live in the ``ops`` layer's plan
    cache); ``repro.ops.topology_delta`` wraps this with fingerprint
    computation and an automatic row diff.
    """
    if parent.shape != child.shape:
        raise PlanRepairError(
            f"topology edit changed the shape: {parent.shape} -> {child.shape}"
        )
    rows = _as_sorted_rows(rows, parent.n_rows)
    starts = parent.row_offsets[rows]
    lengths = (parent.row_offsets[rows + 1] - starts).astype(np.int64)
    if rows.size:
        old_cols = np.concatenate(
            [
                parent.column_indices[s : s + l]
                for s, l in zip(starts.tolist(), lengths.tolist())
            ]
            or [np.empty(0, dtype=np.int64)]
        ).astype(np.int64)
    else:
        old_cols = np.empty(0, dtype=np.int64)
    return TopologyDelta(
        parent=parent_fp,
        child=child_fp,
        rows=rows,
        old_lengths=lengths,
        old_cols=old_cols,
        values_preserved=values_preserved,
    )


def edited_rows(parent: CSRMatrix, child: CSRMatrix) -> np.ndarray:
    """Rows whose column sets differ between two same-shape topologies.

    O(nnz), fully vectorized: rows with changed lengths are edited; for
    equal-length rows the child's entries are gathered back into the
    parent's layout and compared element-wise.
    """
    if parent.shape != child.shape:
        raise PlanRepairError(
            f"cannot diff topologies of different shapes "
            f"{parent.shape} vs {child.shape}"
        )
    pl = parent.row_lengths.astype(np.int64)
    cl = child.row_lengths.astype(np.int64)
    length_changed = pl != cl
    same = ~length_changed
    if child.nnz and same.any():
        row_of = np.repeat(np.arange(child.n_rows, dtype=np.int64), cl)
        sel = same[row_of]
        if sel.any():
            pos_in_row = np.arange(child.nnz, dtype=np.int64) - np.repeat(
                child.row_offsets[:-1].astype(np.int64), cl
            )
            parent_pos = (
                parent.row_offsets[:-1].astype(np.int64)[row_of] + pos_in_row
            )
            mismatch = (
                np.asarray(child.column_indices, dtype=np.int64)[sel]
                != np.asarray(parent.column_indices, dtype=np.int64)[
                    parent_pos[sel]
                ]
            )
            if mismatch.any():
                hits = np.bincount(
                    row_of[sel][mismatch], minlength=child.n_rows
                )
                length_changed = length_changed | (hits > 0)
    return np.flatnonzero(length_changed).astype(np.int64)


def column_histogram(a: CSRMatrix) -> np.ndarray:
    """Per-column nonzero counts (int64, length ``n_cols``)."""
    if a.nnz == 0:
        return np.zeros(a.n_cols, dtype=np.int64)
    return np.bincount(
        np.asarray(a.column_indices, dtype=np.int64), minlength=a.n_cols
    ).astype(np.int64)


def repair_column_histogram(
    parent_counts: np.ndarray | None,
    delta: TopologyDelta,
    child: CSRMatrix,
) -> np.ndarray:
    """Column histogram of ``child``, repaired from the parent's.

    With parent counts available this is O(edited nnz + n_cols); without
    (the ancestor was a cold plan, which carries no histogram) it falls
    back to a fresh O(nnz) bincount — still far cheaper than the
    O(nnz log nnz) ``np.unique`` it replaces. The result is validated
    against the child (non-negative, sums to nnz) so a drifted histogram
    raises instead of silently mis-costing the plan.
    """
    if parent_counts is None:
        return column_histogram(child)
    counts = np.asarray(parent_counts, dtype=np.int64).copy()
    if counts.shape != (child.n_cols,):
        raise PlanRepairError(
            f"parent histogram has {counts.shape} bins, child has "
            f"{child.n_cols} columns"
        )
    rows = _as_sorted_rows(delta.rows, child.n_rows)
    if delta.old_cols.size:
        counts -= np.bincount(
            np.asarray(delta.old_cols, dtype=np.int64),
            minlength=child.n_cols,
        ).astype(np.int64)
    if rows.size:
        starts = child.row_offsets[rows]
        lengths = child.row_offsets[rows + 1] - starts
        new_cols = np.concatenate(
            [
                child.column_indices[s : s + l]
                for s, l in zip(starts.tolist(), lengths.tolist())
            ]
            or [np.empty(0, dtype=np.int64)]
        )
        if new_cols.size:
            counts += np.bincount(
                np.asarray(new_cols, dtype=np.int64), minlength=child.n_cols
            ).astype(np.int64)
    if counts.min(initial=0) < 0 or int(counts.sum()) != child.nnz:
        raise PlanRepairError(
            "repaired column histogram is inconsistent with the child "
            f"topology (sum={int(counts.sum())}, nnz={child.nnz})"
        )
    return counts


def touched_columns(counts: np.ndarray) -> int:
    """Distinct referenced columns — ``len(np.unique(cols))``, from the
    histogram."""
    return int(np.count_nonzero(counts))
