"""Reverse-offset memory alignment — ROMA (Section V-B2).

Vector memory instructions require vector-width-aligned addresses, but CSR
rows start at arbitrary offsets. ROMA backs each row's offset up to the
nearest aligned address in the kernel prelude and masks the values borrowed
from the previous row during the first main-loop iteration. Unlike explicit
padding it changes neither the data structure nor the per-block work.

The PTX cost the paper reports is modelled exactly: 6 prelude instructions
(2 ``and``, 1 ``add``, 1 ``setp``, 2 ``selp``) plus 3 first-iteration
masking instructions (1 ``setp``, 2 shared-memory stores).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.memory import aligned_extent
from ..sparse.csr import CSRMatrix

#: Instruction overhead of the alignment prelude (Section V-B2).
ROMA_PRELUDE_INSTRUCTIONS = 6
#: Instruction overhead of masking in the first main-loop iteration.
ROMA_MASK_INSTRUCTIONS = 3


@dataclass(frozen=True)
class AlignedRows:
    """Per-row extents after ROMA: what each 1-D tile actually loads."""

    offsets: np.ndarray
    lengths: np.ndarray
    #: Elements borrowed from the preceding row (masked in iteration one).
    prefix: np.ndarray

    @property
    def total_elements(self) -> int:
        return int(self.lengths.sum())


def align_rows(a: CSRMatrix, vector_width: int) -> AlignedRows:
    """Apply ROMA to every row of a CSR matrix.

    The first row of the matrix needs no backup: CUDA allocations are at
    least 256-byte aligned (paper footnote 3), and ``row_offsets[0] == 0``
    makes this hold by construction here too.
    """
    offsets = a.row_offsets[:-1]
    lengths = a.row_lengths.astype(np.int64)
    new_offsets, new_lengths = aligned_extent(offsets, lengths, vector_width)
    return AlignedRows(
        offsets=new_offsets,
        lengths=new_lengths,
        prefix=(offsets - new_offsets),
    )


def unaligned_rows(a: CSRMatrix) -> AlignedRows:
    """Row extents without ROMA (scalar access or explicit padding)."""
    return AlignedRows(
        offsets=a.row_offsets[:-1].copy(),
        lengths=a.row_lengths.astype(np.int64),
        prefix=np.zeros(a.n_rows, dtype=np.int64),
    )


def masked_gather(
    values: np.ndarray, offsets: np.ndarray, lengths: np.ndarray, prefix: np.ndarray
) -> list[np.ndarray]:
    """Load each aligned row extent and zero its borrowed prefix.

    This is the executable semantics of ROMA, used by tests to prove the
    alignment trick never changes results: the masked aligned loads must
    reconstruct exactly the original row values.

    Vectorized as one flat gather over every extent followed by a single
    prefix mask and split — no per-row Python work.
    :func:`masked_gather_reference` keeps the obvious per-row loop as the
    test oracle.
    """
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    prefix = np.asarray(prefix, dtype=np.int64)
    starts = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(lengths, out=starts[1:])
    total = int(starts[-1])
    row_of = np.repeat(np.arange(len(lengths)), lengths)
    within = np.arange(total, dtype=np.int64) - starts[row_of]
    flat = values[offsets[row_of] + within]
    flat[within < prefix[row_of]] = 0
    return np.split(flat, starts[1:-1])


def masked_gather_reference(
    values: np.ndarray, offsets: np.ndarray, lengths: np.ndarray, prefix: np.ndarray
) -> list[np.ndarray]:
    """Per-row loop implementation of :func:`masked_gather` (test oracle)."""
    out = []
    for off, length, pre in zip(offsets, lengths, prefix):
        row = values[off : off + length].copy()
        row[:pre] = 0
        out.append(row)
    return out
