"""Kernel-selection heuristics (Section VII, first paragraph).

For SpMM the paper selects "the n-dimension tile size to be N, rounded up to
a power of 2, up to a maximum of 64"; for SDDMM a fixed n-dimension tile of
32; and for both "the widest vector memory operations possible". The
MobileNet study additionally uses an *oracle* selector for a handful of
layers where the heuristic is sub-optimal (Section VII-D1) — implemented
here by exhaustively costing a candidate menu on the simulator.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import DeviceSpec
from ..gpu.executor import execute
from ..sparse.csr import CSRMatrix
from .config import Precision, SddmmConfig, SpmmConfig

#: Hard cap on the SpMM n-dimension tile size.
MAX_TILE_X = 64


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= n (n must be positive)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return 1 << (n - 1).bit_length()


def widest_vector_width(*dims: int) -> int:
    """Widest legal vector width (4, 2, or 1) dividing every given dim."""
    for vw in (4, 2):
        if all(d % vw == 0 for d in dims if d > 0):
            return vw
    return 1


def select_spmm_config(
    a: CSRMatrix, n: int, precision: Precision = "fp32"
) -> SpmmConfig:
    """The paper's SpMM heuristic: tile-N = min(64, next_pow2(N)), widest
    vector width that divides both the tile and N."""
    del a  # the published heuristic keys only on the problem's N dimension
    tile = min(MAX_TILE_X, next_power_of_two(n))
    vw = widest_vector_width(tile, n)
    return SpmmConfig(
        block_items_x=tile,
        block_items_k=32,
        vector_width=vw,
        precision=precision,
    )


def select_sddmm_config(k: int, precision: Precision = "fp32") -> SddmmConfig:
    """The paper's SDDMM heuristic: n-dimension tile 32, widest vectors."""
    return SddmmConfig(
        nonzeros_per_block=32,
        vector_width=widest_vector_width(k),
        precision=precision,
    )


def spmm_candidates(n: int, precision: Precision = "fp32") -> list[SpmmConfig]:
    """Menu of plausible SpMM variants for the oracle selector."""
    configs = []
    for tile in (8, 16, 32, 64):
        if tile > next_power_of_two(n) and tile > 8:
            continue
        for vw in (1, 2, 4):
            if tile % vw or (vw > 1 and n % vw):
                continue
            configs.append(
                SpmmConfig(
                    block_items_x=tile,
                    block_items_k=32,
                    vector_width=vw,
                    precision=precision,
                )
            )
    return configs


def oracle_spmm_config(
    a: CSRMatrix, n: int, device: DeviceSpec, precision: Precision = "fp32"
) -> SpmmConfig:
    """Pick the fastest SpMM config by costing every candidate (no numerics).

    This is the "oracle kernel selector" the MobileNet evaluation applies to
    the four 1x1 convolutions where the heuristic mispredicts.
    """
    from .spmm import build_launch

    best: tuple[float, SpmmConfig] | None = None
    for config in spmm_candidates(n, precision):
        runtime = execute(build_launch(a, n, config, device), device).runtime_s
        if best is None or runtime < best[0]:
            best = (runtime, config)
    if best is None:
        raise ValueError(f"no legal SpMM configuration for N={n}")
    return best[1]


def pad_batch_for_vectors(b: np.ndarray, multiple: int = 4) -> np.ndarray:
    """Zero-pad the dense operand's column count to a multiple (Sec. VII-A1).

    The paper pads ResNet-50 inference batches "to the nearest multiple of
    four to enable vector memory instructions".
    """
    b = np.asarray(b)
    n = b.shape[1]
    pad = (-n) % multiple
    if pad == 0:
        return b
    return np.pad(b, [(0, 0), (0, pad)])
