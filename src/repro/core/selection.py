"""Shared selection math: tile rounding, vector widths, batch padding.

The selection *policies* — the paper's Section VII heuristics, the oracle,
and the autotuner — live in :mod:`repro.tune`; this module keeps only the
arithmetic they (and the kernels) share, so ``core`` never depends on the
tuning layer.
"""

from __future__ import annotations

import numpy as np

#: Hard cap on the SpMM n-dimension tile size.
MAX_TILE_X = 64


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= n (n must be positive)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return 1 << (n - 1).bit_length()


def widest_vector_width(*dims: int) -> int:
    """Widest legal vector width (4, 2, or 1) dividing every given dim."""
    for vw in (4, 2):
        if all(d % vw == 0 for d in dims if d > 0):
            return vw
    return 1


def pad_batch_for_vectors(b: np.ndarray, multiple: int = 4) -> np.ndarray:
    """Zero-pad the dense operand's column count to a multiple (Sec. VII-A1).

    The paper pads ResNet-50 inference batches "to the nearest multiple of
    four to enable vector memory instructions".
    """
    b = np.asarray(b)
    n = b.shape[1]
    pad = (-n) % multiple
    if pad == 0:
        return b
    return np.pad(b, [(0, 0), (0, pad)])
