"""The CSC/column-major SpMM formulation (Section IV-C).

The paper notes that "computing SpMM as ``B A => C``, where ``A`` is the
sparse matrix stored in compressed sparse column format and ``B`` and ``C``
are stored column-major would be equally efficient". That equivalence is
structural: a CSC matrix's arrays *are* the CSR arrays of its transpose, and
a column-major dense matrix is the row-major layout of its transpose — so
``B A`` maps onto the CSR kernel computing ``A^T B^T = (B A)^T`` with
identical launch geometry, memory transactions, and instruction stream.
This module realizes the mapping (and the tests assert the cost parity).
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import DeviceSpec
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from .config import SpmmConfig
from .spmm import SpmmPlan, execute_spmm, plan_spmm
from .types import KernelResult


def csc_as_transposed_csr(a: CSCMatrix) -> CSRMatrix:
    """Reinterpret CSC arrays as the CSR representation of ``A^T`` (free)."""
    return CSRMatrix(
        shape=(a.shape[1], a.shape[0]),
        row_offsets=a.col_offsets,
        column_indices=a.row_indices,
        values=a.values,
    )


def plan_spmm_csc(
    a: CSCMatrix,
    n: int,
    device: DeviceSpec,
    config: SpmmConfig | None = None,
) -> SpmmPlan:
    """Plan ``C = B A`` for a ``(n, rows(A))`` left operand.

    The plan is the CSR plan of the transposed problem (Section IV-C):
    identical launch geometry, memory transactions, and instruction stream.
    """
    return plan_spmm(csc_as_transposed_csr(a), n, device, config)


def execute_spmm_csc(
    plan: SpmmPlan, b: np.ndarray, a: CSCMatrix
) -> KernelResult:
    """Run a planned CSC SpMM: numerics via the transposed CSR problem."""
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[1] != a.shape[0]:
        raise ValueError(
            f"B shape {b.shape} incompatible with A {a.shape} for B @ A"
        )
    a_t = csc_as_transposed_csr(a)
    # Column-major B is row-major B^T: zero-cost reinterpretation.
    b_t = np.ascontiguousarray(b.T)
    result = execute_spmm(plan, a_t, b_t)
    return KernelResult(
        output=np.ascontiguousarray(result.output.T),
        execution=result.execution,
    )


def spmm_csc(
    b: np.ndarray,
    a: CSCMatrix,
    device: DeviceSpec,
    config: SpmmConfig | None = None,
) -> KernelResult:
    """Compute ``C = B A`` with ``A`` sparse CSC and ``B``/``C`` column-major.

    ``b`` is given in its logical ``(n, rows(A))`` shape with column-major
    storage semantics; the result is the logical ``(n, cols(A))`` output.
    Internally this is one CSR SpMM on the transposed problem — the
    Section IV-C equivalence.
    """
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[1] != a.shape[0]:
        raise ValueError(
            f"B shape {b.shape} incompatible with A {a.shape} for B @ A"
        )
    return execute_spmm_csc(plan_spmm_csc(a, b.shape[0], device, config), b, a)
