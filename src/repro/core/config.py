"""Kernel configurations for the Sputnik-style SpMM and SDDMM kernels.

Every optimization from Sections V and VI is an independent toggle so the
Table II ablation can switch each one off in isolation:

- ``vector_width``     — vector memory instructions (Section V-B);
- ``roma``             — reverse-offset memory alignment (Section V-B2);
- ``load_balance``     — row-swizzle load balancing (Section V-C);
- ``residue_unroll``   — split/unrolled residue handling (Section V-D2);
- ``index_prescale``   — index pre-scaling into shared memory (V-D1);
- ``precision``        — fp32 or the mixed fp16/fp32 regime (V-D3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

import numpy as np

from ..gpu.memory import validate_vector_width

Precision = Literal["fp32", "mixed"]


def _validate_precision(precision: str) -> None:
    if precision not in ("fp32", "mixed"):
        raise ValueError(f"precision must be 'fp32' or 'mixed', got {precision!r}")


def value_dtype(precision: Precision) -> np.dtype:
    """Value dtype of the sparse operand under a precision regime."""
    _validate_precision(precision)
    return np.dtype(np.float16 if precision == "mixed" else np.float32)


@dataclass(frozen=True)
class SpmmConfig:
    """Compile-time template parameters + optimization toggles for SpMM.

    ``block_items_x`` is the 1-D output-tile width (``kBlockItemsX``),
    ``block_items_k`` the sparse values staged per main-loop iteration
    (``kBlockItemsK``), and ``warps_per_block`` the block's warp count;
    the rows-per-block (``kBlockItemsY``) follow from subwarp tiling — see
    :mod:`repro.core.tiling`.
    """

    block_items_x: int = 32
    block_items_k: int = 32
    warps_per_block: int = 4
    vector_width: int = 4
    roma: bool = True
    load_balance: bool = True
    residue_unroll: bool = True
    index_prescale: bool = True
    precision: Precision = "fp32"

    def __post_init__(self) -> None:
        validate_vector_width(self.vector_width)
        _validate_precision(self.precision)
        if self.block_items_x <= 0 or self.block_items_x % self.vector_width:
            raise ValueError(
                f"block_items_x={self.block_items_x} must be a positive "
                f"multiple of vector_width={self.vector_width}"
            )
        if self.block_items_k <= 0 or self.block_items_k % self.vector_width:
            raise ValueError("block_items_k must be a multiple of vector_width")
        if self.warps_per_block <= 0:
            raise ValueError("warps_per_block must be positive")
        if self.precision == "mixed" and self.index_prescale:
            # Section V-D3: 16-bit indices cannot hold pre-scaled offsets.
            object.__setattr__(self, "index_prescale", False)

    def without(self, optimization: str) -> "SpmmConfig":
        """Return a copy with one named optimization disabled (for ablation)."""
        if optimization == "vector":
            return replace(
                self,
                vector_width=1,
                block_items_x=self.block_items_x,
                block_items_k=self.block_items_k,
            )
        if optimization == "roma":
            return replace(self, roma=False)
        if optimization == "load_balance":
            return replace(self, load_balance=False)
        if optimization == "residue_unroll":
            return replace(self, residue_unroll=False)
        if optimization == "index_prescale":
            return replace(self, index_prescale=False)
        raise ValueError(f"unknown SpMM optimization {optimization!r}")

    @property
    def value_dtype(self) -> np.dtype:
        return value_dtype(self.precision)

    @property
    def element_bytes(self) -> int:
        return self.value_dtype.itemsize

    @property
    def index_bytes(self) -> int:
        return 2 if self.precision == "mixed" else 4


@dataclass(frozen=True)
class SddmmConfig:
    """Template parameters + toggles for the SDDMM kernel (Section VI).

    ``nonzeros_per_block`` is the 1-D strip of consecutive output nonzeros a
    thread block owns (the paper uses an n-dimension tile of 32). The scalar
    variant (``vector_width=1``) also uses a smaller strip, which raises the
    block count — the occupancy effect behind the ablation's finding that
    scalar SDDMM wins on small problems (Section VII-B).

    The paper's footnote 1 extensions are supported:

    - ``scale_by_values`` — the textbook SDDMM ``A B^T ∘ C`` (one extra load
      and multiply before the store);
    - ``transposed_rhs=False`` — the general ``A B ∘ I[C]`` with a
      non-transposed right operand, whose accesses are trivially coalesced
      and which drops the warp-shuffle reduction;
    - ``dynamic_parallelism`` — launch child grids per row instead of
      over-provisioning (the Section VI-A alternative for very high
      sparsity).
    """

    nonzeros_per_block: int = 32
    vector_width: int = 4
    load_balance: bool = True
    precision: Precision = "fp32"
    scale_by_values: bool = False
    transposed_rhs: bool = True
    dynamic_parallelism: bool = False

    def __post_init__(self) -> None:
        validate_vector_width(self.vector_width)
        _validate_precision(self.precision)
        if self.nonzeros_per_block <= 0 or self.nonzeros_per_block > 32:
            raise ValueError("nonzeros_per_block must be in 1..32")

    def without(self, optimization: str) -> "SddmmConfig":
        if optimization == "vector":
            return replace(self, vector_width=1, nonzeros_per_block=8)
        if optimization == "load_balance":
            return replace(self, load_balance=False)
        raise ValueError(f"unknown SDDMM optimization {optimization!r}")

    @property
    def value_dtype(self) -> np.dtype:
        return value_dtype(self.precision)
