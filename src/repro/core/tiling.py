"""Hierarchical 1-D tiling and subwarp tiling geometry (Sections V-A, V-B1).

The output matrix is statically sharded into 1-D tiles of
``block_items_x`` columns by one row. Subwarp tiling maps subsets of a warp
to independent tiles: a subwarp of ``subwarp_threads`` lanes owns one row's
tile, so a warp covers ``subwarps_per_warp`` rows and a thread block covers

    block_items_y = warps_per_block * subwarps_per_warp

rows. This module derives all of that geometry from a :class:`SpmmConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import SpmmConfig


@dataclass(frozen=True)
class SpmmTiling:
    """Concrete tiling geometry for one SpMM configuration.

    Attributes:
        block_items_x: output-tile width in elements (``kBlockItemsX``).
        block_items_k: sparse elements staged per main-loop step.
        subwarp_threads: lanes cooperating on one 1-D tile.
        subwarps_per_warp: independent row tiles per warp (``>1`` is
            subwarp tiling).
        warps_per_block: warps in the thread block.
        thread_items_x: output elements owned by each lane.
    """

    block_items_x: int
    block_items_k: int
    subwarp_threads: int
    subwarps_per_warp: int
    warps_per_block: int
    thread_items_x: int
    vector_width: int
    warp_size: int = 32

    @property
    def block_items_y(self) -> int:
        """Rows of the output matrix covered by one thread block."""
        return self.warps_per_block * self.subwarps_per_warp

    @property
    def threads_per_block(self) -> int:
        return self.warps_per_block * self.warp_size

    def grid(self, m: int, n: int) -> tuple[int, int]:
        """``(grid_x, grid_y)`` thread-block counts for an ``m x n`` output."""
        if m <= 0 or n <= 0:
            raise ValueError("output dimensions must be positive")
        gx = -(-n // self.block_items_x)
        gy = -(-m // self.block_items_y)
        return gx, gy


def derive_tiling(config: SpmmConfig, warp_size: int = 32) -> SpmmTiling:
    """Derive subwarp-tiling geometry from an SpMM configuration.

    The subwarp needs ``block_items_x / vector_width`` lanes to cover its
    tile with one vector access each; if that is fewer than a warp, multiple
    subwarps share the warp (Section V-B1). Tiles wider than a warp's vector
    footprint instead give each lane multiple vector elements.
    """
    lanes_needed = config.block_items_x // config.vector_width
    if lanes_needed >= warp_size:
        if lanes_needed % warp_size:
            raise ValueError(
                f"block_items_x={config.block_items_x} with vector width "
                f"{config.vector_width} does not pack into {warp_size}-lane warps"
            )
        subwarp_threads = warp_size
        subwarps = 1
    else:
        if warp_size % lanes_needed:
            raise ValueError(
                f"subwarp of {lanes_needed} lanes does not divide a warp"
            )
        subwarp_threads = lanes_needed
        subwarps = warp_size // lanes_needed
    thread_items = config.block_items_x // subwarp_threads
    return SpmmTiling(
        block_items_x=config.block_items_x,
        block_items_k=config.block_items_k,
        subwarp_threads=subwarp_threads,
        subwarps_per_warp=subwarps,
        warps_per_block=config.warps_per_block,
        thread_items_x=thread_items,
        vector_width=config.vector_width,
        warp_size=warp_size,
    )
