"""Perf-regression gate over the repo's committed BENCH_*.json headlines.

Every benchmark driver in ``benchmarks/`` writes a ``BENCH_<name>.json``
artifact; each has a handful of *headline* metrics (speedups, overhead
ratios, effective GFLOP/s) that summarize whether the performance story of
the paper reproduction still holds. This module turns those headlines into
a gate:

- :data:`METRICS` names each headline once — bench file, a ``/``-separated
  path into its JSON (numeric segments index lists, so keys containing
  dots like ``corpus_cov0.3`` stay addressable), direction
  (higher-is-better or lower-is-better), and a per-metric noise threshold;
- ``--ingest`` appends the current headline values as one JSON line to the
  history file (:data:`DEFAULT_HISTORY`, committed to the repo);
- ``--check`` compares the current values against the per-metric **median**
  of the history and exits nonzero when any metric moved past its noise
  threshold in the bad direction, or disappeared outright.

The median baseline makes the gate robust to a single noisy ingest; the
per-metric thresholds are all below 0.20 so a genuine 20% slowdown in any
headline is always flagged. ``--scale key=factor`` multiplies a current
value before comparison — the injection hook the tests and CI use to prove
the gate actually fires.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: Default history file, relative to the repo root (committed).
DEFAULT_HISTORY = "BASELINES.jsonl"

#: Noise threshold for metrics derived purely from the simulator's cost
#: model (bit-deterministic across machines).
SIM_NOISE = 0.05

#: Noise threshold for wall-clock-derived metrics (scheduler timings,
#: sweep throughput, tracer overhead ratios) — generous, but still below
#: the 0.20 slowdown the gate must always catch.
WALL_NOISE = 0.15


@dataclass(frozen=True)
class Metric:
    """One headline metric: where it lives and how to judge a delta."""

    key: str            #: stable identifier used in history lines and CLI
    file: str           #: BENCH artifact, relative to the repo root
    path: str           #: ``/``-separated path; numeric segments index lists
    higher_better: bool
    noise: float        #: relative change tolerated before flagging
    shift: float = 0.0  #: added to the raw value before comparison

    # ``shift`` exists for overhead-style measurements (traced/untraced-1)
    # that legitimately hover around zero and can even go negative on a
    # noisy run. A relative delta against a near-zero baseline is
    # meaningless, and a negative baseline inverts the direction of a
    # multiplicative injection. Shifting by 1.0 turns the overhead back
    # into the underlying runtime ratio, which is structurally positive
    # and compares stably.


METRICS: tuple[Metric, ...] = (
    Metric("sweep.scheduler_speedup", "BENCH_sweep.json",
           "scheduler/corpus_cov0.3/speedup", True, WALL_NOISE),
    Metric("sweep.swizzled_scheduler_speedup", "BENCH_sweep.json",
           "scheduler/swizzled_cov0.3/speedup", True, WALL_NOISE),
    Metric("sweep.warm_speedup", "BENCH_sweep.json",
           "sweep/speedup", True, WALL_NOISE),
    Metric("batched.attention_wall_speedup", "BENCH_batched.json",
           "attention/wall_speedup", True, WALL_NOISE),
    Metric("batched.attention_sim_speedup", "BENCH_batched.json",
           "attention/sim_speedup", True, SIM_NOISE),
    Metric("batched.amortization_ratio", "BENCH_batched.json",
           "attention/amortization_ratio", True, SIM_NOISE),
    Metric("batched.spmm_cost_sim_speedup", "BENCH_batched.json",
           "spmm_cost_path/sim_speedup", True, SIM_NOISE),
    Metric("autotune.geomean_speedup", "BENCH_autotune.json",
           "quality/geomean_speedup", True, SIM_NOISE),
    Metric("memory.effective_gflops", "BENCH_memory.json",
           "sweep/0/effective_gflops", True, WALL_NOISE),
    Metric("memory.accounting_ratio", "BENCH_memory.json",
           "overhead/overhead", False, WALL_NOISE, shift=1.0),
    Metric("multigpu.speedup_k4", "BENCH_multigpu.json",
           "corpus_scaling_nvlink/2/speedup_vs_k1", True, SIM_NOISE),
    Metric("multigpu.speedup_k8", "BENCH_multigpu.json",
           "corpus_scaling_nvlink/3/speedup_vs_k1", True, SIM_NOISE),
    Metric("obs.tracing_off_ratio", "BENCH_obs.json",
           "dispatch/tracing_off_overhead", False, WALL_NOISE, shift=1.0),
    Metric("obs.sweep_tracing_ratio", "BENCH_obs.json",
           "sweep/tracing_on_overhead", False, WALL_NOISE, shift=1.0),
    Metric("dynamic.repair_speedup", "BENCH_dynamic.json",
           "steady_state/headline/repair_speedup", True, WALL_NOISE),
    Metric("dynamic.repair_step_ms", "BENCH_dynamic.json",
           "steady_state/headline/repair_step_ms", False, WALL_NOISE),
)

_BY_KEY = {metric.key: metric for metric in METRICS}


def resolve_path(data: Any, path: str) -> float | None:
    """Follow a ``/``-separated path; ``None`` when any hop is missing."""
    current = data
    for part in path.split("/"):
        try:
            if isinstance(current, list):
                current = current[int(part)]
            elif isinstance(current, dict):
                current = current[part]
            else:
                return None
        except (KeyError, IndexError, ValueError):
            return None
    if isinstance(current, bool) or not isinstance(current, (int, float)):
        return None
    return float(current)


def read_current(root: str | Path = ".") -> dict[str, float | None]:
    """Current headline values from the BENCH artifacts under ``root``.

    Missing files and missing paths both yield ``None`` — the comparison
    layer decides whether that is fatal (it is, when the history has a
    baseline for the metric).
    """
    root = Path(root)
    cache: dict[str, Any] = {}
    values: dict[str, float | None] = {}
    for metric in METRICS:
        if metric.file not in cache:
            try:
                cache[metric.file] = json.loads(
                    (root / metric.file).read_text()
                )
            except (OSError, json.JSONDecodeError):
                cache[metric.file] = None
        data = cache[metric.file]
        raw = None if data is None else resolve_path(data, metric.path)
        values[metric.key] = None if raw is None else raw + metric.shift
    return values


# ----------------------------------------------------------------------
# History
# ----------------------------------------------------------------------
def read_history(path: str | Path) -> list[dict[str, Any]]:
    """History lines (oldest first). Unreadable file → empty history."""
    entries: list[dict[str, Any]] = []
    try:
        text = Path(path).read_text()
    except OSError:
        return entries
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and isinstance(entry.get("metrics"), dict):
            entries.append(entry)
    return entries


def append_history(
    path: str | Path,
    values: dict[str, float | None],
    note: str = "",
) -> dict[str, Any]:
    """Append one ingest line (only metrics that resolved) and return it."""
    entry: dict[str, Any] = {
        "metrics": {k: v for k, v in values.items() if v is not None},
    }
    if note:
        entry["note"] = note
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def baseline_from_history(
    history: list[dict[str, Any]]
) -> dict[str, float]:
    """Per-metric median across all history lines that carry the metric."""
    series: dict[str, list[float]] = {}
    for entry in history:
        for key, value in entry["metrics"].items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                series.setdefault(key, []).append(float(value))
    return {key: statistics.median(vals) for key, vals in series.items()}


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def compare(
    current: dict[str, float | None],
    baseline: dict[str, float],
) -> list[dict[str, Any]]:
    """Judge every known metric: ``ok`` / ``regression`` / ``missing`` /
    ``new`` rows, with relative deltas where both sides exist.

    ``regression`` = moved past the metric's noise threshold in the bad
    direction; ``missing`` = the history has a baseline but the current
    artifacts no longer produce the metric (also fatal — silently dropping
    a headline is how regressions hide).
    """
    rows: list[dict[str, Any]] = []
    for metric in METRICS:
        base = baseline.get(metric.key)
        now = current.get(metric.key)
        row: dict[str, Any] = {
            "key": metric.key,
            "baseline": base,
            "current": now,
            "delta": None,
            "noise": metric.noise,
            "higher_better": metric.higher_better,
        }
        if base is None:
            row["status"] = "new" if now is not None else "ok"
        elif now is None:
            row["status"] = "missing"
        else:
            if base == 0:
                delta = 0.0 if now == 0 else float("inf")
            else:
                delta = (now - base) / abs(base)
            row["delta"] = delta
            bad = -delta if metric.higher_better else delta
            row["status"] = "regression" if bad > metric.noise else "ok"
        rows.append(row)
    return rows


def format_rows(rows: list[dict[str, Any]]) -> str:
    lines = [
        f"{'metric':38s} {'baseline':>12s} {'current':>12s} "
        f"{'delta':>8s}  status"
    ]
    for row in rows:
        base = "-" if row["baseline"] is None else f"{row['baseline']:.4g}"
        now = "-" if row["current"] is None else f"{row['current']:.4g}"
        delta = "-" if row["delta"] is None else f"{row['delta']:+.1%}"
        lines.append(
            f"{row['key']:38s} {base:>12s} {now:>12s} {delta:>8s}  "
            f"{row['status']}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _parse_scale(raw: list[str]) -> dict[str, float]:
    scales: dict[str, float] = {}
    for item in raw:
        key, eq, factor = item.partition("=")
        if not eq or key not in _BY_KEY:
            raise SystemExit(
                f"error: --scale wants <metric-key>=<factor>; unknown "
                f"metric {key!r} (see --list)"
            )
        try:
            scales[key] = float(factor)
        except ValueError:
            raise SystemExit(f"error: bad --scale factor {factor!r}")
    return scales


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description=(
            "Perf-regression gate: compare BENCH_*.json headline metrics "
            "against the committed baseline history."
        ),
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check", action="store_true",
        help="compare current artifacts vs history; exit 1 on regression",
    )
    mode.add_argument(
        "--ingest", action="store_true",
        help="append current headline values to the history file",
    )
    mode.add_argument(
        "--list", action="store_true", dest="list_metrics",
        help="print the metric registry and current values",
    )
    parser.add_argument(
        "--root", default=".", help="repo root holding the BENCH artifacts"
    )
    parser.add_argument(
        "--history", default=None,
        help=f"history file (default <root>/{DEFAULT_HISTORY})",
    )
    parser.add_argument(
        "--note", default="", help="annotation stored with --ingest"
    )
    parser.add_argument(
        "--scale", action="append", default=[], metavar="KEY=FACTOR",
        help=(
            "multiply a current metric value before comparison "
            "(repeatable; injection hook for testing the gate)"
        ),
    )
    args = parser.parse_args(argv)

    root = Path(args.root)
    history_path = (
        Path(args.history) if args.history else root / DEFAULT_HISTORY
    )
    current = read_current(root)
    for key, factor in _parse_scale(args.scale).items():
        if current.get(key) is not None:
            current[key] = current[key] * factor

    if args.list_metrics:
        for metric in METRICS:
            value = current.get(metric.key)
            shown = "-" if value is None else f"{value:.6g}"
            direction = "higher" if metric.higher_better else "lower"
            print(
                f"{metric.key:38s} {shown:>12s}  "
                f"[{direction}-better, noise {metric.noise:.0%}] "
                f"{metric.file}:{metric.path}"
            )
        return 0

    if args.ingest:
        entry = append_history(history_path, current, note=args.note)
        print(
            f"ingested {len(entry['metrics'])}/{len(METRICS)} metrics "
            f"-> {history_path}"
        )
        missing = [k for k, v in current.items() if v is None]
        for key in missing:
            print(f"  (unresolved: {key})", file=sys.stderr)
        return 0

    history = read_history(history_path)
    if not history:
        print(
            f"error: no usable history at {history_path}; run --ingest "
            f"first",
            file=sys.stderr,
        )
        return 2
    rows = compare(current, baseline_from_history(history))
    print(f"baseline: median of {len(history)} history line(s)")
    print(format_rows(rows))
    bad = [r for r in rows if r["status"] in ("regression", "missing")]
    if bad:
        print(
            f"FAIL: {len(bad)} metric(s) regressed or went missing",
            file=sys.stderr,
        )
        return 1
    print("OK: all headline metrics within noise thresholds")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
