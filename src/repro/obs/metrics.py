"""Label-aware metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the unified read surface for everything the
system counts. Two feeding modes:

- **push** — instrumented code holds a metric child
  (``registry.counter("x", labelnames=("op",)).labels("spmm").inc()``);
- **pull (collectors)** — existing counter stores register a collector
  callback sampled at snapshot time. This is how the registry *absorbs*
  the dispatch layer's :class:`~repro.ops.context.Telemetry` without
  adding a single instruction to the hot dispatch path: the per-(op,
  backend) ``OpStats`` remain the write store (the compatibility shim —
  ``telemetry_snapshot()`` keeps working unchanged), and the registry
  re-labels them as metric samples on read.

:func:`bind_context_metrics` wires one
:class:`~repro.ops.context.ExecutionContext` into a registry: telemetry
counters, plan-store counters, plan-cache gauges, and a pushed histogram
of simulated launch runtimes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

#: Default fixed buckets (seconds) for simulated launch runtimes: sparse
#: kernels on the modelled V100 land between ~2us (launch overhead) and
#: ~100ms (huge dense fallbacks).
SIM_SECONDS_BUCKETS = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1,
)

#: A pull-mode sample: (metric name, label dict, value).
Sample = tuple[str, dict[str, str], float]


def _label_key(labelnames: tuple[str, ...], values: tuple[str, ...]) -> str:
    """Stable string form of one label set, e.g. ``op=spmm,backend=sputnik``."""
    return ",".join(f"{n}={v}" for n, v in zip(labelnames, values))


class _Metric:
    """Shared labels/children machinery for every metric type."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, *values, **kv):
        """The child metric for one label-value combination (cached)."""
        if kv:
            if values:
                raise ValueError("pass label values positionally or by name")
            values = tuple(str(kv[n]) for n in self.labelnames)
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {values}"
            )
        child = self._children.get(values)
        if child is None:
            child = self._make_child()
            self._children[values] = child
        return child

    def _default_child(self):
        """The single child of an unlabeled metric."""
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labeled {self.labelnames}; use .labels()"
            )
        return self.labels()

    def _make_child(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def reset(self) -> None:
        self._children.clear()

    def samples(self) -> dict[str, Any]:
        return {
            _label_key(self.labelnames, values): child.sample()
            for values, child in sorted(self._children.items())
        }


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def sample(self) -> float:
        return self.value


class Counter(_Metric):
    """Monotonic count (launches, cache hits, retries...)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return sum(c.value for c in self._children.values())


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def sample(self) -> float:
        return self.value


class Gauge(_Metric):
    """Point-in-time value (plan-cache entries, live bytes...)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    @property
    def value(self) -> float:
        return sum(c.value for c in self._children.values())


class _HistogramChild:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        # One count per finite bucket plus the +inf overflow bucket.
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def sample(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class Histogram(_Metric):
    """Fixed-bucket distribution (simulated launch seconds...).

    ``buckets`` are inclusive upper bounds in ascending order; an implicit
    ``+inf`` bucket catches the overflow. Buckets are fixed at declaration
    so histograms from different contexts/workers merge by addition.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] = SIM_SECONDS_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        buckets = tuple(float(b) for b in buckets)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be ascending and non-empty")
        self.buckets = buckets

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)


class MetricsRegistry:
    """Named metrics plus pull-mode collectors; snapshot() reads both."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Callable[[], Iterable[Sample]]] = []

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        metric = self._metrics.get(name)
        if metric is not None:
            if type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric
        metric = cls(name, help, tuple(labelnames), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: tuple[float, ...] = SIM_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def register_collector(
        self, collector: Callable[[], Iterable[Sample]]
    ) -> None:
        """Add a pull-mode source sampled by every :meth:`snapshot`."""
        self._collectors.append(collector)

    def reset(self) -> None:
        """Zero every pushed metric (collectors reflect external state and
        are reset at their source)."""
        for metric in self._metrics.values():
            metric.reset()

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Plain-dict view of every metric: pushed children plus collector
        samples, keyed ``name -> {type, help, samples}``."""
        out: dict[str, dict[str, Any]] = {}
        for name, metric in sorted(self._metrics.items()):
            out[name] = {
                "type": metric.kind,
                "help": metric.help,
                "samples": metric.samples(),
            }
        for collector in self._collectors:
            for name, labels, value in collector():
                entry = out.setdefault(
                    name, {"type": "counter", "help": "", "samples": {}}
                )
                key = ",".join(f"{k}={v}" for k, v in labels.items())
                entry["samples"][key] = value
        return out


# ----------------------------------------------------------------------
# Execution-context binding (the Telemetry compatibility shim)
# ----------------------------------------------------------------------
def bind_telemetry(
    registry: MetricsRegistry,
    telemetry,
    prefix: str = "op",
    extra_labels: dict[str, str] | None = None,
) -> MetricsRegistry:
    """Expose a Telemetry's per-(op, backend) counters as labeled samples.

    Pull-mode: the live ``OpStats`` stay the write store (zero hot-path
    cost) and every ``snapshot()`` re-labels them as ``{prefix}_<counter>``
    samples with ``op=...,backend=...`` labels. Config-selection rows
    (``*_config`` ops, whose backend field carries the selector name) get
    an explicit ``selector`` label on top, so scrape queries can slice
    tuning traffic without knowing that encoding. ``extra_labels`` (e.g.
    ``{"device_id": "2"}`` for a :class:`~repro.dist.DeviceGroup` member)
    are appended to every sample, keeping multi-context registries
    collision-free.
    """
    extra = dict(extra_labels or {})

    def collect() -> Iterable[Sample]:
        for (op, backend), stats in sorted(telemetry.stats.items()):
            labels = {"op": op, "backend": backend}
            if op.endswith("_config"):
                labels["selector"] = backend
            labels.update(extra)
            for key, value in stats.as_dict().items():
                yield (f"{prefix}_{key}", labels, value)

    registry.register_collector(collect)
    return registry


class _HistogramView:
    """A histogram handle with trailing label values pinned (e.g. the
    ``device_id`` of a group member): ``labels(op, backend)`` resolves the
    child for ``(op, backend, *pinned)`` on the underlying histogram, so
    ``Telemetry.record_launch`` needs no label plumbing of its own."""

    __slots__ = ("_histogram", "_pinned")

    def __init__(self, histogram, pinned: tuple[str, ...]) -> None:
        self._histogram = histogram
        self._pinned = tuple(pinned)

    def labels(self, *values):
        return self._histogram.labels(*values, *self._pinned)


def bind_context_metrics(registry: MetricsRegistry, ctx) -> MetricsRegistry:
    """Wire one ExecutionContext into a registry.

    - telemetry counters (pull, via :func:`bind_telemetry`);
    - plan-cache occupancy gauges and plan-store counters (pull);
    - device-allocator gauges (allocated/reserved/cached/peak bytes,
      fragmentation) and OOM/eviction counters when the context accounts
      HBM capacity;
    - a pushed ``sim_launch_seconds`` histogram fed by
      ``Telemetry.record_launch`` from now on.

    A context with a ``device_id`` (a :class:`~repro.dist.DeviceGroup`
    member) stamps ``device_id`` onto every sample — including the
    histogram, which is then declared with ``(op, backend, device_id)``
    label names — so K contexts bound into one registry stay disjoint.
    """
    extra: dict[str, str] = {}
    if getattr(ctx, "device_id", None) is not None:
        extra["device_id"] = str(ctx.device_id)
    bind_telemetry(registry, ctx.telemetry, extra_labels=extra or None)

    def collect_context() -> Iterable[Sample]:
        device = {"device": ctx.device.name, **extra}
        yield ("plan_cache_entries", device, float(len(ctx.plans)))
        if ctx.store is not None:
            for key, value in ctx.store.stats.as_dict().items():
                yield (f"plan_store_{key}", device, float(value))
        memory = getattr(ctx, "memory", None)
        if memory is not None:
            yield ("hbm_capacity_bytes", device, float(memory.capacity))
            yield (
                "hbm_allocated_bytes", device, float(memory.allocated_bytes)
            )
            yield ("hbm_reserved_bytes", device, float(memory.reserved_bytes))
            yield ("hbm_cached_bytes", device, float(memory.cached_bytes))
            yield (
                "hbm_peak_allocated_bytes",
                device,
                float(memory.peak_allocated_bytes),
            )
            yield (
                "hbm_peak_reserved_bytes",
                device,
                float(memory.peak_reserved_bytes),
            )
            yield (
                "hbm_fragmentation_ratio", device, float(memory.fragmentation)
            )
            yield ("hbm_oom_total", device, float(memory.oom_count))
            yield ("hbm_flushes_total", device, float(memory.flush_count))
            telemetry = ctx.telemetry
            yield (
                "hbm_plan_evictions_total",
                device,
                float(telemetry.plan_evictions),
            )
            yield (
                "hbm_tensor_evictions_total",
                device,
                float(getattr(ctx, "tensor_evictions", 0)),
            )
            yield (
                "hbm_bytes_evicted_total",
                device,
                float(telemetry.bytes_evicted),
            )
            yield (
                "hbm_bytes_reuploaded_total",
                device,
                float(getattr(ctx, "bytes_reuploaded", 0)),
            )

    registry.register_collector(collect_context)
    labelnames = ("op", "backend") + (("device_id",) if extra else ())
    histogram = registry.histogram(
        "sim_launch_seconds",
        "Simulated runtime of dispatched launches",
        labelnames=labelnames,
    )
    if extra:
        ctx.telemetry.attach_histogram(
            _HistogramView(histogram, (extra["device_id"],))
        )
    else:
        ctx.telemetry.attach_histogram(histogram)
    return registry


def bind_group_metrics(registry: MetricsRegistry, group) -> MetricsRegistry:
    """Wire every device context of a :class:`~repro.dist.DeviceGroup`
    into one registry.

    Each member context binds through :func:`bind_context_metrics`, so all
    of its samples (telemetry counters, HBM gauges, the launch histogram)
    carry its ``device_id`` label; a group-level collector adds the device
    count labeled by interconnect kind. One scrape of the returned registry
    is the whole group.
    """
    for ctx in group.contexts:
        bind_context_metrics(registry, ctx)

    def collect_group() -> Iterable[Sample]:
        yield (
            "group_devices",
            {"interconnect": group.interconnect.kind},
            float(group.k),
        )

    registry.register_collector(collect_group)
    return registry
