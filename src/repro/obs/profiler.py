"""Kernel-phase profiling: per-launch attribution and roofline points.

The executor attaches a :class:`~repro.gpu.executor.PhaseTimes` breakdown
to every :class:`~repro.gpu.executor.ExecutionResult` (compute / L1 / L2 /
DRAM / scheduler-imbalance idle / launch overhead — Section V's analysis
quantities). A :class:`PhaseProfiler` hooks the executor's completion
observers to collect those breakdowns across every simulated launch in a
region::

    with PhaseProfiler() as prof:
        ops.spmm(a, b, V100)
        ops.sddmm(x, y, mask, V100)
    print(prof.summary())
    points = prof.roofline(V100)

Each launch also yields a roofline point (operational intensity vs.
achieved FLOP/s against the device's memory and compute roofs), the
nvprof-style evidence the paper's Figure 2/7 analysis is built on. When a
:class:`~repro.obs.tracing.Tracer` is attached, every launch is appended
to the trace stream as a ``launch`` record, so
``python -m repro.obs.report trace.jsonl`` can rebuild the phase tables
offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.device import DeviceSpec
from ..gpu.executor import (
    ExecutionResult,
    KernelLaunch,
    PhaseTimes,
    register_completion_observer,
    unregister_completion_observer,
)


@dataclass
class LaunchRecord:
    """One simulated kernel launch, as the profiler saw it."""

    name: str
    device: str
    runtime_s: float
    flops: float
    dram_bytes: float
    l2_bytes: float
    n_blocks: int
    phases: dict[str, float]
    imbalance: float

    @property
    def intensity(self) -> float:
        """Operational intensity in FLOPs per DRAM byte (inf if no DRAM)."""
        if self.dram_bytes <= 0:
            return float("inf")
        return self.flops / self.dram_bytes

    @property
    def achieved_flops(self) -> float:
        return self.flops / self.runtime_s if self.runtime_s > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "device": self.device,
            "runtime_s": self.runtime_s,
            "flops": self.flops,
            "dram_bytes": self.dram_bytes,
            "l2_bytes": self.l2_bytes,
            "n_blocks": self.n_blocks,
            "phases": dict(self.phases),
            "imbalance": self.imbalance,
        }


@dataclass
class KernelStats:
    """Aggregated phase attribution for one kernel name."""

    launches: int = 0
    runtime_s: float = 0.0
    flops: float = 0.0
    dram_bytes: float = 0.0
    phases: PhaseTimes = field(default_factory=PhaseTimes)

    def absorb(self, record: LaunchRecord) -> None:
        self.launches += 1
        self.runtime_s += record.runtime_s
        self.flops += record.flops
        self.dram_bytes += record.dram_bytes
        self.phases = self.phases + PhaseTimes(
            compute_s=record.phases["compute"],
            l1_s=record.phases["l1"],
            l2_s=record.phases["l2"],
            dram_s=record.phases["dram"],
            imbalance_s=record.phases["imbalance"],
            overhead_s=record.phases["overhead"],
        )


class PhaseProfiler:
    """Collects per-launch phase attributions via the executor hooks.

    Use as a context manager (registration is scoped and exception-safe) or
    via explicit :meth:`start` / :meth:`stop`. ``tracer`` (optional) gets a
    ``launch`` record per simulated launch; ``device`` (optional) filters
    collection to launches costed on that device.
    """

    def __init__(self, tracer=None, device: DeviceSpec | None = None) -> None:
        self.tracer = tracer
        self.device = device
        self.records: list[LaunchRecord] = []
        self._active = False

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "PhaseProfiler":
        if not self._active:
            register_completion_observer(self._on_complete)
            self._active = True
        return self

    def stop(self) -> "PhaseProfiler":
        if self._active:
            unregister_completion_observer(self._on_complete)
            self._active = False
        return self

    def __enter__(self) -> "PhaseProfiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- collection ------------------------------------------------------
    def _on_complete(
        self, launch: KernelLaunch, device: DeviceSpec, result: ExecutionResult
    ) -> None:
        if self.device is not None and device != self.device:
            return
        phases = result.phases or PhaseTimes(overhead_s=result.runtime_s)
        record = LaunchRecord(
            name=result.name,
            device=device.name,
            runtime_s=result.runtime_s,
            flops=result.flops,
            dram_bytes=result.dram_bytes,
            l2_bytes=result.l2_bytes,
            n_blocks=result.n_blocks,
            phases=phases.as_dict(),
            imbalance=(
                result.schedule.imbalance if result.schedule is not None else 1.0
            ),
        )
        self.records.append(record)
        if self.tracer is not None:
            self.tracer.add_launch(record.as_dict())

    # -- analysis --------------------------------------------------------
    def by_kernel(self) -> dict[str, KernelStats]:
        out: dict[str, KernelStats] = {}
        for record in self.records:
            out.setdefault(record.name, KernelStats()).absorb(record)
        return out

    def roofline(self, device: DeviceSpec) -> list[dict]:
        """One roofline point per kernel name (aggregated over launches)."""
        points = []
        for name, stats in sorted(self.by_kernel().items()):
            if stats.runtime_s <= 0:
                continue
            achieved = stats.flops / stats.runtime_s
            if stats.dram_bytes > 0:
                intensity = stats.flops / stats.dram_bytes
                memory_roof = intensity * device.effective_dram_bandwidth
            else:
                intensity = float("inf")
                memory_roof = device.fp32_peak_flops
            roof = min(device.fp32_peak_flops, memory_roof)
            points.append(
                {
                    "kernel": name,
                    "intensity_flops_per_byte": intensity,
                    "achieved_flops": achieved,
                    "roof_flops": roof,
                    "bound": (
                        "memory"
                        if memory_roof < device.fp32_peak_flops
                        else "compute"
                    ),
                    "roof_fraction": achieved / roof if roof > 0 else 0.0,
                }
            )
        return points

    def report(self, device: DeviceSpec | None = None) -> dict:
        """Machine-readable profile: per-kernel phase totals + rooflines."""
        kernels = {}
        for name, stats in sorted(self.by_kernel().items()):
            phase_dict = stats.phases.as_dict()
            kernels[name] = {
                "launches": stats.launches,
                "runtime_s": stats.runtime_s,
                "flops": stats.flops,
                "dram_bytes": stats.dram_bytes,
                "phases_s": phase_dict,
                "phase_fractions": {
                    k: (v / stats.runtime_s if stats.runtime_s > 0 else 0.0)
                    for k, v in phase_dict.items()
                },
            }
        out = {"launches": len(self.records), "kernels": kernels}
        if device is not None:
            out["roofline"] = self.roofline(device)
        return out

    def summary(self) -> str:
        """Text table: one line per kernel with its phase split."""
        lines = [
            f"{'kernel':28s} {'launches':>8s} {'sim time':>10s} "
            f"{'compute':>8s} {'l1':>6s} {'l2':>6s} {'dram':>6s} "
            f"{'imbal':>6s} {'ovh':>6s}"
        ]
        for name, stats in sorted(self.by_kernel().items()):
            total = stats.runtime_s or 1.0
            p = stats.phases
            lines.append(
                f"{name[:28]:28s} {stats.launches:8d} "
                f"{stats.runtime_s * 1e6:9.1f}u "
                f"{p.compute_s / total:7.1%} {p.l1_s / total:5.1%} "
                f"{p.l2_s / total:5.1%} {p.dram_s / total:5.1%} "
                f"{p.imbalance_s / total:5.1%} {p.overhead_s / total:5.1%}"
            )
        return "\n".join(lines)
