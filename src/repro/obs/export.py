"""Metrics exposition: Prometheus text format + JSON snapshots.

``python -m repro.obs.export`` turns a
:class:`~repro.obs.metrics.MetricsRegistry` snapshot into something a
monitoring stack can actually consume:

- :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP``/``# TYPE`` headers, counters suffixed
  ``_total``, histograms expanded into *cumulative* ``_bucket`` series
  with the mandatory ``le="+Inf"`` bucket plus ``_sum``/``_count``;
- :func:`render_json` — the raw snapshot as pretty JSON, for scripting;
- :func:`validate_prometheus_text` — a line-level parser/validator used by
  the tests and the CLI's ``--check`` flag, so "parses as Prometheus text
  format" is an asserted property instead of a hope.

Label values flow straight from the registry's ``k=v,k=v`` sample keys, so
everything :func:`~repro.obs.metrics.bind_context_metrics` and
:func:`~repro.obs.metrics.bind_group_metrics` stamp on — ``op``,
``backend``, ``selector``, ``device``, ``device_id`` — comes out as proper
Prometheus labels.

Snapshot sources for the CLI: a saved snapshot JSON file, or ``--demo``
(the default when no file is given), which runs a small deterministic
workload and scrapes its context registry.
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys
from typing import Any

#: Collector-fed samples arrive untyped (the registry defaults them to
#: ``counter``). Names matching these rules are re-typed as gauges for
#: exposition: point-in-time quantities whose value can go down.
_GAUGE_NAME_HINTS = (
    "_bytes", "_ratio", "_entries", "_fraction", "capacity", "group_devices",
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s+(\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def prometheus_name(name: str) -> str:
    """Sanitize a metric name to the Prometheus grammar."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", str(name))
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def parse_label_key(key: str) -> dict[str, str]:
    """Parse a registry sample key (``op=spmm,backend=sputnik``) to a dict.

    Splits on the first ``=`` of each comma-separated part; a malformed
    part becomes a ``label_<i>`` entry rather than being dropped.
    """
    labels: dict[str, str] = {}
    if not key:
        return labels
    for i, part in enumerate(key.split(",")):
        name, eq, value = part.partition("=")
        if eq and _NAME_RE.match(name.strip()):
            labels[name.strip()] = value
        else:
            labels[f"label_{i}"] = part
    return labels


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{prometheus_name(k)}="{_escape_label(v)}"'
        for k, v in labels.items()
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _exposition_kind(name: str, kind: str) -> str:
    """The exposition type for one snapshot entry (gauge-hint re-typing)."""
    if kind in ("gauge", "histogram"):
        return kind
    if kind == "counter":
        if name.endswith("_total") or name.endswith("_count"):
            return "counter"
        if any(hint in name for hint in _GAUGE_NAME_HINTS):
            return "gauge"
        return "counter"
    return "untyped"


def render_prometheus(snapshot: dict[str, dict[str, Any]]) -> str:
    """Render a registry snapshot as Prometheus text exposition format.

    ``snapshot`` is :meth:`repro.obs.metrics.MetricsRegistry.snapshot`
    output: ``name -> {type, help, samples}`` with histogram samples as
    ``{buckets, counts, sum, count}`` dicts (per-bucket counts, which are
    accumulated here — Prometheus buckets are cumulative and always end at
    ``le="+Inf"``).
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = _exposition_kind(name, str(entry.get("type", "untyped")))
        base = prometheus_name(name)
        if kind == "counter" and not base.endswith("_total"):
            base = base + "_total"
        help_text = str(entry.get("help", "") or "").replace("\n", " ")
        if help_text:
            lines.append(f"# HELP {base} {help_text}")
        lines.append(f"# TYPE {base} {kind}")
        for key in sorted(entry.get("samples", {})):
            value = entry["samples"][key]
            labels = parse_label_key(key)
            if kind == "histogram" and isinstance(value, dict):
                cumulative = 0
                for upper, count in zip(value["buckets"], value["counts"]):
                    cumulative += count
                    bucket_labels = dict(labels, le=_format_value(upper))
                    lines.append(
                        f"{base}_bucket{_format_labels(bucket_labels)} "
                        f"{_format_value(cumulative)}"
                    )
                inf_labels = dict(labels, le="+Inf")
                lines.append(
                    f"{base}_bucket{_format_labels(inf_labels)} "
                    f"{_format_value(value['count'])}"
                )
                lines.append(
                    f"{base}_sum{_format_labels(labels)} "
                    f"{_format_value(value['sum'])}"
                )
                lines.append(
                    f"{base}_count{_format_labels(labels)} "
                    f"{_format_value(value['count'])}"
                )
            else:
                lines.append(
                    f"{base}{_format_labels(labels)} "
                    f"{_format_value(float(value))}"
                )
    return "\n".join(lines) + "\n"


def render_json(snapshot: dict[str, dict[str, Any]]) -> str:
    """The snapshot as pretty-printed JSON (stable key order)."""
    return json.dumps(snapshot, indent=2, sort_keys=True, default=str)


def _parse_value(raw: str) -> float | None:
    if raw in ("+Inf", "Inf"):
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        return None


def validate_prometheus_text(text: str) -> list[str]:
    """Check text against the Prometheus exposition grammar; returns
    problems (empty = valid).

    Validates line structure (``# HELP``/``# TYPE`` comments, samples as
    ``name{labels} value``), label syntax, numeric values, and the
    histogram contract: every ``<name>_bucket`` series has an
    ``le="+Inf"`` bucket whose count equals ``<name>_count``, bucket
    counts are non-decreasing in ``le``, and ``_sum``/``_count`` exist.
    """
    problems: list[str] = []
    typed: dict[str, str] = {}
    # histogram name -> labelkey(without le) -> list[(le, count)]
    buckets: dict[str, dict[str, list[tuple[float, float]]]] = {}
    counts: dict[str, dict[str, float]] = {}
    sums: dict[str, set[str]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {lineno}: malformed comment {line!r}")
                continue
            if parts[1] == "TYPE":
                if parts[2] != prometheus_name(parts[2]):
                    problems.append(
                        f"line {lineno}: invalid metric name {parts[2]!r}"
                    )
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    problems.append(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                typed[parts[2]] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name, labelblob, raw_value = match.groups()
        value = _parse_value(raw_value)
        if value is None:
            problems.append(
                f"line {lineno}: non-numeric value {raw_value!r}"
            )
            continue
        labels: dict[str, str] = {}
        if labelblob:
            inner = labelblob[1:-1].rstrip(",")
            if inner:
                matched = _LABEL_RE.findall(inner)
                rebuilt = ",".join(f'{k}="{v}"' for k, v in matched)
                if rebuilt != inner:
                    problems.append(
                        f"line {lineno}: malformed labels {labelblob!r}"
                    )
                    continue
                labels = dict(matched)
        base, _, suffix = name.rpartition("_")
        if suffix == "bucket" and typed.get(base) == "histogram":
            if "le" not in labels:
                problems.append(
                    f"line {lineno}: histogram bucket without le label"
                )
                continue
            le = _parse_value(labels["le"])
            if le is None:
                problems.append(
                    f"line {lineno}: invalid le value {labels['le']!r}"
                )
                continue
            rest = ",".join(
                f"{k}={v}" for k, v in sorted(labels.items()) if k != "le"
            )
            buckets.setdefault(base, {}).setdefault(rest, []).append(
                (le, value)
            )
        elif suffix == "count" and typed.get(base) == "histogram":
            rest = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            counts.setdefault(base, {})[rest] = value
        elif suffix == "sum" and typed.get(base) == "histogram":
            sums.setdefault(base, set()).add(
                ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            )

    for base, series in buckets.items():
        for labelkey, pairs in series.items():
            pairs.sort(key=lambda p: p[0])
            if not pairs or not math.isinf(pairs[-1][0]):
                problems.append(
                    f"histogram {base}{{{labelkey}}}: no +Inf bucket"
                )
                continue
            values = [count for _, count in pairs]
            if values != sorted(values):
                problems.append(
                    f"histogram {base}{{{labelkey}}}: bucket counts decrease"
                )
            total = counts.get(base, {}).get(labelkey)
            if total is None:
                problems.append(
                    f"histogram {base}{{{labelkey}}}: missing _count"
                )
            elif total != pairs[-1][1]:
                problems.append(
                    f"histogram {base}{{{labelkey}}}: +Inf bucket "
                    f"{pairs[-1][1]} != _count {total}"
                )
            if labelkey not in sums.get(base, set()):
                problems.append(
                    f"histogram {base}{{{labelkey}}}: missing _sum"
                )
    return problems


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _demo_snapshot() -> dict[str, dict[str, Any]]:
    """Scrape a small deterministic workload (the CLI's default source)."""
    import numpy as np

    from .. import ops
    from ..datasets.spec import MatrixSpec

    from .metrics import MetricsRegistry, bind_context_metrics

    ctx = ops.ExecutionContext()
    registry = bind_context_metrics(MetricsRegistry(), ctx)
    for name, rows, cols, sparsity in (
        ("demo_a", 256, 256, 0.9),
        ("demo_b", 384, 128, 0.8),
    ):
        spec = MatrixSpec(name, "demo", "l0", rows, cols, sparsity, 0.3, seed=7)
        a = spec.materialize()
        dense = np.ones((a.shape[1], 32), dtype=np.float32)
        ops.spmm(a, dense, context=ctx)
        ops.spmm(a, dense, context=ctx)  # warm hit for cache counters
    return registry.snapshot()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description=(
            "Export a MetricsRegistry snapshot as Prometheus text "
            "exposition format (default) or JSON."
        ),
    )
    parser.add_argument(
        "snapshot",
        nargs="?",
        help=(
            "snapshot JSON file (MetricsRegistry.snapshot() output); "
            "omitted = run the built-in demo workload and scrape it"
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the JSON snapshot instead"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the Prometheus output; nonzero exit on problems",
    )
    parser.add_argument("--out", help="write to this file instead of stdout")
    args = parser.parse_args(argv)

    if args.snapshot:
        try:
            snapshot = json.loads(open(args.snapshot).read())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read snapshot: {exc}", file=sys.stderr)
            return 1
        if not isinstance(snapshot, dict):
            print("error: snapshot must be a JSON object", file=sys.stderr)
            return 1
    else:
        snapshot = _demo_snapshot()

    if args.json:
        output = render_json(snapshot)
    else:
        output = render_prometheus(snapshot)
        if args.check:
            problems = validate_prometheus_text(output)
            if problems:
                for problem in problems:
                    print(f"invalid exposition: {problem}", file=sys.stderr)
                return 1

    if args.out:
        with open(args.out, "w") as fh:
            fh.write(output)
    else:
        sys.stdout.write(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
