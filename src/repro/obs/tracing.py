"""Hierarchical tracing over wall time and simulated device time.

A :class:`Span` is one timed region — an operator dispatch, a sweep task, a
model forward pass — carrying two clocks at once:

- **wall time**: ``ts_s``/``dur_s``, measured with ``time.perf_counter``
  relative to the tracer's epoch (what the harness actually spent);
- **simulated device time**: ``sim_s``, accumulated by the dispatch layer
  from each kernel's :class:`~repro.gpu.executor.ExecutionResult` (what the
  modelled GPU spent).

Spans nest: ``tracer.span(...)`` is a context manager that pushes onto the
tracer's stack, so instrumentation deep in the stack (the plan cache, the
fallback policy) can annotate whatever span is currently open via
``tracer.current`` without threading span objects through every call.

Two export formats:

- **JSONL** (:meth:`Tracer.write_jsonl`) — one record per line (``meta``,
  ``span``, ``launch``), the streaming/merging format: sweep workers ship
  their records to the parent, which appends them to one file;
  ``python -m repro.obs.report`` consumes it.
- **Chrome trace** (:meth:`Tracer.write_chrome_trace`) — the
  ``chrome://tracing`` / Perfetto JSON object format, built from the same
  records by :func:`chrome_trace_from_records`;
  :func:`validate_chrome_trace` checks the invariants the viewers require.

Tracing is strictly opt-in: call sites consult ``context.tracer`` and use
:data:`NO_SPAN` when it is ``None``, so the tracing-off dispatch path costs
one attribute check and a no-op context manager.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Iterable

#: Bumped when the JSONL record layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: Record types a trace JSONL stream may contain.
RECORD_TYPES = ("meta", "span", "launch")


class _NoopSpan:
    """Shared do-nothing span for tracing-off call sites (zero state)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass

    def add_sim(self, seconds: float) -> None:
        pass


#: The singleton no-op span: ``with op_span_or(NO_SPAN) as span`` costs a
#: single context-manager protocol round trip when tracing is disabled.
NO_SPAN = _NoopSpan()


class Span:
    """One timed, attributed region of a trace (context-manager API)."""

    __slots__ = (
        "name",
        "category",
        "span_id",
        "parent_id",
        "ts_s",
        "dur_s",
        "sim_s",
        "attrs",
        "events",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        span_id: int,
        parent_id: int | None,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.ts_s = 0.0
        self.dur_s = 0.0
        self.sim_s = 0.0
        self.attrs = attrs
        self.events: list[dict[str, Any]] = []

    # -- context-manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        self.ts_s = self._tracer._now()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.dur_s = self._tracer._now() - self.ts_s
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    # -- annotation API -------------------------------------------------
    def set(self, **attrs) -> None:
        """Attach (or overwrite) key/value attributes on this span."""
        self.attrs.update(attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event inside this span (retry, fallback,
        degraded completion, ...)."""
        self.events.append(
            {"name": name, "ts": self._tracer._now(), "args": attrs}
        )

    def add_sim(self, seconds: float) -> None:
        """Accumulate simulated device seconds attributed to this span."""
        self.sim_s += seconds

    def to_record(self) -> dict[str, Any]:
        """The span as one JSONL record."""
        return {
            "type": "span",
            "name": self.name,
            "cat": self.category,
            "id": self.span_id,
            "parent": self.parent_id,
            "pid": self._tracer.pid,
            "tid": self._tracer.tid,
            "ts": self.ts_s,
            "dur": self.dur_s,
            "sim_s": self.sim_s,
            "args": dict(self.attrs),
            "events": list(self.events),
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, cat={self.category!r}, "
            f"dur={self.dur_s * 1e3:.3f}ms, sim={self.sim_s * 1e6:.1f}us)"
        )


class Tracer:
    """Collects spans and launch records; exports JSONL and Chrome traces.

    ``clock`` names what ``ts``/``dur`` mean: ``"wall"`` for live tracing
    (perf_counter relative to the tracer's construction) or ``"sim"`` for
    traces laid out on the simulated-device timeline (e.g.
    :meth:`repro.nn.profile.Profile.to_trace`).
    """

    def __init__(
        self,
        process: str = "repro",
        pid: int | None = None,
        tid: int = 0,
        clock: str = "wall",
    ) -> None:
        if clock not in ("wall", "sim"):
            raise ValueError(f"unknown clock {clock!r}; expected wall|sim")
        self.process = process
        self.pid = os.getpid() if pid is None else pid
        self.tid = tid
        self.clock = clock
        self.spans: list[Span] = []
        self.launches: list[dict[str, Any]] = []
        #: Records merged from other tracers (sweep workers) — exported
        #: verbatim, keeping their own pid/tid rows.
        self.foreign_records: list[dict[str, Any]] = []
        self._epoch = time.perf_counter()
        self._stack: list[Span] = []
        self._next_id = 0

    # -- internals -------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exotic unwind orders; normal use pops the top.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # pragma: no cover - defensive
            try:
                self._stack.remove(span)
            except ValueError:
                pass
        self.spans.append(span)

    # -- span API --------------------------------------------------------
    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, category: str = "span", **attrs) -> Span:
        """Open a new child span of the current one (context manager)."""
        self._next_id += 1
        parent = self._stack[-1].span_id if self._stack else None
        return Span(self, name, category, self._next_id, parent, attrs)

    def add_complete_span(
        self,
        name: str,
        ts_s: float,
        dur_s: float,
        category: str = "span",
        sim_s: float = 0.0,
        parent: Span | int | None = None,
        **attrs,
    ) -> Span:
        """Record an already-timed span (for simulated timelines)."""
        if dur_s < 0:
            raise ValueError("span duration must be non-negative")
        self._next_id += 1
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        span = Span(self, name, category, self._next_id, parent_id, attrs)
        span.ts_s = ts_s
        span.dur_s = dur_s
        span.sim_s = sim_s
        self.spans.append(span)
        return span

    def add_launch(self, record: dict[str, Any]) -> None:
        """Attach one kernel-launch record (see repro.obs.profiler)."""
        self.launches.append(dict(record, type="launch"))

    def merge_records(self, records: Iterable[dict[str, Any]]) -> int:
        """Absorb JSONL records produced by another tracer (e.g. a sweep
        worker); their pid/tid rows are preserved. Returns the count."""
        added = 0
        for record in records:
            if record.get("type") in ("span", "launch"):
                self.foreign_records.append(record)
                added += 1
        return added

    # -- export ----------------------------------------------------------
    def meta_record(self) -> dict[str, Any]:
        return {
            "type": "meta",
            "schema": TRACE_SCHEMA_VERSION,
            "process": self.process,
            "pid": self.pid,
            "clock": self.clock,
        }

    def to_jsonl_records(self, include_meta: bool = True) -> list[dict]:
        records: list[dict] = [self.meta_record()] if include_meta else []
        records.extend(span.to_record() for span in self.spans)
        records.extend(self.launches)
        records.extend(self.foreign_records)
        return records

    def write_jsonl(self, path: str | Path, append: bool = False) -> Path:
        path = Path(path)
        mode = "a" if append else "w"
        with path.open(mode) as fh:
            for record in self.to_jsonl_records():
                fh.write(json.dumps(record) + "\n")
        return path

    def to_chrome_trace(self) -> dict[str, Any]:
        return chrome_trace_from_records(self.to_jsonl_records())

    def write_chrome_trace(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome_trace()))
        return path


# ----------------------------------------------------------------------
# JSONL <-> Chrome trace
# ----------------------------------------------------------------------
def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load a trace JSONL file, skipping blank/truncated trailing lines."""
    records: list[dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # truncated tail of an interrupted stream
        if isinstance(record, dict):
            records.append(record)
    return records


def validate_trace_records(records: Iterable[dict]) -> list[str]:
    """Check JSONL trace records against the schema; returns problems.

    An empty list means the stream is valid: every record is a dict whose
    ``type`` is one of :data:`RECORD_TYPES`, at least one ``meta`` record
    declares a supported ``schema`` version, spans carry numeric
    ``ts``/``dur``/``sim_s`` (``dur`` non-negative) plus ``name``/``pid``/
    ``tid``, and launches carry a ``name`` and a non-negative numeric
    ``runtime_s``. Flight-recorder dumps and report-CLI inputs are both
    validated through this.
    """
    problems: list[str] = []
    saw_meta = False
    for i, record in enumerate(records):
        if not isinstance(record, dict):
            problems.append(f"record {i} is not a dict")
            continue
        rtype = record.get("type")
        if rtype not in RECORD_TYPES:
            problems.append(f"record {i}: unknown type {rtype!r}")
            continue
        if rtype == "meta":
            saw_meta = True
            schema = record.get("schema")
            if schema != TRACE_SCHEMA_VERSION:
                problems.append(
                    f"record {i}: meta schema {schema!r} != "
                    f"{TRACE_SCHEMA_VERSION}"
                )
        elif rtype == "span":
            name = record.get("name")
            if not isinstance(name, str) or not name:
                problems.append(f"record {i}: span needs a non-empty name")
                name = "?"
            for key in ("pid", "tid"):
                if not isinstance(record.get(key), int):
                    problems.append(
                        f"record {i} ({name}): {key} must be an int"
                    )
            for key in ("ts", "dur", "sim_s"):
                value = record.get(key)
                if not isinstance(value, (int, float)) or value != value:
                    problems.append(
                        f"record {i} ({name}): {key} must be numeric"
                    )
                elif key != "ts" and value < 0:
                    problems.append(
                        f"record {i} ({name}): {key}={value} negative"
                    )
            events = record.get("events", [])
            if not isinstance(events, list):
                problems.append(f"record {i} ({name}): events must be a list")
        else:  # launch
            name = record.get("name")
            if not isinstance(name, str) or not name:
                problems.append(f"record {i}: launch needs a non-empty name")
                name = "?"
            runtime = record.get("runtime_s")
            if not isinstance(runtime, (int, float)) or runtime != runtime:
                problems.append(
                    f"record {i} ({name}): runtime_s must be numeric"
                )
            elif runtime < 0:
                problems.append(
                    f"record {i} ({name}): runtime_s={runtime} negative"
                )
    if not saw_meta:
        problems.append("no meta record declares a schema version")
    return problems


def chrome_trace_from_records(records: Iterable[dict]) -> dict[str, Any]:
    """Build a ``chrome://tracing`` JSON object from trace records.

    Spans become complete (``ph="X"``) events with microsecond ``ts`` /
    ``dur``; span events become thread-scoped instants (``ph="i"``); each
    distinct pid gets a ``process_name`` metadata event.
    """
    events: list[dict[str, Any]] = []
    processes: dict[int, str] = {}
    clock = "wall"
    for record in records:
        rtype = record.get("type")
        if rtype == "meta":
            clock = record.get("clock", clock)
            pid = record.get("pid")
            if isinstance(pid, int):
                processes.setdefault(pid, str(record.get("process", "repro")))
        elif rtype == "span":
            pid = int(record.get("pid", 0))
            tid = int(record.get("tid", 0))
            processes.setdefault(pid, "repro")
            args = dict(record.get("args") or {})
            args["sim_s"] = record.get("sim_s", 0.0)
            events.append(
                {
                    "name": str(record.get("name", "?")),
                    "cat": str(record.get("cat", "span")),
                    "ph": "X",
                    "ts": float(record.get("ts", 0.0)) * 1e6,
                    "dur": float(record.get("dur", 0.0)) * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            for ev in record.get("events") or ():
                events.append(
                    {
                        "name": str(ev.get("name", "event")),
                        "cat": str(record.get("cat", "span")),
                        "ph": "i",
                        "s": "t",
                        "ts": float(ev.get("ts", 0.0)) * 1e6,
                        "pid": pid,
                        "tid": tid,
                        "args": dict(ev.get("args") or {}),
                    }
                )
        elif rtype == "launch":
            # Launch records are profiler data, not timeline events; they
            # ride along in otherData for tools that want them.
            continue
    for pid, name in sorted(processes.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA_VERSION,
            "clock": clock,
            "launches": [r for r in records if r.get("type") == "launch"],
        },
    }


def validate_chrome_trace(trace: Any) -> list[str]:
    """Check the invariants chrome://tracing requires; returns problems.

    An empty list means the trace is valid: a JSON-serializable dict with a
    ``traceEvents`` list whose entries all carry ``name``/``ph``/``pid``/
    ``tid``, with finite non-negative microsecond ``ts``/``dur`` on every
    complete (``ph="X"``) event.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a dict, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    try:
        json.dumps(trace)
    except (TypeError, ValueError) as exc:
        problems.append(f"trace is not JSON-serializable: {exc}")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not a dict")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i} missing {key!r}")
        ph = ev.get("ph")
        if ph == "X":
            for key in ("ts", "dur"):
                value = ev.get(key)
                if not isinstance(value, (int, float)):
                    problems.append(f"event {i} ({ev.get('name')}): "
                                    f"{key} must be numeric")
                elif not (value == value) or value < 0:  # NaN or negative
                    problems.append(f"event {i} ({ev.get('name')}): "
                                    f"{key}={value} invalid")
    return problems
