"""Offline trace reporting: ``python -m repro.obs.report trace.jsonl``.

Consumes the JSONL stream written by :meth:`repro.obs.tracing.Tracer.
write_jsonl` (and appended to by sweep workers) and prints:

- per-category span rollups (count, wall time, simulated time);
- the top spans by wall duration;
- per-kernel phase attribution tables rebuilt from ``launch`` records,
  with roofline points against the recorded device's roofs;
- a memory-pressure section (peak/high-water HBM, fragmentation,
  OOM/flush/eviction counts per op) rebuilt from ``oom``/``oom_flush``/
  ``oom_evict`` span events and ``category="memory"`` summary spans
  (see :meth:`repro.ops.context.ExecutionContext.emit_memory_span`);
- a per-device rollup for multi-device (sharded) traces, keyed on the
  ``device_id`` the sharded dispatch stamps on op and memory spans.

``--json`` emits the same content as one JSON object for scripting (the
CI ``obs-smoke`` job archives it next to the trace).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Iterable

from .tracing import TRACE_SCHEMA_VERSION, read_jsonl

PHASE_KEYS = ("compute", "l1", "l2", "dram", "imbalance", "overhead")


def rollup_spans(records: Iterable[dict]) -> dict[str, dict[str, float]]:
    """Aggregate span records by category: count, wall seconds, sim seconds."""
    out: dict[str, dict[str, float]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        cat = str(record.get("cat", "span"))
        entry = out.setdefault(
            cat, {"count": 0, "wall_s": 0.0, "sim_s": 0.0, "errors": 0}
        )
        entry["count"] += 1
        entry["wall_s"] += float(record.get("dur", 0.0))
        entry["sim_s"] += float(record.get("sim_s", 0.0))
        if (record.get("args") or {}).get("error"):
            entry["errors"] += 1
    return out


def rollup_launches(records: Iterable[dict]) -> dict[str, dict[str, Any]]:
    """Aggregate launch records by kernel name: phase sums and totals."""
    out: dict[str, dict[str, Any]] = {}
    for record in records:
        if record.get("type") != "launch":
            continue
        name = str(record.get("name", "?"))
        entry = out.setdefault(
            name,
            {
                "launches": 0,
                "runtime_s": 0.0,
                "flops": 0.0,
                "dram_bytes": 0.0,
                "device": record.get("device", "?"),
                "phases_s": {k: 0.0 for k in PHASE_KEYS},
            },
        )
        entry["launches"] += 1
        entry["runtime_s"] += float(record.get("runtime_s", 0.0))
        entry["flops"] += float(record.get("flops", 0.0))
        entry["dram_bytes"] += float(record.get("dram_bytes", 0.0))
        phases = record.get("phases") or {}
        for key in PHASE_KEYS:
            entry["phases_s"][key] += float(phases.get(key, 0.0))
    return out


def rollup_memory(records: Iterable[dict]) -> dict[str, Any] | None:
    """Aggregate memory-pressure evidence from a trace, or None if the
    trace ran without HBM accounting (no events, no memory spans).

    Counts ``oom`` / ``oom_flush`` / ``oom_evict`` span events (the
    eviction ladder's breadcrumbs), attributes them to the op span they
    fired inside, and folds in ``category="memory"`` summary spans whose
    attrs carry the allocator snapshot.
    """
    ooms = 0
    flushes = 0
    flush_bytes = 0.0
    evictions: dict[str, dict[str, float]] = {}
    by_op: dict[str, dict[str, int]] = {}
    snapshots: list[dict[str, Any]] = []
    for record in records:
        if record.get("type") != "span":
            continue
        if record.get("cat") == "memory":
            snapshots.append(dict(record.get("args") or {}))
            continue
        name = str(record.get("name", "?"))
        for ev in record.get("events") or ():
            ev_name = ev.get("name")
            args = ev.get("args") or {}
            if ev_name == "oom":
                ooms += 1
                op = str(args.get("op", name))
                entry = by_op.setdefault(op, {"oom": 0, "evictions": 0})
                entry["oom"] += 1
            elif ev_name == "oom_flush":
                flushes += 1
                flush_bytes += float(args.get("bytes_freed", 0))
            elif ev_name == "oom_evict":
                kind = str(args.get("kind", "?"))
                bucket = evictions.setdefault(kind, {"count": 0, "bytes": 0.0})
                bucket["count"] += 1
                bucket["bytes"] += float(
                    args.get("bytes", args.get("bytes_freed", 0))
                )
                entry = by_op.setdefault(name, {"oom": 0, "evictions": 0})
                entry["evictions"] += 1
    if not (ooms or flushes or evictions or snapshots):
        return None
    out: dict[str, Any] = {
        "oom_events": ooms,
        "flushes": flushes,
        "flush_bytes_freed": flush_bytes,
        "evictions": evictions,
        "by_op": by_op,
    }
    if snapshots:
        # The last summary span is the end-of-run state; peaks are maxed
        # across all summaries (multi-context traces emit one each).
        out["snapshot"] = snapshots[-1]
        for key in ("peak_allocated_bytes", "peak_reserved_bytes"):
            out[key] = max(float(s.get(key, 0) or 0) for s in snapshots)
    return out


def rollup_devices(records: Iterable[dict]) -> dict[int, dict[str, Any]] | None:
    """Per-device rollup of a multi-device (sharded) trace, or None when
    no span carries a ``device_id``.

    Sharded dispatch stamps every op span and ``category="memory"``
    summary span with the owning device's id (launch records carry no
    device attribution, so the rollup keys on spans): per device it sums
    simulated op time, breaks it down by op name, counts OOM/eviction
    events, and keeps the peak reserved HBM from that device's memory
    summary span.
    """
    out: dict[int, dict[str, Any]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        args = record.get("args") or {}
        device_id = args.get("device_id")
        if device_id is None:
            continue
        entry = out.setdefault(
            int(device_id),
            {
                "spans": 0,
                "sim_s": 0.0,
                "by_op": {},
                "oom_events": 0,
                "evictions": 0,
                "peak_reserved_bytes": 0.0,
            },
        )
        if record.get("cat") == "memory":
            entry["peak_reserved_bytes"] = max(
                entry["peak_reserved_bytes"],
                float(args.get("peak_reserved_bytes", 0) or 0),
            )
            continue
        entry["spans"] += 1
        sim_s = float(record.get("sim_s", 0.0))
        entry["sim_s"] += sim_s
        op = entry["by_op"].setdefault(
            str(record.get("name", "?")), {"count": 0, "sim_s": 0.0}
        )
        op["count"] += 1
        op["sim_s"] += sim_s
        for ev in record.get("events") or ():
            ev_name = ev.get("name")
            if ev_name == "oom":
                entry["oom_events"] += 1
            elif ev_name == "oom_evict":
                entry["evictions"] += 1
    return out or None


def _roofline(kernels: dict[str, dict[str, Any]]) -> list[dict[str, Any]]:
    """Roofline points per kernel against each record's own device roofs."""
    from ..gpu.device import get_device

    points: list[dict[str, Any]] = []
    for name, entry in sorted(kernels.items()):
        if entry["runtime_s"] <= 0:
            continue
        achieved = entry["flops"] / entry["runtime_s"]
        point: dict[str, Any] = {
            "kernel": name,
            "achieved_flops": achieved,
            "intensity_flops_per_byte": (
                entry["flops"] / entry["dram_bytes"]
                if entry["dram_bytes"] > 0
                else None
            ),
        }
        try:
            device = get_device(str(entry["device"]))
        except (KeyError, ValueError):
            device = None
        if device is not None and entry["dram_bytes"] > 0:
            memory_roof = (
                entry["flops"] / entry["dram_bytes"]
            ) * device.effective_dram_bandwidth
            roof = min(device.fp32_peak_flops, memory_roof)
            point["roof_flops"] = roof
            point["bound"] = (
                "memory" if memory_roof < device.fp32_peak_flops else "compute"
            )
            point["roof_fraction"] = achieved / roof if roof > 0 else 0.0
        points.append(point)
    return points


def build_report(records: list[dict], top: int = 10) -> dict[str, Any]:
    """Assemble the full report object from loaded trace records."""
    meta = next((r for r in records if r.get("type") == "meta"), {})
    spans = [r for r in records if r.get("type") == "span"]
    kernels = rollup_launches(records)
    top_spans = sorted(
        spans, key=lambda r: float(r.get("dur", 0.0)), reverse=True
    )[:top]
    return {
        "schema": meta.get("schema", TRACE_SCHEMA_VERSION),
        "clock": meta.get("clock", "wall"),
        "process": meta.get("process", "repro"),
        "n_records": len(records),
        "n_spans": len(spans),
        "categories": rollup_spans(records),
        "kernels": kernels,
        "roofline": _roofline(kernels),
        "memory": rollup_memory(records),
        "devices": rollup_devices(records),
        "top_spans": [
            {
                "name": r.get("name"),
                "cat": r.get("cat"),
                "wall_s": float(r.get("dur", 0.0)),
                "sim_s": float(r.get("sim_s", 0.0)),
                "args": r.get("args") or {},
            }
            for r in top_spans
        ],
    }


def format_report(report: dict[str, Any]) -> str:
    """Human-readable text rendering of :func:`build_report` output."""
    lines = [
        f"trace: schema v{report['schema']} clock={report['clock']} "
        f"process={report['process']} "
        f"({report['n_spans']} spans, {report['n_records']} records)",
        "",
        "span categories:",
        f"  {'category':20s} {'count':>7s} {'wall':>10s} "
        f"{'sim':>10s} {'errors':>7s}",
    ]
    for cat, entry in sorted(report["categories"].items()):
        lines.append(
            f"  {cat:20s} {entry['count']:7d} "
            f"{entry['wall_s'] * 1e3:8.2f}ms "
            f"{entry['sim_s'] * 1e3:8.3f}ms {entry['errors']:7d}"
        )
    if report["kernels"]:
        lines += [
            "",
            "kernel phases (share of simulated time):",
            f"  {'kernel':28s} {'launches':>8s} {'sim':>10s} "
            f"{'compute':>8s} {'l1':>6s} {'l2':>6s} {'dram':>6s} "
            f"{'imbal':>6s} {'ovh':>6s}",
        ]
        for name, entry in sorted(report["kernels"].items()):
            total = entry["runtime_s"] or 1.0
            p = entry["phases_s"]
            lines.append(
                f"  {name[:28]:28s} {entry['launches']:8d} "
                f"{entry['runtime_s'] * 1e6:8.1f}us "
                f"{p['compute'] / total:7.1%} {p['l1'] / total:5.1%} "
                f"{p['l2'] / total:5.1%} {p['dram'] / total:5.1%} "
                f"{p['imbalance'] / total:5.1%} {p['overhead'] / total:5.1%}"
            )
    if report["roofline"]:
        lines += ["", "roofline:"]
        for point in report["roofline"]:
            intensity = point.get("intensity_flops_per_byte")
            frac = point.get("roof_fraction")
            lines.append(
                f"  {point['kernel'][:28]:28s} "
                f"{point['achieved_flops'] / 1e9:8.2f} GFLOP/s"
                + (f" @ {intensity:6.2f} flop/B" if intensity else "")
                + (
                    f"  ({frac:.1%} of {point['bound']} roof)"
                    if frac is not None
                    else ""
                )
            )
    memory = report.get("memory")
    if memory:
        lines += ["", "memory pressure:"]
        snap = memory.get("snapshot") or {}
        capacity = float(snap.get("capacity_bytes", 0) or 0)
        peak = float(
            memory.get("peak_reserved_bytes", 0)
            or snap.get("peak_reserved_bytes", 0)
            or 0
        )
        if peak or capacity:
            line = f"  peak reserved: {peak / 2**30:.2f} GiB"
            if capacity:
                line += (
                    f" / {capacity / 2**30:.2f} GiB cap"
                    f" ({peak / capacity:.1%} high-water)"
                )
            lines.append(line)
        if "fragmentation" in snap:
            lines.append(
                f"  fragmentation: {float(snap['fragmentation']):.1%}"
            )
        lines.append(
            f"  oom events: {memory['oom_events']}  "
            f"flushes: {memory['flushes']} "
            f"(freed {memory['flush_bytes_freed'] / 2**20:.1f} MiB)"
        )
        if memory["evictions"]:
            parts = [
                f"{kind} {int(entry['count'])} "
                f"({entry['bytes'] / 2**20:.1f} MiB)"
                for kind, entry in sorted(memory["evictions"].items())
            ]
            lines.append("  evictions: " + ", ".join(parts))
        if memory["by_op"]:
            lines.append(
                f"  {'op':24s} {'oom':>6s} {'evictions':>10s}"
            )
            for op, entry in sorted(memory["by_op"].items()):
                lines.append(
                    f"  {op[:24]:24s} {entry['oom']:6d} "
                    f"{entry['evictions']:10d}"
                )
    devices = report.get("devices")
    if devices:
        lines += [
            "",
            "per-device rollup:",
            f"  {'device':>6s} {'spans':>7s} {'sim':>10s} {'oom':>5s} "
            f"{'evict':>6s} {'peak rsvd':>10s}  top ops",
        ]
        for device_id, entry in sorted(devices.items(), key=lambda kv: int(kv[0])):
            top_ops = sorted(
                entry["by_op"].items(),
                key=lambda kv: kv[1]["sim_s"],
                reverse=True,
            )[:3]
            ops_text = ", ".join(
                f"{name} {op['sim_s'] * 1e6:.1f}us x{op['count']}"
                for name, op in top_ops
            )
            peak = float(entry["peak_reserved_bytes"])
            peak_text = f"{peak / 2**20:8.1f}MiB" if peak else f"{'-':>10s}"
            lines.append(
                f"  {device_id!s:>6s} {entry['spans']:7d} "
                f"{entry['sim_s'] * 1e6:8.1f}us {entry['oom_events']:5d} "
                f"{entry['evictions']:6d} {peak_text}  {ops_text}"
            )
    if report["top_spans"]:
        lines += ["", "top spans by wall time:"]
        for span in report["top_spans"]:
            lines.append(
                f"  {span['name'][:40]:40s} [{span['cat']}] "
                f"wall={span['wall_s'] * 1e3:.3f}ms "
                f"sim={span['sim_s'] * 1e6:.1f}us"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize a repro trace JSONL file.",
    )
    parser.add_argument("trace", help="path to a trace .jsonl file")
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--top", type=int, default=10, help="number of top spans to show"
    )
    args = parser.parse_args(argv)
    try:
        records = read_jsonl(args.trace)
    except OSError as exc:
        print(f"cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1
    if not records:
        print(f"no trace records found in {args.trace}", file=sys.stderr)
        return 1
    report = build_report(records, top=args.top)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(format_report(report))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
