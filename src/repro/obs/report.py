"""Offline trace reporting: ``python -m repro.obs.report trace.jsonl``.

Consumes the JSONL stream written by :meth:`repro.obs.tracing.Tracer.
write_jsonl` (and appended to by sweep workers) and prints:

- per-category span rollups (count, wall time, simulated time);
- the top spans by wall duration;
- per-kernel phase attribution tables rebuilt from ``launch`` records,
  with roofline points against the recorded device's roofs;
- a memory-pressure section (peak/high-water HBM, fragmentation,
  OOM/flush/eviction counts per op) rebuilt from ``oom``/``oom_flush``/
  ``oom_evict`` span events and ``category="memory"`` summary spans
  (see :meth:`repro.ops.context.ExecutionContext.emit_memory_span`);
- a per-device rollup for multi-device (sharded) traces, keyed on the
  ``device_id`` the sharded dispatch stamps on op and memory spans.

``--json`` emits the same content as one JSON object for scripting (the
CI ``obs-smoke`` job archives it next to the trace).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Iterable

from .tracing import TRACE_SCHEMA_VERSION, validate_trace_records

PHASE_KEYS = ("compute", "l1", "l2", "dram", "imbalance", "overhead")

#: A trace (or device) whose exposed-communication share reaches this
#: fraction of critical-path time is called interconnect-bound outright.
INTERCONNECT_BOUND_THRESHOLD = 0.5


def classify_phases(
    phases: dict[str, float], interconnect_fraction: float = 0.0
) -> str:
    """Bottleneck class for a phase-attribution dict: ``"interconnect"``
    when the exposed-comm share reaches
    :data:`INTERCONNECT_BOUND_THRESHOLD`, else ``"memory"`` /
    ``"compute"`` / ``"overhead"`` by dominant bucket (the same grouping
    as :meth:`repro.gpu.executor.PhaseTimes.bottleneck`: l1+l2+dram vs
    compute vs imbalance+overhead, ties toward memory)."""
    if interconnect_fraction >= INTERCONNECT_BOUND_THRESHOLD:
        return "interconnect"
    compute = float(phases.get("compute", 0.0))
    memory = (
        float(phases.get("l1", 0.0))
        + float(phases.get("l2", 0.0))
        + float(phases.get("dram", 0.0))
    )
    other = (
        float(phases.get("imbalance", 0.0))
        + float(phases.get("overhead", 0.0))
    )
    if memory >= compute and memory >= other:
        return "memory"
    if compute >= other:
        return "compute"
    return "overhead"


def rollup_spans(records: Iterable[dict]) -> dict[str, dict[str, float]]:
    """Aggregate span records by category: count, wall seconds, sim seconds."""
    out: dict[str, dict[str, float]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        cat = str(record.get("cat", "span"))
        entry = out.setdefault(
            cat, {"count": 0, "wall_s": 0.0, "sim_s": 0.0, "errors": 0}
        )
        entry["count"] += 1
        entry["wall_s"] += float(record.get("dur", 0.0))
        entry["sim_s"] += float(record.get("sim_s", 0.0))
        if (record.get("args") or {}).get("error"):
            entry["errors"] += 1
    return out


def rollup_launches(records: Iterable[dict]) -> dict[str, dict[str, Any]]:
    """Aggregate launch records by kernel name: phase sums and totals."""
    out: dict[str, dict[str, Any]] = {}
    for record in records:
        if record.get("type") != "launch":
            continue
        name = str(record.get("name", "?"))
        entry = out.setdefault(
            name,
            {
                "launches": 0,
                "runtime_s": 0.0,
                "flops": 0.0,
                "dram_bytes": 0.0,
                "device": record.get("device", "?"),
                "phases_s": {k: 0.0 for k in PHASE_KEYS},
            },
        )
        entry["launches"] += 1
        entry["runtime_s"] += float(record.get("runtime_s", 0.0))
        entry["flops"] += float(record.get("flops", 0.0))
        entry["dram_bytes"] += float(record.get("dram_bytes", 0.0))
        phases = record.get("phases") or {}
        for key in PHASE_KEYS:
            entry["phases_s"][key] += float(phases.get(key, 0.0))
    return out


def rollup_memory(records: Iterable[dict]) -> dict[str, Any] | None:
    """Aggregate memory-pressure evidence from a trace, or None if the
    trace ran without HBM accounting (no events, no memory spans).

    Counts ``oom`` / ``oom_flush`` / ``oom_evict`` span events (the
    eviction ladder's breadcrumbs), attributes them to the op span they
    fired inside, and folds in ``category="memory"`` summary spans whose
    attrs carry the allocator snapshot.
    """
    ooms = 0
    flushes = 0
    flush_bytes = 0.0
    evictions: dict[str, dict[str, float]] = {}
    by_op: dict[str, dict[str, int]] = {}
    snapshots: list[dict[str, Any]] = []
    for record in records:
        if record.get("type") != "span":
            continue
        if record.get("cat") == "memory":
            snapshots.append(dict(record.get("args") or {}))
            continue
        name = str(record.get("name", "?"))
        for ev in record.get("events") or ():
            ev_name = ev.get("name")
            args = ev.get("args") or {}
            if ev_name == "oom":
                ooms += 1
                op = str(args.get("op", name))
                entry = by_op.setdefault(op, {"oom": 0, "evictions": 0})
                entry["oom"] += 1
            elif ev_name == "oom_flush":
                flushes += 1
                flush_bytes += float(args.get("bytes_freed", 0))
            elif ev_name == "oom_evict":
                kind = str(args.get("kind", "?"))
                bucket = evictions.setdefault(kind, {"count": 0, "bytes": 0.0})
                bucket["count"] += 1
                bucket["bytes"] += float(
                    args.get("bytes", args.get("bytes_freed", 0))
                )
                entry = by_op.setdefault(name, {"oom": 0, "evictions": 0})
                entry["evictions"] += 1
    if not (ooms or flushes or evictions or snapshots):
        return None
    out: dict[str, Any] = {
        "oom_events": ooms,
        "flushes": flushes,
        "flush_bytes_freed": flush_bytes,
        "evictions": evictions,
        "by_op": by_op,
    }
    if snapshots:
        # The last summary span is the end-of-run state; peaks are maxed
        # across all summaries (multi-context traces emit one each).
        out["snapshot"] = snapshots[-1]
        for key in ("peak_allocated_bytes", "peak_reserved_bytes"):
            out[key] = max(float(s.get(key, 0) or 0) for s in snapshots)
    return out


def rollup_devices(records: Iterable[dict]) -> dict[int, dict[str, Any]] | None:
    """Per-device rollup of a multi-device (sharded) trace, or None when
    no span carries a ``device_id``.

    Sharded dispatch stamps every op span and ``category="memory"``
    summary span with the owning device's id (launch records carry no
    device attribution, so the rollup keys on spans): per device it sums
    simulated op time, breaks it down by op name, counts OOM/eviction
    events, and keeps the peak reserved HBM from that device's memory
    summary span.
    """
    out: dict[int, dict[str, Any]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        args = record.get("args") or {}
        device_id = args.get("device_id")
        if device_id is None:
            continue
        entry = out.setdefault(
            int(device_id),
            {
                "spans": 0,
                "sim_s": 0.0,
                "by_op": {},
                "oom_events": 0,
                "evictions": 0,
                "peak_reserved_bytes": 0.0,
            },
        )
        if record.get("cat") == "memory":
            entry["peak_reserved_bytes"] = max(
                entry["peak_reserved_bytes"],
                float(args.get("peak_reserved_bytes", 0) or 0),
            )
            continue
        entry["spans"] += 1
        sim_s = float(record.get("sim_s", 0.0))
        entry["sim_s"] += sim_s
        op = entry["by_op"].setdefault(
            str(record.get("name", "?")), {"count": 0, "sim_s": 0.0}
        )
        op["count"] += 1
        op["sim_s"] += sim_s
        for ev in record.get("events") or ():
            ev_name = ev.get("name")
            if ev_name == "oom":
                entry["oom_events"] += 1
            elif ev_name == "oom_evict":
                entry["evictions"] += 1
    return out or None


def rollup_dist(records: Iterable[dict]) -> dict[str, Any] | None:
    """Interconnect exposure from ``category="dist"`` wrapper spans, or
    ``None`` for single-device traces.

    Each sharded dispatch span carries ``exposed_comm_s`` (critical-path
    communication not hidden behind compute) and ``interconnect_bound``
    (that span's exposed-comm fraction). The trace-level fraction is
    rebuilt from totals: per-span critical-path time is recovered as
    ``exposed / fraction`` where the fraction is nonzero, so the aggregate
    is time-weighted rather than a mean of per-call ratios.
    """
    spans = 0
    exposed = 0.0
    critical = 0.0
    for record in records:
        if record.get("type") != "span" or record.get("cat") != "dist":
            continue
        args = record.get("args") or {}
        spans += 1
        span_exposed = float(args.get("exposed_comm_s", 0.0) or 0.0)
        fraction = float(args.get("interconnect_bound", 0.0) or 0.0)
        exposed += span_exposed
        if fraction > 0:
            critical += span_exposed / fraction
    if spans == 0:
        return None
    return {
        "spans": spans,
        "exposed_comm_s": exposed,
        "interconnect_bound_fraction": (
            exposed / critical if critical > 0 else 0.0
        ),
    }


def _roofline(kernels: dict[str, dict[str, Any]]) -> list[dict[str, Any]]:
    """Roofline points per kernel against each record's own device roofs."""
    from ..gpu.device import get_device

    points: list[dict[str, Any]] = []
    for name, entry in sorted(kernels.items()):
        if entry["runtime_s"] <= 0:
            continue
        achieved = entry["flops"] / entry["runtime_s"]
        point: dict[str, Any] = {
            "kernel": name,
            "achieved_flops": achieved,
            "intensity_flops_per_byte": (
                entry["flops"] / entry["dram_bytes"]
                if entry["dram_bytes"] > 0
                else None
            ),
        }
        try:
            device = get_device(str(entry["device"]))
        except (KeyError, ValueError):
            device = None
        if device is not None and entry["dram_bytes"] > 0:
            memory_roof = (
                entry["flops"] / entry["dram_bytes"]
            ) * device.effective_dram_bandwidth
            roof = min(device.fp32_peak_flops, memory_roof)
            point["roof_flops"] = roof
            point["bound"] = (
                "memory" if memory_roof < device.fp32_peak_flops else "compute"
            )
            point["roof_fraction"] = achieved / roof if roof > 0 else 0.0
        points.append(point)
    return points


def build_report(records: list[dict], top: int = 10) -> dict[str, Any]:
    """Assemble the full report object from loaded trace records."""
    meta = next((r for r in records if r.get("type") == "meta"), {})
    spans = [r for r in records if r.get("type") == "span"]
    kernels = rollup_launches(records)
    dist = rollup_dist(records)
    interconnect_fraction = (
        dist["interconnect_bound_fraction"] if dist else 0.0
    )
    phase_totals = {key: 0.0 for key in PHASE_KEYS}
    for entry in kernels.values():
        entry["bound"] = classify_phases(entry["phases_s"])
        for key in PHASE_KEYS:
            phase_totals[key] += entry["phases_s"][key]
    devices = rollup_devices(records)
    if devices:
        # Launch records carry no device attribution, so per-device
        # classification reuses the trace-level interconnect fraction and
        # global phase totals — an approximation that is exact for the
        # homogeneous shard plans the dist layer produces.
        device_bound = classify_phases(phase_totals, interconnect_fraction)
        for entry in devices.values():
            entry["bound"] = device_bound
    top_spans = sorted(
        spans, key=lambda r: float(r.get("dur", 0.0)), reverse=True
    )[:top]
    return {
        "schema": meta.get("schema", TRACE_SCHEMA_VERSION),
        "clock": meta.get("clock", "wall"),
        "process": meta.get("process", "repro"),
        "n_records": len(records),
        "n_spans": len(spans),
        "categories": rollup_spans(records),
        "kernels": kernels,
        "roofline": _roofline(kernels),
        "memory": rollup_memory(records),
        "devices": devices,
        "dist": dist,
        "bottleneck": classify_phases(phase_totals, interconnect_fraction),
        "top_spans": [
            {
                "name": r.get("name"),
                "cat": r.get("cat"),
                "wall_s": float(r.get("dur", 0.0)),
                "sim_s": float(r.get("sim_s", 0.0)),
                "args": r.get("args") or {},
            }
            for r in top_spans
        ],
    }


def format_report(report: dict[str, Any]) -> str:
    """Human-readable text rendering of :func:`build_report` output."""
    lines = [
        f"trace: schema v{report['schema']} clock={report['clock']} "
        f"process={report['process']} "
        f"({report['n_spans']} spans, {report['n_records']} records)",
        "",
        "span categories:",
        f"  {'category':20s} {'count':>7s} {'wall':>10s} "
        f"{'sim':>10s} {'errors':>7s}",
    ]
    for cat, entry in sorted(report["categories"].items()):
        lines.append(
            f"  {cat:20s} {entry['count']:7d} "
            f"{entry['wall_s'] * 1e3:8.2f}ms "
            f"{entry['sim_s'] * 1e3:8.3f}ms {entry['errors']:7d}"
        )
    if report["kernels"]:
        lines += [
            "",
            "kernel phases (share of simulated time):",
            f"  {'kernel':28s} {'launches':>8s} {'sim':>10s} "
            f"{'compute':>8s} {'l1':>6s} {'l2':>6s} {'dram':>6s} "
            f"{'imbal':>6s} {'ovh':>6s}  bound",
        ]
        for name, entry in sorted(report["kernels"].items()):
            total = entry["runtime_s"] or 1.0
            p = entry["phases_s"]
            lines.append(
                f"  {name[:28]:28s} {entry['launches']:8d} "
                f"{entry['runtime_s'] * 1e6:8.1f}us "
                f"{p['compute'] / total:7.1%} {p['l1'] / total:5.1%} "
                f"{p['l2'] / total:5.1%} {p['dram'] / total:5.1%} "
                f"{p['imbalance'] / total:5.1%} {p['overhead'] / total:5.1%}"
                f"  {entry.get('bound', '?')}"
            )
    if report["roofline"]:
        lines += ["", "roofline:"]
        for point in report["roofline"]:
            intensity = point.get("intensity_flops_per_byte")
            frac = point.get("roof_fraction")
            lines.append(
                f"  {point['kernel'][:28]:28s} "
                f"{point['achieved_flops'] / 1e9:8.2f} GFLOP/s"
                + (f" @ {intensity:6.2f} flop/B" if intensity else "")
                + (
                    f"  ({frac:.1%} of {point['bound']} roof)"
                    if frac is not None
                    else ""
                )
            )
    memory = report.get("memory")
    if memory:
        lines += ["", "memory pressure:"]
        snap = memory.get("snapshot") or {}
        capacity = float(snap.get("capacity_bytes", 0) or 0)
        peak = float(
            memory.get("peak_reserved_bytes", 0)
            or snap.get("peak_reserved_bytes", 0)
            or 0
        )
        if peak or capacity:
            line = f"  peak reserved: {peak / 2**30:.2f} GiB"
            if capacity:
                line += (
                    f" / {capacity / 2**30:.2f} GiB cap"
                    f" ({peak / capacity:.1%} high-water)"
                )
            lines.append(line)
        if "fragmentation" in snap:
            lines.append(
                f"  fragmentation: {float(snap['fragmentation']):.1%}"
            )
        lines.append(
            f"  oom events: {memory['oom_events']}  "
            f"flushes: {memory['flushes']} "
            f"(freed {memory['flush_bytes_freed'] / 2**20:.1f} MiB)"
        )
        if memory["evictions"]:
            parts = [
                f"{kind} {int(entry['count'])} "
                f"({entry['bytes'] / 2**20:.1f} MiB)"
                for kind, entry in sorted(memory["evictions"].items())
            ]
            lines.append("  evictions: " + ", ".join(parts))
        if memory["by_op"]:
            lines.append(
                f"  {'op':24s} {'oom':>6s} {'evictions':>10s}"
            )
            for op, entry in sorted(memory["by_op"].items()):
                lines.append(
                    f"  {op[:24]:24s} {entry['oom']:6d} "
                    f"{entry['evictions']:10d}"
                )
    dist = report.get("dist")
    if dist:
        lines += [
            "",
            "interconnect:",
            f"  dist spans: {dist['spans']}  exposed comm: "
            f"{dist['exposed_comm_s'] * 1e6:.1f}us  "
            f"bound fraction: {dist['interconnect_bound_fraction']:.1%}",
        ]
    if report.get("bottleneck"):
        lines += ["", f"trace bottleneck: {report['bottleneck']}"]
    devices = report.get("devices")
    if devices:
        lines += [
            "",
            "per-device rollup:",
            f"  {'device':>6s} {'spans':>7s} {'sim':>10s} {'oom':>5s} "
            f"{'evict':>6s} {'peak rsvd':>10s} {'bound':>7s}  top ops",
        ]
        for device_id, entry in sorted(devices.items(), key=lambda kv: int(kv[0])):
            top_ops = sorted(
                entry["by_op"].items(),
                key=lambda kv: kv[1]["sim_s"],
                reverse=True,
            )[:3]
            ops_text = ", ".join(
                f"{name} {op['sim_s'] * 1e6:.1f}us x{op['count']}"
                for name, op in top_ops
            )
            peak = float(entry["peak_reserved_bytes"])
            peak_text = f"{peak / 2**20:8.1f}MiB" if peak else f"{'-':>10s}"
            lines.append(
                f"  {device_id!s:>6s} {entry['spans']:7d} "
                f"{entry['sim_s'] * 1e6:8.1f}us {entry['oom_events']:5d} "
                f"{entry['evictions']:6d} {peak_text} "
                f"{entry.get('bound', '?'):>7s}  {ops_text}"
            )
    if report["top_spans"]:
        lines += ["", "top spans by wall time:"]
        for span in report["top_spans"]:
            lines.append(
                f"  {span['name'][:40]:40s} [{span['cat']}] "
                f"wall={span['wall_s'] * 1e3:.3f}ms "
                f"sim={span['sim_s'] * 1e6:.1f}us"
            )
    return "\n".join(lines)


def diff_traces(
    old: list[dict], new: list[dict], top: int = 20
) -> dict[str, Any]:
    """Per-op simulated-time deltas between two traces.

    Spans are grouped by ``(cat, name)``; each group's count and summed
    ``sim_s`` are compared and rows are ordered by absolute time delta,
    so the op that moved the most comes first.
    """

    def _group(records: list[dict]) -> dict[tuple, dict[str, float]]:
        out: dict[tuple, dict[str, float]] = {}
        for record in records:
            if record.get("type") != "span":
                continue
            key = (str(record.get("cat", "span")), str(record.get("name", "?")))
            entry = out.setdefault(key, {"count": 0, "sim_s": 0.0})
            entry["count"] += 1
            entry["sim_s"] += float(record.get("sim_s", 0.0))
        return out

    before = _group(old)
    after = _group(new)
    rows: list[dict[str, Any]] = []
    for key in sorted(set(before) | set(after)):
        b = before.get(key, {"count": 0, "sim_s": 0.0})
        a = after.get(key, {"count": 0, "sim_s": 0.0})
        delta = a["sim_s"] - b["sim_s"]
        rows.append(
            {
                "cat": key[0],
                "name": key[1],
                "old_count": int(b["count"]),
                "new_count": int(a["count"]),
                "old_sim_s": b["sim_s"],
                "new_sim_s": a["sim_s"],
                "delta_sim_s": delta,
                "delta_fraction": (
                    delta / b["sim_s"] if b["sim_s"] > 0 else None
                ),
            }
        )
    rows.sort(key=lambda r: abs(r["delta_sim_s"]), reverse=True)
    total_old = sum(r["old_sim_s"] for r in rows)
    total_new = sum(r["new_sim_s"] for r in rows)
    return {
        "total_old_sim_s": total_old,
        "total_new_sim_s": total_new,
        "total_delta_sim_s": total_new - total_old,
        "rows": rows[:top],
    }


def format_diff(diff: dict[str, Any]) -> str:
    lines = [
        f"total sim: {diff['total_old_sim_s'] * 1e6:.1f}us -> "
        f"{diff['total_new_sim_s'] * 1e6:.1f}us "
        f"({diff['total_delta_sim_s'] * 1e6:+.1f}us)",
        f"  {'op':36s} {'count':>11s} {'old sim':>10s} {'new sim':>10s} "
        f"{'delta':>10s} {'rel':>8s}",
    ]
    for row in diff["rows"]:
        label = f"{row['name']} [{row['cat']}]"
        counts = f"{row['old_count']}->{row['new_count']}"
        rel = (
            "-"
            if row["delta_fraction"] is None
            else f"{row['delta_fraction']:+.1%}"
        )
        lines.append(
            f"  {label[:36]:36s} {counts:>11s} "
            f"{row['old_sim_s'] * 1e6:8.1f}us {row['new_sim_s'] * 1e6:8.1f}us "
            f"{row['delta_sim_s'] * 1e6:+8.1f}us {rel:>8s}"
        )
    return "\n".join(lines)


def _load_trace(path: str) -> tuple[list[dict] | None, str | None]:
    """Strictly load + validate one trace; ``(records, None)`` or
    ``(None, error)``.

    A single undecodable line at the very end is tolerated (the truncated
    tail of an interrupted stream); bad lines anywhere else, schema
    violations, and empty files are errors — the report CLI is the
    gatekeeper CI relies on, so it must not quietly summarize garbage.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        return None, f"cannot read {path}: {exc}"
    records: list[dict] = []
    raw_lines = [
        (i, line.strip())
        for i, line in enumerate(text.splitlines(), start=1)
        if line.strip()
    ]
    for position, (lineno, line) in enumerate(raw_lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if position == len(raw_lines) - 1:
                continue  # truncated tail of an interrupted stream
            return None, f"{path}:{lineno}: undecodable JSONL line"
        if not isinstance(record, dict):
            return None, f"{path}:{lineno}: record is not an object"
        records.append(record)
    if not records:
        return None, f"no trace records found in {path}"
    problems = validate_trace_records(records)
    if problems:
        detail = "; ".join(problems[:5])
        if len(problems) > 5:
            detail += f"; ... ({len(problems) - 5} more)"
        return None, f"{path}: invalid trace: {detail}"
    return records, None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description=(
            "Summarize a repro trace JSONL file, or diff two of them. "
            "Exits nonzero on unreadable or schema-invalid traces."
        ),
    )
    parser.add_argument(
        "trace", nargs="?", help="path to a trace .jsonl file"
    )
    parser.add_argument(
        "--diff", nargs=2, metavar=("OLD", "NEW"),
        help="compare two traces: per-op simulated-time deltas",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--top", type=int, default=10, help="number of top spans to show"
    )
    args = parser.parse_args(argv)

    if args.diff:
        old, error = _load_trace(args.diff[0])
        if error:
            print(error, file=sys.stderr)
            return 1
        new, error = _load_trace(args.diff[1])
        if error:
            print(error, file=sys.stderr)
            return 1
        diff = diff_traces(old, new, top=max(args.top, 20))
        if args.json:
            print(json.dumps(diff, indent=2))
        else:
            print(format_diff(diff))
        return 0

    if not args.trace:
        parser.error("a trace file (or --diff OLD NEW) is required")
    records, error = _load_trace(args.trace)
    if error:
        print(error, file=sys.stderr)
        return 1
    report = build_report(records, top=args.top)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(format_report(report))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
