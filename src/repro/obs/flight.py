"""Always-on flight recorder: the last N events before a failure.

Tracing (:mod:`repro.obs.tracing`) is opt-in and unbounded — great for
benchmarks, wrong for continuous operation: a long-running service cannot
keep every span, and the runs that crash are exactly the ones nobody
thought to trace. A :class:`FlightRecorder` is the complement: a bounded
ring buffer (``collections.deque(maxlen=capacity)``) of recent launch and
fault events that every :class:`~repro.ops.context.ExecutionContext`
carries by default, costing one deque append per recorded launch on the
hot path and dropping the oldest events as it fills.

When something terminal happens — a :class:`DeviceOOMError` that survived
the reclaim ladder, a :class:`FallbackExhaustedError`, a sweep-worker
crash — the window is rendered as trace-schema records (the same ``meta``
/ ``span`` / ``launch`` JSONL layout the report CLI reads, validated by
:func:`~repro.obs.tracing.validate_trace_records`) and attached to the
raised error as ``flight_records``; with ``REPRO_FLIGHT_DIR`` set, it is
also dumped to a JSONL artifact whose path lands on ``flight_dump``. Every
postmortem ships its own trace.

Environment knobs:

- ``REPRO_FLIGHT``: ring capacity in events (default
  :data:`DEFAULT_CAPACITY`), or ``off``/``0`` to disable recording;
- ``REPRO_FLIGHT_DIR``: directory for dump artifacts (unset = attach
  records to the error but write no file).
"""

from __future__ import annotations

import itertools
import json
import os
import time
from collections import deque
from pathlib import Path
from typing import Any

from .tracing import TRACE_SCHEMA_VERSION

#: Default ring capacity (events). Sized so a dump covers the dispatches
#: leading up to a fault without the ring itself becoming a trace.
DEFAULT_CAPACITY = 256

#: Hard cap on dump files written per process, so a chaos suite that
#: exhausts hundreds of fallback chains cannot flood ``REPRO_FLIGHT_DIR``.
MAX_DUMPS_PER_PROCESS = 64

_dump_counter = itertools.count()


def flight_capacity_from_env(default: int = DEFAULT_CAPACITY) -> int | None:
    """Ring capacity from ``REPRO_FLIGHT``: ``None`` disables recording."""
    raw = os.environ.get("REPRO_FLIGHT", "").strip().lower()
    if raw in ("", "on", "true", "default"):
        return default
    if raw in ("off", "0", "false", "none"):
        return None
    try:
        return max(int(raw), 1)
    except ValueError:
        return default


def flight_dump_dir() -> Path | None:
    """The dump-artifact directory from ``REPRO_FLIGHT_DIR`` (or ``None``)."""
    raw = os.environ.get("REPRO_FLIGHT_DIR", "").strip()
    return Path(raw) if raw else None


class FlightRecorder:
    """Bounded ring of recent launch/fault events, dumpable as a trace.

    Events are ``(ts, kind, name, sim_s, attrs)`` tuples; ``ts`` is wall
    seconds since the recorder's epoch (excluded from :meth:`signature`, so
    determinism checks compare only the simulated/semantic payload).
    ``kind`` is ``"launch"`` for recorded kernel launches and a fault/event
    label (``"oom"``, ``"retry"``, ``"fallback"``, ...) for everything else.
    """

    __slots__ = ("capacity", "process", "device_id", "total_events", "_events",
                 "_epoch")

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        process: str = "flight",
        device_id: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = int(capacity)
        self.process = process
        self.device_id = device_id
        #: Total events ever recorded (``total_events - len(self)`` have
        #: been dropped by the ring).
        self.total_events = 0
        self._events: deque = deque(maxlen=self.capacity)
        self._epoch = time.perf_counter()

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlightRecorder(capacity={self.capacity}, "
            f"events={len(self._events)}, total={self.total_events})"
        )

    @property
    def dropped_events(self) -> int:
        return self.total_events - len(self._events)

    # -- recording (hot path) -------------------------------------------
    def record(
        self, kind: str, name: str, sim_s: float = 0.0, /, **attrs
    ) -> None:
        """Append one event to the ring (oldest events fall off)."""
        self._events.append(
            (time.perf_counter() - self._epoch, kind, name, sim_s, attrs)
        )
        self.total_events += 1

    def record_launch(self, op: str, backend: str, execution) -> None:
        """One dispatched launch (fed by ``Telemetry.record_launch``)."""
        self._events.append(
            (
                time.perf_counter() - self._epoch,
                "launch",
                execution.name,
                execution.runtime_s,
                {"op": op, "backend": backend},
            )
        )
        self.total_events += 1

    def clear(self) -> None:
        self._events.clear()
        self.total_events = 0

    # -- export ----------------------------------------------------------
    def signature(self) -> list[tuple]:
        """Wall-time-free projection of the window, for determinism checks:
        two runs with the same seeds produce identical signatures even
        though their wall timestamps differ."""
        return [
            (kind, name, round(sim_s, 12), tuple(sorted(attrs.items())))
            for _, kind, name, sim_s, attrs in self._events
        ]

    def to_records(self, reason: str = "dump") -> list[dict[str, Any]]:
        """The window as trace-schema JSONL records (meta + spans + launches).

        Launch events become ``type="launch"`` records; everything else
        becomes a zero-duration ``cat="flight"`` span, so the output passes
        :func:`~repro.obs.tracing.validate_trace_records` and feeds
        :func:`~repro.obs.tracing.chrome_trace_from_records` unchanged.
        """
        pid = os.getpid()
        records: list[dict[str, Any]] = [
            {
                "type": "meta",
                "schema": TRACE_SCHEMA_VERSION,
                "process": self.process,
                "pid": pid,
                "clock": "wall",
                "flight": {
                    "reason": reason,
                    "capacity": self.capacity,
                    "events": len(self._events),
                    "dropped": self.dropped_events,
                },
            }
        ]
        for span_id, (ts, kind, name, sim_s, attrs) in enumerate(
            self._events, start=1
        ):
            args = dict(attrs)
            if self.device_id is not None:
                args.setdefault("device_id", self.device_id)
            if kind == "launch":
                records.append(
                    {"type": "launch", "name": name, "runtime_s": sim_s,
                     "ts": ts, **args}
                )
            else:
                args.setdefault("kind", kind)
                records.append(
                    {
                        "type": "span",
                        "name": name,
                        "cat": "flight",
                        "id": span_id,
                        "parent": None,
                        "pid": pid,
                        "tid": 0,
                        "ts": ts,
                        "dur": 0.0,
                        "sim_s": sim_s,
                        "args": args,
                        "events": [],
                    }
                )
        return records

    def dump(
        self, path: str | Path | None = None, reason: str = "dump"
    ) -> Path | None:
        """Write the window as a JSONL artifact; returns the path.

        With ``path=None`` the file goes to ``REPRO_FLIGHT_DIR`` (returns
        ``None`` when that is unset, or once
        :data:`MAX_DUMPS_PER_PROCESS` files have been written).
        """
        if path is None:
            directory = flight_dump_dir()
            if directory is None:
                return None
            serial = next(_dump_counter)
            if serial >= MAX_DUMPS_PER_PROCESS:
                return None
            directory.mkdir(parents=True, exist_ok=True)
            device = "" if self.device_id is None else f"_dev{self.device_id}"
            path = directory / (
                f"flight_{reason}_{os.getpid()}{device}_{serial}.jsonl"
            )
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for record in self.to_records(reason=reason):
                fh.write(json.dumps(record) + "\n")
        return path

    def attach(self, error: BaseException, reason: str) -> BaseException:
        """Attach the window to a raised error (and dump it, if configured).

        Sets ``error.flight_records`` to the trace-schema record list and
        ``error.flight_dump`` to the artifact path (``None`` when no dump
        directory is configured). Returns the error for raise-site chaining.
        """
        records = self.to_records(reason=reason)
        error.flight_records = records
        dump_path = self.dump(reason=reason)
        error.flight_dump = None if dump_path is None else str(dump_path)
        return error


def flight_from_env(
    capacity: int | None = None,
    process: str = "flight",
    device_id: int | None = None,
) -> FlightRecorder | None:
    """Build the default per-context recorder, honouring ``REPRO_FLIGHT``.

    ``capacity=None`` takes the environment's capacity (or the default);
    an explicit capacity only yields to the environment's kill switch.
    """
    env_capacity = flight_capacity_from_env()
    if env_capacity is None:
        return None
    if capacity is None:
        capacity = env_capacity
    return FlightRecorder(capacity, process=process, device_id=device_id)
