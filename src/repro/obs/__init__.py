"""Observability: tracing, metrics, and kernel-phase profiling.

Three cooperating pieces (DESIGN.md Section 11):

- :mod:`repro.obs.tracing` — hierarchical spans over wall *and* simulated
  device time, exported as JSONL streams or Chrome-trace JSON;
- :mod:`repro.obs.metrics` — a label-aware registry (counters, gauges,
  histograms) that absorbs the dispatch layer's ``Telemetry`` counters via
  pull-mode collectors, keeping ``telemetry_snapshot()`` as a shim;
- :mod:`repro.obs.profiler` — per-launch phase attribution
  (compute/L1/L2/DRAM/imbalance/overhead) and roofline points, hooked into
  the executor's completion observers.

``python -m repro.obs.report trace.jsonl`` summarizes a captured trace.
"""

from ..gpu.executor import PHASE_NAMES, PhaseTimes
from .metrics import (
    SIM_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bind_context_metrics,
    bind_telemetry,
)
from .profiler import KernelStats, LaunchRecord, PhaseProfiler
from .report import build_report, format_report
from .tracing import (
    NO_SPAN,
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    chrome_trace_from_records,
    read_jsonl,
    validate_chrome_trace,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "Span",
    "NO_SPAN",
    "read_jsonl",
    "chrome_trace_from_records",
    "validate_chrome_trace",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SIM_SECONDS_BUCKETS",
    "bind_telemetry",
    "bind_context_metrics",
    "PhaseProfiler",
    "LaunchRecord",
    "KernelStats",
    "PhaseTimes",
    "PHASE_NAMES",
    "build_report",
    "format_report",
]
