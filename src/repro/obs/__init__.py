"""Observability: tracing, metrics, profiling, and continuous operation.

Cooperating pieces (DESIGN.md Sections 11 and 16):

- :mod:`repro.obs.tracing` — hierarchical spans over wall *and* simulated
  device time, exported as JSONL streams or Chrome-trace JSON;
- :mod:`repro.obs.metrics` — a label-aware registry (counters, gauges,
  histograms) that absorbs the dispatch layer's ``Telemetry`` counters via
  pull-mode collectors, keeping ``telemetry_snapshot()`` as a shim;
- :mod:`repro.obs.profiler` — per-launch phase attribution
  (compute/L1/L2/DRAM/imbalance/overhead) and roofline points, hooked into
  the executor's completion observers;
- :mod:`repro.obs.flight` — the always-on bounded flight recorder every
  execution context carries; terminal faults dump their last-N-events
  window as a trace-schema JSONL artifact;
- :mod:`repro.obs.export` — Prometheus text exposition / JSON snapshots
  over a metrics registry (``python -m repro.obs.export``);
- :mod:`repro.obs.regress` — the perf-regression gate over BENCH_*.json
  headline metrics (``python -m repro.obs.regress --check``).

``python -m repro.obs.report trace.jsonl`` summarizes a captured trace
(``--diff old new`` compares two).
"""

from ..gpu.executor import PHASE_NAMES, PhaseTimes
from .export import (
    render_json,
    render_prometheus,
    validate_prometheus_text,
)
from .flight import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    flight_capacity_from_env,
    flight_from_env,
)
from .metrics import (
    SIM_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bind_context_metrics,
    bind_group_metrics,
    bind_telemetry,
)
from .profiler import KernelStats, LaunchRecord, PhaseProfiler
from .report import (
    build_report,
    classify_phases,
    diff_traces,
    format_diff,
    format_report,
)
from .tracing import (
    NO_SPAN,
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    chrome_trace_from_records,
    read_jsonl,
    validate_chrome_trace,
    validate_trace_records,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "Span",
    "NO_SPAN",
    "read_jsonl",
    "chrome_trace_from_records",
    "validate_chrome_trace",
    "validate_trace_records",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SIM_SECONDS_BUCKETS",
    "bind_telemetry",
    "bind_context_metrics",
    "bind_group_metrics",
    "PhaseProfiler",
    "LaunchRecord",
    "KernelStats",
    "PhaseTimes",
    "PHASE_NAMES",
    "build_report",
    "format_report",
    "classify_phases",
    "diff_traces",
    "format_diff",
    "FlightRecorder",
    "DEFAULT_CAPACITY",
    "flight_capacity_from_env",
    "flight_from_env",
    "render_prometheus",
    "render_json",
    "validate_prometheus_text",
]
