"""cuBLAS-style dense GEMM model (the dense baseline in Figures 1 and 12).

cuBLAS dispatches among a family of tiled SGEMM kernels — large 128x128
tiles for big problems, smaller tiles and split-K variants to fill the
machine on skinny ones — reaching ~85-90 % of peak at scale and degrading
gracefully on small shapes. The model mirrors that: it enumerates the tile
/ split-K candidates cuBLAS would consider, costs each through the shared
executor (so occupancy and latency-hiding effects emerge naturally), and
returns the fastest — exactly a library heuristic's job.
"""

from __future__ import annotations

import numpy as np

from ..core.types import KernelResult
from ..gpu.device import DeviceSpec
from ..gpu.executor import BlockCosts, ExecutionResult, KernelLaunch, execute
from ..gpu.memory import dram_bytes_with_reuse
from ..gpu.occupancy import BlockResources

#: (tile_m, tile_n, threads, registers) kernel variants in the family.
TILE_VARIANTS = (
    (128, 128, 256, 96),
    (64, 64, 128, 64),
    (32, 32, 64, 40),
)
#: Split-K factors tried when the output grid alone cannot fill the SMs.
SPLIT_K_FACTORS = (1, 2, 4, 8)
#: K-slice staged in shared memory per main-loop iteration.
TILE_K = 32
#: Fraction of issued FMAs that are useful on full tiles — models the
#: epilogue/pipeline overhead that keeps cuBLAS at ~85-90 % of peak.
FMA_EFFICIENCY = 0.88


def _candidate(
    m: int,
    n: int,
    k: int,
    device: DeviceSpec,
    tile_m: int,
    tile_n: int,
    threads: int,
    registers: int,
    split_k: int,
    element_bytes: int,
    name: str,
) -> KernelLaunch | None:
    gx = -(-n // tile_n)
    gy = -(-m // tile_m)
    k_slice = -(-k // split_k)
    if k_slice < TILE_K and split_k > 1:
        return None
    n_blocks = gx * gy * split_k
    warp = device.warp_size

    # Block totals in warp-instruction units; edge tiles still issue
    # full-tile instructions (predicated lanes).
    fma_instructions = tile_m * tile_n * k_slice / FMA_EFFICIENCY / warp
    load_elements = (tile_m + tile_n) * k_slice
    other_instructions = load_elements / (warp * 4) + tile_m * tile_n / (warp * 4)
    smem_bytes = load_elements * element_bytes * 2  # staged then re-read

    widths = np.full(gx, float(tile_n))
    widths[-1] = n - (gx - 1) * tile_n
    heights = np.full(gy, float(tile_m))
    heights[-1] = m - (gy - 1) * tile_m
    a_bytes = np.repeat(heights, gx) * k_slice * element_bytes
    b_bytes = np.tile(widths, gy) * k_slice * element_bytes
    c_bytes = np.repeat(heights, gx) * np.tile(widths, gy) * element_bytes
    if split_k > 1:
        # Partials written per split, then reduced (read + final write).
        c_bytes = c_bytes * 3.0
    a_bytes = np.tile(a_bytes, split_k)
    b_bytes = np.tile(b_bytes, split_k)
    c_bytes = np.tile(c_bytes / split_k, split_k)

    load_bytes = a_bytes + b_bytes
    total = float(load_bytes.sum())
    unique = (m + n) * k * element_bytes
    dram_reads = dram_bytes_with_reuse(total, min(unique, total), device.l2_capacity)
    ratio = dram_reads / total if total else 0.0

    smem_stage = 2 * TILE_K * (tile_m + tile_n) * element_bytes
    return KernelLaunch(
        name=name,
        n_blocks=n_blocks,
        resources=BlockResources(
            threads=threads,
            shared_mem_bytes=smem_stage,
            registers_per_thread=registers,
        ),
        costs=BlockCosts(
            fma_instructions=fma_instructions,
            other_instructions=other_instructions,
            dram_bytes=load_bytes * ratio + c_bytes,
            l2_bytes=load_bytes * (1.0 - ratio),
            smem_bytes=smem_bytes,
        ),
        flops=2.0 * m * n * k,
    )


def gemm_execution(
    m: int, n: int, k: int, device: DeviceSpec, element_bytes: int = 4
) -> ExecutionResult:
    """Simulated execution of a dense ``m x k`` @ ``k x n`` GEMM, using the
    fastest tile / split-K variant (the library's dispatch heuristic)."""
    if min(m, n, k) <= 0:
        raise ValueError("GEMM dimensions must be positive")
    name = "cublas_sgemm" if element_bytes == 4 else "cublas_hgemm"
    best: ExecutionResult | None = None
    for tile_m, tile_n, threads, registers in TILE_VARIANTS:
        # Skip grossly oversized tiles for tiny outputs; keep the smallest.
        if tile_m > 4 * m and tile_m > 32:
            continue
        for split_k in SPLIT_K_FACTORS:
            launch = _candidate(
                m, n, k, device, tile_m, tile_n, threads, registers,
                split_k, element_bytes, name,
            )
            if launch is None:
                continue
            result = execute(launch, device)
            if best is None or result.runtime_s < best.runtime_s:
                best = result
    assert best is not None  # the 32x32/split-1 variant always applies
    return best


def matmul(a: np.ndarray, b: np.ndarray, device: DeviceSpec) -> KernelResult:
    """Dense ``A @ B`` with cuBLAS-modelled cost and exact numerics."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible GEMM shapes {a.shape} @ {b.shape}")
    execution = gemm_execution(
        a.shape[0], b.shape[1], a.shape[1], device, a.dtype.itemsize
    )
    out = (a.astype(np.float32) @ b.astype(np.float32)).astype(a.dtype)
    return KernelResult(output=out, execution=execution)


def transpose_execution(
    rows: int, cols: int, device: DeviceSpec, element_bytes: int = 4
) -> ExecutionResult:
    """Out-of-place dense transpose (cuBLAS geam) — pure bandwidth.

    The paper's cuSPARSE SDDMM baseline pays this explicitly because
    ``cusparseConstrainedGeMM`` cannot transpose its right-hand operand.
    """
    nbytes = rows * cols * element_bytes
    tiles = max(1, (rows // 32) * (cols // 32))
    launch = KernelLaunch(
        name="cublas_geam_transpose",
        n_blocks=tiles,
        resources=BlockResources(threads=256, shared_mem_bytes=32 * 33 * 4),
        costs=BlockCosts(
            other_instructions=2.0 * 32 * 32 / 32,
            dram_bytes=2.0 * nbytes / tiles,
            smem_bytes=2.0 * 32 * 32 * element_bytes,
        ),
        flops=0.0,
    )
    return execute(launch, device)
