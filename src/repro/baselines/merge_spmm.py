"""MergeSpmm baseline — the row-splitting kernel of Yang, Buluç & Owens
(Euro-Par 2018, "Design Principles for Sparse Matrix Multiplication on the
GPU").

The paper benchmarks against this kernel on the RNN problem set
(Section VII-A2), using the authors' row-splitting variant since every
benchmarked problem sits above their average-row-length threshold for
nonzero-splitting. Structure modelled:

- warp per sparse row, dense matrix row-major with coalesced 32-wide
  accesses (their "memory-access aligned" design principle);
- ILP-oriented but scalar memory operations (no vector loads, no ROMA);
- no load balancing beyond the row split;
- supported only when the batch dimension is a multiple of 32 — the
  constraint the paper notes when choosing the RNN problem set.
"""

from __future__ import annotations

import numpy as np

from ..core.types import KernelResult
from ..gpu.device import DeviceSpec
from ..gpu.executor import BlockCosts, KernelLaunch, execute
from ..gpu.memory import dram_bytes_with_reuse, l1_hit_fraction
from ..gpu.occupancy import BlockResources
from ..sparse.csr import CSRMatrix
from ..sparse.ops import spmm_flops, spmm_reference

#: Dense columns covered by one warp's row pass.
TILE_N = 32
#: Warps (rows) per thread block.
ROWS_PER_BLOCK = 8
#: Mild instruction overhead relative to a compile-time-specialized loop:
#: merge-based code keeps its generality (runtime tile bounds).
GENERIC_LOOP_FACTOR = 1.1
#: Sustained fraction of issue/math rate (scalar gather inner loop).
PIPELINE_EFFICIENCY = 0.70


def spmm_launch(a: CSRMatrix, n: int, device: DeviceSpec) -> KernelLaunch:
    """Cost model for the MergeSpmm row-splitting kernel."""
    if n % 32:
        raise ValueError(
            f"MergeSpmm only supports batch sizes divisible by 32, got N={n}"
        )
    warp = device.warp_size
    vb, ib = 4.0, 4.0
    gy = -(-a.n_rows // ROWS_PER_BLOCK)
    gx = n // TILE_N

    lengths = a.row_lengths.astype(np.float64)
    pad = (-a.n_rows) % ROWS_PER_BLOCK
    grouped = np.concatenate([lengths, np.zeros(pad)]).reshape(gy, ROWS_PER_BLOCK)

    # Coalesced scalar loads: one output per lane, one B-load per step.
    fma = grouped
    b_loads = grouped
    a_loads = 2.0 * np.ceil(grouped / warp)
    smem_reads = 1.0 * grouped
    other = (b_loads + a_loads + smem_reads) * GENERIC_LOOP_FACTOR + 10.0

    fma_block = (fma * GENERIC_LOOP_FACTOR).sum(axis=1)
    other_block = other.sum(axis=1)
    smem_block = (grouped * warp * (vb + ib) + grouped * (vb + ib)).sum(axis=1)

    rows_sum = grouped.sum(axis=1)
    rows_present = (grouped >= 0).sum(axis=1).astype(np.float64)
    a_bytes = rows_sum * (vb + ib)
    b_bytes = rows_sum * TILE_N * vb
    c_bytes = rows_present * TILE_N * vb

    # L1 locality: sorted CSR indices give the same synchronized column
    # streaming as our kernel (row-major coalesced loads help here relative
    # to cuSPARSE's column-major layout).
    touched = len(np.unique(a.column_indices)) if a.nnz else 0
    resident = 8
    avg_row = a.nnz / a.n_rows if a.n_rows else 0.0
    rows_per_sm = resident * ROWS_PER_BLOCK
    lpe = rows_per_sm * avg_row / touched if touched else 0.0
    window = rows_per_sm * TILE_N * vb * 2.0
    l1_frac = l1_hit_fraction(lpe, window, device.l1_capacity_per_sm)

    l1_bytes = np.repeat(b_bytes * l1_frac, gx)
    store_bytes = np.repeat(c_bytes, gx)
    a_block = np.repeat(a_bytes, gx)
    b_rest = np.repeat(b_bytes * (1.0 - l1_frac), gx)
    b_total = float(b_rest.sum())
    unique_b = min(float(touched * n * vb), b_total)
    b_dram = dram_bytes_with_reuse(b_total, unique_b, device.l2_capacity)
    b_ratio = b_dram / b_total if b_total else 0.0
    load_dram = a_block / gx + b_rest * b_ratio
    load_l2 = a_block * (1.0 - 1.0 / gx) + b_rest * (1.0 - b_ratio)

    return KernelLaunch(
        name="merge_spmm_row_splitting",
        n_blocks=gx * gy,
        resources=BlockResources(
            threads=ROWS_PER_BLOCK * warp,
            shared_mem_bytes=int(ROWS_PER_BLOCK * warp * (vb + ib)),
            registers_per_thread=48,
        ),
        costs=BlockCosts(
            fma_instructions=np.repeat(fma_block, gx),
            other_instructions=np.repeat(other_block, gx),
            dram_bytes=load_dram + store_bytes,
            l2_bytes=load_l2,
            l1_bytes=l1_bytes,
            smem_bytes=np.repeat(smem_block, gx),
        ),
        flops=spmm_flops(a, n),
        pipeline_efficiency=PIPELINE_EFFICIENCY,
    )


def merge_spmm(a: CSRMatrix, b: np.ndarray, device: DeviceSpec) -> KernelResult:
    """MergeSpmm row-splitting SpMM: exact numerics, modelled cost."""
    b = np.asarray(b, dtype=np.float32)
    if b.ndim != 2 or b.shape[0] != a.n_cols:
        raise ValueError(f"B shape {b.shape} incompatible with A {a.shape}")
    launch = spmm_launch(a, b.shape[1], device)
    return KernelResult(
        output=spmm_reference(a, b), execution=execute(launch, device)
    )
