"""cuSPARSE baseline models: ``cusparseSpMM`` and ``cusparseConstrainedGeMM``.

The paper benchmarks against cuSPARSE 10.1. These models reproduce the
documented algorithmic structure of those kernels and charge the specific
inefficiencies the paper attributes to them:

``cusparseSpMM`` (csrmm2-style):
- row-splitting with a full warp per sparse row (no subwarp tiling, so
  narrow problems waste lanes and small problems under-fill the machine);
- scalar memory operations only (no ROMA; CSR rows cannot be vector-loaded);
- column-major dense matrices, whose tiled transposition in shared memory
  costs extra transactions relative to a row-major streaming access;
- natural row order (no load balancing);
- 32-bit indices even in mixed precision (Section VII-A1);
- a generic, runtime-parameterized inner loop (no compile-time
  specialization, the paper's 1-D-tiling benefit #3).

``cusparseConstrainedGeMM`` (the SDDMM surrogate):
- no support for a transposed right-hand operand: an explicit cuBLAS
  transpose is prepended and included in the timing, exactly as the paper
  measured (Section VII-A1).

The mixed-precision SpMM additionally mirrors the pathology the paper
observed ("extreme slowdowns of as much as 297.5x"): shapes whose N
dimension misses the kernel's wide-tile requirement fall back to a scalar
per-element path.
"""

from __future__ import annotations

import numpy as np

from ..core.config import SddmmConfig, SpmmConfig
from ..core.sddmm import build_launch as sputnik_sddmm_launch
from ..core.types import KernelResult
from ..gpu.device import DeviceSpec
from ..gpu.executor import BlockCosts, ExecutionResult, KernelLaunch, execute
from ..gpu.memory import dram_bytes_with_reuse, l1_hit_fraction
from ..gpu.occupancy import BlockResources
from ..sparse.csr import CSRMatrix
from ..sparse.ops import sddmm_reference, spmm_flops, spmm_reference
from .cublas import transpose_execution

#: Dense-matrix columns processed per thread block.
TILE_N = 32
#: Rows (warps) per thread block.
ROWS_PER_BLOCK = 4
#: Extra transactions from the column-major dense layout (strided tile
#: loads transposed through shared memory touch ~2x the sectors of a
#: row-major stream).
COLUMN_MAJOR_TRAFFIC_FACTOR = 2.3
#: Instruction overhead of the generic runtime-parameterized inner loop
#: relative to a fully specialized one.
GENERIC_LOOP_FACTOR = 2.6
#: Mixed precision: the wide-tile fp16 kernel requires N to be a multiple of
#: this; other shapes take the scalar fallback path.
FP16_TILE_REQUIREMENT = 32
#: Instruction multiplier of the fp16 scalar fallback path.
FP16_FALLBACK_FACTOR = 24.0
#: cuSPARSE stores 32-bit column indices regardless of value precision.
INDEX_BYTES = 4
#: Sustained fraction of issue/math rate (generic sparse gather kernel).
PIPELINE_EFFICIENCY = 0.48


def spmm_launch(
    a: CSRMatrix, n: int, device: DeviceSpec, precision: str = "fp32"
) -> KernelLaunch:
    """Cost model for ``cusparseSpMM`` on ``A @ B``."""
    if precision not in ("fp32", "mixed"):
        raise ValueError(f"unknown precision {precision!r}")
    vb = 2.0 if precision == "mixed" else 4.0
    ib = float(INDEX_BYTES)
    warp = device.warp_size

    gy = -(-a.n_rows // ROWS_PER_BLOCK)
    gx = -(-n // TILE_N)

    lengths = a.row_lengths.astype(np.float64)
    pad = (-a.n_rows) % ROWS_PER_BLOCK
    grouped = np.concatenate([lengths, np.zeros(pad)]).reshape(
        gy, ROWS_PER_BLOCK
    )

    fallback = precision == "mixed" and (n % FP16_TILE_REQUIREMENT != 0)
    instr_factor = GENERIC_LOOP_FACTOR * (
        FP16_FALLBACK_FACTOR if fallback else 1.0
    )

    # One warp per row: each step multiplies one nonzero against TILE_N
    # dense elements (one output per lane; lanes beyond N predicated).
    fma = grouped * instr_factor
    b_loads = grouped  # scalar loads, one warp instruction per step
    a_loads = 2.0 * np.ceil(grouped / warp)
    smem_reads = 2.0 * grouped  # scalar shared-memory re-reads, no unroll
    addressing = grouped  # per-use index scaling (no pre-scale)
    other = (b_loads + a_loads + smem_reads + addressing) * instr_factor + 12.0

    fma_block = fma.sum(axis=1)
    other_block = other.sum(axis=1)
    smem_block = (grouped * warp * (vb + ib) + grouped * (vb + ib)).sum(axis=1)

    rows_sum = grouped.sum(axis=1)
    rows_present = (grouped > 0).sum(axis=1).astype(np.float64)
    widths = np.full(gx, float(TILE_N))
    widths[-1] = n - (gx - 1) * TILE_N

    a_bytes = rows_sum * (vb + ib)
    b_bytes = (
        np.multiply.outer(rows_sum, widths) * vb * COLUMN_MAJOR_TRAFFIC_FACTOR
    )
    c_bytes = np.multiply.outer(rows_present * ROWS_PER_BLOCK, widths) * vb / ROWS_PER_BLOCK

    # L1 locality: CSR indices are sorted, so the block's rows stream B in
    # synchronized column order (same effect as in our kernel), but only
    # ROWS_PER_BLOCK rows share a block and the column-major layout doubles
    # the footprint of every window.
    touched = len(np.unique(a.column_indices)) if a.nnz else 0
    resident = 8  # typical for the 128-thread, 40-register kernel
    avg_row = a.nnz / a.n_rows if a.n_rows else 0.0
    rows_per_sm = resident * ROWS_PER_BLOCK
    lpe = rows_per_sm * avg_row / touched if touched else 0.0
    window = rows_per_sm * TILE_N * vb * COLUMN_MAJOR_TRAFFIC_FACTOR * 2.0
    l1_frac = l1_hit_fraction(lpe, window, device.l1_capacity_per_sm)

    l1_block = (b_bytes * l1_frac).reshape(-1)
    store_bytes = c_bytes.reshape(-1)

    # A re-reads across the x grid are consecutive (L2); B misses that
    # escape L1 stream through L2 while the touched slice fits.
    a_block = np.broadcast_to(a_bytes[:, None], (gy, gx)).reshape(-1)
    b_rest = (b_bytes * (1.0 - l1_frac)).reshape(-1)
    b_total = float(b_rest.sum())
    unique_b = min(float(touched * n * vb * COLUMN_MAJOR_TRAFFIC_FACTOR), b_total)
    b_dram = dram_bytes_with_reuse(b_total, unique_b, device.l2_capacity)
    b_ratio = b_dram / b_total if b_total else 0.0

    load_dram = a_block / gx + b_rest * b_ratio
    load_l2 = a_block * (1.0 - 1.0 / gx) + b_rest * (1.0 - b_ratio)

    def expand(per_y: np.ndarray) -> np.ndarray:
        return np.repeat(per_y, gx)

    return KernelLaunch(
        name=f"cusparse_spmm_{precision}",
        n_blocks=gx * gy,
        resources=BlockResources(
            threads=ROWS_PER_BLOCK * warp,
            shared_mem_bytes=int(ROWS_PER_BLOCK * warp * (vb + ib)),
            registers_per_thread=40,
        ),
        costs=BlockCosts(
            fma_instructions=expand(fma_block),
            other_instructions=expand(other_block),
            dram_bytes=load_dram + store_bytes,
            l2_bytes=load_l2,
            l1_bytes=l1_block,
            smem_bytes=expand(smem_block),
        ),
        flops=spmm_flops(a, n),
        pipeline_efficiency=PIPELINE_EFFICIENCY,
    )


def cusparse_spmm(
    a: CSRMatrix,
    b: np.ndarray,
    device: DeviceSpec,
    precision: str = "fp32",
) -> KernelResult:
    """``cusparseSpMM``: exact numerics, cuSPARSE-modelled cost."""
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[0] != a.n_cols:
        raise ValueError(f"B shape {b.shape} incompatible with A {a.shape}")
    launch = spmm_launch(a, b.shape[1], device, precision)
    return KernelResult(
        output=spmm_reference(a, b.astype(a.values.dtype)),
        execution=execute(launch, device),
    )


#: Instruction overhead of constrained GEMM relative to the specialized
#: Sputnik SDDMM structure it is modelled on (generic loops, no subwarps).
SDDMM_GENERIC_FACTOR = 2.2


def sddmm_execution(
    mask: CSRMatrix, k: int, device: DeviceSpec
) -> ExecutionResult:
    """Cost model for ``cusparseConstrainedGeMM`` + the explicit transpose.

    The transpose of the right-hand operand is a separate timed launch, as
    in the paper's benchmark setup. The GEMM part reuses the Sputnik SDDMM
    launch structure with generic-loop instruction inflation.
    """
    config = SddmmConfig(nonzeros_per_block=32, vector_width=1, load_balance=False)
    launch, drag = sputnik_sddmm_launch(mask, k, config, device)
    costs = launch.costs.broadcast(launch.n_blocks)
    costs.fma_instructions = costs.fma_instructions * SDDMM_GENERIC_FACTOR
    costs.other_instructions = costs.other_instructions * SDDMM_GENERIC_FACTOR
    gemm_part = execute(
        KernelLaunch(
            name="cusparse_constrained_gemm",
            n_blocks=launch.n_blocks,
            resources=launch.resources,
            costs=costs,
            flops=launch.flops,
            pipeline_efficiency=PIPELINE_EFFICIENCY,
        ),
        device,
    )
    trans = transpose_execution(mask.n_cols, k, device)
    return ExecutionResult.sequence(
        "cusparse_sddmm+transpose", [trans, gemm_part]
    ).add_overhead(drag)


def cusparse_sddmm(
    lhs: np.ndarray,
    rhs: np.ndarray,
    mask: CSRMatrix,
    device: DeviceSpec,
) -> KernelResult:
    """``cusparseConstrainedGeMM`` + the explicit cuBLAS transpose."""
    lhs = np.asarray(lhs, dtype=np.float32)
    rhs = np.asarray(rhs, dtype=np.float32)
    return KernelResult(
        output=sddmm_reference(lhs, rhs, mask),
        execution=sddmm_execution(mask, lhs.shape[1], device),
    )


def spmm_config_equivalent() -> SpmmConfig:
    """The Sputnik config closest to cuSPARSE's structure (for analysis)."""
    return SpmmConfig(
        block_items_x=TILE_N,
        vector_width=1,
        roma=False,
        load_balance=False,
        residue_unroll=False,
        index_prescale=False,
    )
