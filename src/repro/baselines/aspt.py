"""ASpT baseline — Adaptive Sparse Tiling (Hong et al., PPoPP 2019).

ASpT partitions a CSR matrix into row panels and, within each panel,
re-orders columns so that columns holding many nonzeros group into "heavy"
tiles. Heavy tiles are processed with tiled execution that stages the dense
operand in shared memory and reuses it across the panel's rows; the
remaining "light" nonzeros take a standard row-splitting path.

Costs follow that structure: the heavy fraction of nonzeros (computed from
the actual matrix, per panel) enjoys operand reuse — the dense rows it
touches are fetched once per panel — while the light fraction pays
per-nonzero traffic like any row-split kernel. Everything stays scalar
(the published kernels do not use vector memory operations on the sparse
operand).

The paper's two criticisms are modelled explicitly:

- ``memory_overhead_bytes``: ASpT keeps the original CSR, the re-ordered
  copy, and tile metadata — ~3x the memory (Section VII-A2);
- separate SpMM/SDDMM re-orderings: :func:`preprocessing_execution` is the
  per-topology cost that training loops would pay every iteration to move
  gradients back into the forward pass's order.
"""

from __future__ import annotations

import numpy as np

from ..core.types import KernelResult
from ..gpu.device import DeviceSpec
from ..gpu.executor import BlockCosts, ExecutionResult, KernelLaunch, execute
from ..gpu.memory import dram_bytes_with_reuse
from ..gpu.occupancy import BlockResources
from ..sparse.csr import CSRMatrix
from ..sparse.ops import sddmm_flops, sddmm_reference, spmm_flops, spmm_reference

#: Rows per ASpT panel.
PANEL_ROWS = 128
#: A panel column is "heavy" when it holds at least this many nonzeros
#: (enough reuse to amortize the tile machinery).
HEAVY_THRESHOLD = 16
#: Storage factor vs. plain CSR (original + re-ordered copy + metadata).
MEMORY_FACTOR = 3.0
#: Instruction overhead of the tiled path's bookkeeping per nonzero.
TILE_BOOKKEEPING = 0.5


def heavy_light_split(a: CSRMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Per-panel (heavy_nnz, light_nnz) from the actual column occupancy.

    Rows are contiguous in CSR, so panel ``p``'s nonzeros are the slice
    between its first and last row offsets — each panel is one bincount.
    """
    n_panels = -(-a.n_rows // PANEL_ROWS)
    heavy = np.zeros(n_panels, dtype=np.int64)
    light = np.zeros(n_panels, dtype=np.int64)
    heavy_cols = np.zeros(n_panels, dtype=np.int64)
    cols = a.column_indices.astype(np.int64)
    for p in range(n_panels):
        lo = int(a.row_offsets[p * PANEL_ROWS])
        hi = int(a.row_offsets[min((p + 1) * PANEL_ROWS, a.n_rows)])
        if hi == lo:
            continue
        counts = np.bincount(cols[lo:hi], minlength=a.n_cols)
        is_heavy = counts >= HEAVY_THRESHOLD
        heavy[p] = counts[is_heavy].sum()
        light[p] = hi - lo - heavy[p]
        heavy_cols[p] = int(is_heavy.sum())
    return heavy, light, heavy_cols


#: Sustained fraction of issue/math rate (scalar inner loops + tile
#: bookkeeping keep ASpT off the dense pipelines too). The SpMM kernel's
#: per-output predication hits harder than the SDDMM's nonzero-aligned
#: outputs, hence the per-mode values.
PIPELINE_EFFICIENCY = {"spmm": 0.52, "sddmm": 0.47}
#: Dense columns covered per thread block pass (one output per lane).
TILE_N = 32


def _panel_launch(
    a: CSRMatrix,
    n: int,
    device: DeviceSpec,
    name: str,
    flops: float,
    mode: str = "spmm",
) -> KernelLaunch:
    """Shared panel-level cost model for ASpT SpMM and SDDMM.

    Each panel is processed by one block per 32-column tile of the dense
    operand. Heavy nonzeros read their dense rows from a shared-memory
    stage filled once per (panel, tile); light nonzeros read per-use
    through L1/L2 like a row-splitting kernel.
    """
    warp = device.warp_size
    vb, ib = 4.0, 4.0
    heavy, light, heavy_col_counts = heavy_light_split(a)
    n_panels = len(heavy)
    gx = -(-n // TILE_N)
    heavy_f = heavy.astype(np.float64)
    light_f = light.astype(np.float64)
    steps = heavy_f + light_f  # nonzeros processed per panel per x-tile

    # Scalar math: one output per lane, one warp FMA per nonzero per tile.
    fma = steps
    if mode == "sddmm":
        # The inner (k) dimension is contiguous per rhs row, so the staged
        # loads vectorize; outputs are the nonzeros themselves (no output
        # tile predication).
        dense_loads = steps / 4.0
    else:
        dense_loads = steps  # scalar loads (heavy smem, light cache)
    meta = steps * TILE_BOOKKEEPING + 60.0
    other = dense_loads + 2.0 * np.ceil(steps / warp) + meta

    heavy_cols = heavy_col_counts.astype(np.float64)
    # Per (panel, x-tile): heavy columns staged once; light per nonzero.
    b_bytes = (heavy_cols * TILE_N + light_f * TILE_N) * vb
    if mode == "sddmm":
        # Indicator SDDMM: only the mask's indices are read, and the output
        # writes one value per nonzero (once, on the final k-tile).
        a_bytes = steps * ib
        out_bytes = steps * vb / gx
    else:
        a_bytes = steps * (vb + ib)
        out_bytes = np.full(n_panels, float(PANEL_ROWS * TILE_N * vb))
    if mode == "sddmm":
        # Stage re-reads are contiguous in k (vectorized); the column index
        # is consumed once per nonzero, not per element.
        smem_bytes = (
            heavy_f * warp * vb
            + heavy_cols * TILE_N * vb
            + steps * ib
        )
    else:
        smem_bytes = (
            heavy_f * warp * (vb + ib)  # per-nonzero re-reads of the stage
            + heavy_cols * TILE_N * vb  # filling the stage
            + steps * (vb + ib)  # sparse metadata staging
        )

    # Light-path loads see the same synchronized-column L1 locality as any
    # row-split kernel (sorted indices, similar row lengths).
    touched = len(np.unique(a.column_indices)) if a.nnz else 0
    avg_row = a.nnz / a.n_rows if a.n_rows else 0.0
    rows_per_sm = 4 * PANEL_ROWS // 4  # ~4 resident worker blocks
    lpe = rows_per_sm * avg_row / touched if touched else 0.0
    window = rows_per_sm * TILE_N * vb * 2.0
    from ..gpu.memory import l1_hit_fraction

    l1_frac = l1_hit_fraction(
        lpe, window, device.l1_capacity_per_sm - 24 * 1024
    )
    light_bytes = light_f * TILE_N * vb
    l1_bytes = light_bytes * l1_frac

    # Per-operand reuse: the sparse metadata streams once (re-reads across
    # x-tiles are consecutive, i.e. L2 hits); the dense stage re-reads hit
    # L2 while the touched slice fits.
    b_rest = b_bytes - l1_bytes
    b_total = float(b_rest.sum()) * gx
    unique_b = min(float(touched * n * vb), b_total)
    b_dram = dram_bytes_with_reuse(b_total, unique_b, device.l2_capacity)
    b_ratio = b_dram / b_total if b_total else 0.0
    load_dram = a_bytes / gx + b_rest * b_ratio
    load_l2 = a_bytes * (1.0 - 1.0 / gx) + b_rest * (1.0 - b_ratio)

    # Each panel's work is carried by several worker blocks (the published
    # kernels launch one block per panel sub-tile); shard its costs so the
    # scheduler sees realistic parallelism.
    split = 4

    def expand(per_panel: np.ndarray) -> np.ndarray:
        return np.tile(np.repeat(per_panel / split, split), gx)

    return KernelLaunch(
        name=name,
        n_blocks=n_panels * split * gx,
        resources=BlockResources(
            threads=128,
            shared_mem_bytes=24 * 1024,
            registers_per_thread=56,
        ),
        costs=BlockCosts(
            fma_instructions=expand(fma),
            other_instructions=expand(other),
            dram_bytes=expand(load_dram + out_bytes),
            l2_bytes=expand(load_l2),
            l1_bytes=expand(l1_bytes),
            smem_bytes=expand(smem_bytes),
        ),
        flops=flops,
        pipeline_efficiency=PIPELINE_EFFICIENCY[mode],
    )


def aspt_spmm(a: CSRMatrix, b: np.ndarray, device: DeviceSpec) -> KernelResult:
    """ASpT SpMM: exact numerics, adaptive-tiling cost model."""
    b = np.asarray(b, dtype=np.float32)
    if b.ndim != 2 or b.shape[0] != a.n_cols:
        raise ValueError(f"B shape {b.shape} incompatible with A {a.shape}")
    if a.n_rows % 256:
        raise ValueError(
            "the published ASpT kernels require the sparse row count to be "
            f"divisible by 256, got {a.n_rows} (Section VII-A2)"
        )
    launch = _panel_launch(
        a, b.shape[1], device, "aspt_spmm", spmm_flops(a, b.shape[1])
    )
    return KernelResult(
        output=spmm_reference(a, b), execution=execute(launch, device)
    )


def aspt_sddmm(
    lhs: np.ndarray, rhs: np.ndarray, mask: CSRMatrix, device: DeviceSpec
) -> KernelResult:
    """ASpT SDDMM: exact numerics, adaptive-tiling cost model."""
    lhs = np.asarray(lhs, dtype=np.float32)
    rhs = np.asarray(rhs, dtype=np.float32)
    if mask.n_rows % 256:
        raise ValueError(
            "the published ASpT kernels require the sparse row count to be "
            f"divisible by 256, got {mask.n_rows} (Section VII-A2)"
        )
    k = lhs.shape[1]
    launch = _panel_launch(
        mask, k, device, "aspt_sddmm", sddmm_flops(mask, k), mode="sddmm"
    )
    return KernelResult(
        output=sddmm_reference(lhs, rhs, mask),
        execution=execute(launch, device),
    )


def memory_overhead_bytes(a: CSRMatrix) -> int:
    """Storage ASpT needs for this matrix (~3x CSR, Section VII-A2)."""
    return int(MEMORY_FACTOR * a.memory_bytes())


def preprocessing_execution(a: CSRMatrix, device: DeviceSpec) -> ExecutionResult:
    """Cost of ASpT's column re-ordering pass (excluded from kernel timings,
    as in the paper's benchmarks, but paid per training step when gradients
    must be restored to the forward pass's ordering)."""
    nbytes = float(a.memory_bytes())
    launch = KernelLaunch(
        name="aspt_preprocessing",
        n_blocks=max(1, a.n_rows // PANEL_ROWS),
        resources=BlockResources(threads=256),
        costs=BlockCosts(
            other_instructions=8.0 * a.nnz / max(1, a.n_rows // PANEL_ROWS) / 32,
            dram_bytes=4.0 * nbytes / max(1, a.n_rows // PANEL_ROWS),
        ),
        flops=0.0,
    )
    return execute(launch, device)
