"""Block-sparse GPU kernel baseline (Gray, Radford & Kingma 2017).

The paper's introduction contrasts unstructured sparsity with approaches
that force nonzeros into dense blocks: "while this approach is able to
recover much of the performance achieved by dense computation, the
constraint on the location of nonzeros can significantly degrade model
quality". This module provides that comparator:

- :func:`block_sparse_spmm` — a block-sparse matmul costed like a family of
  small dense GEMM tiles (near-dense efficiency per *stored* element);
- :func:`constrain_to_blocks` — impose block structure on an unstructured
  matrix under a fixed storage budget, reporting how much of the weight
  magnitude survives (the quality-loss proxy for the trade-off the paper
  cites [14]-[16]).
"""

from __future__ import annotations

import numpy as np

from ..core.types import KernelResult
from ..gpu.device import DeviceSpec
from ..gpu.executor import BlockCosts, KernelLaunch, execute
from ..gpu.memory import dram_bytes_with_reuse
from ..gpu.occupancy import BlockResources
from ..sparse.blocked import BlockSparseMatrix
from ..sparse.csr import CSRMatrix

#: Output columns covered per thread block pass.
TILE_N = 64
#: Fraction of issued FMAs that are useful inside a stored block (small
#: dense tiles carry more prologue/epilogue than cuBLAS's 128x128 ones).
FMA_EFFICIENCY = 0.75


def spmm_launch(
    a: BlockSparseMatrix, n: int, device: DeviceSpec
) -> KernelLaunch:
    """Cost model: one thread block per (block-row, 64-column tile); its
    stored blocks stream through shared memory and run dense math."""
    bs = a.block_size
    warp = device.warp_size
    gx = -(-n // TILE_N)
    block_rows = a.shape[0] // bs
    lengths = np.diff(a.block_row_offsets).astype(np.float64)

    # Dense math on bs x bs x TILE_N per stored block.
    fma = lengths * bs * bs * TILE_N / FMA_EFFICIENCY / warp
    loads = lengths * (bs * bs + bs * TILE_N) / (warp * 4)
    other = loads + lengths * 2.0 + 20.0
    smem = lengths * (bs * bs + bs * TILE_N) * 4.0 * 2.0

    a_bytes = lengths * bs * bs * 4.0
    b_bytes = lengths * bs * TILE_N * 4.0
    c_bytes = np.full(block_rows, float(bs * TILE_N * 4))

    load_bytes = np.tile(a_bytes + b_bytes, gx)
    total = float(load_bytes.sum())
    unique = min(a.nnz_stored * 4.0 + a.shape[1] * n * 4.0, total)
    dram = dram_bytes_with_reuse(total, unique, device.l2_capacity)
    ratio = dram / total if total else 0.0

    return KernelLaunch(
        name=f"block_sparse_spmm_b{bs}",
        n_blocks=block_rows * gx,
        resources=BlockResources(
            threads=128,
            shared_mem_bytes=int((bs * bs + bs * TILE_N) * 4 * 2),
            registers_per_thread=64,
        ),
        costs=BlockCosts(
            fma_instructions=np.tile(fma, gx),
            other_instructions=np.tile(other, gx),
            dram_bytes=load_bytes * ratio + np.tile(c_bytes, gx),
            l2_bytes=load_bytes * (1.0 - ratio),
            smem_bytes=np.tile(smem, gx),
        ),
        # Useful FLOPs count the true nonzeros; the padding zeros inside
        # stored blocks are wasted work the structure forces.
        flops=2.0 * float(np.count_nonzero(a.blocks)) * n,
        pipeline_efficiency=0.85,
    )


def block_sparse_spmm(
    a: BlockSparseMatrix, b: np.ndarray, device: DeviceSpec
) -> KernelResult:
    """Block-sparse ``A @ B``: exact numerics + modelled cost."""
    b = np.asarray(b, dtype=np.float32)
    if b.ndim != 2 or b.shape[0] != a.shape[1]:
        raise ValueError(f"B shape {b.shape} incompatible with A {a.shape}")
    launch = spmm_launch(a, b.shape[1], device)
    return KernelResult(output=a.matmul(b), execution=execute(launch, device))


def constrain_to_blocks(
    a: CSRMatrix, block_size: int
) -> tuple[BlockSparseMatrix, float]:
    """Impose block structure under the same storage budget.

    Keeps the blocks with the largest Frobenius mass until the stored
    element count reaches the unstructured matrix's nnz. Returns the
    block-sparse matrix and the fraction of the original weight magnitude
    it retains — the structured-sparsity quality proxy (values dropped by
    the block constraint are what degrades model accuracy).
    """
    dense = a.to_dense().astype(np.float32)
    rows, cols = dense.shape
    bs = block_size
    if rows % bs or cols % bs:
        raise ValueError(f"shape {a.shape} not divisible by block size {bs}")
    tiles = dense.reshape(rows // bs, bs, cols // bs, bs).swapaxes(1, 2)
    mass = np.abs(tiles).sum(axis=(2, 3))
    budget_blocks = max(1, a.nnz // (bs * bs))
    flat = np.argsort(-mass.ravel())[:budget_blocks]
    keep = np.zeros(mass.shape, dtype=bool)
    keep.ravel()[flat] = True

    constrained = np.where(
        np.repeat(np.repeat(keep, bs, axis=0), bs, axis=1), dense, 0.0
    )
    total_mass = float(np.abs(dense).sum())
    kept_mass = float(np.abs(constrained).sum())
    bsr = BlockSparseMatrix.from_dense(constrained, bs)
    return bsr, (kept_mass / total_mass if total_mass else 1.0)
