"""Baseline kernels the paper compares against: cuSPARSE, cuBLAS dense GEMM,
MergeSpmm (Yang et al. 2018), and ASpT (Hong et al. 2019)."""

from .block_sparse import block_sparse_spmm, constrain_to_blocks
from .aspt import (
    aspt_sddmm,
    aspt_spmm,
    heavy_light_split,
    memory_overhead_bytes,
    preprocessing_execution,
)
from .cublas import gemm_execution, matmul, transpose_execution
from .cusparse import cusparse_sddmm, cusparse_spmm, sddmm_execution
from .merge_spmm import merge_spmm

__all__ = [
    "cusparse_spmm",
    "cusparse_sddmm",
    "sddmm_execution",
    "merge_spmm",
    "aspt_spmm",
    "aspt_sddmm",
    "heavy_light_split",
    "memory_overhead_bytes",
    "preprocessing_execution",
    "matmul",
    "gemm_execution",
    "transpose_execution",
    "block_sparse_spmm",
    "constrain_to_blocks",
]
