"""Cached-topology sparse transpose (paper, Section IX).

Training a weight-sparse network needs ``A^T B => C``. Fusing the transpose
into a CSR SpMM is hard, but the paper observes that a sparse matrix's
*topology* changes rarely in DNN training: cache the transposed row offsets
and column indices once per topology update, and thereafter transposing
amounts to permuting the value array — "perform the transpose as an argsort
of the matrix values".

:class:`CachedTranspose` implements exactly that: it precomputes the
transposed structure together with the gather permutation, so a fresh set of
values (e.g. after a gradient step) transposes with a single fancy-index.
"""

from __future__ import annotations

import numpy as np

from .csr import INDEX_DTYPE_FOR_VALUES, CSRMatrix


class CachedTranspose:
    """Reusable transpose plan for a fixed CSR topology.

    Args:
        a: the CSR matrix whose topology to plan against. Only the topology
            (offsets/indices) is captured; values are supplied per call.
    """

    def __init__(self, a: CSRMatrix) -> None:
        rows, cols = a.shape
        nnz = a.nnz
        idt = INDEX_DTYPE_FOR_VALUES[a.values.dtype]
        if nnz and rows > np.iinfo(idt).max + 1:
            raise ValueError(
                f"{rows} rows not addressable with {idt} indices after transpose"
            )

        src_rows = np.repeat(np.arange(rows, dtype=np.int64), a.row_lengths)
        src_cols = a.column_indices.astype(np.int64)
        # Stable argsort by destination row (= source column) keeps nonzeros
        # within each transposed row ordered by source row, i.e. the result
        # has sorted column indices.
        self.permutation = np.argsort(src_cols, kind="stable")
        counts = np.bincount(src_cols, minlength=cols)
        self.row_offsets = np.zeros(cols + 1, dtype=np.int64)
        np.cumsum(counts, out=self.row_offsets[1:])
        self.column_indices = src_rows[self.permutation].astype(idt)
        self.shape = (cols, rows)
        self._source_shape = a.shape
        self._source_nnz = nnz

    def apply(self, values: np.ndarray) -> CSRMatrix:
        """Transpose a value array laid out in the planned source topology."""
        values = np.asarray(values)
        if values.shape != (self._source_nnz,):
            raise ValueError(
                f"expected {self._source_nnz} values, got {values.shape}"
            )
        return CSRMatrix(
            shape=self.shape,
            row_offsets=self.row_offsets,
            column_indices=self.column_indices,
            values=values[self.permutation],
        )

    def transpose(self, a: CSRMatrix) -> CSRMatrix:
        """Transpose a matrix that shares the planned topology."""
        if a.shape != self._source_shape or a.nnz != self._source_nnz:
            raise ValueError("matrix does not match the planned topology")
        return self.apply(a.values)


def transpose(a: CSRMatrix) -> CSRMatrix:
    """One-shot CSR transpose (plans and applies in one call)."""
    return CachedTranspose(a).transpose(a)
