"""Reference sparse operations (ground truth for every kernel).

These implement, in plain vectorized numpy/scipy, the three operations the
paper's kernels compute (Section IV):

- SpMM: ``A B => C`` with ``A`` sparse CSR, ``B``/``C`` dense row-major.
- SDDMM: ``A B^T ∘ I[C] => D`` — the deep-learning variant with a
  *transposed* right-hand operand and *indicator* (unscaled) sampling, plus
  the textbook scaled variant for completeness.
- Sparse softmax: row-wise softmax over the nonzero values of a CSR matrix
  (used by the sparse Transformer's attention).

Every kernel in ``repro.core`` and ``repro.baselines`` produces output that
tests compare against these functions.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix

#: Nonzeros per chunk of the SDDMM reference gathers. The ``lhs[row_ids]``/
#: ``rhs[col_ids]`` gathers materialize ``(chunk, k)`` fp32 temporaries;
#: chunking bounds peak memory at ~``2 * SDDMM_CHUNK_NNZ * k * 4`` bytes
#: (a few hundred MB at k=512) regardless of the mask's nnz, so a huge
#: SuiteSparse mask cannot blow up the reference path.
SDDMM_CHUNK_NNZ = 1 << 18

#: Batched-SDDMM fast path: when the full dense product stack holds at most
#: this many fp32 elements (64 MB) AND the mask is at least
#: :data:`SDDMM_DENSE_SAMPLE_DENSITY` dense, compute one batched BLAS GEMM
#: and sample the mask coordinates from it. Per-nonzero gathers move ~2k
#: bytes per output value; a GEMM runs an order of magnitude faster per
#: flop, so it wins whenever more than a few percent of the product is
#: actually needed and the product fits comfortably in memory.
SDDMM_DENSE_SAMPLE_ELEMS = 1 << 24
SDDMM_DENSE_SAMPLE_DENSITY = 0.02


def spmm_reference(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """``A @ B`` with fp32 accumulation; output in ``A``'s value dtype.

    Mixed-precision inputs (fp16 values) are converted to fp32, multiplied
    with fp32 fused accumulation, and converted back on store — the exact
    numeric contract of the paper's mixed-precision kernels (Section V-D3).
    """
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[0] != a.n_cols:
        raise ValueError(f"B shape {b.shape} incompatible with A {a.shape}")
    sp = a.to_scipy().astype(np.float32)
    out = sp @ b.astype(np.float32)
    return np.asarray(out, dtype=a.values.dtype)


def sddmm_reference(
    lhs: np.ndarray,
    rhs: np.ndarray,
    mask: CSRMatrix,
    *,
    scale_by_values: bool = False,
) -> CSRMatrix:
    """Sampled dense–dense matmul: ``(lhs @ rhs.T)`` at ``mask`` nonzeros.

    Computes only the dot products for the nonzero positions of ``mask``
    (the whole point of SDDMM). With ``scale_by_values`` the textbook
    element-wise scaling ``A B^T ∘ C`` is applied; the default matches the
    paper's deep-learning variant ``A B^T ∘ I[C]``.
    """
    lhs = np.asarray(lhs, dtype=np.float32)
    rhs = np.asarray(rhs, dtype=np.float32)
    rows, cols = mask.shape
    if lhs.shape[0] != rows or rhs.shape[0] != cols:
        raise ValueError(
            f"operands {lhs.shape} x {rhs.shape}^T incompatible with "
            f"mask {mask.shape}"
        )
    if lhs.shape[1] != rhs.shape[1]:
        raise ValueError("lhs and rhs must share the inner dimension")
    row_ids = np.repeat(np.arange(rows), mask.row_lengths)
    col_ids = mask.column_indices.astype(np.int64)
    # Gathered batched dot products: one per nonzero, never materializing
    # the dense product. The gathers run in nnz chunks so peak memory is
    # bounded by SDDMM_CHUNK_NNZ, not the mask's nnz.
    out_vals = np.empty(mask.nnz, dtype=np.float32)
    for start in range(0, mask.nnz, SDDMM_CHUNK_NNZ):
        sl = slice(start, start + SDDMM_CHUNK_NNZ)
        out_vals[sl] = np.einsum(
            "nk,nk->n", lhs[row_ids[sl]], rhs[col_ids[sl]], dtype=np.float32
        )
    if scale_by_values:
        out_vals = out_vals * mask.values.astype(np.float32)
    return mask.with_values(out_vals.astype(mask.values.dtype))


def sparse_softmax_reference(a: CSRMatrix, scale: float = 1.0) -> CSRMatrix:
    """Row-wise softmax over the nonzero values of ``a``.

    Rows with no nonzeros stay empty. Numerically stabilized with the
    per-row max, like any production softmax.
    """
    vals = a.values.astype(np.float32) * np.float32(scale)
    lengths = a.row_lengths
    row_ids = np.repeat(np.arange(a.n_rows), lengths)
    row_max = np.full(a.n_rows, -np.inf, dtype=np.float32)
    np.maximum.at(row_max, row_ids, vals)
    shifted = np.exp(vals - row_max[row_ids])
    row_sum = np.zeros(a.n_rows, dtype=np.float32)
    np.add.at(row_sum, row_ids, shifted)
    out = shifted / row_sum[row_ids]
    return a.with_values(out.astype(a.values.dtype))


def spmm_batched_reference(
    a: CSRMatrix, b_stack: np.ndarray, values: np.ndarray | None = None
) -> np.ndarray:
    """Shared-topology batched SpMM: ``C[h] = A_h @ B[h]`` in one call.

    ``b_stack`` is ``(H, k, n)``. With ``values=None`` every head shares
    ``a``'s values, so the whole stack folds into a single sparse x dense
    product against the column-stacked ``(k, H*n)`` operand. With a
    ``(H, nnz)`` ``values`` matrix (e.g. softmaxed attention scores per
    head), the heads form one block-diagonal CSR sharing ``a``'s structure
    and the product is still a single scipy call — never a per-head loop.
    """
    b_stack = np.asarray(b_stack)
    if b_stack.ndim != 3 or b_stack.shape[1] != a.n_cols:
        raise ValueError(
            f"B stack shape {b_stack.shape} incompatible with A {a.shape}; "
            "expected (H, k, n)"
        )
    h, k, n = b_stack.shape
    if values is None:
        # One topology, one value set: C = A @ [B_1 | ... | B_H].
        wide = b_stack.transpose(1, 0, 2).reshape(k, h * n)
        out = spmm_reference(a, np.ascontiguousarray(wide))
        return np.ascontiguousarray(
            out.reshape(a.n_rows, h, n).transpose(1, 0, 2)
        )
    values = np.asarray(values)
    if values.shape != (h, a.nnz):
        raise ValueError(
            f"per-head values shape {values.shape} != ({h}, {a.nnz})"
        )
    from scipy import sparse as sp

    # Block-diagonal stacking: H copies of the structure with per-head
    # values — still exactly one sparse matmul.
    offsets = np.concatenate(
        [[0]]
        + [a.row_offsets[1:].astype(np.int64) + i * a.nnz for i in range(h)]
    )
    indices = np.concatenate(
        [a.column_indices.astype(np.int64) + i * k for i in range(h)]
    )
    block = sp.csr_matrix(
        (values.astype(np.float32).ravel(), indices, offsets),
        shape=(h * a.n_rows, h * k),
    )
    out = block @ b_stack.reshape(h * k, n).astype(np.float32)
    return np.asarray(out, dtype=values.dtype).reshape(h, a.n_rows, n)


def sddmm_batched_reference(
    lhs_stack: np.ndarray,
    rhs_stack: np.ndarray,
    mask: CSRMatrix,
    *,
    scale_by_values: bool = False,
) -> np.ndarray:
    """Shared-topology batched SDDMM: ``(lhs[h] @ rhs[h].T)`` at nonzeros.

    ``lhs_stack`` is ``(H, rows, k)`` and ``rhs_stack`` ``(H, cols, k)``;
    returns the column-stacked ``(nnz, H)`` value matrix (one column per
    head, all sharing ``mask``'s topology).

    Moderately-dense small masks take a batched-GEMM fast path: one BLAS
    ``lhs @ rhs^T`` for the whole stack, sampled at the mask coordinates —
    per-nonzero gathers cost far more per flop than a GEMM once a few
    percent of the product is needed. Large or very sparse problems fall
    back to gathers chunked over nnz blocks like :func:`sddmm_reference`,
    so peak memory stays bounded either way.
    """
    lhs_stack = np.asarray(lhs_stack, dtype=np.float32)
    rhs_stack = np.asarray(rhs_stack, dtype=np.float32)
    if lhs_stack.ndim != 3 or rhs_stack.ndim != 3:
        raise ValueError("operand stacks must be (H, rows, k)")
    if lhs_stack.shape[0] != rhs_stack.shape[0]:
        raise ValueError(
            f"stacks disagree on batch size: {lhs_stack.shape[0]} vs "
            f"{rhs_stack.shape[0]}"
        )
    rows, cols = mask.shape
    if lhs_stack.shape[1] != rows or rhs_stack.shape[1] != cols:
        raise ValueError(
            f"stacks {lhs_stack.shape} x {rhs_stack.shape}^T incompatible "
            f"with mask {mask.shape}"
        )
    if lhs_stack.shape[2] != rhs_stack.shape[2]:
        raise ValueError("lhs and rhs stacks must share the inner dimension")
    h = lhs_stack.shape[0]
    row_ids = np.repeat(np.arange(rows), mask.row_lengths)
    col_ids = mask.column_indices.astype(np.int64)
    dense_elems = h * rows * cols
    density = mask.nnz / max(1, rows * cols)
    if dense_elems <= SDDMM_DENSE_SAMPLE_ELEMS and density >= SDDMM_DENSE_SAMPLE_DENSITY:
        scores = np.matmul(lhs_stack, rhs_stack.transpose(0, 2, 1))
        out_vals = np.ascontiguousarray(scores[:, row_ids, col_ids].T)
    else:
        out_vals = np.empty((mask.nnz, h), dtype=np.float32)
        chunk = max(1, SDDMM_CHUNK_NNZ // max(1, h))
        for start in range(0, mask.nnz, chunk):
            sl = slice(start, start + chunk)
            out_vals[sl] = np.einsum(
                "hnk,hnk->nh",
                lhs_stack[:, row_ids[sl]],
                rhs_stack[:, col_ids[sl]],
                dtype=np.float32,
            )
    if scale_by_values:
        out_vals = out_vals * mask.values.astype(np.float32)[:, None]
    return out_vals.astype(mask.values.dtype)


def sparse_softmax_batched_reference(
    a: CSRMatrix, values: np.ndarray, scale: float = 1.0
) -> np.ndarray:
    """Row-wise softmax over a ``(nnz, H)`` value matrix sharing ``a``'s
    topology — one vectorized pass over all heads."""
    values = np.asarray(values)
    if values.ndim != 2 or values.shape[0] != a.nnz:
        raise ValueError(
            f"value matrix shape {values.shape} != ({a.nnz}, H)"
        )
    vals = values.astype(np.float32) * np.float32(scale)
    h = vals.shape[1]
    lengths = a.row_lengths
    row_ids = np.repeat(np.arange(a.n_rows), lengths)
    row_max = np.full((a.n_rows, h), -np.inf, dtype=np.float32)
    np.maximum.at(row_max, row_ids, vals)
    shifted = np.exp(vals - row_max[row_ids])
    row_sum = np.zeros((a.n_rows, h), dtype=np.float32)
    np.add.at(row_sum, row_ids, shifted)
    out = shifted / row_sum[row_ids]
    return out.astype(values.dtype)


def spmm_flops(a: CSRMatrix, n: int) -> float:
    """Useful FLOPs of ``A @ B`` (2 per nonzero per output column)."""
    return 2.0 * a.nnz * n


def sddmm_flops(mask: CSRMatrix, k: int) -> float:
    """Useful FLOPs of a sampled dense–dense product (2 per nnz per k)."""
    return 2.0 * mask.nnz * k
