"""Reference sparse operations (ground truth for every kernel).

These implement, in plain vectorized numpy/scipy, the three operations the
paper's kernels compute (Section IV):

- SpMM: ``A B => C`` with ``A`` sparse CSR, ``B``/``C`` dense row-major.
- SDDMM: ``A B^T ∘ I[C] => D`` — the deep-learning variant with a
  *transposed* right-hand operand and *indicator* (unscaled) sampling, plus
  the textbook scaled variant for completeness.
- Sparse softmax: row-wise softmax over the nonzero values of a CSR matrix
  (used by the sparse Transformer's attention).

Every kernel in ``repro.core`` and ``repro.baselines`` produces output that
tests compare against these functions.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix


def spmm_reference(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """``A @ B`` with fp32 accumulation; output in ``A``'s value dtype.

    Mixed-precision inputs (fp16 values) are converted to fp32, multiplied
    with fp32 fused accumulation, and converted back on store — the exact
    numeric contract of the paper's mixed-precision kernels (Section V-D3).
    """
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[0] != a.n_cols:
        raise ValueError(f"B shape {b.shape} incompatible with A {a.shape}")
    sp = a.to_scipy().astype(np.float32)
    out = sp @ b.astype(np.float32)
    return np.asarray(out, dtype=a.values.dtype)


def sddmm_reference(
    lhs: np.ndarray,
    rhs: np.ndarray,
    mask: CSRMatrix,
    *,
    scale_by_values: bool = False,
) -> CSRMatrix:
    """Sampled dense–dense matmul: ``(lhs @ rhs.T)`` at ``mask`` nonzeros.

    Computes only the dot products for the nonzero positions of ``mask``
    (the whole point of SDDMM). With ``scale_by_values`` the textbook
    element-wise scaling ``A B^T ∘ C`` is applied; the default matches the
    paper's deep-learning variant ``A B^T ∘ I[C]``.
    """
    lhs = np.asarray(lhs, dtype=np.float32)
    rhs = np.asarray(rhs, dtype=np.float32)
    rows, cols = mask.shape
    if lhs.shape[0] != rows or rhs.shape[0] != cols:
        raise ValueError(
            f"operands {lhs.shape} x {rhs.shape}^T incompatible with "
            f"mask {mask.shape}"
        )
    if lhs.shape[1] != rhs.shape[1]:
        raise ValueError("lhs and rhs must share the inner dimension")
    row_ids = np.repeat(np.arange(rows), mask.row_lengths)
    col_ids = mask.column_indices.astype(np.int64)
    # Gathered batched dot products: one per nonzero, never materializing
    # the dense product.
    out_vals = np.einsum(
        "nk,nk->n", lhs[row_ids], rhs[col_ids], dtype=np.float32
    )
    if scale_by_values:
        out_vals = out_vals * mask.values.astype(np.float32)
    return mask.with_values(out_vals.astype(mask.values.dtype))


def sparse_softmax_reference(a: CSRMatrix, scale: float = 1.0) -> CSRMatrix:
    """Row-wise softmax over the nonzero values of ``a``.

    Rows with no nonzeros stay empty. Numerically stabilized with the
    per-row max, like any production softmax.
    """
    vals = a.values.astype(np.float32) * np.float32(scale)
    lengths = a.row_lengths
    row_ids = np.repeat(np.arange(a.n_rows), lengths)
    row_max = np.full(a.n_rows, -np.inf, dtype=np.float32)
    np.maximum.at(row_max, row_ids, vals)
    shifted = np.exp(vals - row_max[row_ids])
    row_sum = np.zeros(a.n_rows, dtype=np.float32)
    np.add.at(row_sum, row_ids, shifted)
    out = shifted / row_sum[row_ids]
    return a.with_values(out.astype(a.values.dtype))


def spmm_flops(a: CSRMatrix, n: int) -> float:
    """Useful FLOPs of ``A @ B`` (2 per nonzero per output column)."""
    return 2.0 * a.nnz * n


def sddmm_flops(mask: CSRMatrix, k: int) -> float:
    """Useful FLOPs of a sampled dense–dense product (2 per nnz per k)."""
    return 2.0 * mask.nnz * k
