"""Explicit row padding — the alternative to ROMA the paper rejects.

Section V-B2: "A simple approach ... is to pad the rows of the sparse matrix
with zeros such that all rows are a multiple of four in length. However,
this limits the generality of the kernel." We implement it anyway, both as a
baseline for tests (padded SpMM must equal unpadded) and to quantify the
storage ROMA avoids.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix


def pad_rows(a: CSRMatrix, multiple: int) -> CSRMatrix:
    """Zero-pad every row of ``a`` to a multiple of ``multiple`` nonzeros.

    Padding entries carry value 0 and repeat the row's last column index
    (or column 0 for empty rows), so the padded matrix represents the same
    values while every row offset is ``multiple``-aligned.
    """
    if multiple < 1:
        raise ValueError("padding multiple must be >= 1")
    lengths = a.row_lengths
    padded_lengths = -(-lengths // multiple) * multiple
    # Rows of length 0 stay empty: padding them would change the row offset
    # alignment of *other* rows for no benefit and cuSPARSE-style kernels
    # skip them anyway.
    padded_lengths[lengths == 0] = 0
    new_offsets = np.zeros(a.n_rows + 1, dtype=np.int64)
    np.cumsum(padded_lengths, out=new_offsets[1:])

    total = int(new_offsets[-1])
    values = np.zeros(total, dtype=a.values.dtype)
    indices = np.zeros(total, dtype=a.column_indices.dtype)

    # Scatter the original nonzeros into their padded slots.
    row_ids = np.repeat(np.arange(a.n_rows), lengths)
    within = np.arange(a.nnz) - np.repeat(a.row_offsets[:-1], lengths)
    dest = new_offsets[row_ids] + within
    values[dest] = a.values
    indices[dest] = a.column_indices

    # Fill pad slots with the row's last real column index (keeps indices
    # in range and sorted-enough for bandwidth accounting).
    pad_rows_ids = np.repeat(
        np.arange(a.n_rows), (padded_lengths - lengths)
    )
    if len(pad_rows_ids):
        pad_pos = _pad_positions(new_offsets, lengths, padded_lengths)
        last_idx = np.zeros(a.n_rows, dtype=a.column_indices.dtype)
        nonempty = lengths > 0
        last_idx[nonempty] = a.column_indices[a.row_offsets[1:][nonempty] - 1]
        indices[pad_pos] = last_idx[pad_rows_ids]

    return CSRMatrix(a.shape, new_offsets, indices, values)


def _pad_positions(
    new_offsets: np.ndarray, lengths: np.ndarray, padded_lengths: np.ndarray
) -> np.ndarray:
    """Flat positions of all padding slots in the padded nonzero arrays."""
    pad_counts = padded_lengths - lengths
    rows = np.repeat(np.arange(len(lengths)), pad_counts)
    within = np.arange(int(pad_counts.sum())) - np.repeat(
        np.cumsum(pad_counts) - pad_counts, pad_counts
    )
    return new_offsets[rows] + lengths[rows] + within


def padding_overhead(a: CSRMatrix, multiple: int) -> float:
    """Fractional nnz growth explicit padding would cost (ROMA costs zero)."""
    lengths = a.row_lengths
    padded = -(-lengths // multiple) * multiple
    padded[lengths == 0] = 0
    if a.nnz == 0:
        return 0.0
    return float(padded.sum() - lengths.sum()) / float(a.nnz)
