"""Compressed sparse row (CSR) matrices.

The paper's kernels operate directly on standard CSR — row offsets, column
indices, values — with no structural constraints on the nonzero topology.
This implementation supports the two precision regimes the kernels use:

- single precision: float32 values, int32 column indices;
- mixed precision (Section V-D3): float16 values with int16 column indices
  for the sparse-matrix metadata.

Row offsets are always int64 (they index into the nnz array and are never
stored per-nonzero).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

#: value dtype -> column-index dtype used by the kernels (Section V-D3).
INDEX_DTYPE_FOR_VALUES = {
    np.dtype(np.float32): np.dtype(np.int32),
    np.dtype(np.float16): np.dtype(np.int16),
}


def check_column_capacity(cols: int, value_dtype: np.dtype) -> np.dtype:
    """Return the index dtype for ``value_dtype``, rejecting unaddressable
    widths *before* any index array can silently wrap.

    The mixed-precision kernels (Section V-D3) pair fp16 values with int16
    column indices, so an fp16 matrix is limited to 32768 columns; wider
    matrices must stay in fp32/int32.
    """
    idt = INDEX_DTYPE_FOR_VALUES[np.dtype(value_dtype)]
    capacity = int(np.iinfo(idt).max) + 1
    if cols > capacity:
        raise ValueError(
            f"{cols} columns exceed the {idt} column-index range (max "
            f"{capacity}): the mixed-precision kernels (Section V-D3) store "
            f"{np.dtype(value_dtype)} values with {idt} indices; use fp32 "
            "values for matrices this wide"
        )
    return idt


@dataclass
class CSRMatrix:
    """A sparse matrix in compressed-sparse-row format.

    Attributes:
        shape: ``(rows, cols)``.
        row_offsets: int64 array of length ``rows + 1``; row ``i`` owns
            nonzeros ``row_offsets[i]:row_offsets[i+1]``.
        column_indices: column index per nonzero (int32 or int16).
        values: value per nonzero (float32 or float16).
    """

    shape: tuple[int, int]
    row_offsets: np.ndarray
    column_indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        rows, cols = self.shape
        if rows < 0 or cols < 0:
            raise ValueError(f"invalid shape {self.shape}")
        self.row_offsets = np.ascontiguousarray(self.row_offsets, dtype=np.int64)
        self.column_indices = np.ascontiguousarray(self.column_indices)
        self.values = np.ascontiguousarray(self.values)
        if self.row_offsets.shape != (rows + 1,):
            raise ValueError("row_offsets must have length rows + 1")
        if self.row_offsets[0] != 0:
            raise ValueError("row_offsets must start at 0")
        if np.any(np.diff(self.row_offsets) < 0):
            raise ValueError("row_offsets must be non-decreasing")
        nnz = int(self.row_offsets[-1])
        if nnz < 0:
            raise ValueError(
                f"row_offsets[-1] = {nnz} is negative: nnz must be a "
                "non-negative count"
            )
        if self.column_indices.shape != (nnz,) or self.values.shape != (nnz,):
            raise ValueError("column_indices/values length must equal nnz")
        vdt = self.values.dtype
        if vdt not in INDEX_DTYPE_FOR_VALUES:
            raise TypeError(f"unsupported value dtype {vdt}")
        expected_idx = INDEX_DTYPE_FOR_VALUES[vdt]
        if self.column_indices.dtype != expected_idx:
            raise TypeError(
                f"{vdt} values require {expected_idx} indices, "
                f"got {self.column_indices.dtype}"
            )
        if nnz:
            check_column_capacity(cols, vdt)
        if nnz and (
            int(self.column_indices.min()) < 0
            or int(self.column_indices.max()) >= cols
        ):
            raise ValueError("column index out of range")
        self._structure_checksum = self.structure_checksum()

    # ------------------------------------------------------------------
    # Deep validation (reliability layer)
    # ------------------------------------------------------------------
    def structure_checksum(self) -> str:
        """Content hash of the structural metadata (not the values).

        Computed once at construction; :meth:`validate_deep` recomputes and
        compares, so any later in-place mutation of offsets or indices —
        including a single bit flip that keeps every invariant intact —
        is detectable.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(repr(self.shape).encode())
        h.update(str(self.values.dtype).encode())
        h.update(self.row_offsets.tobytes())
        h.update(self.column_indices.tobytes())
        return h.hexdigest()

    def validate_deep(self) -> None:
        """Re-verify every structural invariant plus the stored checksum.

        Raises :class:`~repro.reliability.errors.InvalidTopologyError` on
        the first violation. This is the guardrail the fault injector's
        simulated-memory bit flips are caught by: an in-range flipped
        column index passes the range checks but not the checksum.
        """
        from ..reliability.errors import InvalidTopologyError

        rows, cols = self.shape
        if self.row_offsets.shape != (rows + 1,) or self.row_offsets[0] != 0:
            raise InvalidTopologyError(
                f"corrupt row_offsets: shape {self.row_offsets.shape}, "
                f"first entry {self.row_offsets[:1]}"
            )
        if np.any(np.diff(self.row_offsets) < 0):
            raise InvalidTopologyError("corrupt row_offsets: not monotone")
        nnz = int(self.row_offsets[-1])
        if nnz < 0 or self.column_indices.shape != (nnz,):
            raise InvalidTopologyError(
                f"corrupt nnz: offsets say {nnz}, "
                f"{self.column_indices.shape[0]} indices present"
            )
        if nnz and (
            int(self.column_indices.min()) < 0
            or int(self.column_indices.max()) >= cols
        ):
            raise InvalidTopologyError(
                "corrupt column_indices: index outside [0, cols)"
            )
        if self.structure_checksum() != self._structure_checksum:
            raise InvalidTopologyError(
                "structure checksum mismatch: metadata mutated since "
                "construction (simulated memory corruption)"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls, dense: np.ndarray, dtype: np.dtype | type = np.float32
    ) -> "CSRMatrix":
        """Compress a dense 2-D array, dropping exact zeros."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        vdt = np.dtype(dtype)
        idt = check_column_capacity(dense.shape[1], vdt)
        mask = dense != 0
        row_offsets = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.cumsum(mask.sum(axis=1), out=row_offsets[1:])
        rows, cols = np.nonzero(mask)
        del rows  # implicit in row_offsets
        return cls(
            shape=dense.shape,
            row_offsets=row_offsets,
            column_indices=cols.astype(idt),
            values=dense[mask].astype(vdt),
        )

    @classmethod
    def from_scipy(
        cls, mat: sp.spmatrix | sp.sparray, dtype: np.dtype | type = np.float32
    ) -> "CSRMatrix":
        """Convert any scipy sparse matrix (duplicates summed, zeros kept)."""
        csr = sp.csr_matrix(mat)
        csr.sum_duplicates()
        csr.sort_indices()
        vdt = np.dtype(dtype)
        idt = check_column_capacity(csr.shape[1], vdt)
        return cls(
            shape=csr.shape,
            row_offsets=csr.indptr.astype(np.int64),
            column_indices=csr.indices.astype(idt),
            values=csr.data.astype(vdt),
        )

    @classmethod
    def from_mask(
        cls,
        mask: np.ndarray,
        values: np.ndarray | None = None,
        dtype: np.dtype | type = np.float32,
    ) -> "CSRMatrix":
        """Build from a boolean mask; values default to 1 (an indicator)."""
        mask = np.asarray(mask, dtype=bool)
        vdt = np.dtype(dtype)
        idt = check_column_capacity(mask.shape[1], vdt)
        row_offsets = np.zeros(mask.shape[0] + 1, dtype=np.int64)
        np.cumsum(mask.sum(axis=1), out=row_offsets[1:])
        _, cols = np.nonzero(mask)
        if values is None:
            vals = np.ones(len(cols), dtype=vdt)
        else:
            vals = np.asarray(values)[mask].astype(vdt)
        return cls(mask.shape, row_offsets, cols.astype(idt), vals)

    # ------------------------------------------------------------------
    # Views and conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        # Duplicate (row, col) entries sum, the standard CSR semantic; this
        # keeps explicitly padded matrices (see sparse.padding) faithful.
        out = np.zeros(self.shape, dtype=self.values.dtype)
        rows = np.repeat(np.arange(self.shape[0]), self.row_lengths)
        np.add.at(out, (rows, self.column_indices.astype(np.int64)), self.values)
        return out

    def to_scipy(self) -> sp.csr_matrix:
        return sp.csr_matrix(
            (
                self.values.astype(np.float64),
                self.column_indices.astype(np.int64),
                self.row_offsets,
            ),
            shape=self.shape,
        )

    def astype(self, dtype: np.dtype | type) -> "CSRMatrix":
        """Re-type values (and, implicitly, indices per the precision rule)."""
        vdt = np.dtype(dtype)
        idt = check_column_capacity(self.shape[1], vdt)
        return CSRMatrix(
            self.shape,
            self.row_offsets.copy(),
            self.column_indices.astype(idt),
            self.values.astype(vdt),
        )

    def with_values(self, values: np.ndarray) -> "CSRMatrix":
        """Same topology, new values (e.g. after a gradient update)."""
        values = np.asarray(values, dtype=self.values.dtype)
        if values.shape != self.values.shape:
            raise ValueError("value array must match nnz")
        return CSRMatrix(
            self.shape, self.row_offsets, self.column_indices, values
        )

    def take_rows(self, rows: np.ndarray) -> "CSRMatrix":
        """Gather a row subset (in the given order) into a new CSR matrix.

        The sharding layer uses this to materialize per-device row shards:
        each selected row's nonzeros are copied intact, so per-row kernel
        semantics (accumulation order included) are unchanged. Fully
        vectorized — O(nnz selected), no per-row python loop.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 1:
            raise ValueError("take_rows expects a 1-D row index array")
        if rows.size and (
            int(rows.min()) < 0 or int(rows.max()) >= self.shape[0]
        ):
            raise ValueError("row index out of range")
        lengths = self.row_lengths[rows]
        new_offsets = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=new_offsets[1:])
        total = int(new_offsets[-1])
        starts = self.row_offsets[rows]
        # Position of each gathered nonzero inside the source arrays:
        # arange over the destination, rebased per row to the source start.
        dest = np.arange(total, dtype=np.int64)
        src = dest - np.repeat(new_offsets[:-1], lengths) + np.repeat(
            starts, lengths
        )
        return CSRMatrix(
            (rows.size, self.shape[1]),
            new_offsets,
            self.column_indices[src],
            self.values[src],
        )

    def take_cols(self, lo: int, hi: int) -> "CSRMatrix":
        """Slice the column range ``[lo, hi)`` into a new CSR matrix.

        Column indices are rebased to the slice, so the result is a valid
        ``(rows, hi - lo)`` matrix — the 2-D sharding layer pairs this with
        :meth:`take_rows` to cut per-device tiles.
        """
        if not (0 <= lo <= hi <= self.shape[1]):
            raise ValueError(
                f"column range [{lo}, {hi}) outside [0, {self.shape[1]})"
            )
        keep = (self.column_indices >= lo) & (self.column_indices < hi)
        rows = np.repeat(np.arange(self.shape[0]), self.row_lengths)[keep]
        new_offsets = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.add.at(new_offsets[1:], rows, 1)
        np.cumsum(new_offsets, out=new_offsets)
        idt = self.column_indices.dtype
        return CSRMatrix(
            (self.shape[0], hi - lo),
            new_offsets,
            (self.column_indices[keep] - lo).astype(idt),
            self.values[keep],
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.row_offsets[-1])

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def row_lengths(self) -> np.ndarray:
        """Nonzeros per row, shape ``(rows,)``."""
        return np.diff(self.row_offsets)

    @property
    def sparsity(self) -> float:
        """Fraction of zero-valued entries (1 - density)."""
        total = self.shape[0] * self.shape[1]
        return 1.0 - self.nnz / total if total else 0.0

    @property
    def index_bytes(self) -> int:
        return self.column_indices.dtype.itemsize

    @property
    def value_bytes(self) -> int:
        return self.values.dtype.itemsize

    def memory_bytes(self) -> int:
        """Bytes needed to store the matrix (values + indices + offsets)."""
        return (
            self.values.nbytes
            + self.column_indices.nbytes
            + self.row_offsets.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"sparsity={self.sparsity:.3f}, dtype={self.values.dtype})"
        )
