"""Block-sparse (BSR-style) format — the structured-sparsity comparator.

The paper's introduction contrasts unstructured sparsity against approaches
that "enforce structure on the topology of nonzeros such that nonzero values
are grouped into blocks" (Narang et al., Gray et al.). This module provides
that structured format so examples and ablations can quantify the trade-off
the paper describes: block structure recovers dense-like efficiency but
constrains where nonzeros may live.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix


@dataclass
class BlockSparseMatrix:
    """Row-compressed storage of dense ``block_size x block_size`` tiles."""

    shape: tuple[int, int]
    block_size: int
    block_row_offsets: np.ndarray
    block_column_indices: np.ndarray
    #: Dense tile payloads, shape ``(n_blocks, block_size, block_size)``.
    blocks: np.ndarray

    def __post_init__(self) -> None:
        rows, cols = self.shape
        bs = self.block_size
        if bs <= 0 or rows % bs or cols % bs:
            raise ValueError(
                f"shape {self.shape} not divisible by block size {bs}"
            )
        self.block_row_offsets = np.ascontiguousarray(
            self.block_row_offsets, dtype=np.int64
        )
        nblocks = int(self.block_row_offsets[-1])
        if self.blocks.shape != (nblocks, bs, bs):
            raise ValueError("block payload shape mismatch")
        if self.block_column_indices.shape != (nblocks,):
            raise ValueError("block column index count mismatch")

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, block_size: int, dtype=np.float32
    ) -> "BlockSparseMatrix":
        """Compress, keeping every block that contains any nonzero."""
        dense = np.asarray(dense, dtype=dtype)
        rows, cols = dense.shape
        bs = block_size
        if rows % bs or cols % bs:
            raise ValueError("matrix shape must be divisible by block size")
        tiles = dense.reshape(rows // bs, bs, cols // bs, bs).swapaxes(1, 2)
        occupied = np.any(tiles != 0, axis=(2, 3))
        offsets = np.zeros(rows // bs + 1, dtype=np.int64)
        np.cumsum(occupied.sum(axis=1), out=offsets[1:])
        brow, bcol = np.nonzero(occupied)
        del brow
        return cls(
            shape=dense.shape,
            block_size=bs,
            block_row_offsets=offsets,
            block_column_indices=bcol.astype(np.int32),
            blocks=tiles[occupied],
        )

    @property
    def n_blocks(self) -> int:
        return int(self.block_row_offsets[-1])

    @property
    def nnz_stored(self) -> int:
        """Stored elements, counting the zeros inside occupied blocks."""
        return self.n_blocks * self.block_size * self.block_size

    @property
    def density_overhead(self) -> float:
        """Stored elements divided by true nonzeros (>= 1; waste factor)."""
        true_nnz = int(np.count_nonzero(self.blocks))
        return self.nnz_stored / true_nnz if true_nnz else 1.0

    def to_dense(self) -> np.ndarray:
        bs = self.block_size
        rows, cols = self.shape
        out = np.zeros(self.shape, dtype=self.blocks.dtype)
        lengths = np.diff(self.block_row_offsets)
        brows = np.repeat(np.arange(rows // bs), lengths)
        for b, (br, bc) in enumerate(
            zip(brows, self.block_column_indices.astype(np.int64))
        ):
            out[br * bs : (br + 1) * bs, bc * bs : (bc + 1) * bs] = self.blocks[b]
        return out

    def to_csr(self) -> CSRMatrix:
        return CSRMatrix.from_dense(self.to_dense(), dtype=self.blocks.dtype)

    def matmul(self, b: np.ndarray) -> np.ndarray:
        """``A @ B`` computed block-row by block-row (dense tile math)."""
        b = np.asarray(b, dtype=np.float32)
        if b.shape[0] != self.shape[1]:
            raise ValueError("inner dimensions do not match")
        bs = self.block_size
        out = np.zeros((self.shape[0], b.shape[1]), dtype=np.float32)
        b_tiles = b.reshape(self.shape[1] // bs, bs, b.shape[1])
        lengths = np.diff(self.block_row_offsets)
        brows = np.repeat(np.arange(self.shape[0] // bs), lengths)
        for blk, br, bc in zip(
            self.blocks.astype(np.float32),
            brows,
            self.block_column_indices.astype(np.int64),
        ):
            out[br * bs : (br + 1) * bs] += blk @ b_tiles[bc]
        return out.astype(self.blocks.dtype)
