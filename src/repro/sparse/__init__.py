"""Sparse matrix substrate: CSR/CSC/block formats, reference operations,
cached-topology transpose, and explicit row padding."""

from .blocked import BlockSparseMatrix
from .csc import CSCMatrix, csc_to_csr, csr_to_csc
from .csr import INDEX_DTYPE_FOR_VALUES, CSRMatrix
from .ops import (
    sddmm_flops,
    sddmm_reference,
    sparse_softmax_reference,
    spmm_flops,
    spmm_reference,
)
from .padding import pad_rows, padding_overhead
from .transpose import CachedTranspose, transpose

__all__ = [
    "CSRMatrix",
    "CSCMatrix",
    "BlockSparseMatrix",
    "INDEX_DTYPE_FOR_VALUES",
    "csr_to_csc",
    "csc_to_csr",
    "spmm_reference",
    "sddmm_reference",
    "sparse_softmax_reference",
    "spmm_flops",
    "sddmm_flops",
    "pad_rows",
    "padding_overhead",
    "CachedTranspose",
    "transpose",
]
