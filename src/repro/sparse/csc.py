"""Compressed sparse column (CSC) matrices.

Section IV-C notes that computing ``BA => C`` with ``A`` in CSC and dense
matrices column-major is exactly as efficient as the CSR/row-major scheme;
CSC also backs the transposed-operand path used in training (Section IX).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .csr import INDEX_DTYPE_FOR_VALUES, CSRMatrix


@dataclass
class CSCMatrix:
    """A sparse matrix in compressed-sparse-column format."""

    shape: tuple[int, int]
    col_offsets: np.ndarray
    row_indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        rows, cols = self.shape
        self.col_offsets = np.ascontiguousarray(self.col_offsets, dtype=np.int64)
        self.row_indices = np.ascontiguousarray(self.row_indices)
        self.values = np.ascontiguousarray(self.values)
        if self.col_offsets.shape != (cols + 1,) or self.col_offsets[0] != 0:
            raise ValueError("col_offsets must have length cols + 1, start at 0")
        if np.any(np.diff(self.col_offsets) < 0):
            raise ValueError("col_offsets must be non-decreasing")
        nnz = int(self.col_offsets[-1])
        if self.row_indices.shape != (nnz,) or self.values.shape != (nnz,):
            raise ValueError("row_indices/values length must equal nnz")
        vdt = self.values.dtype
        if vdt not in INDEX_DTYPE_FOR_VALUES:
            raise TypeError(f"unsupported value dtype {vdt}")
        if self.row_indices.dtype != INDEX_DTYPE_FOR_VALUES[vdt]:
            raise TypeError("index dtype does not match value precision rule")
        if nnz and (
            int(self.row_indices.min()) < 0 or int(self.row_indices.max()) >= rows
        ):
            raise ValueError("row index out of range")

    @property
    def nnz(self) -> int:
        return int(self.col_offsets[-1])

    @property
    def col_lengths(self) -> np.ndarray:
        return np.diff(self.col_offsets)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.values.dtype)
        cols = np.repeat(np.arange(self.shape[1]), self.col_lengths)
        out[self.row_indices.astype(np.int64), cols] = self.values
        return out

    def to_scipy(self) -> sp.csc_matrix:
        return sp.csc_matrix(
            (
                self.values.astype(np.float64),
                self.row_indices.astype(np.int64),
                self.col_offsets,
            ),
            shape=self.shape,
        )


def csr_to_csc(a: CSRMatrix) -> CSCMatrix:
    """Convert CSR to CSC (same matrix, column-compressed)."""
    s = a.to_scipy().tocsc()
    s.sort_indices()
    idt = INDEX_DTYPE_FOR_VALUES[a.values.dtype]
    return CSCMatrix(
        shape=a.shape,
        col_offsets=s.indptr.astype(np.int64),
        row_indices=s.indices.astype(idt),
        values=s.data.astype(a.values.dtype),
    )


def csc_to_csr(a: CSCMatrix) -> CSRMatrix:
    """Convert CSC back to CSR."""
    s = a.to_scipy().tocsr()
    s.sort_indices()
    return CSRMatrix.from_scipy(s, dtype=a.values.dtype)
