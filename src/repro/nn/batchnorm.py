"""Batch normalization and its inference-time fusion.

MobileNetV1 follows every convolution with batch norm + ReLU; "at inference
time, batch normalization can be fused into the preceding linear operation"
(Section VII-D1). The fusion folds scale/shift into the convolution's
weights and bias, so the fused model runs fewer kernels — tests assert the
fused and unfused paths agree numerically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csr import CSRMatrix


@dataclass
class BatchNorm:
    """Per-channel inference-time batch normalization."""

    gamma: np.ndarray
    beta: np.ndarray
    running_mean: np.ndarray
    running_var: np.ndarray
    eps: float = 1e-5

    def __post_init__(self) -> None:
        arrays = [self.gamma, self.beta, self.running_mean, self.running_var]
        shapes = {np.asarray(a).shape for a in arrays}
        if len(shapes) != 1 or len(next(iter(shapes))) != 1:
            raise ValueError("batch norm parameters must share a 1-D shape")
        self.gamma = np.asarray(self.gamma, np.float32)
        self.beta = np.asarray(self.beta, np.float32)
        self.running_mean = np.asarray(self.running_mean, np.float32)
        self.running_var = np.asarray(self.running_var, np.float32)
        if np.any(self.running_var < 0):
            raise ValueError("running variance must be non-negative")

    @property
    def channels(self) -> int:
        return len(self.gamma)

    def scale_shift(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-channel ``(scale, shift)`` with ``y = scale * x + shift``."""
        scale = self.gamma / np.sqrt(self.running_var + self.eps)
        shift = self.beta - scale * self.running_mean
        return scale.astype(np.float32), shift.astype(np.float32)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Normalize ``(C, ...)`` activations (reference, unfused path)."""
        scale, shift = self.scale_shift()
        extra = (1,) * (np.asarray(x).ndim - 1)
        return x * scale.reshape(-1, *extra) + shift.reshape(-1, *extra)


def fuse_into_dense(
    weight: np.ndarray, bias: np.ndarray | None, bn: BatchNorm
) -> tuple[np.ndarray, np.ndarray]:
    """Fold batch norm into a dense ``(out, in)`` weight matrix + bias."""
    weight = np.asarray(weight, np.float32)
    if weight.shape[0] != bn.channels:
        raise ValueError("batch norm channels must match output features")
    scale, shift = bn.scale_shift()
    fused_w = weight * scale[:, None]
    base = np.zeros(bn.channels, np.float32) if bias is None else np.asarray(bias)
    fused_b = scale * base + shift
    return fused_w.astype(np.float32), fused_b.astype(np.float32)


def fuse_into_sparse(
    weight: CSRMatrix, bias: np.ndarray | None, bn: BatchNorm
) -> tuple[CSRMatrix, np.ndarray]:
    """Fold batch norm into a CSR weight matrix (same topology) + bias."""
    if weight.n_rows != bn.channels:
        raise ValueError("batch norm channels must match output features")
    scale, shift = bn.scale_shift()
    row_scale = np.repeat(scale, weight.row_lengths)
    fused_values = (weight.values.astype(np.float32) * row_scale).astype(
        weight.values.dtype
    )
    base = np.zeros(bn.channels, np.float32) if bias is None else np.asarray(bias)
    fused_b = scale * base + shift
    return weight.with_values(fused_values), fused_b.astype(np.float32)


def fuse_into_depthwise(
    filters: np.ndarray, bias: np.ndarray | None, bn: BatchNorm
) -> tuple[np.ndarray, np.ndarray]:
    """Fold batch norm into depthwise ``(C, k, k)`` filters + bias."""
    filters = np.asarray(filters, np.float32)
    if filters.shape[0] != bn.channels:
        raise ValueError("batch norm channels must match filter channels")
    scale, shift = bn.scale_shift()
    fused_f = filters * scale[:, None, None]
    base = np.zeros(bn.channels, np.float32) if bias is None else np.asarray(bias)
    fused_b = scale * base + shift
    return fused_f.astype(np.float32), fused_b.astype(np.float32)
