"""The sparse Transformer of Section VII-C (Table III).

Architecture from the paper's experimental setup: 3 layers, 8 attention
heads, hidden dimension 1,024, filter size 4,096, sequence length 12,288
(ImageNet-64x64 image generation), batch size 8, single-precision forward
pass. The sparse variant uses the fixed banded+random attention mask of
Figure 11, shared by all heads and layers.

Model quality (bits per dimension) is carried as a paper-reference constant
— training ImageNet-64x64 for 140k steps is out of scope for a CPU
reproduction (DESIGN.md Section 2); runtime and memory are measured on the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import ops
from ..datasets.attention import banded_random_mask
from ..gpu.device import DeviceSpec
from ..sparse.csr import CSRMatrix
from .attention import dense_attention_cost, sparse_attention_cost
from .profile import Profile, unmetered_dispatch

#: Quality from Table III (bits per dimension; lower is better).
REFERENCE_BITS_PER_DIM = {"dense": 3.76, "sparse": 3.77}


@dataclass(frozen=True)
class TransformerConfig:
    """The Table III model."""

    n_layers: int = 3
    n_heads: int = 8
    d_model: int = 1024
    d_ffn: int = 4096
    sequence_length: int = 12288
    batch_size: int = 8
    attention_band: int = 256
    off_diagonal_sparsity: float = 0.95

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads:
            raise ValueError("d_model must divide evenly across heads")

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def tokens(self) -> int:
        return self.batch_size * self.sequence_length

    def attention_mask(self, seed: int = 0) -> CSRMatrix:
        return banded_random_mask(
            self.sequence_length,
            band=self.attention_band,
            off_diagonal_sparsity=self.off_diagonal_sparsity,
            seed=seed,
        )

    def weight_bytes(self) -> int:
        per_layer = 4 * self.d_model**2 + 2 * self.d_model * self.d_ffn
        return 4 * per_layer * self.n_layers


@dataclass
class TransformerReport:
    """One row of Table III."""

    variant: str
    device_name: str
    runtime_s: float
    tokens_per_second: float
    memory_bytes: int
    fits: bool
    bits_per_dim: float

    @property
    def memory_gb(self) -> float:
        return self.memory_bytes / 1024**3


def _projection_costs(
    config: TransformerConfig, device: DeviceSpec, profile: Profile
) -> None:
    """QKV/output projections and the FFN for one layer (cuBLAS GEMMs)."""
    t, d, f = config.tokens, config.d_model, config.d_ffn
    for _ in range(4):  # q, k, v, output projections
        profile.add(ops.matmul_cost(t, d, d, device))
    profile.add(ops.matmul_cost(t, f, d, device))
    profile.add(ops.matmul_cost(t, d, f, device))


def profile_dense(config: TransformerConfig, device: DeviceSpec) -> Profile:
    """Cost-only forward pass of the dense Transformer."""
    profile = Profile()
    profile.add_weights(config.weight_bytes())
    seq, dk = config.sequence_length, config.head_dim
    instances = config.batch_size * config.n_heads
    with unmetered_dispatch(device):
        for _ in range(config.n_layers):
            _projection_costs(config, device, profile)
            dense_attention_cost(seq, dk, instances, device, profile)
    # Residual stream plus the per-batch-item attention working set: the
    # dense implementation keeps all heads' seq x seq scores live for one
    # batch item, and the dense softmax materializes a separate probability
    # buffer (it cannot run in place while the mask-and-shift needs the
    # original logits).
    profile.allocate_activation(config.tokens * config.d_model * 4)
    profile.allocate_activation(2 * config.n_heads * seq * seq * 4)
    return profile


def profile_sparse(
    config: TransformerConfig,
    device: DeviceSpec,
    mask: CSRMatrix | None = None,
) -> Profile:
    """Cost-only forward pass of the sparse Transformer."""
    profile = Profile()
    profile.add_weights(config.weight_bytes())
    if mask is None:
        mask = config.attention_mask()
    if mask.shape != (config.sequence_length, config.sequence_length):
        raise ValueError("mask must be seq x seq")
    instances = config.batch_size * config.n_heads
    with unmetered_dispatch(device):
        for _ in range(config.n_layers):
            _projection_costs(config, device, profile)
            sparse_attention_cost(
                mask, config.head_dim, instances, device, profile
            )
    # Sparse scores share the mask's topology (indices stored once for all
    # heads) and the sparse softmax runs in place on the CSR values, so the
    # working set is one value buffer per head plus the shared indices —
    # the source of Table III's 12.8x memory saving.
    profile.allocate_activation(config.tokens * config.d_model * 4)
    profile.allocate_activation(config.n_heads * mask.nnz * 4)
    profile.allocate_activation(mask.nnz * mask.index_bytes + 8 * (mask.n_rows + 1))
    return profile


def benchmark(
    config: TransformerConfig,
    device: DeviceSpec,
    variant: str,
    mask: CSRMatrix | None = None,
) -> TransformerReport:
    """Produce one Table III row (throughput, memory, OOM status).

    The OOM verdict and the memory column both come from replaying the
    profile's allocation timeline through a
    :class:`~repro.gpu.allocator.DeviceAllocator` at the device's DRAM
    capacity: when the pass fits, ``memory_bytes`` is the allocator's peak
    *reserved* high-water mark (alignment and segment rounding included);
    when it does not, the raw byte demand is reported instead — the
    replay stops at the failing allocation, so its peak understates the
    model's true footprint.
    """
    from ..gpu.allocator import DeviceAllocator

    if variant == "dense":
        profile = profile_dense(config, device)
    elif variant == "sparse":
        profile = profile_sparse(config, device, mask)
    else:
        raise ValueError(f"unknown variant {variant!r}")
    allocator = DeviceAllocator(device, capacity=device.dram_capacity)
    verdict = profile.replay(allocator)
    fits = verdict["fits"]
    runtime = profile.runtime_s
    return TransformerReport(
        variant=variant,
        device_name=device.name,
        runtime_s=runtime,
        tokens_per_second=config.tokens / runtime if fits else 0.0,
        memory_bytes=(
            int(verdict["peak_reserved_bytes"])
            if fits
            else profile.total_memory_bytes
        ),
        fits=fits,
        bits_per_dim=REFERENCE_BITS_PER_DIM[variant],
    )
