"""Linear layers: dense (cuBLAS-backed) and sparse (Sputnik-backed).

``SparseLinear`` is the weight-sparse building block the paper motivates in
Section IV-B:

- forward: ``Y = W X`` — one SpMM;
- backward w.r.t. the weights: ``δW = δY Xᵀ ∘ I[W]`` — one SDDMM;
- backward w.r.t. the input: ``δX = Wᵀ δY`` — one SpMM against the cached
  transpose (Section IX: the transpose topology is cached when the sparse
  topology changes and re-applied as a value permutation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import ops
from ..core.config import SpmmConfig
from ..gpu.device import DeviceSpec
from ..sparse.csr import CSRMatrix
from ..sparse.transpose import CachedTranspose
from .profile import Profile


@dataclass
class Linear:
    """Dense linear layer ``Y = W X`` (weights ``(out, in)``, column-batch)."""

    weight: np.ndarray

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=np.float32)
        if self.weight.ndim != 2:
            raise ValueError("weight must be 2-D")

    @property
    def weight_bytes(self) -> int:
        return self.weight.nbytes

    def forward(
        self, x: np.ndarray, device: DeviceSpec, profile: Profile | None = None
    ) -> np.ndarray:
        result = ops.matmul(self.weight, x, device)
        if profile is not None:
            profile.add(result.execution)
        return result.output


class SparseLinear:
    """Weight-sparse linear layer backed by the Sputnik kernels.

    Per-weight state the kernels need — the transpose topology plan and the
    transposed CSR used by the input-gradient SpMM — is cached on the layer
    and invalidated exactly when the weight changes: assigning a new weight
    rebuilds everything; a same-topology value update (``update_values``)
    keeps the transpose plan and only refreshes the transposed values.
    Kernel plans and config selections are cached per topology by the
    :mod:`repro.ops` execution context.
    """

    def __init__(
        self,
        weight: CSRMatrix,
        config: SpmmConfig | None = None,
        policy=None,
        validate: bool = False,
        selector: str = "heuristic",
    ) -> None:
        self.config = config
        #: Backend string, chain, or FallbackPolicy for every kernel the
        #: layer launches; ``None`` means the plain sputnik fast path.
        self.policy = policy
        #: Config selector for every kernel the layer launches when no
        #: explicit ``config`` is given (``"heuristic"``, ``"oracle"``,
        #: ``"tuned"``, or a :class:`~repro.tune.Selector` instance).
        self.selector = selector
        #: Run the numerical guardrails on every output (fp16 overflow
        #: triggers a degraded fp32 re-run, flagged on ``self.degraded``).
        self.validate = validate
        #: DispatchReport of the most recent policy-dispatched kernel.
        self.last_report = None
        self.weight = weight  # property: builds the per-weight caches

    @property
    def degraded(self) -> bool:
        """True when the last kernel completed in degraded mode (fp32
        re-run after an fp16 overflow) or on a fallback backend."""
        report = self.last_report
        return bool(
            report is not None and (report.degraded or report.fallbacks)
        )

    def _backend(self):
        return self.policy if self.policy is not None else "sputnik"

    def _record(self, result) -> None:
        if result.reliability is not None:
            self.last_report = result.reliability

    @property
    def weight(self) -> CSRMatrix:
        return self._weight

    @weight.setter
    def weight(self, weight: CSRMatrix) -> None:
        """Swap the weight; rebuilds the transpose plan (new topology)."""
        self._weight = weight
        self._transpose_plan = CachedTranspose(weight)
        self._w_t: CSRMatrix | None = None
        # Repair lineage (update_topology): the previous topology's plans
        # stay cached as repair ancestors for exactly one generation.
        self._parent_fp: str | None = None
        self._parent_wt_fp: str | None = None

    @property
    def weight_bytes(self) -> int:
        return self.weight.memory_bytes()

    def _weight_transpose(self) -> CSRMatrix:
        """The cached ``Wᵀ`` CSR for the backward SpMM (Section IX)."""
        if self._w_t is None:
            self._w_t = self._transpose_plan.transpose(
                self.weight.astype(np.float32)
            )
        return self._w_t

    def forward(
        self, x: np.ndarray, device: DeviceSpec, profile: Profile | None = None
    ) -> np.ndarray:
        """``Y = W X``; ``x`` is ``(in_features, batch)``."""
        result = ops.spmm(
            self.weight, x, device, self.config,
            backend=self._backend(), selector=self.selector,
            validate=self.validate,
        )
        self._record(result)
        if profile is not None:
            profile.add(result.execution)
        return result.output

    def backward(
        self,
        x: np.ndarray,
        grad_out: np.ndarray,
        device: DeviceSpec,
        profile: Profile | None = None,
    ) -> tuple[CSRMatrix, np.ndarray]:
        """Gradients ``(δW, δX)`` for ``Y = W X`` (Section IV-B).

        ``δW = δY Xᵀ ∘ I[W]`` is exactly the deep-learning SDDMM; ``δX``
        reuses the cached transposed CSR so no per-step transpose is paid.
        """
        grad_out = np.asarray(grad_out, dtype=np.float32)
        x32 = np.asarray(x, dtype=np.float32)
        grad_w = ops.sddmm(
            grad_out, x32, self.weight, device,
            backend=self._backend(), selector=self.selector,
            validate=self.validate,
        )
        self._record(grad_w)
        if profile is not None:
            profile.add(grad_w.execution)

        grad_x = ops.spmm(
            self._weight_transpose(), grad_out, device,
            backend=self._backend(), selector=self.selector,
            validate=self.validate,
        )
        self._record(grad_x)
        if profile is not None:
            profile.add(grad_x.execution)
        return grad_w.output, grad_x.output

    def update_values(self, new_values: np.ndarray) -> None:
        """In-place value update: same topology, so the transpose plan and
        kernel plans stay valid — only the cached transposed values drop.

        Raises :class:`ValueError` when the value count disagrees with the
        current topology — that is a *topology* edit and must go through
        :meth:`update_topology`, which handles plan invalidation/repair.
        """
        new_values = np.asarray(new_values)
        if new_values.size != self._weight.nnz:
            raise ValueError(
                f"update_values got {new_values.size} values for a "
                f"{self._weight.nnz}-nonzero topology; a sparsity-pattern "
                "change must go through update_topology()"
            )
        self._weight = self._weight.with_values(new_values)
        self._w_t = None

    def update_topology(
        self, new_weight: CSRMatrix, delta=None, context=None
    ) -> None:
        """Swap in a mutated sparsity pattern (a drop/grow update).

        Rebuilds the per-weight caches (transpose plan, cached ``Wᵀ``)
        like the ``weight`` setter, and — when ``context`` is an
        :class:`~repro.ops.context.ExecutionContext` — wires the plan
        cache for the edit:

        - ``delta`` (a :class:`~repro.core.repair.TopologyDelta`, computed
          by diffing when ``None``) is registered so the next plan lookup
          repairs instead of cold-building;
        - when the transposed CSR was cached, a ``Wᵀ`` delta is derived
          too, making the backward SpMM's plan repairable as well;
        - plans two generations old — the previous update's *ancestors*,
          which no future lookup or repair can reach — are evicted
          (``plan_invalidations`` telemetry). The immediate parent's
          plans stay cached: they are the repair ancestors for this edit.
        """
        if tuple(new_weight.shape) != tuple(self._weight.shape):
            raise ValueError(
                f"update_topology shape mismatch: layer is "
                f"{tuple(self._weight.shape)}, got {tuple(new_weight.shape)}"
            )
        old = self._weight
        old_w_t = self._w_t
        stale_fp = self._parent_fp
        stale_wt_fp = self._parent_wt_fp
        if context is not None and delta is None:
            delta = ops.topology_delta(old, new_weight)
        self.weight = new_weight  # property: rebuilds the transpose caches
        if context is None:
            return
        context.register_topology_delta(delta)
        self._parent_fp = delta.parent
        if old_w_t is not None:
            # Derive the transpose-side delta so δX's SpMM plan repairs
            # too: the transposed edit touches the *columns* the edited
            # rows reference, diffed directly on the transposed CSRs.
            new_w_t = self._weight_transpose()
            wt_delta = ops.topology_delta(old_w_t, new_w_t)
            context.register_topology_delta(wt_delta)
            self._parent_wt_fp = wt_delta.parent
        for fp in (stale_fp, stale_wt_fp):
            if fp is not None:
                context.invalidate_topology(fp, op="sparse_linear")

    def reference_forward(self, x: np.ndarray) -> np.ndarray:
        """Numpy ground truth (for tests)."""
        return (
            self.weight.to_dense().astype(np.float32) @ np.asarray(x, np.float32)
        ).astype(self.weight.values.dtype)
