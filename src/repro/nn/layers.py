"""Linear layers: dense (cuBLAS-backed) and sparse (Sputnik-backed).

``SparseLinear`` is the weight-sparse building block the paper motivates in
Section IV-B:

- forward: ``Y = W X`` — one SpMM;
- backward w.r.t. the weights: ``δW = δY Xᵀ ∘ I[W]`` — one SDDMM;
- backward w.r.t. the input: ``δX = Wᵀ δY`` — one SpMM against the cached
  transpose (Section IX: the transpose topology is cached when the sparse
  topology changes and re-applied as a value permutation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.cublas import matmul
from ..core.sddmm import sddmm
from ..core.spmm import spmm
from ..core.config import SddmmConfig, SpmmConfig
from ..core.selection import select_sddmm_config, select_spmm_config
from ..gpu.device import DeviceSpec
from ..sparse.csr import CSRMatrix
from ..sparse.transpose import CachedTranspose
from .profile import Profile


@dataclass
class Linear:
    """Dense linear layer ``Y = W X`` (weights ``(out, in)``, column-batch)."""

    weight: np.ndarray

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=np.float32)
        if self.weight.ndim != 2:
            raise ValueError("weight must be 2-D")

    @property
    def weight_bytes(self) -> int:
        return self.weight.nbytes

    def forward(
        self, x: np.ndarray, device: DeviceSpec, profile: Profile | None = None
    ) -> np.ndarray:
        result = matmul(self.weight, x, device)
        if profile is not None:
            profile.add(result.execution)
        return result.output


class SparseLinear:
    """Weight-sparse linear layer backed by the Sputnik kernels."""

    def __init__(
        self, weight: CSRMatrix, config: SpmmConfig | None = None
    ) -> None:
        self.weight = weight
        self.config = config
        self._transpose_plan = CachedTranspose(weight)

    @property
    def weight_bytes(self) -> int:
        return self.weight.memory_bytes()

    def _spmm_config(self, n: int) -> SpmmConfig:
        if self.config is not None:
            return self.config
        precision = "mixed" if self.weight.values.dtype == np.float16 else "fp32"
        return select_spmm_config(self.weight, n, precision)

    def forward(
        self, x: np.ndarray, device: DeviceSpec, profile: Profile | None = None
    ) -> np.ndarray:
        """``Y = W X``; ``x`` is ``(in_features, batch)``."""
        result = spmm(self.weight, x, device, self._spmm_config(x.shape[1]))
        if profile is not None:
            profile.add(result.execution)
        return result.output

    def backward(
        self,
        x: np.ndarray,
        grad_out: np.ndarray,
        device: DeviceSpec,
        profile: Profile | None = None,
    ) -> tuple[CSRMatrix, np.ndarray]:
        """Gradients ``(δW, δX)`` for ``Y = W X`` (Section IV-B).

        ``δW = δY Xᵀ ∘ I[W]`` is exactly the deep-learning SDDMM; ``δX``
        reuses the cached-topology transpose so no CSR transpose is paid.
        """
        grad_out = np.asarray(grad_out, dtype=np.float32)
        x32 = np.asarray(x, dtype=np.float32)
        config = select_sddmm_config(x32.shape[1])
        grad_w = sddmm(grad_out, x32, self.weight, device, config)
        if profile is not None:
            profile.add(grad_w.execution)

        w_t = self._transpose_plan.transpose(self.weight.astype(np.float32))
        grad_x = spmm(w_t, grad_out, device, select_spmm_config(w_t, grad_out.shape[1]))
        if profile is not None:
            profile.add(grad_x.execution)
        return grad_w.output, grad_x.output

    def update_values(self, new_values: np.ndarray) -> None:
        """In-place value update (same topology — no new transpose plan)."""
        self.weight = self.weight.with_values(new_values)

    def reference_forward(self, x: np.ndarray) -> np.ndarray:
        """Numpy ground truth (for tests)."""
        return (
            self.weight.to_dense().astype(np.float32) @ np.asarray(x, np.float32)
        ).astype(self.weight.values.dtype)
