"""Element-wise kernels: ReLU and the fused bias+ReLU epilogue.

The paper fuses bias and ReLU into the preceding linear operation for both
the sparse models and the cuBLAS baselines ("we additionally wrote a fused
bias + ReLU kernel", Section VII-D1); the standalone kernel here is the
unfused fallback and the cost model both share.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import DeviceSpec
from ..gpu.executor import BlockCosts, ExecutionResult, KernelLaunch, execute
from ..gpu.occupancy import BlockResources

#: Elements processed per thread block by the element-wise kernels.
ELEMENTS_PER_BLOCK = 32 * 1024 // 4


def elementwise_execution(
    n_elements: int, device: DeviceSpec, name: str, reads: int = 1
) -> ExecutionResult:
    """Bandwidth-bound element-wise kernel: ``reads`` input streams, one
    output stream, 4-byte elements, 4-wide vector accesses."""
    if n_elements <= 0:
        raise ValueError("element count must be positive")
    blocks = max(1, -(-n_elements // ELEMENTS_PER_BLOCK))
    per_block = n_elements / blocks
    launch = KernelLaunch(
        name=name,
        n_blocks=blocks,
        resources=BlockResources(threads=256, registers_per_thread=20),
        costs=BlockCosts(
            other_instructions=per_block * (reads + 1) / (32 * 4) + per_block / 32,
            dram_bytes=per_block * 4.0 * (reads + 1),
        ),
        flops=float(n_elements),
    )
    return execute(launch, device)


def relu(x: np.ndarray, device: DeviceSpec) -> tuple[np.ndarray, ExecutionResult]:
    """Standalone ReLU (numerics + cost)."""
    x = np.asarray(x)
    return np.maximum(x, 0), elementwise_execution(x.size, device, "relu")


def bias_relu(
    x: np.ndarray, bias: np.ndarray, device: DeviceSpec
) -> tuple[np.ndarray, ExecutionResult]:
    """The paper's fused bias+ReLU epilogue kernel (one pass over the data).

    ``x`` has shape ``(channels, spatial)`` (CHW layout with the batch
    folded into spatial); the bias broadcasts over channels.
    """
    x = np.asarray(x)
    bias = np.asarray(bias)
    if x.ndim != 2 or bias.shape != (x.shape[0],):
        raise ValueError(
            f"bias of shape {bias.shape} does not broadcast over {x.shape}"
        )
    out = np.maximum(x + bias[:, None], 0).astype(x.dtype)
    return out, elementwise_execution(x.size, device, "fused_bias_relu")
