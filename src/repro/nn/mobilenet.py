"""Sparse MobileNetV1 (Section VII-D, Table IV, Figure 12).

MobileNetV1 alternates depthwise 3x3 and pointwise 1x1 convolutions, each
followed by batch norm and ReLU; a width multiplier scales every channel
count. Following the paper's setup:

- the 1x1 convolutions (the vast majority of FLOPs) are magnitude-pruned to
  90 % sparsity and run through the Sputnik SpMM as CHW GEMMs;
- the first (full 3x3) convolution stays dense — the paper found it
  bandwidth-bound by the activations;
- batch norm is fused into the preceding convolution at inference time;
  bias+ReLU is fused into the sparse 1x1s, while the dense baseline runs
  cuBLAS followed by the fused bias+ReLU kernel;
- inference uses batch size 1, as in online-inference deployments;
- an oracle kernel selector can replace the heuristic for the 1x1s
  (Section VII-D1 uses it on four layers).

Top-1 accuracies are paper-reference constants (Table IV) — training
ImageNet is out of scope (DESIGN.md Section 2); runtimes are simulated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import ops
from ..core.selection import pad_batch_for_vectors
from ..gpu.device import DeviceSpec
from ..sparse.csr import CSRMatrix
from .activation import bias_relu
from .batchnorm import BatchNorm, fuse_into_dense, fuse_into_depthwise, fuse_into_sparse
from .conv import depthwise_conv, im2col
from .profile import Profile
from .pruning import prune_to_csr

#: (stride, output channels) of the 13 depthwise-separable blocks.
BLOCKS = [
    (1, 64),
    (2, 128),
    (1, 128),
    (2, 256),
    (1, 256),
    (2, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (2, 1024),
    (1, 1024),
]
FIRST_CONV_CHANNELS = 32
NUM_CLASSES = 1000
INPUT_SIZE = 224

#: Table IV reference accuracies (ImageNet top-1), keyed by (variant, width).
REFERENCE_ACCURACY = {
    ("dense", 1.0): 0.727,
    ("dense", 1.2): 0.738,
    ("dense", 1.4): 0.748,
    ("sparse", 1.3): 0.729,
    ("sparse", 1.4): 0.733,
    ("sparse", 1.5): 0.738,
    ("sparse", 1.6): 0.741,
    ("sparse", 1.7): 0.744,
    ("sparse", 1.8): 0.749,
}


def scaled_channels(base: int, width: float) -> int:
    """Apply the width multiplier, rounding to a multiple of 8 (min 8)."""
    if width <= 0:
        raise ValueError("width multiplier must be positive")
    return max(8, int(round(base * width / 8)) * 8)


def reference_accuracy(variant: str, width: float) -> float:
    """Table IV accuracy, linearly interpolated between measured widths."""
    points = sorted(
        (w, acc) for (v, w), acc in REFERENCE_ACCURACY.items() if v == variant
    )
    if not points:
        raise ValueError(f"unknown variant {variant!r}")
    widths = np.array([p[0] for p in points])
    accs = np.array([p[1] for p in points])
    return float(np.interp(width, widths, accs))


class MobileNetV1:
    """A runnable MobileNetV1 with random (BN-fused) weights.

    Weights are random because the benchmark measures kernels, not ImageNet
    accuracy; shapes, sparsity, and kernel sequence match the paper's setup.
    """

    def __init__(
        self,
        width: float = 1.0,
        sparse: bool = False,
        sparsity: float = 0.9,
        use_oracle: bool = False,
        seed: int = 0,
    ) -> None:
        self.width = width
        self.sparse = sparse
        self.sparsity = sparsity
        self.use_oracle = use_oracle
        rng = np.random.default_rng(seed)

        def bn(ch: int) -> BatchNorm:
            return BatchNorm(
                gamma=rng.uniform(0.5, 1.5, ch),
                beta=rng.uniform(-0.1, 0.1, ch),
                running_mean=rng.standard_normal(ch) * 0.1,
                running_var=rng.uniform(0.5, 1.5, ch),
            )

        c0 = scaled_channels(FIRST_CONV_CHANNELS, width)
        scale0 = np.sqrt(2.0 / (3 * 9))
        first_w = rng.standard_normal((c0, 3 * 9)).astype(np.float32) * scale0
        self.first_conv, self.first_bias = fuse_into_dense(first_w, None, bn(c0))

        self.blocks: list[dict] = []
        in_ch = c0
        for stride, base_out in BLOCKS:
            out_ch = scaled_channels(base_out, width)
            dw = rng.standard_normal((in_ch, 3, 3)).astype(np.float32) * np.sqrt(2.0 / 9)
            dw_f, dw_b = fuse_into_depthwise(dw, None, bn(in_ch))
            pw = rng.standard_normal((out_ch, in_ch)).astype(np.float32) * np.sqrt(
                2.0 / in_ch
            )
            block: dict = {"stride": stride, "dw": dw_f, "dw_bias": dw_b}
            if sparse:
                pruned = prune_to_csr(pw, sparsity)
                fused_w, fused_b = fuse_into_sparse(pruned, None, bn(out_ch))
                block["pw_sparse"] = fused_w
                block["pw_bias"] = fused_b
            else:
                fused_w, fused_b = fuse_into_dense(pw, None, bn(out_ch))
                block["pw_dense"] = fused_w
                block["pw_bias"] = fused_b
            self.blocks.append(block)
            in_ch = out_ch
        fc_scale = np.sqrt(1.0 / in_ch)
        self.fc = (
            rng.standard_normal((NUM_CLASSES, in_ch)) * fc_scale
        ).astype(np.float32)

    # ------------------------------------------------------------------
    def weight_bytes(self) -> int:
        total = self.first_conv.nbytes + self.fc.nbytes
        for b in self.blocks:
            total += b["dw"].nbytes + b["pw_bias"].nbytes
            if "pw_sparse" in b:
                total += b["pw_sparse"].memory_bytes()
            else:
                total += b["pw_dense"].nbytes
        return total

    def _pointwise(
        self,
        weight: CSRMatrix | np.ndarray,
        bias: np.ndarray,
        x2d: np.ndarray,
        device: DeviceSpec,
        profile: Profile | None,
    ) -> np.ndarray:
        if isinstance(weight, CSRMatrix):
            # Vector memory instructions need N % 4 == 0 (Section VII-A1);
            # batch-1 spatial sizes are padded like the paper's benchmarks.
            padded = pad_batch_for_vectors(x2d.astype(np.float32))
            # The oracle selection (Section VII-D1) is cached per weight
            # topology by the execution context.
            selector = "oracle" if self.use_oracle else "heuristic"
            result = ops.spmm(weight, padded, device, selector=selector)
            if profile is not None:
                profile.add(result.execution)
            out = result.output[:, : x2d.shape[1]]
            # Bias + ReLU fused into the sparse kernel's epilogue.
            return np.maximum(out + bias[:, None], 0)
        result = ops.matmul(weight, x2d.astype(np.float32), device)
        if profile is not None:
            profile.add(result.execution)
        out, epilogue = bias_relu(result.output, bias, device)
        if profile is not None:
            profile.add(epilogue)
        return out

    def _pointwise_batch(
        self,
        weight: CSRMatrix | np.ndarray,
        bias: np.ndarray,
        x_stack: np.ndarray,
        device: DeviceSpec,
        profile: Profile | None,
    ) -> np.ndarray:
        """Pointwise 1x1 conv over a ``(B, C, spatial)`` activation stack.

        The sparse path dispatches the whole batch as ONE
        :func:`~repro.ops.spmm_batched` call — the weight topology (and
        values) are shared, so one plan and one z-scaled launch cover all
        ``B`` spatial GEMMs. The dense path folds the batch into a single
        wide cuBLAS GEMM.
        """
        batch, _, spatial = x_stack.shape
        if isinstance(weight, CSRMatrix):
            # Same vector-width padding as the single-image path; every
            # slab shares the spatial size, so pad the stack in one shot.
            pad = pad_batch_for_vectors(x_stack[0]).shape[1] - spatial
            b_stack = np.ascontiguousarray(
                np.pad(x_stack.astype(np.float32), ((0, 0), (0, 0), (0, pad)))
            )
            selector = "oracle" if self.use_oracle else "heuristic"
            result = ops.spmm_batched(weight, b_stack, device, selector=selector)
            if profile is not None:
                profile.add(result.execution)
            out = result.output[:, :, :spatial]
            return np.maximum(out + bias[None, :, None], 0)
        wide = np.ascontiguousarray(
            x_stack.astype(np.float32).transpose(1, 0, 2).reshape(
                x_stack.shape[1], batch * spatial
            )
        )
        result = ops.matmul(weight, wide, device)
        if profile is not None:
            profile.add(result.execution)
        out, epilogue = bias_relu(result.output, bias, device)
        if profile is not None:
            profile.add(epilogue)
        return np.ascontiguousarray(
            out.reshape(-1, batch, spatial).transpose(1, 0, 2)
        )

    def forward_batch(
        self,
        images: np.ndarray,
        device: DeviceSpec,
        profile: Profile | None = None,
    ) -> np.ndarray:
        """Batched inference: ``images`` is ``(B, 3, 224, 224)`` CHW.

        The sparse 1x1 convolutions — the vast majority of the FLOPs —
        run as batched SpMMs across the spatial batch (one launch per
        layer for the whole batch); the first conv and dense pointwise
        path fold into single wide GEMMs. Returns ``(B, classes)``.
        """
        images = np.asarray(images, dtype=np.float32)
        if images.ndim != 4 or images.shape[1:] != (3, INPUT_SIZE, INPUT_SIZE):
            raise ValueError(
                f"expected (B, 3, {INPUT_SIZE}, {INPUT_SIZE}), "
                f"got {images.shape}"
            )
        batch = images.shape[0]
        if profile is not None:
            profile.add_weights(self.weight_bytes())

        # First conv: one wide GEMM over the horizontally-stacked patches.
        cols = np.concatenate(
            [im2col(img, kernel=3, stride=2, padding=1) for img in images],
            axis=1,
        )
        r = ops.matmul(self.first_conv, cols, device)
        if profile is not None:
            profile.add(r.execution)
        x2d, epilogue = bias_relu(r.output, self.first_bias, device)
        if profile is not None:
            profile.add(epilogue)
        side = INPUT_SIZE // 2
        x = np.ascontiguousarray(
            x2d.reshape(-1, batch, side, side).transpose(1, 0, 2, 3)
        )

        for block in self.blocks:
            # Depthwise 3x3 stays per-image (bandwidth-bound, dense).
            x = np.stack([
                depthwise_conv(
                    xi, block["dw"], block["dw_bias"], device,
                    stride=block["stride"], profile=profile,
                )
                for xi in x
            ])
            x_stack = x.reshape(batch, x.shape[1], -1)
            weight = block.get("pw_sparse", block.get("pw_dense"))
            x_stack = self._pointwise_batch(
                weight, block["pw_bias"], x_stack, device, profile
            )
            x = x_stack.reshape(batch, x_stack.shape[1], x.shape[2], x.shape[3])

        pooled = x.mean(axis=(2, 3))
        logits = ops.matmul(self.fc, pooled.T.copy(), device)
        if profile is not None:
            profile.add(logits.execution)
        return logits.output.T

    def forward(
        self,
        image: np.ndarray,
        device: DeviceSpec,
        profile: Profile | None = None,
    ) -> np.ndarray:
        """Single-image inference: ``image`` is ``(3, 224, 224)`` CHW."""
        image = np.asarray(image, dtype=np.float32)
        if image.shape != (3, INPUT_SIZE, INPUT_SIZE):
            raise ValueError(f"expected (3, {INPUT_SIZE}, {INPUT_SIZE})")
        if profile is not None:
            profile.add_weights(self.weight_bytes())

        cols = im2col(image, kernel=3, stride=2, padding=1)
        r = ops.matmul(self.first_conv, cols, device)
        if profile is not None:
            profile.add(r.execution)
        x2d, epilogue = bias_relu(r.output, self.first_bias, device)
        if profile is not None:
            profile.add(epilogue)
        side = INPUT_SIZE // 2
        x = x2d.reshape(-1, side, side)

        for block in self.blocks:
            x = depthwise_conv(
                x, block["dw"], block["dw_bias"], device,
                stride=block["stride"], profile=profile,
            )
            x2d = x.reshape(x.shape[0], -1)
            weight = block.get("pw_sparse", block.get("pw_dense"))
            x2d = self._pointwise(weight, block["pw_bias"], x2d, device, profile)
            x = x2d.reshape(x2d.shape[0], x.shape[1], x.shape[2])

        pooled = x.mean(axis=(1, 2), keepdims=False)
        logits = ops.matmul(self.fc, pooled[:, None], device)
        if profile is not None:
            profile.add(logits.execution)
        return logits.output[:, 0]


@dataclass
class MobileNetReport:
    """One row of Table IV."""

    variant: str
    width: float
    accuracy: float
    runtime_s: float

    @property
    def throughput_fps(self) -> float:
        return 1.0 / self.runtime_s if self.runtime_s > 0 else 0.0


def benchmark(
    width: float,
    sparse: bool,
    device: DeviceSpec,
    use_oracle: bool = True,
    seed: int = 0,
) -> MobileNetReport:
    """Produce one Table IV row: batch-1 inference on random input."""
    model = MobileNetV1(
        width=width, sparse=sparse, use_oracle=use_oracle and sparse, seed=seed
    )
    profile = Profile()
    rng = np.random.default_rng(seed + 1)
    image = rng.standard_normal((3, INPUT_SIZE, INPUT_SIZE)).astype(np.float32)
    model.forward(image, device, profile)
    variant = "sparse" if sparse else "dense"
    return MobileNetReport(
        variant=variant,
        width=width,
        accuracy=reference_accuracy(variant, width),
        runtime_s=profile.runtime_s,
    )
