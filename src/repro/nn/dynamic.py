"""Dynamic sparse training: RigL-style drop/grow topology updates.

RigL (Evci et al., "Rigging the Lottery") trains at constant parameter
count by periodically *mutating* the sparsity pattern: every N steps it
drops the smallest-magnitude weights and grows new connections where the
dense gradient is largest, with the drop/grow fraction cosine-decayed to
zero over training. The paper's kernels make the compute side of this
cheap — every step is SpMM/SDDMM regardless of the pattern — but each
mutation invalidates every structure-keyed plan (swizzle order, ROMA
extents, tuned config, shard balance).

This module implements the *mutation* side; the plan side is incremental
repair (DESIGN.md §17): each update returns a
:class:`~repro.core.repair.TopologyDelta` naming exactly the edited rows,
which :meth:`ExecutionContext.register_topology_delta` turns into
repaired — not rebuilt — plans.

The update is **row-targeted**: a seeded fraction of rows is selected and
drop/grow runs within each selected row, preserving its nonzero count.
Row lengths (and therefore ``row_offsets``) never change, which mirrors
RigL's per-layer constant-fan-in variant and keeps the edited-row set —
the quantity plan repair scales with — directly controllable (the
benchmark sweeps 1–10 %).

Everything is deterministic: the per-step RNG is seeded from
``(seed, step)``, so an update schedule replays bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.repair import TopologyDelta
from ..sparse.csr import CSRMatrix


@dataclass(frozen=True)
class DropGrowSchedule:
    """When to mutate and how aggressively (RigL's cosine decay).

    ``fraction(step)`` is the share of each *selected row's* nonzeros that
    drop (and regrow) at ``step``; ``row_fraction`` is the share of rows
    selected per update. ``is_update_step`` gates on ``frequency`` and
    stops mutating after ``total_steps`` (RigL trains the final topology
    to convergence).
    """

    frequency: int = 100
    initial_fraction: float = 0.3
    row_fraction: float = 0.05
    total_steps: int = 10_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.frequency < 1:
            raise ValueError("frequency must be >= 1")
        if not 0.0 < self.initial_fraction <= 1.0:
            raise ValueError("initial_fraction must be in (0, 1]")
        if not 0.0 < self.row_fraction <= 1.0:
            raise ValueError("row_fraction must be in (0, 1]")
        if self.total_steps < 1:
            raise ValueError("total_steps must be >= 1")

    def is_update_step(self, step: int) -> bool:
        return (
            step > 0
            and step % self.frequency == 0
            and step <= self.total_steps
        )

    def fraction(self, step: int) -> float:
        """Cosine-decayed drop fraction: f/2 * (1 + cos(pi * t/T))."""
        t = min(max(step, 0), self.total_steps) / self.total_steps
        return self.initial_fraction / 2.0 * (1.0 + np.cos(np.pi * t))

    def rng(self, step: int) -> np.random.Generator:
        """The per-step RNG: seeded from ``(seed, step)``, replayable."""
        return np.random.default_rng((self.seed, step))


def select_rows(
    weight: CSRMatrix, row_fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """A seeded sample of non-empty rows to mutate (sorted, unique)."""
    lengths = weight.row_lengths
    candidates = np.flatnonzero(lengths > 0)
    # Only rows with at least one absent column can grow.
    candidates = candidates[lengths[candidates] < weight.n_cols]
    n = max(1, int(round(row_fraction * weight.n_rows)))
    n = min(n, candidates.size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    return np.sort(rng.choice(candidates, size=n, replace=False)).astype(
        np.int64
    )


def drop_grow_update(
    weight: CSRMatrix,
    grad: np.ndarray,
    rows: np.ndarray,
    fraction: float,
) -> tuple[CSRMatrix, TopologyDelta]:
    """One RigL mutation over ``rows``: drop lowest-|w|, grow highest-|grad|.

    ``grad`` is the dense gradient of the loss w.r.t. the (dense view of
    the) weight — RigL materializes it on update steps only. Per selected
    row, the ``fraction`` smallest-magnitude nonzeros are dropped and the
    same number of currently-absent coordinates with the largest
    ``|grad|`` are grown (initialized to zero, RigL's default). Row
    lengths are preserved, so ``row_offsets`` is shared with the parent.

    Returns the mutated matrix and the
    :class:`~repro.core.repair.TopologyDelta` describing the edit —
    register it with the execution context *before* the next dispatch to
    get plan repair instead of cold re-planning.
    """
    from ..ops.plans import topology_delta

    grad = np.asarray(grad)
    if grad.shape != tuple(weight.shape):
        raise ValueError(
            f"grad shape {grad.shape} does not match weight "
            f"{tuple(weight.shape)}"
        )
    rows = np.asarray(rows, dtype=np.int64)
    new_cols = weight.column_indices.copy()
    new_vals = weight.values.copy()
    offsets = weight.row_offsets
    present = np.zeros(weight.n_cols, dtype=bool)
    edited = []
    for row in rows.tolist():
        start, end = int(offsets[row]), int(offsets[row + 1])
        cols = new_cols[start:end].astype(np.int64)
        vals = new_vals[start:end]
        n_drop = int(round(fraction * (end - start)))
        if n_drop == 0:
            continue
        present[cols] = True
        absent = np.flatnonzero(~present)
        present[cols] = False
        n_drop = min(n_drop, absent.size)
        if n_drop == 0:
            continue
        # Drop: lowest |w|; grow: highest |grad| among absent columns.
        # argpartition gives exact top-k sets in O(row) (ties at the
        # threshold resolve deterministically, as in magnitude_prune).
        keep_idx = np.sort(np.argpartition(np.abs(vals), n_drop - 1)[n_drop:])
        g = np.abs(grad[row, absent])
        if n_drop < absent.size:
            grow = absent[np.argpartition(-g, n_drop - 1)[:n_drop]]
        else:
            grow = absent
        merged_cols = np.concatenate([cols[keep_idx], grow])
        merged_vals = np.concatenate(
            [vals[keep_idx], np.zeros(n_drop, dtype=vals.dtype)]
        )
        order = np.argsort(merged_cols, kind="stable")
        new_cols[start:end] = merged_cols[order].astype(new_cols.dtype)
        new_vals[start:end] = merged_vals[order]
        edited.append(row)
    edited_arr = np.asarray(edited, dtype=np.int64)
    child = CSRMatrix(weight.shape, offsets, new_cols, new_vals)
    delta = topology_delta(weight, child, edited_arr)
    return child, delta


def drop_grow_step(
    layer,
    grad: np.ndarray,
    schedule: DropGrowSchedule,
    step: int,
    context=None,
) -> TopologyDelta | None:
    """Apply one scheduled mutation to a :class:`SparseLinear` layer.

    No-op (returns ``None``) off the schedule. On update steps, mutates
    the layer's weight via :meth:`SparseLinear.update_topology`, which
    registers the delta (repairable plans) and invalidates the stale
    fingerprint on ``context``.
    """
    if not schedule.is_update_step(step):
        return None
    rng = schedule.rng(step)
    rows = select_rows(layer.weight, schedule.row_fraction, rng)
    if rows.size == 0:
        return None
    new_weight, delta = drop_grow_update(
        layer.weight, grad, rows, schedule.fraction(step)
    )
    layer.update_topology(new_weight, delta=delta, context=context)
    return delta
