"""A numerically-executable Transformer layer with sparse or dense attention.

The Table III benchmark costs the full-size model analytically
(:mod:`repro.nn.transformer`); this module is the runnable counterpart for
realistic-but-smaller sizes: multi-head attention (dense causal or masked
sparse), residual connections, layer norm, and the two-matmul FFN — every
matrix multiply routed through the simulated kernels and profiled.
"""

from __future__ import annotations

import numpy as np

from .. import ops
from ..gpu.device import DeviceSpec
from ..sparse.csr import CSRMatrix
from .attention import dense_attention_batched, sparse_attention_batched
from .profile import Profile


def layer_norm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Per-token layer normalization over the feature axis (axis 1)."""
    x = np.asarray(x, dtype=np.float32)
    mean = x.mean(axis=1, keepdims=True)
    var = x.var(axis=1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


class TransformerLayer:
    """One pre-norm Transformer layer: attention + FFN with residuals.

    Args:
        d_model: model width.
        n_heads: attention heads (must divide ``d_model``).
        d_ffn: hidden width of the feed-forward network.
        attention_mask: a CSR connectivity mask for sparse attention, or
            ``None`` for dense causal attention.
        seed: weight initialization seed.
        selector: config-selection policy for the sparse attention
            kernels (``"heuristic"``, ``"oracle"``, ``"tuned"``, or a
            :class:`~repro.tune.Selector` instance).
    """

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        d_ffn: int,
        attention_mask: CSRMatrix | None = None,
        seed: int = 0,
        selector: str = "heuristic",
    ) -> None:
        if d_model % n_heads:
            raise ValueError("d_model must divide evenly across heads")
        self.d_model = d_model
        self.n_heads = n_heads
        self.head_dim = d_model // n_heads
        self.mask = attention_mask
        self.selector = selector
        rng = np.random.default_rng(seed)

        def init(rows: int, cols: int) -> np.ndarray:
            return (rng.standard_normal((rows, cols)) / np.sqrt(cols)).astype(
                np.float32
            )

        self.w_q = init(d_model, d_model)
        self.w_k = init(d_model, d_model)
        self.w_v = init(d_model, d_model)
        self.w_o = init(d_model, d_model)
        self.w_ffn_in = init(d_ffn, d_model)
        self.w_ffn_out = init(d_model, d_ffn)

    def _project(
        self, w: np.ndarray, x: np.ndarray, device: DeviceSpec, profile
    ) -> np.ndarray:
        result = ops.matmul(w, x.T.copy(), device)
        if profile is not None:
            profile.add(result.execution)
        return result.output.T

    def forward(
        self,
        x: np.ndarray,
        device: DeviceSpec,
        profile: Profile | None = None,
    ) -> np.ndarray:
        """``x`` is ``(seq, d_model)``; returns the same shape."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[1] != self.d_model:
            raise ValueError(f"expected (seq, {self.d_model}), got {x.shape}")
        if self.mask is not None and self.mask.n_rows != x.shape[0]:
            raise ValueError("attention mask must be seq x seq")

        h = layer_norm(x)
        q = self._project(self.w_q, h, device, profile)
        k = self._project(self.w_k, h, device, profile)
        v = self._project(self.w_v, h, device, profile)

        # All heads dispatch as ONE batched attention over (H, seq, hd)
        # stacks — one plan and one z-scaled launch per kernel stage
        # instead of a per-head loop (Section VII-C1 batching).
        seq = x.shape[0]
        q, k, v = (
            np.ascontiguousarray(
                t.reshape(seq, self.n_heads, self.head_dim).transpose(1, 0, 2)
            )
            for t in (q, k, v)
        )
        if self.mask is None:
            attended_stack = dense_attention_batched(q, k, v, device, profile)
        else:
            attended_stack = sparse_attention_batched(
                q, k, v, self.mask, device, profile, selector=self.selector
            )
        attended = np.ascontiguousarray(
            attended_stack.transpose(1, 0, 2)
        ).reshape(seq, self.d_model)
        x = x + self._project(self.w_o, attended, device, profile)

        h = layer_norm(x)
        hidden = np.maximum(self._project(self.w_ffn_in, h, device, profile), 0)
        x = x + self._project(self.w_ffn_out, hidden, device, profile)
        return x


class TransformerStack:
    """A stack of layers sharing one attention mask (Section VII-C1: the
    mask 'is shared by all attention heads and layers')."""

    def __init__(
        self,
        n_layers: int,
        d_model: int,
        n_heads: int,
        d_ffn: int,
        attention_mask: CSRMatrix | None = None,
        seed: int = 0,
        selector: str = "heuristic",
    ) -> None:
        if n_layers <= 0:
            raise ValueError("need at least one layer")
        self.layers = [
            TransformerLayer(
                d_model, n_heads, d_ffn, attention_mask, seed=seed + i,
                selector=selector,
            )
            for i in range(n_layers)
        ]

    def forward(
        self,
        x: np.ndarray,
        device: DeviceSpec,
        profile: Profile | None = None,
    ) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, device, profile)
        return x
