"""A numerically-executable Transformer layer with sparse or dense attention.

The Table III benchmark costs the full-size model analytically
(:mod:`repro.nn.transformer`); this module is the runnable counterpart for
realistic-but-smaller sizes: multi-head attention (dense causal or masked
sparse), residual connections, layer norm, and the two-matmul FFN — every
matrix multiply routed through the simulated kernels and profiled.

:meth:`TransformerLayer.forward_sharded` runs the same layer
model-parallel across a :class:`~repro.dist.DeviceGroup` (Megatron-style
tensor parallelism): attention heads and FFN hidden units split across
devices — column-parallel first projections, row-parallel second
projections — with exactly two all-reduces per layer priced on the
group's interconnect. The complementary *data*-parallel axis (replicas
over independent problems) is the sweep runner's ``devices=`` dimension.
"""

from __future__ import annotations

import numpy as np

from .. import ops
from ..gpu.device import DeviceSpec
from ..sparse.csr import CSRMatrix
from .attention import dense_attention_batched, sparse_attention_batched
from .profile import Profile


def layer_norm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Per-token layer normalization over the feature axis (axis 1)."""
    x = np.asarray(x, dtype=np.float32)
    mean = x.mean(axis=1, keepdims=True)
    var = x.var(axis=1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


class TransformerLayer:
    """One pre-norm Transformer layer: attention + FFN with residuals.

    Args:
        d_model: model width.
        n_heads: attention heads (must divide ``d_model``).
        d_ffn: hidden width of the feed-forward network.
        attention_mask: a CSR connectivity mask for sparse attention, or
            ``None`` for dense causal attention.
        seed: weight initialization seed.
        selector: config-selection policy for the sparse attention
            kernels (``"heuristic"``, ``"oracle"``, ``"tuned"``, or a
            :class:`~repro.tune.Selector` instance).
    """

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        d_ffn: int,
        attention_mask: CSRMatrix | None = None,
        seed: int = 0,
        selector: str = "heuristic",
    ) -> None:
        if d_model % n_heads:
            raise ValueError("d_model must divide evenly across heads")
        self.d_model = d_model
        self.n_heads = n_heads
        self.head_dim = d_model // n_heads
        self.mask = attention_mask
        self.selector = selector
        rng = np.random.default_rng(seed)

        def init(rows: int, cols: int) -> np.ndarray:
            return (rng.standard_normal((rows, cols)) / np.sqrt(cols)).astype(
                np.float32
            )

        self.w_q = init(d_model, d_model)
        self.w_k = init(d_model, d_model)
        self.w_v = init(d_model, d_model)
        self.w_o = init(d_model, d_model)
        self.w_ffn_in = init(d_ffn, d_model)
        self.w_ffn_out = init(d_model, d_ffn)
        self.d_ffn = d_ffn
        #: Filled by :meth:`forward_sharded`: the last call's model-parallel
        #: timing breakdown (per-stage max compute, comm, bound fraction).
        self.last_shard_report: dict | None = None

    def _project(
        self, w: np.ndarray, x: np.ndarray, device: DeviceSpec, profile
    ) -> np.ndarray:
        result = ops.matmul(w, x.T.copy(), device)
        if profile is not None:
            profile.add(result.execution)
        return result.output.T

    def forward(
        self,
        x: np.ndarray,
        device: DeviceSpec,
        profile: Profile | None = None,
    ) -> np.ndarray:
        """``x`` is ``(seq, d_model)``; returns the same shape."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[1] != self.d_model:
            raise ValueError(f"expected (seq, {self.d_model}), got {x.shape}")
        if self.mask is not None and self.mask.n_rows != x.shape[0]:
            raise ValueError("attention mask must be seq x seq")

        h = layer_norm(x)
        q = self._project(self.w_q, h, device, profile)
        k = self._project(self.w_k, h, device, profile)
        v = self._project(self.w_v, h, device, profile)

        # All heads dispatch as ONE batched attention over (H, seq, hd)
        # stacks — one plan and one z-scaled launch per kernel stage
        # instead of a per-head loop (Section VII-C1 batching).
        seq = x.shape[0]
        q, k, v = (
            np.ascontiguousarray(
                t.reshape(seq, self.n_heads, self.head_dim).transpose(1, 0, 2)
            )
            for t in (q, k, v)
        )
        if self.mask is None:
            attended_stack = dense_attention_batched(q, k, v, device, profile)
        else:
            attended_stack = sparse_attention_batched(
                q, k, v, self.mask, device, profile, selector=self.selector
            )
        attended = np.ascontiguousarray(
            attended_stack.transpose(1, 0, 2)
        ).reshape(seq, self.d_model)
        x = x + self._project(self.w_o, attended, device, profile)

        h = layer_norm(x)
        hidden = np.maximum(self._project(self.w_ffn_in, h, device, profile), 0)
        x = x + self._project(self.w_ffn_out, hidden, device, profile)
        return x

    def forward_sharded(
        self,
        x: np.ndarray,
        group,
        profile: Profile | None = None,
    ) -> np.ndarray:
        """Model-parallel forward across a :class:`~repro.dist.DeviceGroup`.

        Megatron-style tensor parallelism: device ``d`` owns heads
        ``[d·H/k, (d+1)·H/k)`` — a column-parallel slice of the QKV
        projections plus its own batched attention over those heads — and
        ``d_ffn/k`` FFN hidden units. The output projections are
        row-parallel (each device contributes a partial ``(seq, d_model)``
        sum), so the whole layer costs exactly two all-reduces on the
        group's interconnect: one after attention, one after the FFN.
        Per-head attention is independent, so the result matches
        :meth:`forward` up to accumulation order (``allclose``; the
        partial-sum reductions reorder float adds — bit-identical when
        ``group.k == 1``).

        Timing: stages run concurrently across devices, so compute counts
        as the per-stage max over devices; both all-reduces gate the
        residual adds and are fully exposed. The breakdown lands in
        :attr:`last_shard_report`. ``profile`` (if given) receives every
        per-device kernel plus both collectives — its serial ``runtime_s``
        is total *device-seconds*, not the model-parallel wall clock.
        """
        from ..dist.group import collective_execution
        from ..dist.sharded import _dist_span
        from ..gpu.interconnect import all_reduce

        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[1] != self.d_model:
            raise ValueError(f"expected (seq, {self.d_model}), got {x.shape}")
        if self.mask is not None and self.mask.n_rows != x.shape[0]:
            raise ValueError("attention mask must be seq x seq")
        k = group.k
        if self.n_heads % k:
            raise ValueError("n_heads must divide evenly across the group")
        if self.d_ffn % k:
            raise ValueError("d_ffn must divide evenly across the group")
        heads_per = self.n_heads // k
        width = heads_per * self.head_dim
        ffn_per = self.d_ffn // k
        seq = x.shape[0]

        def run(w, inp, ctx, bucket, d):
            result = ops.matmul(w, inp.T.copy(), context=ctx)
            if profile is not None:
                profile.add(result.execution)
            bucket[d] += result.execution.runtime_s
            return result.output.T

        with _dist_span(group, "transformer_layer_sharded") as span:
            attn_stage = [0.0] * k
            h = layer_norm(x)
            attn_out = np.zeros((seq, self.d_model), dtype=np.float32)
            for d, ctx in enumerate(group.contexts):
                lo, hi = d * width, (d + 1) * width
                q = run(self.w_q[lo:hi], h, ctx, attn_stage, d)
                key = run(self.w_k[lo:hi], h, ctx, attn_stage, d)
                v = run(self.w_v[lo:hi], h, ctx, attn_stage, d)
                q, key, v = (
                    np.ascontiguousarray(
                        t.reshape(seq, heads_per, self.head_dim)
                        .transpose(1, 0, 2)
                    )
                    for t in (q, key, v)
                )
                # The batched attention helpers resolve the implicit
                # default context, so install this device's for the call.
                attn_profile = Profile()
                prev = ops.default_context(group.device)
                ops.set_default_context(ctx)
                try:
                    if self.mask is None:
                        att = dense_attention_batched(
                            q, key, v, group.device, attn_profile
                        )
                    else:
                        att = sparse_attention_batched(
                            q, key, v, self.mask, group.device, attn_profile,
                            selector=self.selector,
                        )
                finally:
                    ops.set_default_context(prev)
                attn_stage[d] += attn_profile.runtime_s
                if profile is not None:
                    for record in attn_profile.records:
                        profile.add(record)
                attended = np.ascontiguousarray(
                    att.transpose(1, 0, 2)
                ).reshape(seq, width)
                attn_out += run(self.w_o[:, lo:hi], attended, ctx, attn_stage, d)
            ar_bytes = seq * self.d_model * 4
            ar1 = all_reduce(group.interconnect, ar_bytes, k)
            group.charge_collective(ar1, span)
            x = x + attn_out

            ffn_stage = [0.0] * k
            h = layer_norm(x)
            ffn_out = np.zeros((seq, self.d_model), dtype=np.float32)
            for d, ctx in enumerate(group.contexts):
                lo, hi = d * ffn_per, (d + 1) * ffn_per
                hidden = np.maximum(
                    run(self.w_ffn_in[lo:hi], h, ctx, ffn_stage, d), 0
                )
                ffn_out += run(self.w_ffn_out[:, lo:hi], hidden, ctx, ffn_stage, d)
            ar2 = all_reduce(group.interconnect, ar_bytes, k)
            group.charge_collective(ar2, span)
            x = x + ffn_out

            if profile is not None:
                for cost in (ar1, ar2):
                    if cost.steps:
                        profile.add(
                            collective_execution(cost, group.interconnect)
                        )
            comm_s = ar1.seconds + ar2.seconds
            compute_s = max(attn_stage) + max(ffn_stage)
            runtime = compute_s + comm_s
            self.last_shard_report = {
                "k": k,
                "interconnect": group.interconnect.name,
                "attention_max_compute_s": max(attn_stage),
                "ffn_max_compute_s": max(ffn_stage),
                "compute_s": compute_s,
                "device_seconds": sum(attn_stage) + sum(ffn_stage),
                "comm_s": comm_s,
                "comm_bytes": (ar1.nbytes + ar2.nbytes) if ar1.steps else 0,
                "runtime_s": runtime,
                "interconnect_bound_fraction": (
                    comm_s / runtime if runtime > 0 else 0.0
                ),
                "per_device_compute_s": [
                    a + f for a, f in zip(attn_stage, ffn_stage)
                ],
            }
            span.set(
                runtime_s=runtime,
                interconnect_bound=(
                    self.last_shard_report["interconnect_bound_fraction"]
                ),
            )
            # Per-device op spans already carry their compute; the layer
            # span adds only the comm critical path it introduces.
            span.add_sim(comm_s)
        return x


class TransformerStack:
    """A stack of layers sharing one attention mask (Section VII-C1: the
    mask 'is shared by all attention heads and layers')."""

    def __init__(
        self,
        n_layers: int,
        d_model: int,
        n_heads: int,
        d_ffn: int,
        attention_mask: CSRMatrix | None = None,
        seed: int = 0,
        selector: str = "heuristic",
    ) -> None:
        if n_layers <= 0:
            raise ValueError("need at least one layer")
        self.layers = [
            TransformerLayer(
                d_model, n_heads, d_ffn, attention_mask, seed=seed + i,
                selector=selector,
            )
            for i in range(n_layers)
        ]
        self.last_shard_report: dict | None = None

    def forward(
        self,
        x: np.ndarray,
        device: DeviceSpec,
        profile: Profile | None = None,
    ) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, device, profile)
        return x

    def forward_sharded(
        self,
        x: np.ndarray,
        group,
        profile: Profile | None = None,
    ) -> np.ndarray:
        """Model-parallel forward of the whole stack; sums the per-layer
        :attr:`TransformerLayer.last_shard_report` breakdowns into
        :attr:`last_shard_report`."""
        for layer in self.layers:
            x = layer.forward_sharded(x, group, profile)
        reports = [layer.last_shard_report for layer in self.layers]
        total = {
            key: sum(r[key] for r in reports)
            for key in (
                "compute_s", "device_seconds", "comm_s", "comm_bytes",
                "runtime_s",
            )
        }
        total["k"] = group.k
        total["interconnect"] = group.interconnect.name
        total["n_layers"] = len(self.layers)
        total["interconnect_bound_fraction"] = (
            total["comm_s"] / total["runtime_s"]
            if total["runtime_s"] > 0
            else 0.0
        )
        self.last_shard_report = total
        return x
