"""Multi-head attention: dense and sparse (Section VII-C).

Dense attention computes ``Softmax(Q K^T / sqrt(dk)) V`` with cuBLAS
matmuls; memory and compute grow quadratically with sequence length. Sparse
attention computes only a subset of ``Q K^T`` — an SDDMM against the fixed
connectivity mask — followed by a sparse softmax and an SpMM against ``V``.

Numerics run at any size; the Table III benchmark uses the cost-only
entry points (:func:`dense_attention_cost`, :func:`sparse_attention_cost`)
so a 12,288-token forward pass does not require terabytes of numpy work.
"""

from __future__ import annotations

import numpy as np

from .. import ops
from ..core.config import SddmmConfig
from ..gpu.device import DeviceSpec
from ..sparse.csr import CSRMatrix
from .profile import Profile


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable dense softmax (reference)."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def dense_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    device: DeviceSpec,
    profile: Profile | None = None,
    causal: bool = True,
) -> np.ndarray:
    """Single-head dense attention with numerics and simulated cost.

    ``q``/``k``/``v`` are ``(seq, dk)``; returns ``(seq, dk)``.
    """
    q = np.asarray(q, np.float32)
    k = np.asarray(k, np.float32)
    v = np.asarray(v, np.float32)
    dk = q.shape[1]
    scores = ops.matmul(q, k.T.copy(), device)
    logits = scores.output / np.sqrt(dk)
    if causal:
        mask = np.triu(np.ones(logits.shape, dtype=bool), k=1)
        logits = np.where(mask, -np.inf, logits)
    probs = softmax(logits, axis=1)
    out = ops.matmul(probs, v, device)
    if profile is not None:
        profile.add(scores.execution)
        # Dense softmax: bandwidth-bound passes over the seq x seq scores.
        from .activation import elementwise_execution

        profile.add(
            elementwise_execution(logits.size, device, "dense_softmax", reads=2)
        )
        profile.add(out.execution)
    return out.output


def sparse_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: CSRMatrix,
    device: DeviceSpec,
    profile: Profile | None = None,
    *,
    policy=None,
    validate: bool = False,
    selector: str = "heuristic",
    reports: list | None = None,
) -> np.ndarray:
    """Single-head sparse attention: SDDMM -> sparse softmax -> SpMM.

    The mask's nonzeros define which query/key similarities are computed
    (``Q K^T ∘ I[Y]``, Section IV-B); causality lives in the mask itself.

    ``policy`` (a backend chain or FallbackPolicy) and ``validate`` route
    all three kernels through the reliability layer; ``selector`` picks
    the config-selection policy for the SDDMM and SpMM stages; when
    ``reports`` is a list, each kernel's DispatchReport is appended so
    callers can inspect retries/fallbacks/degraded-mode completions per
    stage.
    """
    q = np.asarray(q, np.float32)
    k = np.asarray(k, np.float32)
    v = np.asarray(v, np.float32)
    dk = q.shape[1]
    backend = policy if policy is not None else "sputnik"
    scores = ops.sddmm(
        q, k, mask, device, backend=backend, selector=selector,
        validate=validate,
    )
    probs = ops.sparse_softmax(
        scores.output, device, scale=1.0 / np.sqrt(dk),
        backend=backend, validate=validate,
    )
    out = ops.spmm(
        probs.output, v, device, backend=backend, selector=selector,
        validate=validate,
    )
    if reports is not None:
        reports.extend(
            r.reliability
            for r in (scores, probs, out)
            if r.reliability is not None
        )
    if profile is not None:
        profile.add(scores.execution)
        profile.add(probs.execution)
        profile.add(out.execution)
    return out.output


def dense_attention_batched(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    device: DeviceSpec,
    profile: Profile | None = None,
    causal: bool = True,
) -> np.ndarray:
    """Multi-head dense attention over ``(H, seq, dk)`` stacks.

    All heads go down as strided-batched cuBLAS GEMMs — one launch per
    matmul stage for the whole stack instead of one per head.
    """
    q = np.asarray(q, np.float32)
    k = np.asarray(k, np.float32)
    v = np.asarray(v, np.float32)
    if q.ndim != 3:
        raise ValueError(f"expected (H, seq, dk) stacks, got {q.shape}")
    h, seq, dk = q.shape
    scores_exec = ops.matmul_cost(h * seq, seq, dk, device)
    logits = np.einsum("hsd,htd->hst", q, k) / np.sqrt(dk)
    if causal:
        causal_mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
        logits = np.where(causal_mask[None], -np.inf, logits)
    probs = softmax(logits, axis=2)
    out_exec = ops.matmul_cost(h * seq, dk, seq, device)
    out = np.einsum("hst,htd->hsd", probs, v).astype(np.float32)
    if profile is not None:
        from .activation import elementwise_execution

        profile.add(scores_exec)
        profile.add(
            elementwise_execution(logits.size, device, "dense_softmax", reads=2)
        )
        profile.add(out_exec)
    return out


def sparse_attention_batched(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: CSRMatrix,
    device: DeviceSpec,
    profile: Profile | None = None,
    *,
    policy=None,
    validate: bool = False,
    selector: str = "heuristic",
    reports: list | None = None,
) -> np.ndarray:
    """Multi-head sparse attention over ``(H, seq, dk)`` stacks.

    All heads share ``mask``'s topology (Section VII-C1), so the whole
    stack is three batched dispatches — batched SDDMM producing the
    ``(nnz, H)`` score matrix, one batched softmax over it, and one
    batched SpMM with per-head probability values against ``V`` — each
    resolving ONE plan and costing ONE z-scaled launch. A policy-routed
    call yields one DispatchReport per stage covering the whole batch.
    """
    q = np.asarray(q, np.float32)
    k = np.asarray(k, np.float32)
    v = np.asarray(v, np.float32)
    if q.ndim != 3:
        raise ValueError(f"expected (H, seq, dk) stacks, got {q.shape}")
    dk = q.shape[2]
    backend = policy if policy is not None else "sputnik"
    scores = ops.sddmm_batched(
        q, k, mask, device, backend=backend, selector=selector,
        validate=validate,
    )
    probs = ops.sparse_softmax_batched(
        mask, scores.output, device, scale=1.0 / np.sqrt(dk),
        backend=backend, validate=validate,
    )
    out = ops.spmm_batched(
        mask, v, device, backend=backend, selector=selector,
        validate=validate,
        values=np.ascontiguousarray(probs.output.T),
    )
    if reports is not None:
        reports.extend(
            r.reliability
            for r in (scores, probs, out)
            if r.reliability is not None
        )
    if profile is not None:
        profile.add(scores.execution)
        profile.add(probs.execution)
        profile.add(out.execution)
    return out.output


def dense_attention_cost(
    seq: int, dk: int, n_instances: int, device: DeviceSpec, profile: Profile
) -> None:
    """Cost-only dense attention for ``n_instances`` (batch x head) passes."""
    from .activation import elementwise_execution

    qk = ops.matmul_cost(seq, seq, dk, device)
    sm = elementwise_execution(seq * seq, device, "dense_softmax", reads=2)
    av = ops.matmul_cost(seq, dk, seq, device)
    for part in (qk, sm, av):
        scaled = part.add_overhead(0.0)
        scaled.runtime_s *= n_instances
        scaled.flops *= n_instances
        profile.add(scaled)


def sparse_attention_cost(
    mask: CSRMatrix, dk: int, n_instances: int, device: DeviceSpec, profile: Profile
) -> None:
    """Cost-only sparse attention for ``n_instances`` (batch x head) passes.

    The mask is shared across heads and layers (Section VII-C1), so one
    launch is costed and scaled.
    """
    sddmm_cfg = SddmmConfig(vector_width=4 if dk % 4 == 0 else 1)
    sddmm_r = ops.sddmm_cost(mask, dk, device, sddmm_cfg)
    sm_r = ops.sparse_softmax_cost(mask, device)
    spmm_r = ops.spmm_cost(mask, dk, device)
    for part in (sddmm_r, sm_r, spmm_r):
        scaled = part.add_overhead(0.0)
        scaled.runtime_s *= n_instances
        scaled.flops *= n_instances
        profile.add(scaled)
