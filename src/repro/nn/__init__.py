"""Neural-network substrate: the layers, models, and training utilities the
paper's applications (sparse Transformer, sparse MobileNetV1, sparse RNNs)
are built from."""

from .activation import bias_relu, elementwise_execution, relu
from .attention import (
    dense_attention,
    dense_attention_batched,
    dense_attention_cost,
    softmax,
    sparse_attention,
    sparse_attention_batched,
    sparse_attention_cost,
)
from .batchnorm import (
    BatchNorm,
    fuse_into_dense,
    fuse_into_depthwise,
    fuse_into_sparse,
)
from .conv import depthwise_conv, im2col, sparse_conv3x3_operands
from .dynamic import (
    DropGrowSchedule,
    drop_grow_step,
    drop_grow_update,
    select_rows,
)
from .layers import Linear, SparseLinear
from .mobilenet import MobileNetReport, MobileNetV1, reference_accuracy, scaled_channels
from .mobilenet import benchmark as benchmark_mobilenet
from .profile import Profile
from .pruning import MagnitudePruner, gradual_sparsity, magnitude_prune, prune_to_csr
from .rnn_cells import SparseGruCell, SparseLstmCell, SparseRnnCell, random_cell
from .training import TrainingResult, make_regression_task, train_pruned_mlp
from .transformer_layer import TransformerLayer, TransformerStack, layer_norm
from .transformer import (
    TransformerConfig,
    TransformerReport,
    profile_dense,
    profile_sparse,
)
from .transformer import benchmark as benchmark_transformer

__all__ = [
    "Profile",
    "Linear",
    "SparseLinear",
    "relu",
    "bias_relu",
    "elementwise_execution",
    "softmax",
    "dense_attention",
    "sparse_attention",
    "dense_attention_batched",
    "sparse_attention_batched",
    "dense_attention_cost",
    "sparse_attention_cost",
    "BatchNorm",
    "fuse_into_dense",
    "fuse_into_sparse",
    "fuse_into_depthwise",
    "im2col",
    "depthwise_conv",
    "sparse_conv3x3_operands",
    "TransformerConfig",
    "TransformerReport",
    "profile_dense",
    "profile_sparse",
    "benchmark_transformer",
    "TransformerLayer",
    "TransformerStack",
    "layer_norm",
    "MobileNetV1",
    "MobileNetReport",
    "benchmark_mobilenet",
    "reference_accuracy",
    "scaled_channels",
    "SparseRnnCell",
    "SparseGruCell",
    "SparseLstmCell",
    "random_cell",
    "magnitude_prune",
    "prune_to_csr",
    "gradual_sparsity",
    "MagnitudePruner",
    "DropGrowSchedule",
    "drop_grow_update",
    "drop_grow_step",
    "select_rows",
    "make_regression_task",
    "train_pruned_mlp",
    "TrainingResult",
]
