"""Convolutions for the MobileNetV1 and ResNet benchmarks.

The paper computes 1x1 convolutions as matrix multiplication over CHW data
(Section VII-D) and benchmarks ResNet's other convolutions "as an im2col
transform on the input data followed by SpMM" (Section VII-A1). Depthwise
convolutions get dedicated bandwidth-bound kernels with fused bias/ReLU.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import DeviceSpec
from ..gpu.executor import BlockCosts, ExecutionResult, KernelLaunch, execute
from ..gpu.occupancy import BlockResources
from ..sparse.csr import CSRMatrix
from .profile import Profile


def im2col(
    x: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unfold ``(C, H, W)`` input into ``(C * k * k, out_h * out_w)`` patches.

    The output's columns enumerate output pixels row-major, so a GEMM with a
    ``(C_out, C*k*k)`` filter matrix yields CHW output directly.
    """
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError("im2col expects a (C, H, W) tensor")
    c, h, w = x.shape
    if padding:
        x = np.pad(x, [(0, 0), (padding, padding), (padding, padding)])
        h, w = h + 2 * padding, w + 2 * padding
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("kernel larger than padded input")
    # Strided sliding-window view, then reshape (no data copies until the
    # final ascontiguousarray).
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(1, 2))
    windows = windows[:, ::stride, ::stride]
    cols = windows.transpose(0, 3, 4, 1, 2).reshape(c * kernel * kernel, out_h * out_w)
    return np.ascontiguousarray(cols)


def depthwise_conv_execution(
    channels: int, out_pixels: int, kernel: int, device: DeviceSpec
) -> ExecutionResult:
    """The paper's depthwise-convolution kernel with fused bias + ReLU.

    One output per lane; each output reads a k x k window per channel —
    bandwidth-bound with good L1 reuse across overlapping windows.
    """
    n_out = channels * out_pixels
    per_block = 256 * 8
    blocks = max(1, -(-n_out // per_block))
    taps = kernel * kernel
    launch = KernelLaunch(
        name="depthwise_conv_fused",
        n_blocks=blocks,
        resources=BlockResources(threads=256, registers_per_thread=32),
        costs=BlockCosts(
            fma_instructions=per_block * taps / 32,
            other_instructions=per_block * (taps / 4 + 2) / 32,
            # Overlapping windows: each input element is read ~1x from DRAM
            # and re-used through L1 for the remaining taps.
            dram_bytes=per_block * 4.0 * 2.0,
            l1_bytes=per_block * 4.0 * (taps - 1),
        ),
        flops=2.0 * n_out * taps,
        pipeline_efficiency=0.7,
    )
    return execute(launch, device)


def depthwise_conv(
    x: np.ndarray,
    filters: np.ndarray,
    bias: np.ndarray,
    device: DeviceSpec,
    stride: int = 1,
    profile: Profile | None = None,
) -> np.ndarray:
    """Depthwise 3x3 convolution with fused bias + ReLU (numerics + cost).

    ``x`` is ``(C, H, W)``; ``filters`` is ``(C, k, k)``; same padding.
    """
    x = np.asarray(x, dtype=np.float32)
    filters = np.asarray(filters, dtype=np.float32)
    c, h, w = x.shape
    if filters.shape[0] != c or filters.shape[1] != filters.shape[2]:
        raise ValueError("filters must be (C, k, k)")
    k = filters.shape[1]
    pad = k // 2
    out = np.empty((c, -(-h // stride), -(-w // stride)), dtype=np.float32)
    xp = np.pad(x, [(0, 0), (pad, pad), (pad, pad)])
    windows = np.lib.stride_tricks.sliding_window_view(xp, (k, k), axis=(1, 2))
    windows = windows[:, ::stride, ::stride]
    out = np.einsum("chwij,cij->chw", windows, filters, dtype=np.float32)
    out = np.maximum(out + np.asarray(bias, np.float32)[:, None, None], 0)
    if profile is not None:
        profile.add(
            depthwise_conv_execution(c, out.shape[1] * out.shape[2], k, device)
        )
    return out.astype(np.float32)


def conv1x1_as_gemm_operand(x: np.ndarray) -> np.ndarray:
    """Flatten CHW activations to the ``(C, H*W)`` GEMM operand the 1x1
    convolutions multiply against (Section VII-D)."""
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError("expected (C, H, W)")
    return x.reshape(x.shape[0], -1)


def sparse_conv3x3_operands(
    weight: CSRMatrix, x: np.ndarray, stride: int = 1
) -> tuple[CSRMatrix, np.ndarray]:
    """ResNet-style sparse 3x3 convolution: im2col + SpMM (Section VII-A1).

    Returns the (sparse filter, unfolded patches) pair; the caller times the
    SpMM alone, matching the paper ("we do not include the time of the
    im2col transform in our benchmarks").
    """
    cols = im2col(x, kernel=3, stride=stride, padding=1)
    if weight.n_cols != cols.shape[0]:
        raise ValueError(
            f"filter expects {weight.n_cols} unfolded channels, got {cols.shape[0]}"
        )
    return weight, cols.astype(np.float32)
