"""Minimal training loop demonstrating sparsification (DESIGN.md Sec. 2).

The paper's accuracy results come from ImageNet/WMT-scale training, which a
CPU reproduction cannot re-run; this module demonstrates the *mechanics* on
a synthetic task instead: a small MLP trained with SGD while the
Zhu & Gupta magnitude-pruning schedule ramps its hidden layer to high
sparsity, ending with weights that run through the Sputnik kernels at
near-dense quality. Used by ``examples/pruning_workflow.py`` and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csr import CSRMatrix
from .pruning import MagnitudePruner


def make_regression_task(
    n_features: int = 64, n_outputs: int = 8, n_samples: int = 2048, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic teacher task: y = tanh(W2 tanh(W1 x)) + noise."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n_samples, n_features)).astype(np.float32)
    w1 = rng.standard_normal((n_features, 32)) / np.sqrt(n_features)
    w2 = rng.standard_normal((32, n_outputs)) / np.sqrt(32)
    y = np.tanh(np.tanh(x @ w1) @ w2) + 0.01 * rng.standard_normal(
        (n_samples, n_outputs)
    )
    return x, y.astype(np.float32)


@dataclass
class TrainingResult:
    """Outcome of :func:`train_pruned_mlp`."""

    dense_loss: float
    sparse_loss: float
    final_sparsity: float
    sparse_weight: CSRMatrix
    loss_history: list[float]


def train_pruned_mlp(
    x: np.ndarray,
    y: np.ndarray,
    hidden: int = 128,
    final_sparsity: float = 0.9,
    steps: int = 400,
    lr: float = 0.05,
    batch: int = 128,
    seed: int = 0,
) -> TrainingResult:
    """Train a 2-layer MLP twice — dense, then with gradual pruning — and
    compare final losses.

    The pruned run uses the cubic ramp over the first 60 % of training so
    the network recovers from each pruning event, mirroring the paper's
    extended-training recipe for sparse models (Section VII-D1).
    """
    x = np.asarray(x, np.float32)
    y = np.asarray(y, np.float32)
    n, d = x.shape
    k = y.shape[1]

    def run(prune: bool) -> tuple[float, np.ndarray, list[float]]:
        rng = np.random.default_rng(seed)
        w1 = rng.standard_normal((d, hidden)).astype(np.float32) / np.sqrt(d)
        w2 = rng.standard_normal((hidden, k)).astype(np.float32) / np.sqrt(hidden)
        pruner = MagnitudePruner(
            final_sparsity, total_steps=int(steps * 0.6), frequency=10
        )
        history = []
        for step in range(steps):
            idx = rng.integers(0, n, size=batch)
            xb, yb = x[idx], y[idx]
            if prune:
                w1 = pruner.apply(w1, step)
            h = np.tanh(xb @ w1)
            pred = h @ w2
            err = pred - yb
            loss = float(np.mean(err**2))
            history.append(loss)
            g2 = h.T @ err / batch
            gh = (err @ w2.T) * (1.0 - h**2)
            g1 = xb.T @ gh / batch
            w1 -= lr * g1
            w2 -= lr * g2
        if prune:
            w1 = pruner.apply(w1, steps)
        # Full-dataset loss with the final weights.
        pred = np.tanh(x @ w1) @ w2
        return float(np.mean((pred - y) ** 2)), w1, history

    dense_loss, _, _ = run(prune=False)
    sparse_loss, w1_sparse, history = run(prune=True)
    realized = float(np.mean(w1_sparse == 0))
    return TrainingResult(
        dense_loss=dense_loss,
        sparse_loss=sparse_loss,
        final_sparsity=realized,
        sparse_weight=CSRMatrix.from_dense(w1_sparse.T),  # (out, in) layout
        loss_history=history,
    )
