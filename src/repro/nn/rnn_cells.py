"""Weight-sparse recurrent cells: RNN, GRU, LSTM.

These are the workloads of the Figure 1 motivation and the Figure 10
benchmark: recurrent weight matrices pruned to moderate sparsity, with the
batch as the SpMM's dense dimension. Each cell stacks its gates into one
tall sparse matrix (``gates x hidden``), so a step is a single SpMM per
operand — the layout the paper's M/K/N problem labels describe.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import DeviceSpec
from ..sparse.csr import CSRMatrix
from .layers import SparseLinear
from .profile import Profile


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


class SparseRnnCell:
    """Vanilla RNN: ``h' = tanh(W_x x + W_h h)`` with sparse weights."""

    gates = 1

    def __init__(self, w_input: CSRMatrix, w_hidden: CSRMatrix) -> None:
        hidden = w_hidden.n_cols
        if w_input.n_rows != self.gates * hidden or w_hidden.n_rows != self.gates * hidden:
            raise ValueError(
                f"weights must stack {self.gates} gates of {hidden} units"
            )
        self.hidden_size = hidden
        self.input_layer = SparseLinear(w_input)
        self.hidden_layer = SparseLinear(w_hidden)

    def _preact(
        self, x: np.ndarray, h: np.ndarray, device: DeviceSpec, profile: Profile | None
    ) -> np.ndarray:
        zx = self.input_layer.forward(x, device, profile)
        zh = self.hidden_layer.forward(h, device, profile)
        return zx.astype(np.float32) + zh.astype(np.float32)

    def step(
        self,
        x: np.ndarray,
        h: np.ndarray,
        device: DeviceSpec,
        profile: Profile | None = None,
    ) -> np.ndarray:
        return np.tanh(self._preact(x, h, device, profile))


class SparseGruCell(SparseRnnCell):
    """GRU with stacked (reset, update, candidate) gates — 3h x h weights."""

    gates = 3

    def step(self, x, h, device, profile=None):
        z = self._preact(x, h, device, profile)
        hs = self.hidden_size
        r = _sigmoid(z[:hs])
        u = _sigmoid(z[hs : 2 * hs])
        # Candidate uses the reset-gated hidden state; the gating is applied
        # post-hoc to the hidden contribution (single-SpMM formulation).
        c = np.tanh(z[2 * hs :] * r)
        return u * h + (1.0 - u) * c


class SparseLstmCell(SparseRnnCell):
    """LSTM with stacked (input, forget, cell, output) gates — 4h x h."""

    gates = 4

    def step(
        self,
        x: np.ndarray,
        state: tuple[np.ndarray, np.ndarray],
        device: DeviceSpec,
        profile: Profile | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        h, c = state
        z = self._preact(x, h, device, profile)
        hs = self.hidden_size
        i = _sigmoid(z[:hs])
        f = _sigmoid(z[hs : 2 * hs])
        g = np.tanh(z[2 * hs : 3 * hs])
        o = _sigmoid(z[3 * hs :])
        c_new = f * c + i * g
        h_new = o * np.tanh(c_new)
        return h_new, c_new


def random_cell(
    cell_type: str,
    hidden: int,
    input_size: int | None = None,
    sparsity: float = 0.9,
    seed: int = 0,
):
    """Build a cell with random uniform-sparsity weights (Section VII-A2)."""
    classes = {"rnn": SparseRnnCell, "gru": SparseGruCell, "lstm": SparseLstmCell}
    if cell_type not in classes:
        raise ValueError(f"unknown cell type {cell_type!r}")
    cls = classes[cell_type]
    input_size = hidden if input_size is None else input_size
    rng = np.random.default_rng(seed)

    def sparse_weight(rows: int, cols: int) -> CSRMatrix:
        dense = rng.standard_normal((rows, cols)) * np.sqrt(1.0 / cols)
        dense *= rng.random((rows, cols)) >= sparsity
        return CSRMatrix.from_dense(dense.astype(np.float32))

    m = cls.gates * hidden
    return cls(sparse_weight(m, input_size), sparse_weight(m, hidden))
