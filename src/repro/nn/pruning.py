"""Magnitude pruning (Zhu & Gupta 2018) — the sparsification algorithm the
MobileNet study uses (Section VII-D1).

``magnitude_prune`` keeps the largest-magnitude fraction of weights exactly;
``gradual_sparsity`` is the cubic ramp schedule from "To Prune, or Not to
Prune"; ``MagnitudePruner`` applies the schedule during training.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix


def magnitude_prune(weight: np.ndarray, sparsity: float) -> np.ndarray:
    """Zero all but the top-``(1-sparsity)`` fraction of weights by |w|.

    Ties at the threshold resolve deterministically (by flat index), so the
    kept count is exact.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity {sparsity} out of [0, 1)")
    weight = np.asarray(weight)
    n_keep = weight.size - int(round(sparsity * weight.size))
    if n_keep <= 0:
        return np.zeros_like(weight)
    flat = np.abs(weight).ravel()
    # argpartition gives an exact top-k even with duplicate magnitudes.
    keep_idx = np.argpartition(-flat, n_keep - 1)[:n_keep]
    mask = np.zeros(weight.size, dtype=bool)
    mask[keep_idx] = True
    return np.where(mask.reshape(weight.shape), weight, 0)


def prune_to_csr(
    weight: np.ndarray, sparsity: float, dtype=np.float32
) -> CSRMatrix:
    """Prune and compress in one step."""
    return CSRMatrix.from_dense(magnitude_prune(weight, sparsity), dtype=dtype)


def gradual_sparsity(
    step: int, total_steps: int, final_sparsity: float, initial_sparsity: float = 0.0
) -> float:
    """The Zhu & Gupta cubic sparsity ramp: s_t = s_f + (s_i - s_f)(1 - t/T)^3."""
    if total_steps <= 0:
        raise ValueError("total_steps must be positive")
    t = min(max(step, 0), total_steps) / total_steps
    return final_sparsity + (initial_sparsity - final_sparsity) * (1.0 - t) ** 3


class MagnitudePruner:
    """Stateful gradual pruner: prune every ``frequency`` steps along the
    cubic ramp, keeping already-pruned weights at zero (mask monotonicity)."""

    def __init__(
        self,
        final_sparsity: float,
        total_steps: int,
        frequency: int = 10,
        initial_sparsity: float = 0.0,
    ) -> None:
        if not 0.0 <= final_sparsity < 1.0:
            raise ValueError("final sparsity out of range")
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        self.final_sparsity = final_sparsity
        self.total_steps = total_steps
        self.frequency = frequency
        self.initial_sparsity = initial_sparsity
        self._mask: np.ndarray | None = None

    def current_sparsity(self, step: int) -> float:
        return gradual_sparsity(
            step, self.total_steps, self.final_sparsity, self.initial_sparsity
        )

    def apply(self, weight: np.ndarray, step: int) -> np.ndarray:
        """Masked weights at this training step (updates the mask on
        schedule boundaries)."""
        weight = np.asarray(weight)
        if self._mask is None:
            self._mask = np.ones(weight.shape, dtype=bool)
        if step % self.frequency == 0:
            pruned = magnitude_prune(
                np.where(self._mask, weight, 0), self.current_sparsity(step)
            )
            self._mask = pruned != 0
        return np.where(self._mask, weight, 0)

    @property
    def mask(self) -> np.ndarray | None:
        return None if self._mask is None else self._mask.copy()
