"""Execution profiling for model forward passes.

Model code appends every kernel's :class:`ExecutionResult` to a
:class:`Profile`; the application benchmarks (Tables III/IV, Figure 12)
read total simulated runtime, throughput, and memory high-water marks off
the profile.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from ..gpu.device import DeviceSpec
from ..gpu.executor import ExecutionResult

#: Accounting-free contexts used while *building* profiles, one per device.
_UNMETERED_CONTEXTS: dict = {}


@contextmanager
def unmetered_dispatch(device: DeviceSpec):
    """Route implicit cost dispatches through an accounting-free context.

    Profile construction is cost-model bookkeeping: the OOM verdict comes
    from replaying the recorded allocation timeline at the device's DRAM
    capacity (:meth:`Profile.replay`), so a harness-level ``REPRO_HBM_CAP``
    must not be able to abort the bookkeeping itself — a dense Table III
    pass has multi-hundred-MB transient workspaces that would otherwise
    OOM the shared default context under a small cap. The previous default
    context is restored on exit; the unmetered one is cached per device so
    repeated profiling reuses its plan cache.
    """
    from .. import ops

    ctx = _UNMETERED_CONTEXTS.get(device)
    if ctx is None:
        ctx = ops.ExecutionContext(device, memory=False)
        _UNMETERED_CONTEXTS[device] = ctx
    prev = ops.default_context(device)
    ops.set_default_context(ctx)
    try:
        yield ctx
    finally:
        ops.set_default_context(prev)


@dataclass
class Profile:
    """Accumulated simulated execution of a sequence of kernels."""

    records: list[ExecutionResult] = field(default_factory=list)
    #: Bytes of weights + persistent buffers resident on the device.
    weight_bytes: int = 0
    #: Peak bytes of live activations during the pass.
    peak_activation_bytes: int = 0
    _live_activation_bytes: int = field(default=0, repr=False)
    #: Ordered allocation timeline: ``("alloc"|"free", nbytes)`` — replayed
    #: through a :class:`~repro.gpu.allocator.DeviceAllocator` so the OOM
    #: verdict uses real alignment/reservation accounting, not a byte sum.
    events: list[tuple[str, int]] = field(default_factory=list, repr=False)

    def add(self, result: ExecutionResult) -> None:
        self.records.append(result)

    def add_weights(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("weight bytes must be non-negative")
        self.weight_bytes += nbytes

    def allocate_activation(self, nbytes: int) -> None:
        """Track a live activation allocation (for the memory columns)."""
        if nbytes < 0:
            raise ValueError("activation bytes must be non-negative")
        self._live_activation_bytes += nbytes
        self.peak_activation_bytes = max(
            self.peak_activation_bytes, self._live_activation_bytes
        )
        self.events.append(("alloc", nbytes))

    def free_activation(self, nbytes: int) -> None:
        self._live_activation_bytes = max(0, self._live_activation_bytes - nbytes)
        self.events.append(("free", nbytes))

    def replay(self, allocator) -> dict:
        """Replay the recorded allocation timeline through ``allocator``.

        Weights are charged first (they stay resident for the whole pass),
        then each activation alloc/free in recorded order. Frees are
        matched to the most recent live allocation of the same size;
        unmatched frees are ignored (the raw counters already clamp).

        Returns a verdict dict: ``fits`` (False when the device ran out of
        memory mid-replay), ``peak_allocated_bytes`` /
        ``peak_reserved_bytes`` from the allocator's accounting, and the
        full allocator ``snapshot``.
        """
        from ..reliability.errors import DeviceOOMError

        live: dict[int, list] = {}
        verdict: dict = {"fits": True, "oom_requested": 0}
        try:
            if self.weight_bytes:
                allocator.allocate(self.weight_bytes, tag="weights")
            for kind, nbytes in self.events:
                if nbytes <= 0:
                    continue
                if kind == "alloc":
                    alloc = allocator.allocate(nbytes, tag="activation")
                    live.setdefault(nbytes, []).append(alloc)
                else:
                    stack = live.get(nbytes)
                    if stack:
                        allocator.free(stack.pop())
        except DeviceOOMError as exc:
            verdict["fits"] = False
            verdict["oom_requested"] = int(exc.requested)
        verdict["peak_allocated_bytes"] = allocator.peak_allocated_bytes
        verdict["peak_reserved_bytes"] = allocator.peak_reserved_bytes
        verdict["snapshot"] = allocator.snapshot()
        return verdict

    @property
    def runtime_s(self) -> float:
        return sum(r.runtime_s for r in self.records)

    @property
    def flops(self) -> float:
        return sum(r.flops for r in self.records)

    @property
    def total_memory_bytes(self) -> int:
        return self.weight_bytes + self.peak_activation_bytes

    def fits(self, device: DeviceSpec) -> bool:
        """Whether the pass fits in device memory (Table III's OOM check).

        Routed through a fresh :class:`~repro.gpu.allocator.DeviceAllocator`
        at the device's full DRAM capacity, so the verdict uses the same
        alignment and segment-reservation math the execution stack charges
        against. The ``REPRO_HBM_CAP`` env override is deliberately *not*
        applied here — Table III verdicts must be deterministic properties
        of the device, not of the harness environment.
        """
        from ..gpu.allocator import DeviceAllocator

        allocator = DeviceAllocator(device, capacity=device.dram_capacity)
        return self.replay(allocator)["fits"]

    def by_kernel(self) -> dict[str, float]:
        """Total runtime per kernel name (for per-layer breakdowns)."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.name] = out.get(r.name, 0.0) + r.runtime_s
        return out

    def to_trace(self, name: str = "model", tracer=None):
        """Lay the profiled kernels out on a simulated-device timeline.

        Returns a ``clock="sim"`` :class:`~repro.obs.tracing.Tracer` (or
        fills the one passed in): one root span covering the pass, one
        child span per kernel laid back-to-back at their simulated
        runtimes, and one ``launch`` record per kernel carrying its phase
        attribution — so a model forward exports to Chrome trace / the
        report CLI exactly like a live-traced sweep.
        """
        from ..obs.tracing import Tracer

        if tracer is None:
            tracer = Tracer(process=name, clock="sim")
        root = tracer.add_complete_span(
            name,
            ts_s=0.0,
            dur_s=self.runtime_s,
            category="model",
            sim_s=self.runtime_s,
            kernels=len(self.records),
            flops=self.flops,
        )
        cursor = 0.0
        for result in self.records:
            span = tracer.add_complete_span(
                result.name,
                ts_s=cursor,
                dur_s=result.runtime_s,
                category="kernel",
                sim_s=result.runtime_s,
                parent=root,
                flops=result.flops,
                n_blocks=result.n_blocks,
            )
            phases = getattr(result, "phases", None)
            if phases is not None:
                span.set(phases=phases.as_dict())
                tracer.add_launch(
                    {
                        "name": result.name,
                        "device": "",
                        "runtime_s": result.runtime_s,
                        "flops": result.flops,
                        "dram_bytes": result.dram_bytes,
                        "l2_bytes": result.l2_bytes,
                        "n_blocks": result.n_blocks,
                        "phases": phases.as_dict(),
                        "imbalance": (
                            result.schedule.imbalance
                            if result.schedule is not None
                            else 1.0
                        ),
                    }
                )
            cursor += result.runtime_s
        return tracer
