"""Execution profiling for model forward passes.

Model code appends every kernel's :class:`ExecutionResult` to a
:class:`Profile`; the application benchmarks (Tables III/IV, Figure 12)
read total simulated runtime, throughput, and memory high-water marks off
the profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.device import DeviceSpec
from ..gpu.executor import ExecutionResult


@dataclass
class Profile:
    """Accumulated simulated execution of a sequence of kernels."""

    records: list[ExecutionResult] = field(default_factory=list)
    #: Bytes of weights + persistent buffers resident on the device.
    weight_bytes: int = 0
    #: Peak bytes of live activations during the pass.
    peak_activation_bytes: int = 0
    _live_activation_bytes: int = field(default=0, repr=False)

    def add(self, result: ExecutionResult) -> None:
        self.records.append(result)

    def add_weights(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("weight bytes must be non-negative")
        self.weight_bytes += nbytes

    def allocate_activation(self, nbytes: int) -> None:
        """Track a live activation allocation (for the memory columns)."""
        if nbytes < 0:
            raise ValueError("activation bytes must be non-negative")
        self._live_activation_bytes += nbytes
        self.peak_activation_bytes = max(
            self.peak_activation_bytes, self._live_activation_bytes
        )

    def free_activation(self, nbytes: int) -> None:
        self._live_activation_bytes = max(0, self._live_activation_bytes - nbytes)

    @property
    def runtime_s(self) -> float:
        return sum(r.runtime_s for r in self.records)

    @property
    def flops(self) -> float:
        return sum(r.flops for r in self.records)

    @property
    def total_memory_bytes(self) -> int:
        return self.weight_bytes + self.peak_activation_bytes

    def fits(self, device: DeviceSpec) -> bool:
        """Whether the pass fits in device memory (Table III's OOM check)."""
        return self.total_memory_bytes <= device.dram_capacity

    def by_kernel(self) -> dict[str, float]:
        """Total runtime per kernel name (for per-layer breakdowns)."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.name] = out.get(r.name, 0.0) + r.runtime_s
        return out
