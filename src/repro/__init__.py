"""repro — a from-scratch reproduction of "Sparse GPU Kernels for Deep
Learning" (Gale, Zaharia, Young, Elsen — SC 2020).

The package reimplements the Sputnik kernel library and the paper's full
evaluation on a software model of a V100-class GPU (see DESIGN.md):

- :mod:`repro.core` — the paper's SpMM, SDDMM, and sparse-softmax kernels
  (1-D tiling, subwarp tiling, ROMA, row-swizzle load balancing, mixed
  precision) with per-optimization ablation toggles;
- :mod:`repro.gpu` — the GPU substrate: device models, occupancy, memory
  transactions, the reverse-engineered Volta block scheduler, and the
  launch executor;
- :mod:`repro.sparse` — CSR/CSC/block formats, reference operations, and
  the cached-topology transpose;
- :mod:`repro.baselines` — cuSPARSE, cuBLAS, MergeSpmm, and ASpT models;
- :mod:`repro.datasets` — the Section II matrix corpora and every
  benchmark's workload generators;
- :mod:`repro.nn` — sparse layers, attention, the Table III Transformer,
  the Table IV MobileNetV1, RNN cells, and magnitude pruning;
- :mod:`repro.bench` — the sweep runner and speedup statistics;
- :mod:`repro.tune` — config selection behind ``selector=``: the paper's
  Section VII heuristics, the oracle, and a cost-model-driven autotuner
  whose winners persist in the plan store;
- :mod:`repro.ops` — the unified operator dispatch layer: a kernel
  registry (swap backends by string), per-matrix plan caching, and
  telemetry. All higher layers call kernels through it;
- :mod:`repro.reliability` — fault injection, backend fallback chains
  with retry/backoff, a structured error taxonomy, and numerical
  guardrails (fp16-overflow degraded mode, deep CSR validation);
- :mod:`repro.dist` — multi-GPU sharded execution: cost-balanced row/2-D
  shard plans, per-device allocators, and an NVLink/PCIe interconnect
  model charging all-gather/reduce-scatter/all-reduce on the simulated
  clock.

Quick start::

    import numpy as np
    from repro import ops, CSRMatrix, V100

    a = CSRMatrix.from_dense(np.eye(64, dtype=np.float32))
    b = np.ones((64, 32), dtype=np.float32)
    result = ops.spmm(a, b, V100)   # plan cached for the next call
    print(result.output.shape, result.runtime_s)
"""

from .core import (
    KernelResult,
    SddmmConfig,
    SpmmConfig,
    sddmm,
    sparse_softmax,
    spmm,
)
from .gpu import GTX1080, V100, DeviceSpec, get_device
from .sparse import CSRMatrix, sddmm_reference, sparse_softmax_reference, spmm_reference
from . import dist, ops, reliability, tune
from .ops import ExecutionContext, default_context

__version__ = "1.0.0"

__all__ = [
    "ops",
    "reliability",
    "tune",
    "dist",
    "ExecutionContext",
    "default_context",
    "spmm",
    "sddmm",
    "sparse_softmax",
    "SpmmConfig",
    "SddmmConfig",
    "KernelResult",
    "CSRMatrix",
    "spmm_reference",
    "sddmm_reference",
    "sparse_softmax_reference",
    "DeviceSpec",
    "V100",
    "GTX1080",
    "get_device",
    "__version__",
]
