"""Plan identity and caching for the operator dispatch layer.

Every kernel plan in :mod:`repro.core` depends only on a matrix's *structure*
(offsets, indices, shape, value dtype) — never on its values. That makes a
plan reusable across every matrix sharing a topology: training steps that
update weight values in place, attention heads sharing one connectivity
pattern, and repeated benchmark invocations all hit the same plan.

The cache key is a :func:`matrix_fingerprint` — a content hash of the
structure arrays — so "matrix identity" is structural, not ``id()``-based:
rebuilding an identical CSR matrix still hits, and mutating a topology in
place misses (the fingerprint changes), which is exactly the invalidation
the paper's setup/compute split requires (Section IX).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Callable, Hashable

import numpy as np

from ..core.repair import TopologyDelta, edited_rows, make_delta
from ..reliability.errors import PlanCorruptionError


class _PoisonedEntry:
    """Sentinel standing in for a plan whose cached bytes were corrupted."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<poisoned plan>"


_POISONED = _PoisonedEntry()


def is_poisoned(value: Any) -> bool:
    """Whether a cache value is the corruption sentinel, not a real plan.

    Eviction observers use this to avoid spilling the sentinel to the
    persistent store (a poisoned entry must be re-planned, never reloaded).
    """
    return value is _POISONED

#: Default maximum number of cached plans per context. Plans hold the
#: swizzled row order and ROMA extents (O(rows) each), so a few hundred is
#: cheap; LRU eviction bounds the worst case for benchmark sweeps.
DEFAULT_MAX_PLANS = 512


def matrix_fingerprint(matrix: Any) -> str:
    """Hash a sparse matrix's *structure*: offsets, indices, shape, dtype.

    Values are deliberately excluded — plans are valid across value updates
    (e.g. an optimizer step on a fixed sparsity pattern). Works on CSR
    (``row_offsets``/``column_indices``) and CSC (``col_offsets``/
    ``row_indices``) matrices by duck typing.
    """
    cached = getattr(matrix, "_structure_fp", None)
    if cached is not None:
        return cached
    if hasattr(matrix, "row_offsets"):
        kind = b"csr"
        offsets = matrix.row_offsets
        indices = matrix.column_indices
    elif hasattr(matrix, "col_offsets"):
        kind = b"csc"
        offsets = matrix.col_offsets
        indices = matrix.row_indices
    else:
        raise TypeError(
            f"cannot fingerprint {type(matrix).__name__}: expected a CSR or "
            "CSC matrix"
        )
    h = hashlib.blake2b(digest_size=16)
    h.update(kind)
    h.update(repr(tuple(matrix.shape)).encode())
    h.update(str(matrix.values.dtype).encode())
    h.update(np.ascontiguousarray(offsets).tobytes())
    h.update(np.ascontiguousarray(indices).tobytes())
    return h.hexdigest()


def _stamp_fingerprint(matrix: Any, fp: str) -> None:
    """Memoize ``fp`` on ``matrix`` (``_structure_fp``).

    Only :func:`topology_delta` stamps: matrices flowing through the
    dynamic-sparsity path are structurally immutable by contract (each
    mutation builds a *new* child CSR), so re-hashing ~nnz bytes on every
    plan lookup of a training step is pure waste. Matrices that never meet
    a delta keep the hash-on-every-call behaviour, including the
    documented in-place-mutation-changes-the-fingerprint property.
    """
    try:
        object.__setattr__(matrix, "_structure_fp", fp)
    except (AttributeError, TypeError):  # slots / exotic duck types
        pass


def topology_delta(
    parent,
    child,
    rows: np.ndarray | None = None,
    *,
    values_preserved: bool = True,
) -> TopologyDelta:
    """Fingerprint-aware :class:`~repro.core.repair.TopologyDelta`.

    ``rows`` is the edited row set when the caller tracked it (drop/grow
    updates know exactly which rows they touched); when ``None`` the two
    structures are diffed (O(nnz), vectorized). Register the result with a
    context (:meth:`ExecutionContext.register_topology_delta`) to make the
    child's plans repairable from the parent's.
    """
    if rows is None:
        rows = edited_rows(parent, child)
    parent_fp = matrix_fingerprint(parent)
    child_fp = matrix_fingerprint(child)
    # Memoize on both endpoints: the child is the next dispatch's operand
    # (and the next mutation's parent), so every subsequent plan lookup —
    # and the next step's delta — skips the O(nnz) hash.
    _stamp_fingerprint(parent, parent_fp)
    _stamp_fingerprint(child, child_fp)
    return make_delta(
        parent,
        child,
        rows,
        parent_fp=parent_fp,
        child_fp=child_fp,
        values_preserved=values_preserved,
    )


class PlanCache:
    """LRU cache for kernel plans, selected configs, and cost results.

    Keys are arbitrary hashable tuples; by convention the first element is
    the op name and the second the operand fingerprint (or dense dims).

    ``on_evict(key, value)`` — when set — observes every entry leaving the
    cache (LRU overflow in :meth:`put`, explicit :meth:`evict`, and
    :meth:`clear`), so an owner charging plans against a device allocator
    can release (or spill) the bytes. Poison sentinels are reported too;
    consumers must treat the value as opaque.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_PLANS) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.on_evict: Callable[[Hashable, Any], None] | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Any | None:
        """Look up ``key``, refreshing its recency; ``None`` on miss.

        Raises :class:`PlanCorruptionError` if the entry was poisoned (the
        fault injector's model of corrupted cached plan state); the error
        carries the key so recovery can :meth:`evict` and re-plan.
        """
        try:
            self._entries.move_to_end(key)
        except KeyError:
            return None
        value = self._entries[key]
        if value is _POISONED:
            raise PlanCorruptionError(
                f"cached plan {key!r} failed its integrity check", key=key
            )
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key``, evicting the least-recently-used entry if full."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            old_key, old_value = self._entries.popitem(last=False)
            if self.on_evict is not None:
                self.on_evict(old_key, old_value)

    def get_or_build(
        self, key: Hashable, build: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Return ``(value, was_hit)``, building and inserting on a miss."""
        value = self.get(key)
        if value is not None:
            return value, True
        value = build()
        self.put(key, value)
        return value, False

    def clear(self) -> None:
        if self.on_evict is not None:
            for key, value in list(self._entries.items()):
                self.on_evict(key, value)
        self._entries.clear()

    def evict(self, key: Hashable) -> None:
        """Drop one entry (recovery path for poisoned plans)."""
        value = self._entries.pop(key, None)
        if value is not None and self.on_evict is not None:
            self.on_evict(key, value)

    def keys(self) -> list[Hashable]:
        """Snapshot of the cached keys (LRU order, oldest first)."""
        return list(self._entries)

    def poison(self, key: Hashable) -> None:
        """Replace a cached entry with a corruption sentinel (fault
        injection only); the next :meth:`get` raises."""
        if key in self._entries:
            self._entries[key] = _POISONED
