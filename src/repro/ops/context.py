"""Execution contexts: device + plan cache + telemetry.

An :class:`ExecutionContext` is the stateful half of the dispatch layer. It
carries the :class:`~repro.gpu.device.DeviceSpec` every launch is costed
against, a :class:`~repro.ops.plans.PlanCache` of per-matrix kernel plans
(tiling, swizzled row order, ROMA extents, selected configs, simulated
execution), and running telemetry per (op, backend).

Call sites that don't manage a context explicitly share a module-level
default per device via :func:`default_context`, so plan reuse happens
automatically across layers and training steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from collections import OrderedDict
from contextlib import nullcontext

from ..baselines.aspt import memory_overhead_bytes as aspt_overhead_bytes
from ..baselines.cublas import gemm_execution
from ..core.config import SddmmConfig, SpmmConfig
from ..core.csc_spmm import plan_spmm_csc
from ..core.repair import TopologyDelta
from ..core.sddmm import (
    SddmmBatchedPlan,
    SddmmPlan,
    plan_sddmm,
    plan_sddmm_batched,
    repair_sddmm_plan,
)
from ..core.sparse_softmax import (
    SparseSoftmaxBatchedPlan,
    SparseSoftmaxPlan,
    plan_sparse_softmax,
    plan_sparse_softmax_batched,
)
from ..core.spmm import (
    SpmmBatchedPlan,
    SpmmPlan,
    plan_spmm,
    plan_spmm_batched,
    repair_spmm_plan,
)
from ..gpu.allocator import (
    Allocation,
    DeviceAllocator,
    capacity_from_env,
    estimate_nbytes,
)
from ..gpu.device import V100, DeviceSpec
from ..gpu.executor import ExecutionResult
from ..obs.flight import FlightRecorder, flight_from_env
from ..reliability.errors import (
    DeviceOOMError,
    PlanCorruptionError,
    classify,
)
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from ..tune import TuningResult, resolve_selector
from ..tune import SELECTORS as SELECTORS  # noqa: PLC0414 - re-export
from .plans import (
    DEFAULT_MAX_PLANS,
    PlanCache,
    is_poisoned,
    matrix_fingerprint,
)
from .store import PlanStore

#: The telemetry snapshot contract: every per-(op, backend) counter and its
#: value type. ``telemetry_snapshot()`` rows contain exactly these keys, and
#: each value is exactly this Python type — counts are ``int`` (never
#: float-drifted), accumulated times are ``float`` seconds. Tested in
#: tests/test_obs.py; consumers may rely on it.
TELEMETRY_SCHEMA: dict[str, type] = {
    "launches": int,
    "cache_hits": int,
    "cache_misses": int,
    "simulated_seconds": float,
    "retries": int,
    "fallbacks": int,
    "degraded": int,
    "failures": int,
    "faults_injected": int,
    "backoff_seconds": float,
    "store_hits": int,
    "store_misses": int,
    "store_evictions": int,
    "oom_events": int,
    "plan_evictions": int,
    "bytes_evicted": int,
    "plan_repairs": int,
    "plan_repair_rows": int,
    "plan_invalidations": int,
}


@dataclass
class OpStats:
    """Running counters for one (op, backend) pair.

    Fields mirror :data:`TELEMETRY_SCHEMA`: counts are ints, accumulated
    times are float seconds.
    """

    launches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    simulated_seconds: float = 0.0
    # Reliability counters (populated by policy-dispatched calls).
    retries: int = 0
    fallbacks: int = 0
    degraded: int = 0
    failures: int = 0
    faults_injected: int = 0
    backoff_seconds: float = 0.0
    # Persistent plan-store counters (populated when a store is attached).
    store_hits: int = 0
    store_misses: int = 0
    store_evictions: int = 0
    # Memory-pressure counters (populated when a device allocator is
    # attached): allocation failures observed, resident plans evicted under
    # pressure, and total bytes (plans + tensors) reclaimed.
    oom_events: int = 0
    plan_evictions: int = 0
    bytes_evicted: int = 0
    # Dynamic-sparsity counters (populated by the plan-repair path):
    # plans produced by incremental repair instead of a cold build, the
    # total edited rows those repairs re-planned, and cache entries
    # evicted by topology invalidation.
    plan_repairs: int = 0
    plan_repair_rows: int = 0
    plan_invalidations: int = 0

    def as_dict(self) -> dict[str, int | float]:
        """Snapshot row, coerced to the :data:`TELEMETRY_SCHEMA` types."""
        return {
            name: kind(getattr(self, name))
            for name, kind in TELEMETRY_SCHEMA.items()
        }


@dataclass
class Telemetry:
    """Per-context instrumentation, keyed by (op, backend).

    The live :class:`OpStats` objects in ``stats`` are the write store for
    the hot dispatch path. A :class:`~repro.obs.metrics.MetricsRegistry`
    reads them through a pull-mode collector (see
    :func:`repro.obs.metrics.bind_telemetry`), so :meth:`snapshot` remains
    the stable compatibility surface while the registry supersedes it.
    """

    stats: dict[tuple[str, str], OpStats] = field(default_factory=dict)
    #: Optional :class:`~repro.obs.metrics.Histogram` labeled (op, backend)
    #: fed one observation per recorded launch.
    sim_histogram: object | None = field(default=None, repr=False)
    #: Optional :class:`~repro.obs.flight.FlightRecorder` fed one ring event
    #: per recorded launch (the always-on postmortem window).
    flight: object | None = field(default=None, repr=False)

    def _get(self, op: str, backend: str) -> OpStats:
        return self.stats.setdefault((op, backend), OpStats())

    def attach_histogram(self, histogram) -> None:
        """Feed simulated launch runtimes into an (op, backend)-labeled
        histogram from now on (``None`` detaches)."""
        self.sim_histogram = histogram

    def attach_flight(self, flight) -> None:
        """Feed recorded launches into a flight recorder from now on
        (``None`` detaches)."""
        self.flight = flight

    def record_launch(
        self, op: str, backend: str, execution: ExecutionResult
    ) -> None:
        entry = self._get(op, backend)
        entry.launches += 1
        entry.simulated_seconds += execution.runtime_s
        if self.sim_histogram is not None:
            self.sim_histogram.labels(op, backend).observe(execution.runtime_s)
        if self.flight is not None:
            self.flight.record_launch(op, backend, execution)

    def record_cache(self, op: str, backend: str, hit: bool) -> None:
        entry = self._get(op, backend)
        if hit:
            entry.cache_hits += 1
        else:
            entry.cache_misses += 1

    def record_store(self, op: str, backend: str, status: str) -> None:
        """One persistent plan-store lookup: ``"hit"``, ``"miss"``, or
        ``"corrupt"`` (an evicted corrupt entry, which also misses)."""
        entry = self._get(op, backend)
        if status == "hit":
            entry.store_hits += 1
        elif status == "corrupt":
            entry.store_evictions += 1
            entry.store_misses += 1
        else:
            entry.store_misses += 1

    # -- reliability counters (fed by repro.reliability.policy) ----------
    def record_retry(self, op: str, backend: str) -> None:
        self._get(op, backend).retries += 1

    def record_fallback(self, op: str, backend: str) -> None:
        """A backend was abandoned for the next one in its chain."""
        self._get(op, backend).fallbacks += 1

    def record_degraded(self, op: str, backend: str) -> None:
        """A degraded-mode completion (fp32 re-run after fp16 overflow)."""
        self._get(op, backend).degraded += 1

    def record_failure(self, op: str, backend: str) -> None:
        """A terminal failure (taxonomy error propagated to the caller)."""
        self._get(op, backend).failures += 1

    def record_fault(self, op: str, backend: str) -> None:
        """One injected fault landed on this (op, backend)."""
        self._get(op, backend).faults_injected += 1

    def record_backoff(self, op: str, backend: str, seconds: float) -> None:
        self._get(op, backend).backoff_seconds += seconds

    # -- memory-pressure counters (fed by the context's allocator hooks) --
    def record_oom(self, op: str, backend: str) -> None:
        """One device allocation failure observed during this op."""
        self._get(op, backend).oom_events += 1

    def record_plan_eviction(self, op: str, backend: str, nbytes: int) -> None:
        """One resident plan evicted under memory pressure."""
        entry = self._get(op, backend)
        entry.plan_evictions += 1
        entry.bytes_evicted += nbytes

    def record_bytes_evicted(self, op: str, backend: str, nbytes: int) -> None:
        """Tensor-residency bytes reclaimed under memory pressure."""
        self._get(op, backend).bytes_evicted += nbytes

    # -- dynamic-sparsity counters (fed by the plan-repair path) ----------
    def record_plan_repair(self, op: str, backend: str, rows: int) -> None:
        """One plan produced by incremental repair (``rows`` edited)."""
        entry = self._get(op, backend)
        entry.plan_repairs += 1
        entry.plan_repair_rows += int(rows)

    def record_plan_invalidation(
        self, op: str, backend: str, count: int = 1
    ) -> None:
        """``count`` cached entries evicted by a topology invalidation."""
        self._get(op, backend).plan_invalidations += int(count)

    def reset(self) -> None:
        """Zero every counter (plans/caches are unaffected)."""
        self.stats.clear()

    def snapshot(self) -> dict[str, dict[str, int | float]]:
        """Plain-dict copy of every counter, keyed ``"op/backend"``.

        The public read API: benchmarks and tests consume this instead of
        reaching into the live ``stats`` mapping. Every row carries exactly
        the :data:`TELEMETRY_SCHEMA` keys with exactly its types (counts
        are ``int``, accumulated times ``float`` seconds).
        """
        return {
            f"{op}/{backend}": stats.as_dict()
            for (op, backend), stats in sorted(self.stats.items())
        }

    @property
    def launches(self) -> int:
        return sum(s.launches for s in self.stats.values())

    @property
    def cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.stats.values())

    @property
    def cache_misses(self) -> int:
        return sum(s.cache_misses for s in self.stats.values())

    @property
    def simulated_seconds(self) -> float:
        return sum(s.simulated_seconds for s in self.stats.values())

    @property
    def retries(self) -> int:
        return sum(s.retries for s in self.stats.values())

    @property
    def fallbacks(self) -> int:
        return sum(s.fallbacks for s in self.stats.values())

    @property
    def degraded(self) -> int:
        return sum(s.degraded for s in self.stats.values())

    @property
    def failures(self) -> int:
        return sum(s.failures for s in self.stats.values())

    @property
    def faults_injected(self) -> int:
        return sum(s.faults_injected for s in self.stats.values())

    @property
    def store_hits(self) -> int:
        return sum(s.store_hits for s in self.stats.values())

    @property
    def store_misses(self) -> int:
        return sum(s.store_misses for s in self.stats.values())

    @property
    def store_evictions(self) -> int:
        return sum(s.store_evictions for s in self.stats.values())

    @property
    def oom_events(self) -> int:
        return sum(s.oom_events for s in self.stats.values())

    @property
    def plan_evictions(self) -> int:
        return sum(s.plan_evictions for s in self.stats.values())

    @property
    def bytes_evicted(self) -> int:
        return sum(s.bytes_evicted for s in self.stats.values())

    @property
    def plan_repairs(self) -> int:
        return sum(s.plan_repairs for s in self.stats.values())

    @property
    def plan_repair_rows(self) -> int:
        return sum(s.plan_repair_rows for s in self.stats.values())

    @property
    def plan_invalidations(self) -> int:
        return sum(s.plan_invalidations for s in self.stats.values())

    def summary(self) -> str:
        """One line per (op, backend), for logs and examples."""
        lines = []
        for (op, backend), s in sorted(self.stats.items()):
            line = (
                f"{op}/{backend}: launches={s.launches} "
                f"hits={s.cache_hits} misses={s.cache_misses} "
                f"simulated={s.simulated_seconds * 1e6:.1f}us"
            )
            if s.retries or s.fallbacks or s.degraded or s.failures:
                line += (
                    f" retries={s.retries} fallbacks={s.fallbacks} "
                    f"degraded={s.degraded} failures={s.failures}"
                )
            if s.faults_injected:
                line += f" faults={s.faults_injected}"
            if s.store_hits or s.store_misses:
                line += (
                    f" store_hits={s.store_hits} store_misses={s.store_misses}"
                )
                if s.store_evictions:
                    line += f" store_evictions={s.store_evictions}"
            if s.plan_repairs or s.plan_invalidations:
                line += (
                    f" repairs={s.plan_repairs}"
                    f" repair_rows={s.plan_repair_rows}"
                    f" invalidations={s.plan_invalidations}"
                )
            lines.append(line)
        return "\n".join(lines)


def _operand_bytes(matrix) -> int:
    """Device footprint of one sparse operand (values + structure arrays)."""
    fn = getattr(matrix, "memory_bytes", None)
    if fn is not None:
        return int(fn())
    total = int(matrix.values.nbytes)
    for attr in ("row_offsets", "column_indices", "col_offsets", "row_indices"):
        arr = getattr(matrix, attr, None)
        if arr is not None:
            total += int(arr.nbytes)
    return total


def _residency_key(matrix, backend: str) -> tuple[str, str]:
    """Device-residency identity of one sparse operand.

    CSR matrices carry a memoized construction-time structure checksum, so
    the hot path pays a ``getattr`` instead of a second content hash; CSC
    (and anything else) falls back to :func:`matrix_fingerprint`. The
    backend class is part of the key because ASpT keeps its own inflated
    tiled representation resident next to the CSR arrays.
    """
    checksum = getattr(matrix, "_structure_checksum", None)
    if checksum is None:
        checksum = matrix_fingerprint(matrix)
    return (checksum, "aspt" if backend == "aspt" else "csr")


class _MemoryScope:
    """Charges one dispatch's operands + workspace against the allocator.

    ``__enter__`` makes every sparse operand device-resident (pinning it so
    concurrent reclaim cannot evict what the running kernel reads), charges
    ASpT's inflated metadata footprint for aspt dispatches, and allocates
    the transient workspace. ``__exit__`` frees the workspace and unpins —
    residency itself stays cached in the context until evicted under
    pressure, which is what makes a sustained sweep accumulate footprint.
    """

    __slots__ = ("ctx", "op", "backend", "operands", "workspace",
                 "_pinned", "_ws_alloc")

    def __init__(self, ctx, op, backend, operands, workspace) -> None:
        self.ctx = ctx
        self.op = op
        self.backend = backend
        self.operands = operands
        self.workspace = workspace
        self._pinned: list = []
        self._ws_alloc = None

    def __enter__(self):
        ctx = self.ctx
        try:
            for matrix in self.operands:
                if not hasattr(matrix, "values"):
                    continue
                key = _residency_key(matrix, self.backend)
                self._pin(key, matrix)
                if key[1] == "aspt":
                    # The CSR arrays stay resident alongside ASpT's
                    # reordered tiles (the paper's ~3x metadata penalty).
                    self._pin(_residency_key(matrix, "csr"), matrix)
            if self.workspace > 0:
                self._ws_alloc = ctx.try_allocate(
                    self.workspace, "workspace", self.op, self.backend
                )
        except DeviceOOMError:
            self._release()
            raise
        return self

    def _pin(self, key, matrix) -> None:
        ctx = self.ctx
        alloc = ctx._resident.get(key)
        if alloc is None:
            nbytes = (
                aspt_overhead_bytes(matrix)
                if key[1] == "aspt"
                else _operand_bytes(matrix)
            )
            alloc = ctx.try_allocate(
                nbytes, "tensor", self.op, self.backend, protect=None
            )
            ctx._resident[key] = alloc
            if key in ctx._evicted_keys:
                # An evicted operand coming back means a host->device
                # re-upload; the benchmark charges it at PCIe bandwidth.
                ctx._evicted_keys.discard(key)
                ctx.bytes_reuploaded += alloc.nbytes
        else:
            ctx._resident.move_to_end(key)
        ctx._pinned[key] = ctx._pinned.get(key, 0) + 1
        self._pinned.append(key)

    def _release(self) -> None:
        ctx = self.ctx
        if self._ws_alloc is not None:
            ctx.memory.free(self._ws_alloc)
            self._ws_alloc = None
        for key in self._pinned:
            count = ctx._pinned.get(key, 0) - 1
            if count > 0:
                ctx._pinned[key] = count
            else:
                ctx._pinned.pop(key, None)
        self._pinned = []

    def __exit__(self, exc_type, exc, tb) -> None:
        self._release()


#: Shared no-op scope for contexts with accounting disabled.
_NULL_SCOPE = nullcontext()

#: Registered topology deltas kept per context (LRU): one entry per live
#: mutated topology is plenty — dynamic training registers one delta per
#: update step and the repaired plans land in the regular cache.
MAX_TOPOLOGY_DELTAS = 64


class ExecutionContext:
    """Device + plan cache + telemetry for the dispatch layer.

    One context maps to one simulated device; plans built against a
    different :class:`DeviceSpec` never share a cache, so keys only need
    (op, matrix fingerprint, problem dims, config).

    ``memory`` controls HBM capacity accounting:

    - ``None`` (default): a fresh :class:`DeviceAllocator` capped at the
      device's ``dram_capacity`` (or the ``REPRO_HBM_CAP`` override, which
      can also disable accounting with ``off``);
    - an ``int``: a fresh allocator with that capacity in bytes;
    - a :class:`DeviceAllocator`: used as-is (shared accounting);
    - ``False``: accounting disabled (``ctx.memory is None``).

    ``flight`` controls the always-on postmortem ring buffer:

    - ``None`` (default): a fresh :class:`FlightRecorder` honouring the
      ``REPRO_FLIGHT`` capacity/kill-switch environment override;
    - an ``int``: a fresh recorder with that ring capacity;
    - a :class:`FlightRecorder`: used as-is (shared window);
    - ``False``: recording disabled (``ctx.flight is None``).
    """

    def __init__(
        self,
        device: DeviceSpec = V100,
        max_plans: int = DEFAULT_MAX_PLANS,
        store: PlanStore | str | Path | None = None,
        tracer=None,
        memory: DeviceAllocator | int | bool | None = None,
        device_id: int | None = None,
        flight: FlightRecorder | int | bool | None = None,
    ) -> None:
        self.device = device
        #: Position of this context inside a :class:`~repro.dist.DeviceGroup`
        #: (``None`` for standalone single-device contexts). Stamped onto op
        #: and memory spans so multi-device traces can be rolled up
        #: per device by the report CLI.
        self.device_id = device_id
        self.plans = PlanCache(max_plans)
        self.telemetry = Telemetry()
        #: Optional disk-backed :class:`~repro.ops.store.PlanStore` consulted
        #: between the in-memory cache and a plan rebuild; a path builds one.
        self.store = (
            PlanStore(store) if isinstance(store, (str, Path)) else store
        )
        #: A :class:`~repro.reliability.injector.FaultInjector`, or ``None``.
        #: When set, every dispatched op runs through the policy loop even
        #: for single-backend calls, so injected faults are retried.
        self.injector = None
        #: The :class:`~repro.reliability.policy.DispatchReport` of the most
        #: recent policy-dispatched call (cost-only calls have no result
        #: object to carry it).
        self.last_dispatch_report = None
        #: Optional :class:`~repro.obs.tracing.Tracer`. When set, every
        #: dispatched op opens a span and the plan cache/fallback policy
        #: annotate it; when ``None``, dispatch pays one attribute check.
        self.tracer = tracer
        self._metrics = None
        #: The capacity-aware device allocator (``None`` = accounting off).
        if memory is False:
            self.memory = None
        elif memory is None:
            cap = capacity_from_env(device.dram_capacity)
            self.memory = (
                DeviceAllocator(device, cap) if cap is not None else None
            )
        elif isinstance(memory, DeviceAllocator):
            self.memory = memory
        else:
            self.memory = DeviceAllocator(device, int(memory))
        #: The always-on flight recorder (``None`` = recording off). Fed a
        #: ring event per launch via the telemetry hook and a fault event
        #: per OOM/reclaim step; dumped and attached to terminal errors.
        if flight is False:
            self.flight = None
        elif isinstance(flight, FlightRecorder):
            self.flight = flight
        else:
            # True and None both mean "the env-configured default ring".
            self.flight = flight_from_env(
                None if flight is None or flight is True else int(flight),
                process=f"flight:{device.name}",
                device_id=device_id,
            )
        self.telemetry.attach_flight(self.flight)
        #: LRU of device-resident sparse operands, keyed by
        #: (structure checksum, representation class).
        self._resident: OrderedDict[tuple, Allocation] = OrderedDict()
        #: Pin refcounts over ``_resident`` (in-flight dispatch scopes).
        self._pinned: dict[tuple, int] = {}
        #: Bytes charged per resident plan-cache entry.
        self._plan_allocs: dict[tuple, Allocation] = {}
        #: Plan keys the store must never receive (tuning results that fell
        #: back under injected faults — see ``_cached``'s ``storable``).
        self._no_spill: set = set()
        #: Residency keys evicted under pressure; re-pinning one counts as
        #: a host->device re-upload in ``bytes_reuploaded``.
        self._evicted_keys: set = set()
        self.bytes_reuploaded = 0
        self.tensor_evictions = 0
        #: (op, backend) attribution for reclaim work triggered outside a
        #: dispatch scope (e.g. the policy ladder's explicit eviction).
        self._mem_attr = ("memory", "allocator")
        self._reclaiming = False
        #: Registered topology deltas, keyed by *child* fingerprint: the
        #: fingerprint-delta lookup (exact hit -> repairable ancestor ->
        #: cold build) consults this before paying a cold plan build.
        self._deltas: OrderedDict[str, TopologyDelta] = OrderedDict()
        self.plans.on_evict = self._on_plan_evicted

    def __repr__(self) -> str:
        return (
            f"ExecutionContext(device={self.device.name!r}, "
            f"plans={len(self.plans)}, launches={self.telemetry.launches})"
        )

    def clear(self) -> None:
        """Drop all in-memory cached plans (telemetry and store are kept)."""
        self.plans.clear()

    def attach_store(self, store: PlanStore | str | Path | None) -> None:
        """Attach (or detach, with ``None``) a persistent plan store."""
        self.store = (
            PlanStore(store) if isinstance(store, (str, Path)) else store
        )

    def _cached(
        self,
        op: str,
        backend: str,
        key: tuple,
        build,
        storable=None,
        repair=None,
    ):
        """Two-tier plan lookup: memory cache, then the persistent store,
        then an incremental repair (when a topology delta applies), then
        ``build`` (persisting the result to both tiers).

        A poisoned in-memory entry raises
        :class:`~repro.reliability.errors.PlanCorruptionError` exactly like
        the direct cache path, so the reliability policies keep working; a
        corrupt *on-disk* entry is self-healing (evicted and rebuilt) and
        only surfaces in the ``store_evictions`` telemetry.

        ``storable`` (a predicate over the built value) gates the on-disk
        write: a tuning result that *fell back* under injected faults is
        kept in memory for this process but never persisted, so a later
        fault-free run re-tunes instead of inheriting the degraded pick.

        ``repair`` (a zero-arg callable returning ``(value, delta)`` or
        ``None``) is the fingerprint-delta hook: tried only after both
        cache tiers miss, and *any* failure inside it — including injected
        faults — falls through to the cold ``build``, so a repair can cost
        at most a re-plan, never a corrupt plan.
        """
        span = self.tracer.current if self.tracer is not None else None
        value = self.plans.get(key)
        if value is not None:
            self.telemetry.record_cache(op, backend, True)
            if span is not None:
                span.set(plan_cache="hit", plan_source="memory")
            return value
        self.telemetry.record_cache(op, backend, False)
        if self.store is not None:
            stored, status = self.store.fetch((self.device,) + key)
            self.telemetry.record_store(op, backend, status)
            if stored is not None:
                if span is not None:
                    span.set(plan_cache="miss", plan_source="store")
                self.plans.put(key, stored)
                self._charge_plan(key, stored, op, backend)
                return stored
        if repair is not None:
            value = self._attempt_repair(op, backend, key, repair, span)
            if value is not None:
                return value
        value = build()
        if span is not None:
            span.set(plan_cache="miss", plan_source="built")
        self.plans.put(key, value)
        if storable is None or storable(value):
            if self.store is not None:
                self.store.save((self.device,) + key, value)
        else:
            self._no_spill.add(key)
        self._charge_plan(key, value, op, backend)
        return value

    def _attempt_repair(self, op: str, backend: str, key: tuple, repair, span):
        """Run one repair attempt; ``None`` means "fall back to cold".

        Successful repairs are cached and persisted like built plans, with
        the repair lineage recorded in the store envelope. Failures only
        leave a span/flight breadcrumb — the caller cold-builds and the
        result is correct either way.
        """
        try:
            if self.injector is not None:
                self.injector.on_repair(self, op, backend)
            result = repair()
            if result is None:
                return None
            value, delta = result
        except Exception as exc:
            if span is not None:
                span.event("plan_repair_failed", op=op, error=classify(exc))
            if self.flight is not None:
                self.flight.record(
                    "plan_repair_failed",
                    op,
                    op=op,
                    backend=backend,
                    error=classify(exc),
                )
            return None
        rows = delta.n_rows_edited
        self.telemetry.record_plan_repair(op, backend, rows)
        if span is not None:
            span.set(
                plan_cache="miss", plan_source="repaired", repair_rows=rows
            )
        if self.flight is not None:
            self.flight.record(
                "plan_repair",
                op,
                op=op,
                backend=backend,
                rows=rows,
                parent=delta.parent,
                child=delta.child,
            )
        self.plans.put(key, value)
        if self.store is not None:
            self.store.save(
                (self.device,) + key,
                value,
                lineage={
                    "parent": delta.parent,
                    "child": delta.child,
                    "rows": rows,
                },
            )
        self._charge_plan(key, value, op, backend)
        return value

    # ------------------------------------------------------------------
    # Dynamic sparsity: topology deltas and invalidation (DESIGN.md §17)
    # ------------------------------------------------------------------
    def register_topology_delta(self, delta: TopologyDelta) -> None:
        """Make plans for ``delta.child`` repairable from ``delta.parent``.

        The next plan lookup for the child fingerprint that misses both
        cache tiers will try to repair the parent's plan instead of cold
        building. Registration is bounded (LRU over
        :data:`MAX_TOPOLOGY_DELTAS` entries) and single-hop: per-step
        chains stay warm because each repaired plan lands in the cache
        under the child fingerprint, becoming the next step's parent.
        """
        self._deltas[delta.child] = delta
        self._deltas.move_to_end(delta.child)
        while len(self._deltas) > MAX_TOPOLOGY_DELTAS:
            self._deltas.popitem(last=False)

    def topology_delta_for(self, fingerprint: str) -> TopologyDelta | None:
        """The registered delta that produces ``fingerprint``, if any."""
        return self._deltas.get(fingerprint)

    def invalidate_topology(
        self, fingerprint: str, op: str = "topology"
    ) -> int:
        """Evict every cached plan/config keyed on ``fingerprint``.

        Used when a topology is edited in place (e.g. a ``SparseLinear``
        weight swap): entries under the old fingerprint are unreachable by
        correct lookups but still hold device memory and can shadow a
        repair chain. Returns the number of in-memory entries evicted,
        recorded as ``plan_invalidations``. Store entries are left alone —
        they are content-addressed by the old topology and stay valid for
        it.
        """
        stale = [
            k
            for k in self.plans.keys()
            if len(k) > 1 and isinstance(k[1], str) and k[1] == fingerprint
        ]
        for k in stale:
            self.plans.evict(k)
        self._deltas.pop(fingerprint, None)
        if stale:
            self.telemetry.record_plan_invalidation(
                op, "plan_cache", len(stale)
            )
            if self.flight is not None:
                self.flight.record(
                    "plan_invalidate",
                    op,
                    fingerprint=fingerprint,
                    entries=len(stale),
                )
        return len(stale)

    def _repairable_plan(self, fp: str, parent_key_for, repair_with):
        """Build ``_cached``'s repair hook for one plan family.

        ``None`` when no delta is registered for ``fp``. The hook looks up
        the ancestor plan under the delta's parent fingerprint — memory
        first, then the store (an ancillary probe, not counted in store
        telemetry) — and runs the kernel-specific repair. A poisoned
        ancestor aborts the repair (cold build recovers).
        """
        delta = self._deltas.get(fp)
        if delta is None:
            return None

        def attempt():
            parent_key = parent_key_for(delta.parent)
            try:
                ancestor = self.plans.get(parent_key)
            except PlanCorruptionError:
                return None
            if ancestor is None and self.store is not None:
                ancestor, _status = self.store.fetch(
                    (self.device,) + parent_key
                )
            if ancestor is None:
                return None
            return repair_with(ancestor, delta), delta

        return attempt

    # ------------------------------------------------------------------
    # HBM capacity accounting (see DESIGN.md Section 14)
    # ------------------------------------------------------------------
    def _current_span(self):
        return self.tracer.current if self.tracer is not None else None

    def memory_scope(self, op: str, backend: str, operands=(), workspace=0):
        """Scope charging one dispatch's operand residency + workspace.

        A no-op when accounting is disabled. Operand residency persists
        beyond the scope (LRU, evictable under pressure); the workspace is
        transient and freed on exit.
        """
        if self.memory is None:
            return _NULL_SCOPE
        return _MemoryScope(self, op, backend, operands, int(workspace))

    def try_allocate(
        self,
        nbytes: int,
        tag: str = "tensor",
        op: str = "memory",
        backend: str = "allocator",
        protect=None,
    ) -> Allocation | None:
        """Allocate with in-line reclaim: flush the segment cache, then
        evict cold residency (tensors first, then plans — spilled to the
        store) until the request fits or nothing is left to reclaim.

        ``protect`` names a plan key that must survive reclaim (the entry
        being charged). Raises :class:`DeviceOOMError` — with the
        allocator snapshot attached — when reclaim is exhausted; the
        dispatch policy then continues the ladder with backend fallback.
        """
        mem = self.memory
        if mem is None:
            return None
        flushed = False
        while True:
            try:
                return mem.allocate(nbytes, tag)
            except DeviceOOMError as exc:
                self.telemetry.record_oom(op, backend)
                span = self._current_span()
                if span is not None:
                    span.event(
                        "oom",
                        op=op,
                        backend=backend,
                        requested=int(nbytes),
                        tag=tag,
                    )
                if self.flight is not None:
                    self.flight.record(
                        "oom",
                        "oom",
                        op=op,
                        backend=backend,
                        requested=int(nbytes),
                        tag=tag,
                    )
                if not flushed:
                    flushed = True
                    freed = mem.flush_cache()
                    if span is not None:
                        span.event("oom_flush", bytes_freed=freed)
                    if self.flight is not None:
                        self.flight.record(
                            "oom_flush", "oom_flush", bytes_freed=freed
                        )
                    if freed:
                        continue
                if not self._evict_one(op, backend, protect=protect):
                    # Reclaim is exhausted: this OOM is terminal for the
                    # allocator (the dispatch policy may still fall back to
                    # a smaller backend) — ship the postmortem window on it.
                    if self.flight is not None:
                        self.flight.attach(exc, "oom")
                    raise
                # Eviction frees blocks into the cache; release any
                # now-empty segments so a fresh reservation can fit.
                mem.flush_cache()

    def _evict_one(self, op: str, backend: str, protect=None) -> int:
        """Reclaim one cold entry; returns the bytes freed (0 = nothing).

        Unpinned tensor residency goes first (oldest first — big wins,
        cheap to re-upload), then charged plan-cache entries (spilled to
        the persistent store by the eviction callback, never just lost).
        """
        for key in list(self._resident):
            if self._pinned.get(key):
                continue
            alloc = self._resident.pop(key)
            self.memory.free(alloc)
            self._evicted_keys.add(key)
            self.tensor_evictions += 1
            self.telemetry.record_bytes_evicted(op, backend, alloc.nbytes)
            span = self._current_span()
            if span is not None:
                span.event("oom_evict", kind="tensor", bytes=alloc.nbytes)
            if self.flight is not None:
                self.flight.record(
                    "oom_evict", "oom_evict", kind="tensor", bytes=alloc.nbytes
                )
            return alloc.nbytes
        for key in self.plans.keys():
            if key == protect or key not in self._plan_allocs:
                continue
            nbytes = self._plan_allocs[key].nbytes
            prev_attr = self._mem_attr
            self._mem_attr = (op, backend)
            self._reclaiming = True
            try:
                self.plans.evict(key)
            finally:
                self._reclaiming = False
                self._mem_attr = prev_attr
            span = self._current_span()
            if span is not None:
                span.event("oom_evict", kind="plan", bytes=nbytes)
            if self.flight is not None:
                self.flight.record(
                    "oom_evict", "oom_evict", kind="plan", bytes=nbytes
                )
            return nbytes
        return 0

    def _charge_plan(self, key, value, op: str, backend: str) -> None:
        """Charge a freshly-cached plan's footprint against the device."""
        if self.memory is None or key in self._plan_allocs:
            return
        nbytes = estimate_nbytes(value)
        if nbytes <= 0:
            return
        try:
            alloc = self.try_allocate(nbytes, "plan", op, backend, protect=key)
        except DeviceOOMError:
            # The plan itself cannot fit even after reclaim: it must not
            # linger uncharged in the cache, and the dispatch policy gets
            # the OOM to drive backend fallback.
            self.plans.evict(key)
            raise
        self._plan_allocs[key] = alloc

    def _on_plan_evicted(self, key, value) -> None:
        """Plan-cache eviction observer: spill to the store, free bytes."""
        spillable = (
            self.store is not None
            and not is_poisoned(value)
            and key not in self._no_spill
        )
        self._no_spill.discard(key)
        alloc = self._plan_allocs.pop(key, None)
        if alloc is None:
            return
        if spillable:
            full_key = (self.device,) + key
            if full_key not in self.store:
                self.store.save(full_key, value)
        self.memory.free(alloc)
        if self._reclaiming:
            op, backend = self._mem_attr
            self.telemetry.record_plan_eviction(op, backend, alloc.nbytes)

    def flush_device_cache(self) -> int:
        """Release the allocator's fully-free segments (ladder stage 1)."""
        if self.memory is None:
            return 0
        return self.memory.flush_cache()

    def evict_device_bytes(
        self, nbytes: int, op: str = "memory", backend: str = "allocator"
    ) -> int:
        """Evict cold residency until ``nbytes`` are freed (ladder stage 2).

        Returns the bytes actually reclaimed (possibly 0, possibly more
        than asked — eviction is whole-entry).
        """
        if self.memory is None:
            return 0
        target = max(int(nbytes), 1)
        freed = 0
        while freed < target:
            got = self._evict_one(op, backend)
            if not got:
                break
            freed += got
        self.memory.flush_cache()
        return freed

    def memory_snapshot(self) -> dict | None:
        """Allocator gauges + context residency/eviction counters, or
        ``None`` when accounting is disabled."""
        if self.memory is None:
            return None
        snap = self.memory.snapshot()
        snap.update(
            resident_tensors=len(self._resident),
            resident_plans=len(self._plan_allocs),
            tensor_evictions=self.tensor_evictions,
            plan_evictions=self.telemetry.plan_evictions,
            oom_events=self.telemetry.oom_events,
            bytes_evicted=self.telemetry.bytes_evicted,
            bytes_reuploaded=self.bytes_reuploaded,
        )
        return snap

    def emit_memory_span(self) -> None:
        """Emit a ``category="memory"`` span carrying the allocator
        snapshot, so the offline report CLI can render a memory section."""
        if self.tracer is None or self.memory is None:
            return
        snap = self.memory_snapshot()
        attrs = {
            k: v for k, v in snap.items() if not isinstance(v, dict)
        }
        if self.device_id is not None:
            attrs["device_id"] = self.device_id
        with self.tracer.span("memory_summary", category="memory", **attrs):
            pass

    # ------------------------------------------------------------------
    # Telemetry API (benchmarks/tests use this, not the raw counters)
    # ------------------------------------------------------------------
    def telemetry_snapshot(self) -> dict[str, dict[str, int | float]]:
        """Plain-dict copy of every per-(op, backend) counter.

        Rows follow :data:`TELEMETRY_SCHEMA` exactly (keys and value
        types). This remains the compatibility surface over the metrics
        registry — see :meth:`metrics_snapshot` for the superset view.
        """
        return self.telemetry.snapshot()

    def reset_telemetry(self) -> None:
        """Zero all telemetry counters *and* the attached store's counters
        in one call, so snapshot deltas never mix epochs (plan caches and
        stored plans are kept)."""
        self.telemetry.reset()
        if self.store is not None:
            self.store.reset_stats()

    def attach_tracer(self, tracer) -> None:
        """Attach (or detach, with ``None``) a tracer to this context."""
        self.tracer = tracer

    def attach_flight(self, flight) -> None:
        """Attach (or detach, with ``None``) a flight recorder, keeping the
        telemetry's launch-event feed pointed at the same window."""
        self.flight = flight
        self.telemetry.attach_flight(flight)

    @property
    def metrics(self):
        """Lazily-built :class:`~repro.obs.metrics.MetricsRegistry` bound
        to this context's telemetry, plan cache, and plan store."""
        if self._metrics is None:
            from ..obs.metrics import MetricsRegistry, bind_context_metrics

            self._metrics = bind_context_metrics(MetricsRegistry(), self)
        return self._metrics

    def metrics_snapshot(self) -> dict:
        """Snapshot of the bound metrics registry (labeled samples)."""
        return self.metrics.snapshot()

    # ------------------------------------------------------------------
    # Config selection (cached per topology, via the selector protocol)
    # ------------------------------------------------------------------
    def _select_config(self, op: str, sel, key: tuple, build):
        """Resolve a config through one selector, with selector-aware
        caching and span labeling.

        ``persist`` selectors (oracle, tuned — anything that costs
        candidates) go through the two-tier :meth:`_cached` path so their
        winners amortize across processes; the heuristic stays memory-only.
        A :class:`~repro.tune.TuningResult` is cached whole (stats and
        all) and unwrapped to its config here.
        """
        span = self.tracer.current if self.tracer is not None else None
        if span is not None:
            span.set(selector=sel.name)
        if sel.persist:
            value = self._cached(
                op,
                sel.name,
                key,
                build,
                storable=lambda v: not getattr(v, "fell_back", False),
            )
        else:
            value = self.plans.get(key)
            if value is None:
                value = build()
                self.plans.put(key, value)
        if isinstance(value, TuningResult):
            if span is not None:
                span.set(
                    candidates_costed=value.candidates_costed,
                    tuning_fell_back=value.fell_back,
                )
            return value.config
        return value

    def spmm_config(
        self,
        a: CSRMatrix,
        n: int,
        selector: str = "heuristic",
        fingerprint: str | None = None,
    ) -> SpmmConfig:
        """Resolve an SpMM config through a selector (name or instance).

        Every selection is cached under a selector-qualified key: the
        heuristic for uniformity, the oracle and the tuner because they
        cost candidate variants on the simulator (Section VII-B).
        """
        sel = resolve_selector(selector)
        fp = fingerprint or matrix_fingerprint(a)
        precision = "mixed" if a.values.dtype == np.float16 else "fp32"
        key = ("spmm_config", fp, n, precision, sel.name)
        return self._select_config(
            "spmm_config", sel, key, lambda: sel.build_spmm(self, a, n, precision)
        )

    def sddmm_config(
        self,
        mask: CSRMatrix,
        k: int,
        selector: str = "heuristic",
        fingerprint: str | None = None,
    ) -> SddmmConfig:
        """Resolve an SDDMM config through a selector (name or instance).

        Precision is derived from the mask's value dtype — an fp16 mask
        selects a mixed-precision config (fp16 value bytes, int16 index
        bytes) exactly like :meth:`spmm_config` does for SpMM.
        """
        sel = resolve_selector(selector)
        fp = fingerprint or matrix_fingerprint(mask)
        precision = "mixed" if mask.values.dtype == np.float16 else "fp32"
        key = ("sddmm_config", fp, k, precision, sel.name)
        return self._select_config(
            "sddmm_config",
            sel,
            key,
            lambda: sel.build_sddmm(self, mask, k, precision),
        )

    # ------------------------------------------------------------------
    # Plans (cached per topology x config x problem dims)
    # ------------------------------------------------------------------
    def spmm_plan(
        self,
        a: CSRMatrix,
        n: int,
        config: SpmmConfig | None = None,
        selector: str = "heuristic",
        backend: str = "sputnik",
    ) -> SpmmPlan:
        fp = matrix_fingerprint(a)
        if config is None:
            config = self.spmm_config(a, n, selector, fingerprint=fp)
        key = ("spmm", fp, n, config)
        return self._cached(
            "spmm",
            backend,
            key,
            lambda: plan_spmm(a, n, self.device, config),
            repair=self._repairable_plan(
                fp,
                lambda parent_fp: ("spmm", parent_fp, n, config),
                lambda plan, delta: repair_spmm_plan(plan, a, delta),
            ),
        )

    def sddmm_plan(
        self,
        mask: CSRMatrix,
        k: int,
        config: SddmmConfig | None = None,
        selector: str = "heuristic",
        backend: str = "sputnik",
    ) -> SddmmPlan:
        fp = matrix_fingerprint(mask)
        if config is None:
            config = self.sddmm_config(mask, k, selector, fingerprint=fp)
        key = ("sddmm", fp, k, config)
        return self._cached(
            "sddmm",
            backend,
            key,
            lambda: plan_sddmm(mask, k, self.device, config),
            repair=self._repairable_plan(
                fp,
                lambda parent_fp: ("sddmm", parent_fp, k, config),
                lambda plan, delta: repair_sddmm_plan(plan, mask, delta),
            ),
        )

    def sparse_softmax_plan(
        self, a: CSRMatrix, backend: str = "sputnik"
    ) -> SparseSoftmaxPlan:
        fp = matrix_fingerprint(a)
        key = ("sparse_softmax", fp)
        return self._cached(
            "sparse_softmax",
            backend,
            key,
            lambda: plan_sparse_softmax(a, self.device),
        )

    def spmm_batched_plan(
        self,
        a: CSRMatrix,
        n: int,
        h: int,
        config: SpmmConfig | None = None,
        selector: str = "heuristic",
        backend: str = "sputnik",
    ) -> SpmmBatchedPlan:
        """One plan for ``h`` SpMMs sharing ``a``'s topology (one launch)."""
        fp = matrix_fingerprint(a)
        if config is None:
            config = self.spmm_config(a, n, selector, fingerprint=fp)
        key = ("spmm_batched", fp, n, h, config)
        return self._cached(
            "spmm_batched",
            backend,
            key,
            lambda: plan_spmm_batched(a, n, h, self.device, config),
        )

    def sddmm_batched_plan(
        self,
        mask: CSRMatrix,
        k: int,
        h: int,
        config: SddmmConfig | None = None,
        selector: str = "heuristic",
        backend: str = "sputnik",
    ) -> SddmmBatchedPlan:
        """One plan for ``h`` SDDMMs sharing ``mask``'s topology."""
        fp = matrix_fingerprint(mask)
        if config is None:
            config = self.sddmm_config(mask, k, selector, fingerprint=fp)
        key = ("sddmm_batched", fp, k, h, config)
        return self._cached(
            "sddmm_batched",
            backend,
            key,
            lambda: plan_sddmm_batched(mask, k, h, self.device, config),
        )

    def sparse_softmax_batched_plan(
        self, a: CSRMatrix, h: int, backend: str = "sputnik"
    ) -> SparseSoftmaxBatchedPlan:
        """One plan for ``h`` row softmaxes over ``a``'s topology."""
        fp = matrix_fingerprint(a)
        key = ("sparse_softmax_batched", fp, h)
        return self._cached(
            "sparse_softmax_batched",
            backend,
            key,
            lambda: plan_sparse_softmax_batched(a, h, self.device),
        )

    def csc_spmm_plan(
        self,
        a: CSCMatrix,
        n: int,
        config: SpmmConfig | None = None,
        backend: str = "sputnik",
    ) -> SpmmPlan:
        fp = matrix_fingerprint(a)
        key = ("csc_spmm", fp, n, config)
        return self._cached(
            "csc_spmm",
            backend,
            key,
            lambda: plan_spmm_csc(a, n, self.device, config),
        )

    # ------------------------------------------------------------------
    # Cost-only results (cached; used by benchmarks and model cost paths)
    # ------------------------------------------------------------------
    def gemm_execution(
        self,
        m: int,
        n: int,
        k: int,
        element_bytes: int = 4,
        op: str = "matmul",
        backend: str = "cublas",
    ) -> ExecutionResult:
        """Cached dense-GEMM cost (the cuBLAS dispatch search is not free).

        ``op``/``backend`` only attribute the telemetry — callers like the
        dense-SpMM backend pass their own names; the cache entry is shared.
        """
        key = ("matmul", m, n, k, element_bytes)
        return self._cached(
            op,
            backend,
            key,
            lambda: gemm_execution(m, n, k, self.device, element_bytes),
        )

    def cost(self, key: tuple, build) -> ExecutionResult:
        """Generic cached cost entry for baseline backends.

        ``key[0]`` must be the op name and ``key[1]`` the backend (used for
        telemetry attribution).
        """
        return self._cached(key[0], key[1], key, build)


#: Module-level default contexts, one per device. Shared by every call site
#: that does not pass an explicit context.
_DEFAULT_CONTEXTS: dict[DeviceSpec, ExecutionContext] = {}


def default_context(device: DeviceSpec = V100) -> ExecutionContext:
    """The shared per-device context used when none is passed explicitly."""
    ctx = _DEFAULT_CONTEXTS.get(device)
    if ctx is None:
        ctx = ExecutionContext(device)
        _DEFAULT_CONTEXTS[device] = ctx
    return ctx


def set_default_context(context: ExecutionContext) -> ExecutionContext:
    """Install ``context`` as the shared default for its device.

    Sweep workers use this so call sites that resolve contexts implicitly
    (the benchmark timers, the nn layers) run with the worker's
    store-backed context instead of a fresh one. Returns the context.
    """
    _DEFAULT_CONTEXTS[context.device] = context
    return context


def reset_default_contexts() -> None:
    """Drop all shared contexts (fresh caches and telemetry) — for tests."""
    _DEFAULT_CONTEXTS.clear()
