"""Execution contexts: device + plan cache + telemetry.

An :class:`ExecutionContext` is the stateful half of the dispatch layer. It
carries the :class:`~repro.gpu.device.DeviceSpec` every launch is costed
against, a :class:`~repro.ops.plans.PlanCache` of per-matrix kernel plans
(tiling, swizzled row order, ROMA extents, selected configs, simulated
execution), and running telemetry per (op, backend).

Call sites that don't manage a context explicitly share a module-level
default per device via :func:`default_context`, so plan reuse happens
automatically across layers and training steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..baselines.cublas import gemm_execution
from ..core.config import SddmmConfig, SpmmConfig
from ..core.csc_spmm import plan_spmm_csc
from ..core.sddmm import (
    SddmmBatchedPlan,
    SddmmPlan,
    plan_sddmm,
    plan_sddmm_batched,
)
from ..core.sparse_softmax import (
    SparseSoftmaxBatchedPlan,
    SparseSoftmaxPlan,
    plan_sparse_softmax,
    plan_sparse_softmax_batched,
)
from ..core.spmm import (
    SpmmBatchedPlan,
    SpmmPlan,
    plan_spmm,
    plan_spmm_batched,
)
from ..gpu.device import V100, DeviceSpec
from ..gpu.executor import ExecutionResult
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from ..tune import TuningResult, resolve_selector
from ..tune import SELECTORS as SELECTORS  # noqa: PLC0414 - re-export
from .plans import DEFAULT_MAX_PLANS, PlanCache, matrix_fingerprint
from .store import PlanStore

#: The telemetry snapshot contract: every per-(op, backend) counter and its
#: value type. ``telemetry_snapshot()`` rows contain exactly these keys, and
#: each value is exactly this Python type — counts are ``int`` (never
#: float-drifted), accumulated times are ``float`` seconds. Tested in
#: tests/test_obs.py; consumers may rely on it.
TELEMETRY_SCHEMA: dict[str, type] = {
    "launches": int,
    "cache_hits": int,
    "cache_misses": int,
    "simulated_seconds": float,
    "retries": int,
    "fallbacks": int,
    "degraded": int,
    "failures": int,
    "faults_injected": int,
    "backoff_seconds": float,
    "store_hits": int,
    "store_misses": int,
    "store_evictions": int,
}


@dataclass
class OpStats:
    """Running counters for one (op, backend) pair.

    Fields mirror :data:`TELEMETRY_SCHEMA`: counts are ints, accumulated
    times are float seconds.
    """

    launches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    simulated_seconds: float = 0.0
    # Reliability counters (populated by policy-dispatched calls).
    retries: int = 0
    fallbacks: int = 0
    degraded: int = 0
    failures: int = 0
    faults_injected: int = 0
    backoff_seconds: float = 0.0
    # Persistent plan-store counters (populated when a store is attached).
    store_hits: int = 0
    store_misses: int = 0
    store_evictions: int = 0

    def as_dict(self) -> dict[str, int | float]:
        """Snapshot row, coerced to the :data:`TELEMETRY_SCHEMA` types."""
        return {
            name: kind(getattr(self, name))
            for name, kind in TELEMETRY_SCHEMA.items()
        }


@dataclass
class Telemetry:
    """Per-context instrumentation, keyed by (op, backend).

    The live :class:`OpStats` objects in ``stats`` are the write store for
    the hot dispatch path. A :class:`~repro.obs.metrics.MetricsRegistry`
    reads them through a pull-mode collector (see
    :func:`repro.obs.metrics.bind_telemetry`), so :meth:`snapshot` remains
    the stable compatibility surface while the registry supersedes it.
    """

    stats: dict[tuple[str, str], OpStats] = field(default_factory=dict)
    #: Optional :class:`~repro.obs.metrics.Histogram` labeled (op, backend)
    #: fed one observation per recorded launch.
    sim_histogram: object | None = field(default=None, repr=False)

    def _get(self, op: str, backend: str) -> OpStats:
        return self.stats.setdefault((op, backend), OpStats())

    def attach_histogram(self, histogram) -> None:
        """Feed simulated launch runtimes into an (op, backend)-labeled
        histogram from now on (``None`` detaches)."""
        self.sim_histogram = histogram

    def record_launch(
        self, op: str, backend: str, execution: ExecutionResult
    ) -> None:
        entry = self._get(op, backend)
        entry.launches += 1
        entry.simulated_seconds += execution.runtime_s
        if self.sim_histogram is not None:
            self.sim_histogram.labels(op, backend).observe(execution.runtime_s)

    def record_cache(self, op: str, backend: str, hit: bool) -> None:
        entry = self._get(op, backend)
        if hit:
            entry.cache_hits += 1
        else:
            entry.cache_misses += 1

    def record_store(self, op: str, backend: str, status: str) -> None:
        """One persistent plan-store lookup: ``"hit"``, ``"miss"``, or
        ``"corrupt"`` (an evicted corrupt entry, which also misses)."""
        entry = self._get(op, backend)
        if status == "hit":
            entry.store_hits += 1
        elif status == "corrupt":
            entry.store_evictions += 1
            entry.store_misses += 1
        else:
            entry.store_misses += 1

    # -- reliability counters (fed by repro.reliability.policy) ----------
    def record_retry(self, op: str, backend: str) -> None:
        self._get(op, backend).retries += 1

    def record_fallback(self, op: str, backend: str) -> None:
        """A backend was abandoned for the next one in its chain."""
        self._get(op, backend).fallbacks += 1

    def record_degraded(self, op: str, backend: str) -> None:
        """A degraded-mode completion (fp32 re-run after fp16 overflow)."""
        self._get(op, backend).degraded += 1

    def record_failure(self, op: str, backend: str) -> None:
        """A terminal failure (taxonomy error propagated to the caller)."""
        self._get(op, backend).failures += 1

    def record_fault(self, op: str, backend: str) -> None:
        """One injected fault landed on this (op, backend)."""
        self._get(op, backend).faults_injected += 1

    def record_backoff(self, op: str, backend: str, seconds: float) -> None:
        self._get(op, backend).backoff_seconds += seconds

    def reset(self) -> None:
        """Zero every counter (plans/caches are unaffected)."""
        self.stats.clear()

    def snapshot(self) -> dict[str, dict[str, int | float]]:
        """Plain-dict copy of every counter, keyed ``"op/backend"``.

        The public read API: benchmarks and tests consume this instead of
        reaching into the live ``stats`` mapping. Every row carries exactly
        the :data:`TELEMETRY_SCHEMA` keys with exactly its types (counts
        are ``int``, accumulated times ``float`` seconds).
        """
        return {
            f"{op}/{backend}": stats.as_dict()
            for (op, backend), stats in sorted(self.stats.items())
        }

    @property
    def launches(self) -> int:
        return sum(s.launches for s in self.stats.values())

    @property
    def cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.stats.values())

    @property
    def cache_misses(self) -> int:
        return sum(s.cache_misses for s in self.stats.values())

    @property
    def simulated_seconds(self) -> float:
        return sum(s.simulated_seconds for s in self.stats.values())

    @property
    def retries(self) -> int:
        return sum(s.retries for s in self.stats.values())

    @property
    def fallbacks(self) -> int:
        return sum(s.fallbacks for s in self.stats.values())

    @property
    def degraded(self) -> int:
        return sum(s.degraded for s in self.stats.values())

    @property
    def failures(self) -> int:
        return sum(s.failures for s in self.stats.values())

    @property
    def faults_injected(self) -> int:
        return sum(s.faults_injected for s in self.stats.values())

    @property
    def store_hits(self) -> int:
        return sum(s.store_hits for s in self.stats.values())

    @property
    def store_misses(self) -> int:
        return sum(s.store_misses for s in self.stats.values())

    @property
    def store_evictions(self) -> int:
        return sum(s.store_evictions for s in self.stats.values())

    def summary(self) -> str:
        """One line per (op, backend), for logs and examples."""
        lines = []
        for (op, backend), s in sorted(self.stats.items()):
            line = (
                f"{op}/{backend}: launches={s.launches} "
                f"hits={s.cache_hits} misses={s.cache_misses} "
                f"simulated={s.simulated_seconds * 1e6:.1f}us"
            )
            if s.retries or s.fallbacks or s.degraded or s.failures:
                line += (
                    f" retries={s.retries} fallbacks={s.fallbacks} "
                    f"degraded={s.degraded} failures={s.failures}"
                )
            if s.faults_injected:
                line += f" faults={s.faults_injected}"
            if s.store_hits or s.store_misses:
                line += (
                    f" store_hits={s.store_hits} store_misses={s.store_misses}"
                )
                if s.store_evictions:
                    line += f" store_evictions={s.store_evictions}"
            lines.append(line)
        return "\n".join(lines)


class ExecutionContext:
    """Device + plan cache + telemetry for the dispatch layer.

    One context maps to one simulated device; plans built against a
    different :class:`DeviceSpec` never share a cache, so keys only need
    (op, matrix fingerprint, problem dims, config).
    """

    def __init__(
        self,
        device: DeviceSpec = V100,
        max_plans: int = DEFAULT_MAX_PLANS,
        store: PlanStore | str | Path | None = None,
        tracer=None,
    ) -> None:
        self.device = device
        self.plans = PlanCache(max_plans)
        self.telemetry = Telemetry()
        #: Optional disk-backed :class:`~repro.ops.store.PlanStore` consulted
        #: between the in-memory cache and a plan rebuild; a path builds one.
        self.store = (
            PlanStore(store) if isinstance(store, (str, Path)) else store
        )
        #: A :class:`~repro.reliability.injector.FaultInjector`, or ``None``.
        #: When set, every dispatched op runs through the policy loop even
        #: for single-backend calls, so injected faults are retried.
        self.injector = None
        #: The :class:`~repro.reliability.policy.DispatchReport` of the most
        #: recent policy-dispatched call (cost-only calls have no result
        #: object to carry it).
        self.last_dispatch_report = None
        #: Optional :class:`~repro.obs.tracing.Tracer`. When set, every
        #: dispatched op opens a span and the plan cache/fallback policy
        #: annotate it; when ``None``, dispatch pays one attribute check.
        self.tracer = tracer
        self._metrics = None

    def __repr__(self) -> str:
        return (
            f"ExecutionContext(device={self.device.name!r}, "
            f"plans={len(self.plans)}, launches={self.telemetry.launches})"
        )

    def clear(self) -> None:
        """Drop all in-memory cached plans (telemetry and store are kept)."""
        self.plans.clear()

    def attach_store(self, store: PlanStore | str | Path | None) -> None:
        """Attach (or detach, with ``None``) a persistent plan store."""
        self.store = (
            PlanStore(store) if isinstance(store, (str, Path)) else store
        )

    def _cached(self, op: str, backend: str, key: tuple, build, storable=None):
        """Two-tier plan lookup: memory cache, then the persistent store,
        then ``build`` (persisting the result to both tiers).

        A poisoned in-memory entry raises
        :class:`~repro.reliability.errors.PlanCorruptionError` exactly like
        the direct cache path, so the reliability policies keep working; a
        corrupt *on-disk* entry is self-healing (evicted and rebuilt) and
        only surfaces in the ``store_evictions`` telemetry.

        ``storable`` (a predicate over the built value) gates the on-disk
        write: a tuning result that *fell back* under injected faults is
        kept in memory for this process but never persisted, so a later
        fault-free run re-tunes instead of inheriting the degraded pick.
        """
        span = self.tracer.current if self.tracer is not None else None
        value = self.plans.get(key)
        if value is not None:
            self.telemetry.record_cache(op, backend, True)
            if span is not None:
                span.set(plan_cache="hit", plan_source="memory")
            return value
        self.telemetry.record_cache(op, backend, False)
        if self.store is not None:
            stored, status = self.store.fetch((self.device,) + key)
            self.telemetry.record_store(op, backend, status)
            if stored is not None:
                if span is not None:
                    span.set(plan_cache="miss", plan_source="store")
                self.plans.put(key, stored)
                return stored
        value = build()
        if span is not None:
            span.set(plan_cache="miss", plan_source="built")
        self.plans.put(key, value)
        if self.store is not None and (storable is None or storable(value)):
            self.store.save((self.device,) + key, value)
        return value

    # ------------------------------------------------------------------
    # Telemetry API (benchmarks/tests use this, not the raw counters)
    # ------------------------------------------------------------------
    def telemetry_snapshot(self) -> dict[str, dict[str, int | float]]:
        """Plain-dict copy of every per-(op, backend) counter.

        Rows follow :data:`TELEMETRY_SCHEMA` exactly (keys and value
        types). This remains the compatibility surface over the metrics
        registry — see :meth:`metrics_snapshot` for the superset view.
        """
        return self.telemetry.snapshot()

    def reset_telemetry(self) -> None:
        """Zero all telemetry counters *and* the attached store's counters
        in one call, so snapshot deltas never mix epochs (plan caches and
        stored plans are kept)."""
        self.telemetry.reset()
        if self.store is not None:
            self.store.reset_stats()

    def attach_tracer(self, tracer) -> None:
        """Attach (or detach, with ``None``) a tracer to this context."""
        self.tracer = tracer

    @property
    def metrics(self):
        """Lazily-built :class:`~repro.obs.metrics.MetricsRegistry` bound
        to this context's telemetry, plan cache, and plan store."""
        if self._metrics is None:
            from ..obs.metrics import MetricsRegistry, bind_context_metrics

            self._metrics = bind_context_metrics(MetricsRegistry(), self)
        return self._metrics

    def metrics_snapshot(self) -> dict:
        """Snapshot of the bound metrics registry (labeled samples)."""
        return self.metrics.snapshot()

    # ------------------------------------------------------------------
    # Config selection (cached per topology, via the selector protocol)
    # ------------------------------------------------------------------
    def _select_config(self, op: str, sel, key: tuple, build):
        """Resolve a config through one selector, with selector-aware
        caching and span labeling.

        ``persist`` selectors (oracle, tuned — anything that costs
        candidates) go through the two-tier :meth:`_cached` path so their
        winners amortize across processes; the heuristic stays memory-only.
        A :class:`~repro.tune.TuningResult` is cached whole (stats and
        all) and unwrapped to its config here.
        """
        span = self.tracer.current if self.tracer is not None else None
        if span is not None:
            span.set(selector=sel.name)
        if sel.persist:
            value = self._cached(
                op,
                sel.name,
                key,
                build,
                storable=lambda v: not getattr(v, "fell_back", False),
            )
        else:
            value = self.plans.get(key)
            if value is None:
                value = build()
                self.plans.put(key, value)
        if isinstance(value, TuningResult):
            if span is not None:
                span.set(
                    candidates_costed=value.candidates_costed,
                    tuning_fell_back=value.fell_back,
                )
            return value.config
        return value

    def spmm_config(
        self,
        a: CSRMatrix,
        n: int,
        selector: str = "heuristic",
        fingerprint: str | None = None,
    ) -> SpmmConfig:
        """Resolve an SpMM config through a selector (name or instance).

        Every selection is cached under a selector-qualified key: the
        heuristic for uniformity, the oracle and the tuner because they
        cost candidate variants on the simulator (Section VII-B).
        """
        sel = resolve_selector(selector)
        fp = fingerprint or matrix_fingerprint(a)
        precision = "mixed" if a.values.dtype == np.float16 else "fp32"
        key = ("spmm_config", fp, n, precision, sel.name)
        return self._select_config(
            "spmm_config", sel, key, lambda: sel.build_spmm(self, a, n, precision)
        )

    def sddmm_config(
        self,
        mask: CSRMatrix,
        k: int,
        selector: str = "heuristic",
        fingerprint: str | None = None,
    ) -> SddmmConfig:
        """Resolve an SDDMM config through a selector (name or instance).

        Precision is derived from the mask's value dtype — an fp16 mask
        selects a mixed-precision config (fp16 value bytes, int16 index
        bytes) exactly like :meth:`spmm_config` does for SpMM.
        """
        sel = resolve_selector(selector)
        fp = fingerprint or matrix_fingerprint(mask)
        precision = "mixed" if mask.values.dtype == np.float16 else "fp32"
        key = ("sddmm_config", fp, k, precision, sel.name)
        return self._select_config(
            "sddmm_config",
            sel,
            key,
            lambda: sel.build_sddmm(self, mask, k, precision),
        )

    # ------------------------------------------------------------------
    # Plans (cached per topology x config x problem dims)
    # ------------------------------------------------------------------
    def spmm_plan(
        self,
        a: CSRMatrix,
        n: int,
        config: SpmmConfig | None = None,
        selector: str = "heuristic",
        backend: str = "sputnik",
    ) -> SpmmPlan:
        fp = matrix_fingerprint(a)
        if config is None:
            config = self.spmm_config(a, n, selector, fingerprint=fp)
        key = ("spmm", fp, n, config)
        return self._cached(
            "spmm", backend, key, lambda: plan_spmm(a, n, self.device, config)
        )

    def sddmm_plan(
        self,
        mask: CSRMatrix,
        k: int,
        config: SddmmConfig | None = None,
        selector: str = "heuristic",
        backend: str = "sputnik",
    ) -> SddmmPlan:
        fp = matrix_fingerprint(mask)
        if config is None:
            config = self.sddmm_config(mask, k, selector, fingerprint=fp)
        key = ("sddmm", fp, k, config)
        return self._cached(
            "sddmm",
            backend,
            key,
            lambda: plan_sddmm(mask, k, self.device, config),
        )

    def sparse_softmax_plan(
        self, a: CSRMatrix, backend: str = "sputnik"
    ) -> SparseSoftmaxPlan:
        fp = matrix_fingerprint(a)
        key = ("sparse_softmax", fp)
        return self._cached(
            "sparse_softmax",
            backend,
            key,
            lambda: plan_sparse_softmax(a, self.device),
        )

    def spmm_batched_plan(
        self,
        a: CSRMatrix,
        n: int,
        h: int,
        config: SpmmConfig | None = None,
        selector: str = "heuristic",
        backend: str = "sputnik",
    ) -> SpmmBatchedPlan:
        """One plan for ``h`` SpMMs sharing ``a``'s topology (one launch)."""
        fp = matrix_fingerprint(a)
        if config is None:
            config = self.spmm_config(a, n, selector, fingerprint=fp)
        key = ("spmm_batched", fp, n, h, config)
        return self._cached(
            "spmm_batched",
            backend,
            key,
            lambda: plan_spmm_batched(a, n, h, self.device, config),
        )

    def sddmm_batched_plan(
        self,
        mask: CSRMatrix,
        k: int,
        h: int,
        config: SddmmConfig | None = None,
        selector: str = "heuristic",
        backend: str = "sputnik",
    ) -> SddmmBatchedPlan:
        """One plan for ``h`` SDDMMs sharing ``mask``'s topology."""
        fp = matrix_fingerprint(mask)
        if config is None:
            config = self.sddmm_config(mask, k, selector, fingerprint=fp)
        key = ("sddmm_batched", fp, k, h, config)
        return self._cached(
            "sddmm_batched",
            backend,
            key,
            lambda: plan_sddmm_batched(mask, k, h, self.device, config),
        )

    def sparse_softmax_batched_plan(
        self, a: CSRMatrix, h: int, backend: str = "sputnik"
    ) -> SparseSoftmaxBatchedPlan:
        """One plan for ``h`` row softmaxes over ``a``'s topology."""
        fp = matrix_fingerprint(a)
        key = ("sparse_softmax_batched", fp, h)
        return self._cached(
            "sparse_softmax_batched",
            backend,
            key,
            lambda: plan_sparse_softmax_batched(a, h, self.device),
        )

    def csc_spmm_plan(
        self,
        a: CSCMatrix,
        n: int,
        config: SpmmConfig | None = None,
        backend: str = "sputnik",
    ) -> SpmmPlan:
        fp = matrix_fingerprint(a)
        key = ("csc_spmm", fp, n, config)
        return self._cached(
            "csc_spmm",
            backend,
            key,
            lambda: plan_spmm_csc(a, n, self.device, config),
        )

    # ------------------------------------------------------------------
    # Cost-only results (cached; used by benchmarks and model cost paths)
    # ------------------------------------------------------------------
    def gemm_execution(
        self,
        m: int,
        n: int,
        k: int,
        element_bytes: int = 4,
        op: str = "matmul",
        backend: str = "cublas",
    ) -> ExecutionResult:
        """Cached dense-GEMM cost (the cuBLAS dispatch search is not free).

        ``op``/``backend`` only attribute the telemetry — callers like the
        dense-SpMM backend pass their own names; the cache entry is shared.
        """
        key = ("matmul", m, n, k, element_bytes)
        return self._cached(
            op,
            backend,
            key,
            lambda: gemm_execution(m, n, k, self.device, element_bytes),
        )

    def cost(self, key: tuple, build) -> ExecutionResult:
        """Generic cached cost entry for baseline backends.

        ``key[0]`` must be the op name and ``key[1]`` the backend (used for
        telemetry attribution).
        """
        return self._cached(key[0], key[1], key, build)


#: Module-level default contexts, one per device. Shared by every call site
#: that does not pass an explicit context.
_DEFAULT_CONTEXTS: dict[DeviceSpec, ExecutionContext] = {}


def default_context(device: DeviceSpec = V100) -> ExecutionContext:
    """The shared per-device context used when none is passed explicitly."""
    ctx = _DEFAULT_CONTEXTS.get(device)
    if ctx is None:
        ctx = ExecutionContext(device)
        _DEFAULT_CONTEXTS[device] = ctx
    return ctx


def set_default_context(context: ExecutionContext) -> ExecutionContext:
    """Install ``context`` as the shared default for its device.

    Sweep workers use this so call sites that resolve contexts implicitly
    (the benchmark timers, the nn layers) run with the worker's
    store-backed context instead of a fresh one. Returns the context.
    """
    _DEFAULT_CONTEXTS[context.device] = context
    return context


def reset_default_contexts() -> None:
    """Drop all shared contexts (fresh caches and telemetry) — for tests."""
    _DEFAULT_CONTEXTS.clear()
