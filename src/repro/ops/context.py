"""Execution contexts: device + plan cache + telemetry.

An :class:`ExecutionContext` is the stateful half of the dispatch layer. It
carries the :class:`~repro.gpu.device.DeviceSpec` every launch is costed
against, a :class:`~repro.ops.plans.PlanCache` of per-matrix kernel plans
(tiling, swizzled row order, ROMA extents, selected configs, simulated
execution), and running telemetry per (op, backend).

Call sites that don't manage a context explicitly share a module-level
default per device via :func:`default_context`, so plan reuse happens
automatically across layers and training steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.cublas import gemm_execution
from ..core.config import SddmmConfig, SpmmConfig
from ..core.csc_spmm import plan_spmm_csc
from ..core.sddmm import SddmmPlan, plan_sddmm
from ..core.selection import (
    oracle_spmm_config,
    select_sddmm_config,
    select_spmm_config,
)
from ..core.sparse_softmax import SparseSoftmaxPlan, plan_sparse_softmax
from ..core.spmm import SpmmPlan, plan_spmm
from ..gpu.device import V100, DeviceSpec
from ..gpu.executor import ExecutionResult
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from .plans import DEFAULT_MAX_PLANS, PlanCache, matrix_fingerprint

#: Valid config selectors for ops that resolve their own config.
SELECTORS = ("heuristic", "oracle")


@dataclass
class OpStats:
    """Running counters for one (op, backend) pair."""

    launches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    simulated_seconds: float = 0.0


@dataclass
class Telemetry:
    """Per-context instrumentation, keyed by (op, backend)."""

    stats: dict[tuple[str, str], OpStats] = field(default_factory=dict)

    def _get(self, op: str, backend: str) -> OpStats:
        return self.stats.setdefault((op, backend), OpStats())

    def record_launch(
        self, op: str, backend: str, execution: ExecutionResult
    ) -> None:
        entry = self._get(op, backend)
        entry.launches += 1
        entry.simulated_seconds += execution.runtime_s

    def record_cache(self, op: str, backend: str, hit: bool) -> None:
        entry = self._get(op, backend)
        if hit:
            entry.cache_hits += 1
        else:
            entry.cache_misses += 1

    @property
    def launches(self) -> int:
        return sum(s.launches for s in self.stats.values())

    @property
    def cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.stats.values())

    @property
    def cache_misses(self) -> int:
        return sum(s.cache_misses for s in self.stats.values())

    @property
    def simulated_seconds(self) -> float:
        return sum(s.simulated_seconds for s in self.stats.values())

    def summary(self) -> str:
        """One line per (op, backend), for logs and examples."""
        lines = []
        for (op, backend), s in sorted(self.stats.items()):
            lines.append(
                f"{op}/{backend}: launches={s.launches} "
                f"hits={s.cache_hits} misses={s.cache_misses} "
                f"simulated={s.simulated_seconds * 1e6:.1f}us"
            )
        return "\n".join(lines)


class ExecutionContext:
    """Device + plan cache + telemetry for the dispatch layer.

    One context maps to one simulated device; plans built against a
    different :class:`DeviceSpec` never share a cache, so keys only need
    (op, matrix fingerprint, problem dims, config).
    """

    def __init__(
        self, device: DeviceSpec = V100, max_plans: int = DEFAULT_MAX_PLANS
    ) -> None:
        self.device = device
        self.plans = PlanCache(max_plans)
        self.telemetry = Telemetry()

    def __repr__(self) -> str:
        return (
            f"ExecutionContext(device={self.device.name!r}, "
            f"plans={len(self.plans)}, launches={self.telemetry.launches})"
        )

    def clear(self) -> None:
        """Drop all cached plans (telemetry is kept)."""
        self.plans.clear()

    # ------------------------------------------------------------------
    # Config selection (cached per topology)
    # ------------------------------------------------------------------
    def spmm_config(
        self,
        a: CSRMatrix,
        n: int,
        selector: str = "heuristic",
        fingerprint: str | None = None,
    ) -> SpmmConfig:
        """Resolve an SpMM config via the paper's heuristic or the oracle.

        Both selections are cached: the heuristic for uniformity, the
        oracle because it costs every candidate variant (Section VII-B).
        """
        if selector not in SELECTORS:
            raise ValueError(
                f"unknown selector {selector!r}; expected one of {SELECTORS}"
            )
        fp = fingerprint or matrix_fingerprint(a)
        precision = "mixed" if a.values.dtype == np.float16 else "fp32"
        key = ("spmm_config", fp, n, precision, selector)
        config = self.plans.get(key)
        if config is None:
            if selector == "oracle":
                config = oracle_spmm_config(a, n, self.device, precision)
            else:
                config = select_spmm_config(a, n, precision)
            self.plans.put(key, config)
        return config

    # ------------------------------------------------------------------
    # Plans (cached per topology x config x problem dims)
    # ------------------------------------------------------------------
    def spmm_plan(
        self,
        a: CSRMatrix,
        n: int,
        config: SpmmConfig | None = None,
        selector: str = "heuristic",
        backend: str = "sputnik",
    ) -> SpmmPlan:
        fp = matrix_fingerprint(a)
        if config is None:
            config = self.spmm_config(a, n, selector, fingerprint=fp)
        key = ("spmm", fp, n, config)
        plan, hit = self.plans.get_or_build(
            key, lambda: plan_spmm(a, n, self.device, config)
        )
        self.telemetry.record_cache("spmm", backend, hit)
        return plan

    def sddmm_plan(
        self,
        mask: CSRMatrix,
        k: int,
        config: SddmmConfig | None = None,
        backend: str = "sputnik",
    ) -> SddmmPlan:
        if config is None:
            config = select_sddmm_config(k)
        fp = matrix_fingerprint(mask)
        key = ("sddmm", fp, k, config)
        plan, hit = self.plans.get_or_build(
            key, lambda: plan_sddmm(mask, k, self.device, config)
        )
        self.telemetry.record_cache("sddmm", backend, hit)
        return plan

    def sparse_softmax_plan(
        self, a: CSRMatrix, backend: str = "sputnik"
    ) -> SparseSoftmaxPlan:
        fp = matrix_fingerprint(a)
        key = ("sparse_softmax", fp)
        plan, hit = self.plans.get_or_build(
            key, lambda: plan_sparse_softmax(a, self.device)
        )
        self.telemetry.record_cache("sparse_softmax", backend, hit)
        return plan

    def csc_spmm_plan(
        self,
        a: CSCMatrix,
        n: int,
        config: SpmmConfig | None = None,
        backend: str = "sputnik",
    ) -> SpmmPlan:
        fp = matrix_fingerprint(a)
        key = ("csc_spmm", fp, n, config)
        plan, hit = self.plans.get_or_build(
            key, lambda: plan_spmm_csc(a, n, self.device, config)
        )
        self.telemetry.record_cache("csc_spmm", backend, hit)
        return plan

    # ------------------------------------------------------------------
    # Cost-only results (cached; used by benchmarks and model cost paths)
    # ------------------------------------------------------------------
    def gemm_execution(
        self,
        m: int,
        n: int,
        k: int,
        element_bytes: int = 4,
        op: str = "matmul",
        backend: str = "cublas",
    ) -> ExecutionResult:
        """Cached dense-GEMM cost (the cuBLAS dispatch search is not free).

        ``op``/``backend`` only attribute the telemetry — callers like the
        dense-SpMM backend pass their own names; the cache entry is shared.
        """
        key = ("matmul", m, n, k, element_bytes)
        result, hit = self.plans.get_or_build(
            key, lambda: gemm_execution(m, n, k, self.device, element_bytes)
        )
        self.telemetry.record_cache(op, backend, hit)
        return result

    def cost(self, key: tuple, build) -> ExecutionResult:
        """Generic cached cost entry for baseline backends.

        ``key[0]`` must be the op name and ``key[1]`` the backend (used for
        telemetry attribution).
        """
        result, hit = self.plans.get_or_build(key, build)
        self.telemetry.record_cache(key[0], key[1], hit)
        return result


#: Module-level default contexts, one per device. Shared by every call site
#: that does not pass an explicit context.
_DEFAULT_CONTEXTS: dict[DeviceSpec, ExecutionContext] = {}


def default_context(device: DeviceSpec = V100) -> ExecutionContext:
    """The shared per-device context used when none is passed explicitly."""
    ctx = _DEFAULT_CONTEXTS.get(device)
    if ctx is None:
        ctx = ExecutionContext(device)
        _DEFAULT_CONTEXTS[device] = ctx
    return ctx


def reset_default_contexts() -> None:
    """Drop all shared contexts (fresh caches and telemetry) — for tests."""
    _DEFAULT_CONTEXTS.clear()
