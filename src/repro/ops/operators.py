"""Operator wrappers: the single entry point for every sparse kernel.

Each wrapper resolves (context, backend, config) and dispatches through the
:mod:`~repro.ops.registry`:

- ``device``/``context``: pass an explicit :class:`ExecutionContext` to
  manage caching yourself, or just a :class:`DeviceSpec` to share the
  module-level :func:`~repro.ops.context.default_context` for that device
  (passing neither means the default V100 context);
- ``backend``: registry string — ``"sputnik"`` (default), ``"cusparse"``,
  ``"merge"``, ``"aspt"``, ``"dense"``, ...;
- ``config``: an explicit kernel config, or ``None`` to resolve one via
  :mod:`repro.core.selection` (``selector="oracle"`` costs every candidate,
  Section VII-B) and cache the choice per topology.

``*_cost`` variants return the simulated :class:`ExecutionResult` only —
the benchmark path, also plan-cached.
"""

from __future__ import annotations

import numpy as np

from ..core.config import SddmmConfig, SpmmConfig
from ..core.types import KernelResult
from ..gpu.device import DeviceSpec
from ..gpu.executor import ExecutionResult
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from .context import ExecutionContext, default_context
from .registry import get_impl


def resolve_context(
    context: ExecutionContext | None, device: DeviceSpec | None
) -> ExecutionContext:
    """Pick the context to run in; `device` must agree with an explicit one."""
    if context is not None:
        if device is not None and device != context.device:
            raise ValueError(
                f"device {device.name!r} conflicts with the context's "
                f"{context.device.name!r}"
            )
        return context
    return default_context(device) if device is not None else default_context()


def spmm(
    a: CSRMatrix,
    b: np.ndarray,
    device: DeviceSpec | None = None,
    config: SpmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend: str = "sputnik",
    selector: str = "heuristic",
) -> KernelResult:
    """``C = A @ B`` with sparse ``A``: exact numerics + simulated cost."""
    ctx = resolve_context(context, device)
    impl = get_impl("spmm", backend)
    result = impl.run(ctx, a, b, config, selector)
    ctx.telemetry.record_launch("spmm", backend, result.execution)
    return result


def spmm_cost(
    a: CSRMatrix,
    n: int,
    device: DeviceSpec | None = None,
    config: SpmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend: str = "sputnik",
    selector: str = "heuristic",
    **kwargs,
) -> ExecutionResult:
    """Simulated SpMM cost only (``n`` = dense batch columns)."""
    ctx = resolve_context(context, device)
    impl = get_impl("spmm", backend)
    result = impl.cost(ctx, a, n, config, selector, **kwargs)
    ctx.telemetry.record_launch("spmm", backend, result)
    return result


def sddmm(
    lhs: np.ndarray,
    rhs: np.ndarray,
    mask: CSRMatrix,
    device: DeviceSpec | None = None,
    config: SddmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend: str = "sputnik",
) -> KernelResult:
    """``(lhs @ rhs^T) ∘ I[mask]``: exact numerics + simulated cost."""
    ctx = resolve_context(context, device)
    impl = get_impl("sddmm", backend)
    result = impl.run(ctx, lhs, rhs, mask, config)
    ctx.telemetry.record_launch("sddmm", backend, result.execution)
    return result


def sddmm_cost(
    mask: CSRMatrix,
    k: int,
    device: DeviceSpec | None = None,
    config: SddmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend: str = "sputnik",
) -> ExecutionResult:
    """Simulated SDDMM cost only (``k`` = dot-product inner dimension)."""
    ctx = resolve_context(context, device)
    impl = get_impl("sddmm", backend)
    result = impl.cost(ctx, mask, k, config)
    ctx.telemetry.record_launch("sddmm", backend, result)
    return result


def sparse_softmax(
    a: CSRMatrix,
    device: DeviceSpec | None = None,
    scale: float = 1.0,
    *,
    context: ExecutionContext | None = None,
    backend: str = "sputnik",
) -> KernelResult:
    """Row-wise softmax over CSR nonzeros (Section VII-C)."""
    ctx = resolve_context(context, device)
    impl = get_impl("sparse_softmax", backend)
    result = impl.run(ctx, a, scale)
    ctx.telemetry.record_launch("sparse_softmax", backend, result.execution)
    return result


def sparse_softmax_cost(
    a: CSRMatrix,
    device: DeviceSpec | None = None,
    *,
    context: ExecutionContext | None = None,
    backend: str = "sputnik",
) -> ExecutionResult:
    """Simulated sparse-softmax cost only."""
    ctx = resolve_context(context, device)
    impl = get_impl("sparse_softmax", backend)
    result = impl.cost(ctx, a)
    ctx.telemetry.record_launch("sparse_softmax", backend, result)
    return result


def csc_spmm(
    b: np.ndarray,
    a: CSCMatrix,
    device: DeviceSpec | None = None,
    config: SpmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend: str = "sputnik",
) -> KernelResult:
    """``C = B @ A`` with CSC ``A`` and column-major ``B``/``C``."""
    ctx = resolve_context(context, device)
    impl = get_impl("csc_spmm", backend)
    result = impl.run(ctx, b, a, config)
    ctx.telemetry.record_launch("csc_spmm", backend, result.execution)
    return result


def csc_spmm_cost(
    a: CSCMatrix,
    n: int,
    device: DeviceSpec | None = None,
    config: SpmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend: str = "sputnik",
) -> ExecutionResult:
    """Simulated CSC-SpMM cost only (``n`` = rows of the dense left operand)."""
    ctx = resolve_context(context, device)
    impl = get_impl("csc_spmm", backend)
    result = impl.cost(ctx, a, n, config)
    ctx.telemetry.record_launch("csc_spmm", backend, result)
    return result


def matmul(
    a: np.ndarray,
    b: np.ndarray,
    device: DeviceSpec | None = None,
    *,
    context: ExecutionContext | None = None,
    backend: str = "cublas",
) -> KernelResult:
    """Dense ``A @ B`` (the models' dense projections and baselines)."""
    ctx = resolve_context(context, device)
    impl = get_impl("matmul", backend)
    result = impl.run(ctx, a, b)
    ctx.telemetry.record_launch("matmul", backend, result.execution)
    return result


def matmul_cost(
    m: int,
    n: int,
    k: int,
    device: DeviceSpec | None = None,
    element_bytes: int = 4,
    *,
    context: ExecutionContext | None = None,
    backend: str = "cublas",
) -> ExecutionResult:
    """Simulated dense-GEMM cost only."""
    ctx = resolve_context(context, device)
    impl = get_impl("matmul", backend)
    result = impl.cost(ctx, m, n, k, element_bytes)
    ctx.telemetry.record_launch("matmul", backend, result)
    return result
