"""Operator wrappers: the single entry point for every sparse kernel.

Each wrapper resolves (context, backend, config) and dispatches through the
:mod:`~repro.ops.registry`:

- ``device``/``context``: pass an explicit :class:`ExecutionContext` to
  manage caching yourself, or just a :class:`DeviceSpec` to share the
  module-level :func:`~repro.ops.context.default_context` for that device
  (passing neither means the default V100 context);
- ``backend``: a registry string — ``"sputnik"`` (default), ``"cusparse"``,
  ``"merge"``, ``"aspt"``, ``"dense"`` — **or** a fallback chain (a list of
  backend strings, or a :class:`~repro.reliability.policy.FallbackPolicy`)
  dispatched with retry/backoff and the reliability error taxonomy;
- ``config``: an explicit kernel config, or ``None`` to resolve one via
  the :mod:`repro.tune` selector protocol — ``selector`` names a policy:
  ``"heuristic"`` (the paper's rules), ``"oracle"`` (costs every
  candidate, Section VII-B), or ``"tuned"`` (hill-climbing autotuner) —
  with the choice cached per topology and selector;
- ``validate``: run the numerical guardrails on the output (NaN/Inf scan;
  fp16 overflow triggers an automatic fp32 degraded-mode re-run).

``*_cost`` variants return the simulated :class:`ExecutionResult` only —
the benchmark path, also plan-cached.

A plain string backend with no guardrails and no fault injector takes the
zero-overhead legacy path. Chains, ``validate=True``, or an attached
:class:`~repro.reliability.injector.FaultInjector` route the call through
:func:`repro.reliability.policy.run_with_policy`; the resulting
:class:`~repro.reliability.policy.DispatchReport` rides on
``result.reliability`` (and ``context.last_dispatch_report``).

When the context carries a :class:`~repro.obs.tracing.Tracer`, every
dispatch opens an ``op``-category span annotated with the backend chosen,
plan-cache outcome (hit/miss + memory/store/built tier, set by the plan
cache), simulated seconds, and any reliability events (retry / fallback /
degraded, set by the policy loop). With no tracer attached, the only cost
is one attribute check and the shared no-op span.
"""

from __future__ import annotations

import numpy as np

from ..core.config import SddmmConfig, SpmmConfig
from ..core.types import KernelResult
from ..gpu.device import DeviceSpec
from ..gpu.executor import ExecutionResult
from ..obs.tracing import NO_SPAN
from ..reliability.policy import as_policy, run_with_policy
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from .context import ExecutionContext, default_context
from .registry import available, exact_backends, get_impl


def resolve_context(
    context: ExecutionContext | None, device: DeviceSpec | None
) -> ExecutionContext:
    """Pick the context to run in; `device` must agree with an explicit one."""
    if context is not None:
        if device is not None and device != context.device:
            raise ValueError(
                f"device {device.name!r} conflicts with the context's "
                f"{context.device.name!r}"
            )
        return context
    return default_context(device) if device is not None else default_context()


def _fast_path(ctx: ExecutionContext, backend, validate: bool) -> bool:
    """Plain string backend, no guardrails, no injector: legacy dispatch."""
    return isinstance(backend, str) and not validate and ctx.injector is None


# ----------------------------------------------------------------------
# Transient workspace footprints (charged against the device allocator
# for the duration of one dispatch; operand residency persists).
# ----------------------------------------------------------------------
def _spmm_workspace(a, n: int, h: int = 1) -> int:
    vb = a.values.dtype.itemsize
    return (a.shape[0] * n + a.shape[1] * n) * vb * h


def _sddmm_workspace(mask, k: int, h: int = 1) -> int:
    vb = mask.values.dtype.itemsize
    return (mask.nnz + (mask.shape[0] + mask.shape[1]) * k) * vb * h


def _softmax_workspace(a, h: int = 1) -> int:
    return a.nnz * a.values.dtype.itemsize * h


def _gemm_workspace(m: int, n: int, k: int, element_bytes: int = 4) -> int:
    return (m * k + k * n + m * n) * element_bytes


def _op_span(ctx: ExecutionContext, op: str, backend):
    """A dispatch span when the context is traced, else the no-op span."""
    tracer = ctx.tracer
    if tracer is None:
        return NO_SPAN
    requested = (
        backend
        if isinstance(backend, str)
        else "/".join(as_policy(backend).backends)
    )
    attrs = {"backend": requested, "device": ctx.device.name}
    if ctx.device_id is not None:
        attrs["device_id"] = ctx.device_id
    return tracer.span(op, category="op", **attrs)


def _policy_dispatch(
    ctx: ExecutionContext,
    op: str,
    backend,
    validate: bool,
    call,
    *,
    operands=(),
    fp32_call=None,
    cost: bool = False,
    span=NO_SPAN,
    workspace: int = 0,
):
    """Route one op call through the reliability policy loop.

    When the context accounts HBM capacity, every attempt is wrapped in a
    per-backend memory scope — so falling back from aspt to sputnik really
    does shrink the charged footprint, which is stage 3 of the OOM
    degradation ladder.
    """
    policy = as_policy(backend, validate=True if validate else None)
    attempt = call
    fp32_attempt = fp32_call
    if ctx.memory is not None:

        def attempt(be: str, _call=call):
            with ctx.memory_scope(op, be, operands, workspace):
                return _call(be)

        if fp32_call is not None:

            def fp32_attempt(be: str, _call=fp32_call):
                with ctx.memory_scope(op, be, operands, workspace):
                    return _call(be)

    result = run_with_policy(
        ctx,
        op,
        policy,
        attempt,
        operands=operands,
        fp32_attempt=fp32_attempt,
        registered=set(available(op)),
        exact_backends=exact_backends(op),
    )
    report = ctx.last_dispatch_report
    used = report.backend_used
    execution = result if cost else result.execution
    ctx.telemetry.record_launch(op, used, execution)
    span.set(backend_used=used)
    if not report.clean:
        span.set(
            retries=report.retries,
            fallbacks=report.fallbacks,
            degraded=report.degraded,
        )
    span.add_sim(execution.runtime_s)
    return result


def _shard_route(shard, context, device, config):
    """Validate the ``shard=`` kwarg (a :class:`repro.dist.DeviceGroup`).

    Sharded dispatch runs through the group's own per-device contexts, so
    an explicit ``context``/``device``/``config`` would be silently
    ignored — reject the combination instead.
    """
    if shard is None:
        return False
    if context is not None or device is not None or config is not None:
        raise ValueError(
            "shard= routes dispatch through the DeviceGroup's own "
            "contexts; do not also pass context/device/config"
        )
    return True


def spmm(
    a: CSRMatrix,
    b: np.ndarray,
    device: DeviceSpec | None = None,
    config: SpmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend="sputnik",
    selector: str = "heuristic",
    validate: bool = False,
    shard=None,
    shard_strategy: str = "row",
) -> KernelResult:
    """``C = A @ B`` with sparse ``A``: exact numerics + simulated cost.

    ``shard=`` (a :class:`repro.dist.DeviceGroup`) dispatches row- or
    2-D-sharded (``shard_strategy``) across the group's K devices with
    interconnect-priced collectives; the returned result's ``execution``
    is the group summary and ``result.sharded`` the full breakdown.
    """
    if _shard_route(shard, context, device, config):
        from ..dist import sharded_spmm

        return sharded_spmm(
            a, b, shard, strategy=shard_strategy,
            backend=backend, selector=selector,
        )
    ctx = resolve_context(context, device)
    with _op_span(ctx, "spmm", backend) as span:
        if _fast_path(ctx, backend, validate):
            impl = get_impl("spmm", backend)
            ws = _spmm_workspace(a, b.shape[1])
            with ctx.memory_scope("spmm", backend, (a,), ws):
                result = impl.run(ctx, a, b, config, selector)
            ctx.telemetry.record_launch("spmm", backend, result.execution)
            span.add_sim(result.execution.runtime_s)
            return result

        primary = as_policy(backend).backends[0]

        def call(be: str) -> KernelResult:
            # An explicit Sputnik config does not transfer to other backends.
            cfg = config if be in (primary, "sputnik") else None
            return get_impl("spmm", be).run(ctx, a, b, cfg, selector)

        fp32_call = None
        if a.values.dtype == np.float16:

            def fp32_call(be: str) -> KernelResult:
                a32 = a.astype(np.float32)
                b32 = np.asarray(b, dtype=np.float32)
                return get_impl("spmm", be).run(ctx, a32, b32, None, selector)

        return _policy_dispatch(
            ctx, "spmm", backend, validate, call,
            operands=(a,), fp32_call=fp32_call, span=span,
            workspace=_spmm_workspace(a, b.shape[1]),
        )


def spmm_cost(
    a: CSRMatrix,
    n: int,
    device: DeviceSpec | None = None,
    config: SpmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend="sputnik",
    selector: str = "heuristic",
    validate: bool = False,
    shard=None,
    shard_strategy: str = "row",
    **kwargs,
) -> ExecutionResult:
    """Simulated SpMM cost only (``n`` = dense batch columns).

    With ``shard=`` (a :class:`repro.dist.DeviceGroup`) returns the
    :class:`repro.dist.ShardedExecution` for the group instead.
    """
    if _shard_route(shard, context, device, config):
        from ..dist import sharded_spmm_cost

        return sharded_spmm_cost(
            a, n, shard, strategy=shard_strategy,
            backend=backend, selector=selector,
        )
    ctx = resolve_context(context, device)
    with _op_span(ctx, "spmm", backend) as span:
        if _fast_path(ctx, backend, validate):
            impl = get_impl("spmm", backend)
            with ctx.memory_scope("spmm", backend, (a,), _spmm_workspace(a, n)):
                result = impl.cost(ctx, a, n, config, selector, **kwargs)
            ctx.telemetry.record_launch("spmm", backend, result)
            span.add_sim(result.runtime_s)
            return result

        primary = as_policy(backend).backends[0]

        def call(be: str) -> ExecutionResult:
            cfg = config if be in (primary, "sputnik") else None
            extra = kwargs if be == primary else {}
            return get_impl("spmm", be).cost(ctx, a, n, cfg, selector, **extra)

        return _policy_dispatch(
            ctx, "spmm", backend, validate, call,
            operands=(a,), cost=True, span=span,
            workspace=_spmm_workspace(a, n),
        )


def sddmm(
    lhs: np.ndarray,
    rhs: np.ndarray,
    mask: CSRMatrix,
    device: DeviceSpec | None = None,
    config: SddmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend="sputnik",
    selector: str = "heuristic",
    validate: bool = False,
    shard=None,
) -> KernelResult:
    """``(lhs @ rhs^T) ∘ I[mask]``: exact numerics + simulated cost.

    ``shard=`` (a :class:`repro.dist.DeviceGroup`) row-shards the mask
    across the group's K devices (see :func:`repro.dist.sharded_sddmm`).
    """
    if _shard_route(shard, context, device, config):
        from ..dist import sharded_sddmm

        return sharded_sddmm(
            lhs, rhs, mask, shard, backend=backend, selector=selector
        )
    ctx = resolve_context(context, device)
    with _op_span(ctx, "sddmm", backend) as span:
        if _fast_path(ctx, backend, validate):
            impl = get_impl("sddmm", backend)
            ws = _sddmm_workspace(mask, lhs.shape[1])
            with ctx.memory_scope("sddmm", backend, (mask,), ws):
                result = impl.run(ctx, lhs, rhs, mask, config, selector)
            ctx.telemetry.record_launch("sddmm", backend, result.execution)
            span.add_sim(result.execution.runtime_s)
            return result

        primary = as_policy(backend).backends[0]

        def call(be: str) -> KernelResult:
            cfg = config if be in (primary, "sputnik") else None
            return get_impl("sddmm", be).run(ctx, lhs, rhs, mask, cfg, selector)

        fp32_call = None
        if mask.values.dtype == np.float16:

            def fp32_call(be: str) -> KernelResult:
                return get_impl("sddmm", be).run(
                    ctx, lhs, rhs, mask.astype(np.float32), None, selector
                )

        return _policy_dispatch(
            ctx, "sddmm", backend, validate, call,
            operands=(mask,), fp32_call=fp32_call, span=span,
            workspace=_sddmm_workspace(mask, lhs.shape[1]),
        )


def sddmm_cost(
    mask: CSRMatrix,
    k: int,
    device: DeviceSpec | None = None,
    config: SddmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend="sputnik",
    selector: str = "heuristic",
    validate: bool = False,
    shard=None,
    shard_strategy: str = "row",
) -> ExecutionResult:
    """Simulated SDDMM cost only (``k`` = dot-product inner dimension).

    With ``shard=`` (a :class:`repro.dist.DeviceGroup`) returns the
    :class:`repro.dist.ShardedExecution` for the group instead.
    """
    if _shard_route(shard, context, device, config):
        from ..dist import sharded_sddmm_cost

        return sharded_sddmm_cost(
            mask, k, shard, strategy=shard_strategy,
            backend=backend, selector=selector,
        )
    ctx = resolve_context(context, device)
    with _op_span(ctx, "sddmm", backend) as span:
        if _fast_path(ctx, backend, validate):
            impl = get_impl("sddmm", backend)
            ws = _sddmm_workspace(mask, k)
            with ctx.memory_scope("sddmm", backend, (mask,), ws):
                result = impl.cost(ctx, mask, k, config, selector)
            ctx.telemetry.record_launch("sddmm", backend, result)
            span.add_sim(result.runtime_s)
            return result

        primary = as_policy(backend).backends[0]

        def call(be: str) -> ExecutionResult:
            cfg = config if be in (primary, "sputnik") else None
            return get_impl("sddmm", be).cost(ctx, mask, k, cfg, selector)

        return _policy_dispatch(
            ctx, "sddmm", backend, validate, call,
            operands=(mask,), cost=True, span=span,
            workspace=_sddmm_workspace(mask, k),
        )


def sparse_softmax(
    a: CSRMatrix,
    device: DeviceSpec | None = None,
    scale: float = 1.0,
    *,
    context: ExecutionContext | None = None,
    backend="sputnik",
    validate: bool = False,
) -> KernelResult:
    """Row-wise softmax over CSR nonzeros (Section VII-C)."""
    ctx = resolve_context(context, device)
    with _op_span(ctx, "sparse_softmax", backend) as span:
        if _fast_path(ctx, backend, validate):
            impl = get_impl("sparse_softmax", backend)
            with ctx.memory_scope(
                "sparse_softmax", backend, (a,), _softmax_workspace(a)
            ):
                result = impl.run(ctx, a, scale)
            ctx.telemetry.record_launch(
                "sparse_softmax", backend, result.execution
            )
            span.add_sim(result.execution.runtime_s)
            return result

        def call(be: str) -> KernelResult:
            return get_impl("sparse_softmax", be).run(ctx, a, scale)

        fp32_call = None
        if a.values.dtype == np.float16:

            def fp32_call(be: str) -> KernelResult:
                return get_impl("sparse_softmax", be).run(
                    ctx, a.astype(np.float32), scale
                )

        return _policy_dispatch(
            ctx, "sparse_softmax", backend, validate, call,
            operands=(a,), fp32_call=fp32_call, span=span,
            workspace=_softmax_workspace(a),
        )


def sparse_softmax_cost(
    a: CSRMatrix,
    device: DeviceSpec | None = None,
    *,
    context: ExecutionContext | None = None,
    backend="sputnik",
    validate: bool = False,
) -> ExecutionResult:
    """Simulated sparse-softmax cost only."""
    ctx = resolve_context(context, device)
    with _op_span(ctx, "sparse_softmax", backend) as span:
        if _fast_path(ctx, backend, validate):
            impl = get_impl("sparse_softmax", backend)
            with ctx.memory_scope(
                "sparse_softmax", backend, (a,), _softmax_workspace(a)
            ):
                result = impl.cost(ctx, a)
            ctx.telemetry.record_launch("sparse_softmax", backend, result)
            span.add_sim(result.runtime_s)
            return result

        def call(be: str) -> ExecutionResult:
            return get_impl("sparse_softmax", be).cost(ctx, a)

        return _policy_dispatch(
            ctx, "sparse_softmax", backend, validate, call,
            operands=(a,), cost=True, span=span,
            workspace=_softmax_workspace(a),
        )


def spmm_batched(
    a: CSRMatrix,
    b_stack: np.ndarray,
    device: DeviceSpec | None = None,
    config: SpmmConfig | None = None,
    *,
    values: np.ndarray | None = None,
    context: ExecutionContext | None = None,
    backend="sputnik",
    selector: str = "heuristic",
    validate: bool = False,
) -> KernelResult:
    """``C[h] = A_h @ B[h]`` for ``h`` products sharing ``A``'s topology.

    ``b_stack`` is ``(H, k, n)``; ``values`` optionally supplies a
    ``(H, nnz)`` per-item value matrix over the shared structure (per-head
    attention probabilities). ONE plan is resolved and ONE z-scaled launch
    is costed for the whole stack, amortizing ``H - 1`` launch overheads;
    a policy-dispatched call produces ONE DispatchReport covering the
    batch, and guardrail validation scans the whole output stack.
    """
    ctx = resolve_context(context, device)
    b_stack = np.asarray(b_stack)
    if b_stack.ndim != 3:
        raise ValueError(f"B stack must be (H, k, n), got {b_stack.shape}")
    h = b_stack.shape[0]
    with _op_span(ctx, "spmm_batched", backend) as span:
        span.set(batch=h)
        if _fast_path(ctx, backend, validate):
            impl = get_impl("spmm_batched", backend)
            ws = _spmm_workspace(a, b_stack.shape[2], h)
            with ctx.memory_scope("spmm_batched", backend, (a,), ws):
                result = impl.run(ctx, a, b_stack, config, selector, values)
            ctx.telemetry.record_launch(
                "spmm_batched", backend, result.execution
            )
            span.add_sim(result.execution.runtime_s)
            return result

        primary = as_policy(backend).backends[0]

        def call(be: str) -> KernelResult:
            cfg = config if be in (primary, "sputnik") else None
            return get_impl("spmm_batched", be).run(
                ctx, a, b_stack, cfg, selector, values
            )

        fp32_call = None
        if a.values.dtype == np.float16:

            def fp32_call(be: str) -> KernelResult:
                a32 = a.astype(np.float32)
                b32 = np.asarray(b_stack, dtype=np.float32)
                v32 = (
                    None if values is None
                    else np.asarray(values, dtype=np.float32)
                )
                return get_impl("spmm_batched", be).run(
                    ctx, a32, b32, None, selector, v32
                )

        return _policy_dispatch(
            ctx, "spmm_batched", backend, validate, call,
            operands=(a,), fp32_call=fp32_call, span=span,
            workspace=_spmm_workspace(a, b_stack.shape[2], h),
        )


def spmm_batched_cost(
    a: CSRMatrix,
    n: int,
    h: int,
    device: DeviceSpec | None = None,
    config: SpmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend="sputnik",
    selector: str = "heuristic",
    validate: bool = False,
) -> ExecutionResult:
    """Simulated batched-SpMM cost only (``h`` stacked products)."""
    ctx = resolve_context(context, device)
    with _op_span(ctx, "spmm_batched", backend) as span:
        span.set(batch=h)
        if _fast_path(ctx, backend, validate):
            impl = get_impl("spmm_batched", backend)
            ws = _spmm_workspace(a, n, h)
            with ctx.memory_scope("spmm_batched", backend, (a,), ws):
                result = impl.cost(ctx, a, n, h, config, selector)
            ctx.telemetry.record_launch("spmm_batched", backend, result)
            span.add_sim(result.runtime_s)
            return result

        primary = as_policy(backend).backends[0]

        def call(be: str) -> ExecutionResult:
            cfg = config if be in (primary, "sputnik") else None
            return get_impl("spmm_batched", be).cost(
                ctx, a, n, h, cfg, selector
            )

        return _policy_dispatch(
            ctx, "spmm_batched", backend, validate, call,
            operands=(a,), cost=True, span=span,
            workspace=_spmm_workspace(a, n, h),
        )


def sddmm_batched(
    lhs_stack: np.ndarray,
    rhs_stack: np.ndarray,
    mask: CSRMatrix,
    device: DeviceSpec | None = None,
    config: SddmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend="sputnik",
    selector: str = "heuristic",
    validate: bool = False,
) -> KernelResult:
    """``(lhs[h] @ rhs[h]^T) ∘ I[mask]`` for ``h`` stacked head pairs.

    The output is the column-stacked ``(nnz, H)`` value matrix over the
    shared mask topology — exactly what :func:`sparse_softmax_batched`
    and the ``values`` form of :func:`spmm_batched` consume.
    """
    ctx = resolve_context(context, device)
    lhs_stack = np.asarray(lhs_stack)
    if lhs_stack.ndim != 3:
        raise ValueError(
            f"lhs stack must be (H, rows, k), got {lhs_stack.shape}"
        )
    h = lhs_stack.shape[0]
    with _op_span(ctx, "sddmm_batched", backend) as span:
        span.set(batch=h)
        if _fast_path(ctx, backend, validate):
            impl = get_impl("sddmm_batched", backend)
            ws = _sddmm_workspace(mask, lhs_stack.shape[2], h)
            with ctx.memory_scope("sddmm_batched", backend, (mask,), ws):
                result = impl.run(
                    ctx, lhs_stack, rhs_stack, mask, config, selector
                )
            ctx.telemetry.record_launch(
                "sddmm_batched", backend, result.execution
            )
            span.add_sim(result.execution.runtime_s)
            return result

        primary = as_policy(backend).backends[0]

        def call(be: str) -> KernelResult:
            cfg = config if be in (primary, "sputnik") else None
            return get_impl("sddmm_batched", be).run(
                ctx, lhs_stack, rhs_stack, mask, cfg, selector
            )

        return _policy_dispatch(
            ctx, "sddmm_batched", backend, validate, call,
            operands=(mask,), span=span,
            workspace=_sddmm_workspace(mask, lhs_stack.shape[2], h),
        )


def sddmm_batched_cost(
    mask: CSRMatrix,
    k: int,
    h: int,
    device: DeviceSpec | None = None,
    config: SddmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend="sputnik",
    selector: str = "heuristic",
    validate: bool = False,
) -> ExecutionResult:
    """Simulated batched-SDDMM cost only (``h`` stacked products)."""
    ctx = resolve_context(context, device)
    with _op_span(ctx, "sddmm_batched", backend) as span:
        span.set(batch=h)
        if _fast_path(ctx, backend, validate):
            impl = get_impl("sddmm_batched", backend)
            ws = _sddmm_workspace(mask, k, h)
            with ctx.memory_scope("sddmm_batched", backend, (mask,), ws):
                result = impl.cost(ctx, mask, k, h, config, selector)
            ctx.telemetry.record_launch("sddmm_batched", backend, result)
            span.add_sim(result.runtime_s)
            return result

        primary = as_policy(backend).backends[0]

        def call(be: str) -> ExecutionResult:
            cfg = config if be in (primary, "sputnik") else None
            return get_impl("sddmm_batched", be).cost(
                ctx, mask, k, h, cfg, selector
            )

        return _policy_dispatch(
            ctx, "sddmm_batched", backend, validate, call,
            operands=(mask,), cost=True, span=span,
            workspace=_sddmm_workspace(mask, k, h),
        )


def sparse_softmax_batched(
    a: CSRMatrix,
    values: np.ndarray,
    device: DeviceSpec | None = None,
    scale: float = 1.0,
    *,
    context: ExecutionContext | None = None,
    backend="sputnik",
    validate: bool = False,
) -> KernelResult:
    """Row softmax over a ``(nnz, H)`` value matrix sharing ``a``'s
    topology — all ``H`` columns in one launch."""
    ctx = resolve_context(context, device)
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError(f"value matrix must be (nnz, H), got {values.shape}")
    h = values.shape[1]
    with _op_span(ctx, "sparse_softmax_batched", backend) as span:
        span.set(batch=h)
        if _fast_path(ctx, backend, validate):
            impl = get_impl("sparse_softmax_batched", backend)
            ws = _softmax_workspace(a, h)
            with ctx.memory_scope("sparse_softmax_batched", backend, (a,), ws):
                result = impl.run(ctx, a, values, scale)
            ctx.telemetry.record_launch(
                "sparse_softmax_batched", backend, result.execution
            )
            span.add_sim(result.execution.runtime_s)
            return result

        def call(be: str) -> KernelResult:
            return get_impl("sparse_softmax_batched", be).run(
                ctx, a, values, scale
            )

        fp32_call = None
        if values.dtype == np.float16:

            def fp32_call(be: str) -> KernelResult:
                return get_impl("sparse_softmax_batched", be).run(
                    ctx, a, np.asarray(values, dtype=np.float32), scale
                )

        return _policy_dispatch(
            ctx, "sparse_softmax_batched", backend, validate, call,
            operands=(a,), fp32_call=fp32_call, span=span,
            workspace=_softmax_workspace(a, h),
        )


def sparse_softmax_batched_cost(
    a: CSRMatrix,
    h: int,
    device: DeviceSpec | None = None,
    *,
    context: ExecutionContext | None = None,
    backend="sputnik",
    validate: bool = False,
) -> ExecutionResult:
    """Simulated batched sparse-softmax cost only (``h`` value columns)."""
    ctx = resolve_context(context, device)
    with _op_span(ctx, "sparse_softmax_batched", backend) as span:
        span.set(batch=h)
        if _fast_path(ctx, backend, validate):
            impl = get_impl("sparse_softmax_batched", backend)
            ws = _softmax_workspace(a, h)
            with ctx.memory_scope("sparse_softmax_batched", backend, (a,), ws):
                result = impl.cost(ctx, a, h)
            ctx.telemetry.record_launch(
                "sparse_softmax_batched", backend, result
            )
            span.add_sim(result.runtime_s)
            return result

        def call(be: str) -> ExecutionResult:
            return get_impl("sparse_softmax_batched", be).cost(ctx, a, h)

        return _policy_dispatch(
            ctx, "sparse_softmax_batched", backend, validate, call,
            operands=(a,), cost=True, span=span,
            workspace=_softmax_workspace(a, h),
        )


def csc_spmm(
    b: np.ndarray,
    a: CSCMatrix,
    device: DeviceSpec | None = None,
    config: SpmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend="sputnik",
    validate: bool = False,
) -> KernelResult:
    """``C = B @ A`` with CSC ``A`` and column-major ``B``/``C``."""
    ctx = resolve_context(context, device)
    with _op_span(ctx, "csc_spmm", backend) as span:
        if _fast_path(ctx, backend, validate):
            impl = get_impl("csc_spmm", backend)
            ws = _spmm_workspace(a, b.shape[0])
            with ctx.memory_scope("csc_spmm", backend, (a,), ws):
                result = impl.run(ctx, b, a, config)
            ctx.telemetry.record_launch("csc_spmm", backend, result.execution)
            span.add_sim(result.execution.runtime_s)
            return result

        def call(be: str) -> KernelResult:
            return get_impl("csc_spmm", be).run(ctx, b, a, config)

        return _policy_dispatch(
            ctx, "csc_spmm", backend, validate, call, operands=(a,),
            span=span, workspace=_spmm_workspace(a, b.shape[0]),
        )


def csc_spmm_cost(
    a: CSCMatrix,
    n: int,
    device: DeviceSpec | None = None,
    config: SpmmConfig | None = None,
    *,
    context: ExecutionContext | None = None,
    backend="sputnik",
    validate: bool = False,
) -> ExecutionResult:
    """Simulated CSC-SpMM cost only (``n`` = rows of the dense left operand)."""
    ctx = resolve_context(context, device)
    with _op_span(ctx, "csc_spmm", backend) as span:
        if _fast_path(ctx, backend, validate):
            impl = get_impl("csc_spmm", backend)
            ws = _spmm_workspace(a, n)
            with ctx.memory_scope("csc_spmm", backend, (a,), ws):
                result = impl.cost(ctx, a, n, config)
            ctx.telemetry.record_launch("csc_spmm", backend, result)
            span.add_sim(result.runtime_s)
            return result

        def call(be: str) -> ExecutionResult:
            return get_impl("csc_spmm", be).cost(ctx, a, n, config)

        return _policy_dispatch(
            ctx, "csc_spmm", backend, validate, call,
            operands=(a,), cost=True, span=span,
            workspace=_spmm_workspace(a, n),
        )


def matmul(
    a: np.ndarray,
    b: np.ndarray,
    device: DeviceSpec | None = None,
    *,
    context: ExecutionContext | None = None,
    backend="cublas",
    validate: bool = False,
) -> KernelResult:
    """Dense ``A @ B`` (the models' dense projections and baselines)."""
    ctx = resolve_context(context, device)
    a = np.asarray(a)
    b = np.asarray(b)
    with _op_span(ctx, "matmul", backend) as span:
        if _fast_path(ctx, backend, validate):
            impl = get_impl("matmul", backend)
            ws = _gemm_workspace(
                a.shape[0], b.shape[1], a.shape[1], a.dtype.itemsize
            )
            with ctx.memory_scope("matmul", backend, (), ws):
                result = impl.run(ctx, a, b)
            ctx.telemetry.record_launch("matmul", backend, result.execution)
            span.add_sim(result.execution.runtime_s)
            return result

        def call(be: str) -> KernelResult:
            return get_impl("matmul", be).run(ctx, a, b)

        return _policy_dispatch(
            ctx, "matmul", backend, validate, call, span=span,
            workspace=_gemm_workspace(
                a.shape[0], b.shape[1], a.shape[1], a.dtype.itemsize
            ),
        )


def matmul_cost(
    m: int,
    n: int,
    k: int,
    device: DeviceSpec | None = None,
    element_bytes: int = 4,
    *,
    context: ExecutionContext | None = None,
    backend="cublas",
    validate: bool = False,
) -> ExecutionResult:
    """Simulated dense-GEMM cost only."""
    ctx = resolve_context(context, device)
    with _op_span(ctx, "matmul", backend) as span:
        if _fast_path(ctx, backend, validate):
            impl = get_impl("matmul", backend)
            ws = _gemm_workspace(m, n, k, element_bytes)
            with ctx.memory_scope("matmul", backend, (), ws):
                result = impl.cost(ctx, m, n, k, element_bytes)
            ctx.telemetry.record_launch("matmul", backend, result)
            span.add_sim(result.runtime_s)
            return result

        def call(be: str) -> ExecutionResult:
            return get_impl("matmul", be).cost(ctx, m, n, k, element_bytes)

        return _policy_dispatch(
            ctx, "matmul", backend, validate, call, cost=True, span=span,
            workspace=_gemm_workspace(m, n, k, element_bytes),
        )
