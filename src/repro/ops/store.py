"""Disk-backed persistent plan store.

Plans in this codebase are pure derived state: everything in an
:class:`~repro.core.spmm.SpmmPlan` (and friends) follows deterministically
from a matrix's *structure*, the kernel config, and the device. An
in-process :class:`~repro.ops.plans.PlanCache` already amortizes planning
within one process; the :class:`PlanStore` extends that across processes and
runs — a corpus sweep's worker pool shares one store directory, and a warm
re-run skips ``_analyze`` (and even matrix materialization, for the sweep's
result-level entries) entirely.

On-disk format (one file per entry, named by a blake2b digest of the key):

- a pickled *envelope* dict: magic tag, store format version, the ``repr``
  of the logical key, a blake2b checksum of the payload bytes, and the
  pickled payload itself.
- loads verify magic, version, key repr, and checksum before unpickling the
  payload; any mismatch or exception counts as a corrupt entry, which is
  evicted (unlinked) and reported as a miss — a corrupted store can only
  cost recomputation, never wrong results.
- writes go to a temp file in the store directory followed by an atomic
  :func:`os.replace`, so concurrent sweep workers can share a store without
  locks (last writer wins; all writers produce identical bytes-equivalent
  plans anyway).

Keys are tuples of ``repr``-stable values (strings, ints, frozen dataclass
configs, :class:`~repro.gpu.device.DeviceSpec`); the digest covers the full
``repr`` plus the format version, so a version bump invalidates every
existing entry.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

#: Bump to invalidate every persisted plan (e.g. when a plan dataclass or
#: the cost model changes shape). v2: ExecutionResult grew the per-launch
#: ``phases`` attribution, so v1 pickles would deserialize without it.
#: v3: the batched-plan envelope (SpmmBatchedPlan/SddmmBatchedPlan/
#: SparseSoftmaxBatchedPlan with z-scaled launches and batch-size keys) —
#: stale v2 pickles must self-heal rather than deserialize into the new
#: batched execute signatures.
#: v4: tuned selection persists whole ``repro.tune.TuningResult`` envelopes
#: (config + search stats) under selector-qualified config keys — v3
#: pickles of bare configs would miss the search metadata readers now
#: unwrap.
#: v5: multi-GPU sharding persists ``repro.dist.ShardPlan`` envelopes
#: (per-device row assignments, column ranges, and load accounting) under
#: ``("shard_plan", ...)`` keys — older stores know nothing of the key
#: family and must not serve stale entries to the sharded dispatch path.
#: v6: dynamic-sparsity plan repair — plan dataclasses grew repair state
#: (``SpmmPlan.col_counts``, ``SddmmPlan.row_order``/``col_counts``,
#: ``ShardPlan.row_order``) and envelopes carry an optional repair
#: ``lineage`` record, so v5 pickles would deserialize without the state
#: the repair path expects to maintain incrementally.
PLAN_STORE_VERSION = 6

#: Magic tag identifying a plan-store envelope.
_MAGIC = "repro-plan-store"

#: File suffix of store entries.
_SUFFIX = ".plan"


@dataclass
class StoreStats:
    """Running counters for one :class:`PlanStore` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Corrupt/incompatible entries deleted during a load.
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
        }

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanStore:
    """A directory of pickled plan entries keyed by structure fingerprints.

    ``version`` defaults to :data:`PLAN_STORE_VERSION`; passing a different
    value (tests, forced invalidation) makes every entry written under
    another version unreadable — reads treat it as a miss without evicting,
    so two versions can share a directory during a migration.
    """

    def __init__(
        self, root: str | Path, version: int = PLAN_STORE_VERSION
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.version = int(version)
        self.stats = StoreStats()

    def __repr__(self) -> str:
        return (
            f"PlanStore(root={str(self.root)!r}, version={self.version}, "
            f"entries={len(self)})"
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob(f"*{_SUFFIX}"))

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    def key_digest(self, key: Any) -> str:
        """Stable content digest of a logical key (+ format version)."""
        h = hashlib.blake2b(digest_size=20)
        h.update(_MAGIC.encode())
        h.update(str(self.version).encode())
        h.update(repr(key).encode())
        return h.hexdigest()

    def path_for(self, key: Any) -> Path:
        return self.root / (self.key_digest(key) + _SUFFIX)

    def __contains__(self, key: Any) -> bool:
        return self.path_for(key).exists()

    # ------------------------------------------------------------------
    # Load / save
    # ------------------------------------------------------------------
    def fetch(self, key: Any) -> tuple[Any | None, str]:
        """Look up ``key``; returns ``(value, status)``.

        ``status`` is ``"hit"``, ``"miss"``, or ``"corrupt"`` (the entry
        existed but failed validation and was evicted). Corrupt entries
        count as both an eviction and a miss in :attr:`stats`.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None, "miss"
        try:
            envelope = pickle.loads(blob)
            if (
                not isinstance(envelope, dict)
                or envelope.get("magic") != _MAGIC
                or envelope.get("version") != self.version
                or envelope.get("key") != repr(key)
            ):
                raise ValueError("envelope mismatch")
            payload = envelope["payload"]
            digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
            if digest != envelope.get("checksum"):
                raise ValueError("payload checksum mismatch")
            value = pickle.loads(payload)
        except Exception:
            # Truncated write, bit rot, version skew inside the pickle, a
            # hash collision with a different key — all recover the same
            # way: drop the entry and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.evictions += 1
            self.stats.misses += 1
            return None, "corrupt"
        self.stats.hits += 1
        return value, "hit"

    def load(self, key: Any) -> Any | None:
        """Value for ``key``, or ``None`` on miss/corruption."""
        value, _ = self.fetch(key)
        return value

    def save(
        self, key: Any, value: Any, lineage: dict | None = None
    ) -> Path:
        """Persist ``value`` under ``key`` (atomic, concurrency-safe).

        ``lineage`` optionally records how a *repaired* plan came to be
        (parent/child fingerprints, edited-row count): it rides in the
        envelope for post-mortem inspection via :meth:`lineage` but plays
        no part in validation — a repaired plan is bit-identical to a cold
        one, so readers never need to care.
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "magic": _MAGIC,
            "version": self.version,
            "key": repr(key),
            "checksum": hashlib.blake2b(payload, digest_size=16).hexdigest(),
            "payload": payload,
        }
        if lineage is not None:
            envelope["lineage"] = dict(lineage)
        path = self.path_for(key)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=_SUFFIX
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def lineage(self, key: Any) -> dict | None:
        """Repair-lineage record of an entry, or ``None``.

        ``None`` means the entry is absent, unreadable, or was written by
        a cold build; only plans persisted by the repair path carry one.
        """
        path = self.path_for(key)
        try:
            envelope = pickle.loads(path.read_bytes())
        except Exception:
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("magic") != _MAGIC
            or envelope.get("version") != self.version
            or envelope.get("key") != repr(key)
        ):
            return None
        lineage = envelope.get("lineage")
        return dict(lineage) if isinstance(lineage, dict) else None

    def get_or_build(
        self, key: Any, build: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Return ``(value, was_hit)``, building and persisting on a miss."""
        value, status = self.fetch(key)
        if status == "hit":
            return value, True
        value = build()
        self.save(key, value)
        return value, False

    def evict(self, key: Any) -> None:
        """Drop one entry (missing is a no-op)."""
        try:
            self.path_for(key).unlink()
            self.stats.evictions += 1
        except OSError:
            pass

    def clear(self) -> None:
        """Delete every entry in the store directory."""
        for path in self.root.glob(f"*{_SUFFIX}"):
            try:
                path.unlink()
            except OSError:
                pass

    def reset_stats(self) -> None:
        self.stats = StoreStats()
