"""repro.ops — the unified operator dispatch layer.

Single entry point for every sparse operator in the reproduction:

- :func:`spmm`, :func:`sddmm`, :func:`sparse_softmax`, :func:`csc_spmm`,
  :func:`matmul` — numerics + simulated cost, dispatched by backend string;
- :func:`spmm_batched`, :func:`sddmm_batched`,
  :func:`sparse_softmax_batched` — stacked operands over one shared
  topology: one plan, one z-scaled launch, one DispatchReport per batch;
- ``*_cost`` variants — simulated cost only (the benchmark path);
- :class:`ExecutionContext` / :func:`default_context` — device + per-matrix
  plan cache + telemetry;
- :func:`register` / :func:`available` — the kernel registry, for adding or
  enumerating backends.

Example::

    from repro import ops
    from repro.gpu import V100

    y = ops.spmm(weights, x, V100)                  # sputnik, plan cached
    y2 = ops.spmm(weights, x, V100)                 # plan-cache hit
    yc = ops.spmm(weights, x, V100, backend="cusparse")
    print(ops.default_context(V100).telemetry.summary())
"""

from .context import (
    TELEMETRY_SCHEMA,
    ExecutionContext,
    OpStats,
    Telemetry,
    default_context,
    reset_default_contexts,
    set_default_context,
)
from .operators import (
    csc_spmm,
    csc_spmm_cost,
    matmul,
    matmul_cost,
    resolve_context,
    sddmm,
    sddmm_batched,
    sddmm_batched_cost,
    sddmm_cost,
    sparse_softmax,
    sparse_softmax_batched,
    sparse_softmax_batched_cost,
    sparse_softmax_cost,
    spmm,
    spmm_batched,
    spmm_batched_cost,
    spmm_cost,
)
from ..core.repair import TopologyDelta
from .plans import PlanCache, matrix_fingerprint, topology_delta
from .store import PLAN_STORE_VERSION, PlanStore, StoreStats
from .registry import (
    KernelImpl,
    available,
    exact_backends,
    get_impl,
    register,
)

__all__ = [
    "spmm",
    "spmm_cost",
    "spmm_batched",
    "spmm_batched_cost",
    "sddmm",
    "sddmm_cost",
    "sddmm_batched",
    "sddmm_batched_cost",
    "sparse_softmax",
    "sparse_softmax_cost",
    "sparse_softmax_batched",
    "sparse_softmax_batched_cost",
    "csc_spmm",
    "csc_spmm_cost",
    "matmul",
    "matmul_cost",
    "ExecutionContext",
    "Telemetry",
    "OpStats",
    "TELEMETRY_SCHEMA",
    "default_context",
    "reset_default_contexts",
    "set_default_context",
    "resolve_context",
    "PlanCache",
    "matrix_fingerprint",
    "topology_delta",
    "TopologyDelta",
    "PlanStore",
    "StoreStats",
    "PLAN_STORE_VERSION",
    "KernelImpl",
    "register",
    "get_impl",
    "available",
    "exact_backends",
]
