"""Kernel registry: (op, backend) -> implementation.

Every sparse operator backend — the paper's Sputnik kernels and the
baselines it compares against — registers here under a string name, so any
call site can swap backends without changing imports::

    ops.spmm(a, b, V100)                      # sputnik (default)
    ops.spmm(a, b, V100, backend="cusparse")  # same call, cuSPARSE model

An implementation exposes up to two callables:

- ``run(context, ...)`` — exact numerics plus simulated cost
  (:class:`~repro.core.types.KernelResult`);
- ``cost(context, ...)`` — simulated cost only
  (:class:`~repro.gpu.executor.ExecutionResult`), the path benchmarks use
  to sweep thousands of problems without paying for numpy matmuls.

Both receive the :class:`~repro.ops.context.ExecutionContext` first, so
plan-capable backends (Sputnik) reuse cached plans and cost-only baselines
cache their launch costing per topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..baselines import aspt, cusparse
from ..baselines.merge_spmm import merge_spmm
from ..baselines.merge_spmm import spmm_launch as merge_spmm_launch
from ..core.csc_spmm import execute_spmm_csc
from ..core.sddmm import execute_sddmm, execute_sddmm_batched
from ..core.sparse_softmax import (
    execute_sparse_softmax,
    execute_sparse_softmax_batched,
)
from ..core.spmm import execute_spmm, execute_spmm_batched
from ..core.types import KernelResult
from ..gpu.executor import ExecutionResult, execute
from .plans import matrix_fingerprint


@dataclass(frozen=True)
class KernelImpl:
    """One registered backend for one operator."""

    op: str
    backend: str
    description: str
    run: Callable[..., KernelResult] | None = None
    cost: Callable[..., ExecutionResult] | None = None
    #: Whether this backend's numerics are bitwise-exact w.r.t. the op's
    #: reference computation. Exact backends are interchangeable inside a
    #: fallback chain with no numeric drift; inexact ones (e.g. the dense
    #: densified-GEMM fallback) complete the op but may differ in low bits.
    exact: bool = True


_REGISTRY: dict[tuple[str, str], KernelImpl] = {}


def register(impl: KernelImpl) -> KernelImpl:
    """Add (or replace) a backend implementation."""
    _REGISTRY[(impl.op, impl.backend)] = impl
    return impl


def get_impl(op: str, backend: str) -> KernelImpl:
    impl = _REGISTRY.get((op, backend))
    if impl is None:
        backends = available(op)
        if not backends:
            raise KeyError(f"unknown operator {op!r}")
        raise KeyError(
            f"operator {op!r} has no backend {backend!r}; "
            f"available: {sorted(backends)}"
        )
    return impl


def available(op: str | None = None) -> dict[str, str]:
    """Backends for one op (or ``op/backend`` for all ops) -> description."""
    if op is not None:
        return {
            b: impl.description
            for (o, b), impl in sorted(_REGISTRY.items())
            if o == op
        }
    return {
        f"{o}/{b}": impl.description for (o, b), impl in sorted(_REGISTRY.items())
    }


def exact_backends(op: str) -> set[str]:
    """Backends of ``op`` whose numerics are mutually bitwise-exact."""
    return {b for (o, b), impl in _REGISTRY.items() if o == op and impl.exact}


def _reject_config(backend: str, config: Any) -> None:
    if config is not None:
        raise ValueError(
            f"backend {backend!r} does not take a Sputnik kernel config"
        )


def _batch_columns(b: np.ndarray) -> int:
    b = np.asarray(b)
    if b.ndim != 2:
        raise ValueError(f"dense operand must be 2-D, got shape {b.shape}")
    return b.shape[1]


# ----------------------------------------------------------------------
# SpMM backends
# ----------------------------------------------------------------------
def _sputnik_spmm_run(ctx, a, b, config, selector):
    plan = ctx.spmm_plan(a, _batch_columns(b), config, selector)
    return execute_spmm(plan, a, b)


def _sputnik_spmm_cost(ctx, a, n, config, selector):
    return ctx.spmm_plan(a, n, config, selector).execution


def _cusparse_spmm_run(ctx, a, b, config, selector):
    _reject_config("cusparse", config)
    precision = "mixed" if a.values.dtype == np.float16 else "fp32"
    result = cusparse.cusparse_spmm(a, b, ctx.device, precision)
    ctx.telemetry.record_cache("spmm", "cusparse", False)
    return result


def _cusparse_spmm_cost(ctx, a, n, config, selector, precision="fp32"):
    _reject_config("cusparse", config)
    key = ("spmm", "cusparse", matrix_fingerprint(a), n, precision)
    return ctx.cost(
        key,
        lambda: execute(
            cusparse.spmm_launch(a, n, ctx.device, precision), ctx.device
        ),
    )


def _merge_spmm_run(ctx, a, b, config, selector):
    _reject_config("merge", config)
    result = merge_spmm(a, b, ctx.device)
    ctx.telemetry.record_cache("spmm", "merge", False)
    return result


def _merge_spmm_cost(ctx, a, n, config, selector):
    _reject_config("merge", config)
    key = ("spmm", "merge", matrix_fingerprint(a), n)
    return ctx.cost(
        key, lambda: execute(merge_spmm_launch(a, n, ctx.device), ctx.device)
    )


def _aspt_spmm_run(ctx, a, b, config, selector):
    _reject_config("aspt", config)
    result = aspt.aspt_spmm(a, b, ctx.device)
    ctx.telemetry.record_cache("spmm", "aspt", False)
    return result


def _aspt_spmm_cost(ctx, a, n, config, selector):
    _reject_config("aspt", config)
    key = ("spmm", "aspt", matrix_fingerprint(a), n)
    return ctx.cost(
        key,
        lambda: execute(
            aspt._panel_launch(a, n, ctx.device, "aspt_spmm", 2.0 * a.nnz * n),
            ctx.device,
        ),
    )


def _dense_spmm_run(ctx, a, b, config, selector):
    """The dense-GEMM equivalent: cuBLAS on the densified operand."""
    _reject_config("dense", config)
    b = np.asarray(b)
    n = _batch_columns(b)
    if b.shape[0] != a.n_cols:
        raise ValueError(f"B shape {b.shape} incompatible with A {a.shape}")
    execution = ctx.gemm_execution(
        a.n_rows, n, a.n_cols, a.value_bytes, op="spmm", backend="dense"
    )
    out = (a.to_dense().astype(np.float32) @ b.astype(np.float32)).astype(
        a.values.dtype
    )
    return KernelResult(output=out, execution=execution)


def _dense_spmm_cost(ctx, a, n, config, selector):
    _reject_config("dense", config)
    return ctx.gemm_execution(
        a.n_rows, n, a.n_cols, a.value_bytes, op="spmm", backend="dense"
    )


# ----------------------------------------------------------------------
# Batched backends: one shared topology, stacked operands, one launch
# ----------------------------------------------------------------------
def _batched_stack(b_stack: np.ndarray) -> np.ndarray:
    b_stack = np.asarray(b_stack)
    if b_stack.ndim != 3:
        raise ValueError(
            f"batched dense operand must be 3-D (H, ...), got {b_stack.shape}"
        )
    return b_stack


def _sputnik_spmm_batched_run(ctx, a, b_stack, config, selector, values=None):
    b_stack = _batched_stack(b_stack)
    plan = ctx.spmm_batched_plan(
        a, b_stack.shape[2], b_stack.shape[0], config, selector
    )
    return execute_spmm_batched(plan, a, b_stack, values)


def _sputnik_spmm_batched_cost(ctx, a, n, h, config, selector):
    return ctx.spmm_batched_plan(a, n, h, config, selector).execution


def _dense_spmm_batched_run(ctx, a, b_stack, config, selector, values=None):
    """Densified batched GEMM fallback: one strided-batched cuBLAS call."""
    _reject_config("dense", config)
    b_stack = _batched_stack(b_stack)
    h, k, n = b_stack.shape
    if k != a.n_cols:
        raise ValueError(
            f"B stack shape {b_stack.shape} incompatible with A {a.shape}"
        )
    execution = ctx.gemm_execution(
        h * a.n_rows, n, a.n_cols, a.value_bytes,
        op="spmm_batched", backend="dense",
    )
    if values is None:
        dense = a.to_dense().astype(np.float32)
        out = np.einsum(
            "mk,hkn->hmn", dense, b_stack.astype(np.float32)
        ).astype(a.values.dtype)
    else:
        values = np.asarray(values)
        row_ids = np.repeat(np.arange(a.n_rows), a.row_lengths)
        dense_stack = np.zeros((h, a.n_rows, a.n_cols), dtype=np.float32)
        dense_stack[:, row_ids, a.column_indices] = values.astype(np.float32)
        out = np.einsum(
            "hmk,hkn->hmn", dense_stack, b_stack.astype(np.float32)
        ).astype(values.dtype)
    return KernelResult(output=out, execution=execution)


def _dense_spmm_batched_cost(ctx, a, n, h, config, selector):
    _reject_config("dense", config)
    return ctx.gemm_execution(
        h * a.n_rows, n, a.n_cols, a.value_bytes,
        op="spmm_batched", backend="dense",
    )


def _sputnik_sddmm_batched_run(ctx, lhs_stack, rhs_stack, mask, config, selector):
    lhs_stack = _batched_stack(lhs_stack)
    plan = ctx.sddmm_batched_plan(
        mask, lhs_stack.shape[2], lhs_stack.shape[0], config, selector
    )
    return execute_sddmm_batched(plan, lhs_stack, rhs_stack, mask)


def _sputnik_sddmm_batched_cost(ctx, mask, k, h, config, selector):
    return ctx.sddmm_batched_plan(mask, k, h, config, selector).execution


def _sputnik_softmax_batched_run(ctx, a, values, scale):
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError(
            f"batched softmax values must be (nnz, H), got {values.shape}"
        )
    plan = ctx.sparse_softmax_batched_plan(a, values.shape[1])
    return execute_sparse_softmax_batched(plan, a, values, scale=scale)


def _sputnik_softmax_batched_cost(ctx, a, h):
    return ctx.sparse_softmax_batched_plan(a, h).execution


# ----------------------------------------------------------------------
# SDDMM backends
# ----------------------------------------------------------------------
def _sputnik_sddmm_run(ctx, lhs, rhs, mask, config, selector):
    k = np.asarray(lhs).shape[1]
    plan = ctx.sddmm_plan(mask, k, config, selector)
    return execute_sddmm(plan, lhs, rhs, mask)


def _sputnik_sddmm_cost(ctx, mask, k, config, selector):
    return ctx.sddmm_plan(mask, k, config, selector).execution


def _cusparse_sddmm_run(ctx, lhs, rhs, mask, config, selector):
    _reject_config("cusparse", config)
    result = cusparse.cusparse_sddmm(lhs, rhs, mask, ctx.device)
    ctx.telemetry.record_cache("sddmm", "cusparse", False)
    return result


def _cusparse_sddmm_cost(ctx, mask, k, config, selector):
    _reject_config("cusparse", config)
    key = ("sddmm", "cusparse", matrix_fingerprint(mask), k)
    return ctx.cost(
        key, lambda: cusparse.sddmm_execution(mask, k, ctx.device)
    )


def _aspt_sddmm_run(ctx, lhs, rhs, mask, config, selector):
    _reject_config("aspt", config)
    result = aspt.aspt_sddmm(lhs, rhs, mask, ctx.device)
    ctx.telemetry.record_cache("sddmm", "aspt", False)
    return result


def _aspt_sddmm_cost(ctx, mask, k, config, selector):
    _reject_config("aspt", config)
    key = ("sddmm", "aspt", matrix_fingerprint(mask), k)
    return ctx.cost(
        key,
        lambda: execute(
            aspt._panel_launch(
                mask, k, ctx.device, "aspt_sddmm", 2.0 * mask.nnz * k,
                mode="sddmm",
            ),
            ctx.device,
        ),
    )


# ----------------------------------------------------------------------
# Sparse softmax / CSC SpMM / dense matmul
# ----------------------------------------------------------------------
def _sputnik_softmax_run(ctx, a, scale):
    plan = ctx.sparse_softmax_plan(a)
    return execute_sparse_softmax(plan, a, scale=scale)


def _sputnik_softmax_cost(ctx, a):
    return ctx.sparse_softmax_plan(a).execution


def _sputnik_csc_spmm_run(ctx, b, a, config):
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[1] != a.shape[0]:
        raise ValueError(
            f"B shape {b.shape} incompatible with A {a.shape} for B @ A"
        )
    plan = ctx.csc_spmm_plan(a, b.shape[0], config)
    return execute_spmm_csc(plan, b, a)


def _sputnik_csc_spmm_cost(ctx, a, n, config):
    return ctx.csc_spmm_plan(a, n, config).execution


def _cublas_matmul_run(ctx, a, b):
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible GEMM shapes {a.shape} @ {b.shape}")
    execution = ctx.gemm_execution(
        a.shape[0], b.shape[1], a.shape[1], a.dtype.itemsize
    )
    out = (a.astype(np.float32) @ b.astype(np.float32)).astype(a.dtype)
    return KernelResult(output=out, execution=execution)


def _cublas_matmul_cost(ctx, m, n, k, element_bytes):
    return ctx.gemm_execution(m, n, k, element_bytes)


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------
register(KernelImpl(
    "spmm", "sputnik", "The paper's 1-D tiled SpMM (Section V)",
    run=_sputnik_spmm_run, cost=_sputnik_spmm_cost,
))
register(KernelImpl(
    "spmm", "cusparse", "cusparseSpMM model (generic CSR kernel)",
    run=_cusparse_spmm_run, cost=_cusparse_spmm_cost,
))
register(KernelImpl(
    "spmm", "merge", "MergeSpmm row-splitting model (Yang et al. 2018)",
    run=_merge_spmm_run, cost=_merge_spmm_cost,
))
register(KernelImpl(
    "spmm", "aspt", "ASpT adaptive-tiling model (Hong et al. 2019)",
    run=_aspt_spmm_run, cost=_aspt_spmm_cost,
))
register(KernelImpl(
    "spmm", "dense", "cuBLAS dense GEMM on the densified operand",
    run=_dense_spmm_run, cost=_dense_spmm_cost, exact=False,
))
register(KernelImpl(
    "spmm_batched", "sputnik",
    "Batched shared-topology SpMM: one plan, one z-scaled launch",
    run=_sputnik_spmm_batched_run, cost=_sputnik_spmm_batched_cost,
))
register(KernelImpl(
    "spmm_batched", "dense",
    "Strided-batched cuBLAS GEMM on the densified operand stack",
    run=_dense_spmm_batched_run, cost=_dense_spmm_batched_cost, exact=False,
))
register(KernelImpl(
    "sddmm", "sputnik", "The paper's strip-mined SDDMM (Section VI)",
    run=_sputnik_sddmm_run, cost=_sputnik_sddmm_cost,
))
register(KernelImpl(
    "sddmm", "cusparse", "cusparseConstrainedGeMM + explicit transpose",
    run=_cusparse_sddmm_run, cost=_cusparse_sddmm_cost,
))
register(KernelImpl(
    "sddmm", "aspt", "ASpT adaptive-tiling SDDMM model",
    run=_aspt_sddmm_run, cost=_aspt_sddmm_cost,
))
register(KernelImpl(
    "sddmm_batched", "sputnik",
    "Batched shared-mask SDDMM: one plan, one z-scaled launch",
    run=_sputnik_sddmm_batched_run, cost=_sputnik_sddmm_batched_cost,
))
register(KernelImpl(
    "sparse_softmax", "sputnik", "Row softmax over CSR values (Section VII-C)",
    run=_sputnik_softmax_run, cost=_sputnik_softmax_cost,
))
register(KernelImpl(
    "sparse_softmax_batched", "sputnik",
    "Batched row softmax over a (nnz, H) value matrix, one launch",
    run=_sputnik_softmax_batched_run, cost=_sputnik_softmax_batched_cost,
))
register(KernelImpl(
    "csc_spmm", "sputnik", "B @ A with CSC A via the transposed CSR problem",
    run=_sputnik_csc_spmm_run, cost=_sputnik_csc_spmm_cost,
))
register(KernelImpl(
    "matmul", "cublas", "Dense GEMM (tile/split-K dispatch model)",
    run=_cublas_matmul_run, cost=_cublas_matmul_cost,
))
