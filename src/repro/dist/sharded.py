"""Sharded SpMM/SDDMM execution over a :class:`DeviceGroup`.

Each device dispatches its shard through its *own*
:class:`~repro.ops.context.ExecutionContext` — so plan caching, config
selection, HBM accounting, eviction ladders, and tracing all behave
exactly as on one device, just per shard. The group then prices the
collectives the sharding implies on the interconnect and combines:

``runtime = max_d(compute_d) + exposed_comm``

where input collectives (operand distribution) overlap with compute —
devices stream their first chunks while the gather is in flight — so only
``max(0, input_comm - max_compute)`` is exposed, while output collectives
(gathering/reducing results) depend on the compute and are fully exposed.
The interconnect-bound fraction of a point is ``exposed_comm / runtime``:
the scaling-killer the multi-GPU benchmark plots per K.

``k == 1`` short-circuits to plain single-device dispatch on the group's
only context — zero collectives, zero extra arithmetic — so its cost is
bit-identical to the unsharded path (asserted in bench_multi_gpu).

Numerics: row sharding never splits a row, so per-row accumulation order
is untouched and the stitched output is bit-identical to single-device
output. 2-D sharding splits rows across column tiles and sums partial
products, which changes the accumulation order (allclose, not equal) —
the cost model is the point there, the numerics path exists for
validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.types import KernelResult
from ..gpu.executor import ExecutionResult
from ..gpu.interconnect import CollectiveCost, all_gather, reduce_scatter
from ..obs.tracing import NO_SPAN
from ..sparse.csr import CSRMatrix
from .group import DeviceGroup
from .partition import ShardPlan


@dataclass
class ShardedExecution:
    """Simulated outcome of one sharded operator across a device group."""

    name: str
    k: int
    strategy: str
    per_device: list[ExecutionResult]
    collectives: list[CollectiveCost] = field(default_factory=list)
    input_comm_s: float = 0.0
    output_comm_s: float = 0.0
    plan_stats: dict = field(default_factory=dict)

    @property
    def max_compute_s(self) -> float:
        return max((r.runtime_s for r in self.per_device), default=0.0)

    @property
    def mean_compute_s(self) -> float:
        if not self.per_device:
            return 0.0
        return sum(r.runtime_s for r in self.per_device) / len(self.per_device)

    @property
    def compute_imbalance(self) -> float:
        """max/mean device compute time (1.0 = perfectly balanced)."""
        mean = self.mean_compute_s
        return self.max_compute_s / mean if mean > 0 else 1.0

    @property
    def exposed_comm_s(self) -> float:
        """Comm time on the critical path: input collectives overlap with
        compute, output collectives are serialized after it."""
        hidden_budget = self.max_compute_s
        return max(0.0, self.input_comm_s - hidden_budget) + self.output_comm_s

    @property
    def runtime_s(self) -> float:
        return self.max_compute_s + self.exposed_comm_s

    @property
    def interconnect_bound_fraction(self) -> float:
        total = self.runtime_s
        return self.exposed_comm_s / total if total > 0 else 0.0

    @property
    def flops(self) -> float:
        return sum(r.flops for r in self.per_device)

    @property
    def throughput_flops(self) -> float:
        """Effective FLOP/s: total useful work over the sharded runtime."""
        return self.flops / self.runtime_s if self.runtime_s > 0 else 0.0

    @property
    def comm_bytes(self) -> int:
        return sum(c.nbytes for c in self.collectives)

    def summary_execution(self) -> ExecutionResult:
        """An :class:`ExecutionResult` view for single-device consumers
        (``phases=None``: overlap means per-phase times cannot sum to the
        group runtime)."""
        per = self.per_device
        return ExecutionResult(
            name=self.name,
            runtime_s=self.runtime_s,
            flops=self.flops,
            dram_bytes=sum(r.dram_bytes for r in per),
            l2_bytes=sum(r.l2_bytes for r in per),
            smem_bytes=sum(r.smem_bytes for r in per),
            l1_bytes=sum(r.l1_bytes for r in per),
            n_blocks=sum(r.n_blocks for r in per),
            occupancy=per[0].occupancy if per else None,
            children=list(per),
        )

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "k": self.k,
            "strategy": self.strategy,
            "runtime_s": self.runtime_s,
            "max_compute_s": self.max_compute_s,
            "mean_compute_s": self.mean_compute_s,
            "compute_imbalance": self.compute_imbalance,
            "input_comm_s": self.input_comm_s,
            "output_comm_s": self.output_comm_s,
            "exposed_comm_s": self.exposed_comm_s,
            "interconnect_bound_fraction": self.interconnect_bound_fraction,
            "flops": self.flops,
            "throughput_flops": self.throughput_flops,
            "comm_bytes": self.comm_bytes,
            "collectives": [c.as_dict() for c in self.collectives],
            "plan_stats": dict(self.plan_stats),
        }


def _dist_span(group: DeviceGroup, name: str):
    tracer = group.tracer
    if tracer is None:
        return NO_SPAN
    return tracer.span(
        name, category="dist", k=group.k,
        interconnect=group.interconnect.kind,
    )


def _finish(
    name: str,
    group: DeviceGroup,
    plan: ShardPlan,
    per_device: list[ExecutionResult],
    input_collectives: list[CollectiveCost],
    output_collectives: list[CollectiveCost],
    span,
) -> ShardedExecution:
    collectives = [
        c for c in input_collectives + output_collectives if c.steps > 0
    ]
    for cost in collectives:
        group.charge_collective(cost, span)
    sharded = ShardedExecution(
        name=name,
        k=group.k,
        strategy=plan.strategy,
        per_device=per_device,
        collectives=collectives,
        input_comm_s=sum(c.seconds for c in input_collectives),
        output_comm_s=sum(c.seconds for c in output_collectives),
        plan_stats=dict(plan.stats),
    )
    span.set(
        strategy=sharded.strategy,
        compute_imbalance=sharded.compute_imbalance,
        exposed_comm_s=sharded.exposed_comm_s,
        interconnect_bound=sharded.interconnect_bound_fraction,
    )
    # The wrapper span's simulated time is the *extra* critical-path time
    # the group adds beyond the per-device op spans already accounted.
    span.add_sim(sharded.exposed_comm_s)
    return sharded


def _spmm_collectives(
    group: DeviceGroup,
    plan: ShardPlan,
    a: CSRMatrix,
    n: int,
    *,
    replicate_dense: bool,
    gather_output: bool,
) -> tuple[list[CollectiveCost], list[CollectiveCost]]:
    spec = group.interconnect
    vb = a.values.dtype.itemsize
    inputs: list[CollectiveCost] = []
    outputs: list[CollectiveCost] = []
    if not replicate_dense:
        # The dense operand starts sharded 1/k per device and every device
        # (row strategy) or every row-group (2-D) needs its slice resident.
        inputs.append(all_gather(spec, a.shape[1] * n * vb, group.k))
    if plan.strategy == "2d":
        kc = plan.grid[1]
        if kc > 1:
            # Partial products reduce within each row-group's kc devices;
            # the groups run concurrently, so price the widest one.
            widest = max(len(rows) for rows in plan.device_rows)
            outputs.append(reduce_scatter(spec, widest * n * vb, kc))
    if gather_output:
        outputs.append(all_gather(spec, a.shape[0] * n * vb, group.k))
    return inputs, outputs


def sharded_spmm_cost(
    a: CSRMatrix,
    n: int,
    group: DeviceGroup,
    *,
    strategy: str = "row",
    backend: str = "sputnik",
    selector: str = "heuristic",
    replicate_dense: bool = False,
    gather_output: bool = True,
) -> ShardedExecution:
    """Simulated sharded-SpMM cost: per-device compute + collectives."""
    from .. import ops

    if group.k == 1:
        result = ops.spmm_cost(
            a, n, context=group.lead, backend=backend, selector=selector
        )
        return ShardedExecution(
            name="spmm_sharded", k=1, strategy="row", per_device=[result]
        )
    with _dist_span(group, "spmm_sharded") as span:
        plan, subs = group.shards(a, strategy)
        per_device = [
            ops.spmm_cost(
                sub, n, context=ctx, backend=backend, selector=selector
            )
            for ctx, sub in zip(group.contexts, subs)
        ]
        inputs, outputs = _spmm_collectives(
            group, plan, a, n,
            replicate_dense=replicate_dense, gather_output=gather_output,
        )
        return _finish(
            "spmm_sharded", group, plan, per_device, inputs, outputs, span
        )


def sharded_spmm(
    a: CSRMatrix,
    b: np.ndarray,
    group: DeviceGroup,
    *,
    strategy: str = "row",
    backend: str = "sputnik",
    selector: str = "heuristic",
    replicate_dense: bool = False,
    gather_output: bool = True,
) -> KernelResult:
    """Sharded ``C = A @ B``: exact numerics + sharded simulated cost.

    Row sharding stitches per-device outputs back in row order
    (bit-identical to single-device numerics); 2-D sharding sums partial
    products per row-group (allclose). The returned
    :class:`KernelResult`'s ``execution`` is the group summary and its
    ``sharded`` attribute carries the full :class:`ShardedExecution`.
    """
    from .. import ops

    if group.k == 1:
        return ops.spmm(
            a, b, context=group.lead, backend=backend, selector=selector
        )
    b = np.asarray(b)
    with _dist_span(group, "spmm_sharded") as span:
        plan, subs = group.shards(a, strategy)
        per_device: list[ExecutionResult] = []
        out: np.ndarray | None = None
        kc = plan.grid[1]
        for d, (ctx, sub) in enumerate(zip(group.contexts, subs)):
            rows, (lo, hi) = plan.device_tile(d)
            result = ops.spmm(
                sub, b[lo:hi], context=ctx, backend=backend, selector=selector
            )
            per_device.append(result.execution)
            if out is None:
                out = np.zeros(
                    (a.shape[0], b.shape[1]), dtype=result.output.dtype
                )
            if kc == 1:
                out[rows] = result.output
            else:
                out[rows] += result.output
        inputs, outputs = _spmm_collectives(
            group, plan, a, b.shape[1],
            replicate_dense=replicate_dense, gather_output=gather_output,
        )
        sharded = _finish(
            "spmm_sharded", group, plan, per_device, inputs, outputs, span
        )
    result = KernelResult(output=out, execution=sharded.summary_execution())
    result.sharded = sharded
    return result


def _sddmm_collectives(
    group: DeviceGroup,
    plan: ShardPlan,
    mask: CSRMatrix,
    k_dim: int,
    *,
    replicate_dense: bool,
    gather_output: bool,
) -> tuple[list[CollectiveCost], list[CollectiveCost]]:
    spec = group.interconnect
    vb = mask.values.dtype.itemsize
    inputs: list[CollectiveCost] = []
    outputs: list[CollectiveCost] = []
    if not replicate_dense:
        # lhs rows travel with the mask rows (already local); rhs must be
        # resident wherever a tile touches its columns.
        inputs.append(all_gather(spec, mask.shape[1] * k_dim * vb, group.k))
    if gather_output:
        # Every nonzero is produced exactly once (even in 2-D tiles: the
        # full k_dim dot product is local), so the gather is nnz values.
        outputs.append(all_gather(spec, mask.nnz * vb, group.k))
    return inputs, outputs


def sharded_sddmm_cost(
    mask: CSRMatrix,
    k_dim: int,
    group: DeviceGroup,
    *,
    strategy: str = "row",
    backend: str = "sputnik",
    selector: str = "heuristic",
    replicate_dense: bool = False,
    gather_output: bool = True,
) -> ShardedExecution:
    """Simulated sharded-SDDMM cost (``k_dim`` = dot-product depth)."""
    from .. import ops

    if group.k == 1:
        result = ops.sddmm_cost(
            mask, k_dim, context=group.lead, backend=backend,
            selector=selector,
        )
        return ShardedExecution(
            name="sddmm_sharded", k=1, strategy="row", per_device=[result]
        )
    with _dist_span(group, "sddmm_sharded") as span:
        plan, subs = group.shards(mask, strategy)
        per_device = [
            ops.sddmm_cost(
                sub, k_dim, context=ctx, backend=backend, selector=selector
            )
            for ctx, sub in zip(group.contexts, subs)
        ]
        inputs, outputs = _sddmm_collectives(
            group, plan, mask, k_dim,
            replicate_dense=replicate_dense, gather_output=gather_output,
        )
        return _finish(
            "sddmm_sharded", group, plan, per_device, inputs, outputs, span
        )


def sharded_sddmm(
    lhs: np.ndarray,
    rhs: np.ndarray,
    mask: CSRMatrix,
    group: DeviceGroup,
    *,
    backend: str = "sputnik",
    selector: str = "heuristic",
    replicate_dense: bool = False,
    gather_output: bool = True,
) -> KernelResult:
    """Sharded ``(lhs @ rhs^T) ∘ mask`` numerics + cost (row strategy only:
    2-D would tile the mask by columns, which is a cost-model exercise —
    use :func:`sharded_sddmm_cost` for that)."""
    from .. import ops

    if group.k == 1:
        return ops.sddmm(
            lhs, rhs, mask, context=group.lead, backend=backend,
            selector=selector,
        )
    with _dist_span(group, "sddmm_sharded") as span:
        plan, subs = group.shards(mask, "row")
        per_device: list[ExecutionResult] = []
        values = np.empty(mask.nnz, dtype=mask.values.dtype)
        for d, (ctx, sub) in enumerate(zip(group.contexts, subs)):
            rows, _ = plan.device_tile(d)
            result = ops.sddmm(
                lhs[rows], rhs, sub, context=ctx, backend=backend,
                selector=selector,
            )
            per_device.append(result.execution)
            # Scatter the shard's values back to the global nnz layout
            # (same gather arithmetic as CSRMatrix.take_rows).
            lengths = mask.row_lengths[rows]
            sub_offsets = np.zeros(rows.size + 1, dtype=np.int64)
            np.cumsum(lengths, out=sub_offsets[1:])
            dest = np.arange(int(sub_offsets[-1]), dtype=np.int64)
            src = dest - np.repeat(sub_offsets[:-1], lengths) + np.repeat(
                mask.row_offsets[rows], lengths
            )
            values[src] = result.output.values
        inputs, outputs = _sddmm_collectives(
            group, plan, mask, lhs.shape[1],
            replicate_dense=replicate_dense, gather_output=gather_output,
        )
        sharded = _finish(
            "sddmm_sharded", group, plan, per_device, inputs, outputs, span
        )
    result = KernelResult(
        output=mask.with_values(values),
        execution=sharded.summary_execution(),
    )
    result.sharded = sharded
    return result
