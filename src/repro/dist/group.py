"""A group of K simulated devices with a shared interconnect.

:class:`DeviceGroup` is the sharded analogue of a single
:class:`~repro.ops.context.ExecutionContext`: K contexts over the same
:class:`~repro.gpu.device.DeviceSpec`, each with its **own**
:class:`~repro.gpu.allocator.DeviceAllocator` (the ROADMAP item-4
follow-on — per-device HBM caps, eviction, and OOM ladders all apply
shard-locally; ``REPRO_HBM_CAP`` reads as a *per-device* cap), plus one
:class:`~repro.gpu.interconnect.InterconnectSpec` pricing the collectives
between them.

The group also owns shard planning: :meth:`shard_plan` resolves a
:class:`~repro.dist.partition.ShardPlan` for a topology through the lead
context's two-tier plan cache (memory LRU -> PlanStore, version 5
envelopes), and :meth:`shards` materializes the per-device sub-matrices,
memoized LRU-style because slicing a big CSR is real host work.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..gpu.device import V100, DeviceSpec
from ..gpu.executor import ExecutionResult, PhaseTimes
from ..gpu.interconnect import (
    NVLINK2,
    CollectiveCost,
    InterconnectSpec,
    get_interconnect,
)
from ..core.repair import TopologyDelta
from ..ops.context import DEFAULT_MAX_PLANS, ExecutionContext
from ..ops.plans import matrix_fingerprint, topology_delta
from ..sparse.csr import CSRMatrix
from .partition import (
    DEFAULT_BUNDLE_SIZE,
    ShardPlan,
    plan_shards,
    repair_shard_plan,
)

#: Per-group LRU capacity for materialized sub-matrix shards.
MAX_SHARD_SETS = 16


def collective_execution(
    cost: CollectiveCost, spec: InterconnectSpec
) -> ExecutionResult:
    """Wrap a priced collective as an :class:`ExecutionResult` so comm time
    flows through the same telemetry/phase plumbing as kernel launches
    (all of it attributed to the overhead phase — link time, not SM
    time)."""
    return ExecutionResult(
        name=f"{cost.op}_{spec.kind}_k{cost.k}",
        runtime_s=cost.seconds,
        flops=0.0,
        dram_bytes=float(cost.nbytes),
        l2_bytes=0.0,
        smem_bytes=0.0,
        n_blocks=0,
        occupancy=None,
        phases=PhaseTimes(overhead_s=cost.seconds),
    )


class DeviceGroup:
    """``k`` simulated devices + one interconnect, dispatch-ready.

    ``memory`` follows the ``ExecutionContext`` convention (``None`` =
    honour ``REPRO_HBM_CAP`` / device DRAM, int = explicit per-device cap
    in bytes, ``False`` = accounting off) and is applied independently to
    every device: each context builds its own allocator, never shared.
    """

    def __init__(
        self,
        k: int,
        device: DeviceSpec = V100,
        interconnect: InterconnectSpec | str = NVLINK2,
        *,
        memory=None,
        store=None,
        tracer=None,
        max_plans: int = DEFAULT_MAX_PLANS,
    ) -> None:
        if k < 1:
            raise ValueError("a device group needs at least one device")
        self.k = k
        self.device = device
        self.interconnect = get_interconnect(interconnect)
        self.contexts = [
            ExecutionContext(
                device,
                max_plans=max_plans,
                store=store,
                tracer=tracer,
                memory=memory,
                device_id=i,
            )
            for i in range(k)
        ]
        self._shard_sets: OrderedDict[tuple, tuple] = OrderedDict()

    @property
    def lead(self) -> ExecutionContext:
        """Device 0's context: hosts the ShardPlan cache and comm telemetry."""
        return self.contexts[0]

    @property
    def tracer(self):
        return self.lead.tracer

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeviceGroup(k={self.k}, device={self.device.name!r}, "
            f"interconnect={self.interconnect.kind!r})"
        )

    def __len__(self) -> int:
        return self.k

    def __iter__(self):
        return iter(self.contexts)

    # ------------------------------------------------------------------
    # Shard planning (two-tier cached) and shard materialization
    # ------------------------------------------------------------------
    def shard_plan(
        self,
        a: CSRMatrix,
        strategy: str = "row",
        bundle_size: int = DEFAULT_BUNDLE_SIZE,
    ) -> ShardPlan:
        """The (cached) :class:`ShardPlan` for this topology on this group.

        When a :class:`~repro.core.repair.TopologyDelta` is registered for
        this topology (see :meth:`register_topology_delta`), a cache miss
        repairs the parent's plan — merged swizzle + LPT rerun,
        bit-identical to a cold plan — instead of re-sorting from scratch.
        """
        fp = matrix_fingerprint(a)
        key = ("shard_plan", fp, self.k, strategy, bundle_size)
        return self.lead._cached(
            "shard_plan",
            "dist",
            key,
            lambda: plan_shards(a, self.k, strategy, bundle_size),
            repair=self.lead._repairable_plan(
                fp,
                lambda parent_fp: (
                    "shard_plan", parent_fp, self.k, strategy, bundle_size,
                ),
                lambda plan, delta: repair_shard_plan(plan, a, delta),
            ),
        )

    def shards(
        self,
        a: CSRMatrix,
        strategy: str = "row",
        bundle_size: int = DEFAULT_BUNDLE_SIZE,
    ) -> tuple[ShardPlan, list[CSRMatrix]]:
        """The plan plus the materialized per-device sub-matrices.

        For ``strategy="row"`` device ``d`` gets ``a.take_rows(rows_d)``
        at full width; for ``"2d"`` it gets the ``(rows_i, cols_j)`` tile.
        ``k == 1`` returns the original matrix untouched (no copy, no
        fingerprint churn) so single-device sharding is exactly the
        unsharded dispatch.
        """
        plan = self.shard_plan(a, strategy, bundle_size)
        if self.k == 1:
            return plan, [a]
        fp = matrix_fingerprint(a)
        key = (fp, self.k, plan.strategy, bundle_size)
        hit = self._shard_sets.get(key)
        if hit is not None and hit[2] is a.values:
            self._shard_sets.move_to_end(key)
            return plan, hit[1]
        # Miss — or a structural hit whose memoized sub-matrices hold a
        # *stale value buffer* (an optimizer step swapped ``a.values``
        # without touching the topology): re-slice either way. Shard
        # structure bytes are identical across a value update, so every
        # per-device plan still fingerprint-hits.
        subs = []
        for d in range(self.k):
            rows, (lo, hi) = plan.device_tile(d)
            sub = a.take_rows(rows)
            if (lo, hi) != (0, a.shape[1]):
                sub = sub.take_cols(lo, hi)
            subs.append(sub)
        if hit is None:
            self._register_shard_deltas(a, fp, plan, subs, bundle_size)
        self._shard_sets[key] = (plan, subs, a.values)
        while len(self._shard_sets) > MAX_SHARD_SETS:
            self._shard_sets.popitem(last=False)
        return plan, subs

    # ------------------------------------------------------------------
    # Dynamic sparsity: group-level topology deltas (DESIGN.md §17)
    # ------------------------------------------------------------------
    def register_topology_delta(self, delta: TopologyDelta) -> None:
        """Make the child topology's plans repairable group-wide.

        Registers on every device context: the lead repairs the
        :class:`ShardPlan` (and any full-matrix kernel plans it owns);
        per-device *sub*-deltas are derived lazily by :meth:`shards` when
        the re-balanced partition keeps a device's row set unchanged.
        """
        for ctx in self.contexts:
            ctx.register_topology_delta(delta)

    def invalidate_topology(self, fingerprint: str, op: str = "topology"):
        """Evict plans keyed on ``fingerprint`` from every device context
        (and the memoized shard sets derived from it). Returns the total
        number of in-memory entries evicted."""
        evicted = sum(
            ctx.invalidate_topology(fingerprint, op) for ctx in self.contexts
        )
        for key in [k for k in self._shard_sets if k[0] == fingerprint]:
            del self._shard_sets[key]
        return evicted

    def _register_shard_deltas(
        self,
        a: CSRMatrix,
        fp: str,
        plan: ShardPlan,
        subs: list[CSRMatrix],
        bundle_size: int,
    ) -> None:
        """Derive per-device sub-deltas from a registered group delta.

        Only devices whose row set survived the re-balance *unchanged* and
        that own a full-width tile get one: their old and new sub-matrices
        differ exactly at the edited rows that landed on them, so the
        device context can repair its SpMM/SDDMM plans locally. Devices
        with unchanged rows and *no* local edits need nothing (identical
        structure bytes → same fingerprint → pure cache hit); devices
        whose row set moved re-plan cold.
        """
        delta = self.lead.topology_delta_for(fp)
        if delta is None:
            return
        parent_key = (delta.parent, self.k, plan.strategy, bundle_size)
        parent_hit = self._shard_sets.get(parent_key)
        if parent_hit is None:
            return
        parent_plan, parent_subs = parent_hit[0], parent_hit[1]
        from ..reliability.errors import PlanRepairError

        for d in range(self.k):
            rows, (lo, hi) = plan.device_tile(d)
            rows_old, span_old = parent_plan.device_tile(d)
            if (lo, hi) != (0, a.shape[1]) or span_old != (lo, hi):
                continue  # column-sliced tiles: cold re-plan
            if rows.size == 0 or not np.array_equal(rows, rows_old):
                continue  # empty or moved row set: cold re-plan
            pos = np.searchsorted(rows, delta.rows)
            pos_c = np.minimum(pos, rows.size - 1)
            local = pos_c[rows[pos_c] == delta.rows]
            if local.size == 0:
                continue  # no edits landed here: pure fingerprint hit
            try:
                sub_delta = topology_delta(
                    parent_subs[d],
                    subs[d],
                    local,
                    values_preserved=delta.values_preserved,
                )
            except PlanRepairError:
                continue
            self.contexts[d].register_topology_delta(sub_delta)

    # ------------------------------------------------------------------
    # Communication + rollups
    # ------------------------------------------------------------------
    def charge_collective(self, cost: CollectiveCost, span=None) -> None:
        """Account one collective: lead-context telemetry (op = collective
        name, backend = interconnect kind) and an optional span event."""
        if cost.seconds == 0.0 and cost.steps == 0:
            return
        execution = collective_execution(cost, self.interconnect)
        self.lead.telemetry.record_launch(
            cost.op, self.interconnect.kind, execution
        )
        if span is not None:
            span.event("collective", **cost.as_dict())

    def telemetry_snapshot(self) -> dict:
        """Per-(op, backend) counters summed over every device context."""
        merged: dict = {}
        for ctx in self.contexts:
            for key, row in ctx.telemetry_snapshot().items():
                if key not in merged:
                    merged[key] = dict(row)
                else:
                    out = merged[key]
                    for field_name, value in row.items():
                        out[field_name] = out.get(field_name, 0) + value
        return merged

    def memory_snapshots(self) -> list[dict | None]:
        """Per-device allocator snapshots (``None`` = accounting off)."""
        return [ctx.memory_snapshot() for ctx in self.contexts]

    def emit_memory_spans(self) -> None:
        """One ``category="memory"`` span per device (device_id-stamped)."""
        for ctx in self.contexts:
            ctx.emit_memory_span()

    def flight_records(self, reason: str = "dump") -> list[dict]:
        """The merged postmortem window: every device's flight-recorder
        ring rendered as trace-schema records (one meta per device; span
        args are ``device_id``-stamped, so the report CLI's per-device
        rollup applies). Empty when recording is disabled."""
        records: list[dict] = []
        for ctx in self.contexts:
            if ctx.flight is not None:
                records.extend(ctx.flight.to_records(reason=reason))
        return records

    def dump_flight(self, path, reason: str = "dump"):
        """Write the merged per-device window as one JSONL artifact."""
        import json
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for record in self.flight_records(reason=reason):
                fh.write(json.dumps(record) + "\n")
        return path

    @property
    def metrics(self):
        """Lazily-built registry over *every* device context, with
        ``device_id``-labeled samples (see
        :func:`repro.obs.metrics.bind_group_metrics`)."""
        if getattr(self, "_metrics", None) is None:
            from ..obs.metrics import MetricsRegistry, bind_group_metrics

            self._metrics = bind_group_metrics(MetricsRegistry(), self)
        return self._metrics

    def metrics_snapshot(self) -> dict:
        """Snapshot of the group-bound metrics registry."""
        return self.metrics.snapshot()

    def attach_tracer(self, tracer) -> None:
        for ctx in self.contexts:
            ctx.attach_tracer(tracer)

    def attach_store(self, store) -> None:
        for ctx in self.contexts:
            ctx.attach_store(store)

    def reset_telemetry(self) -> None:
        for ctx in self.contexts:
            ctx.reset_telemetry()
