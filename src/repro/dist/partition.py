"""Cost-balanced work partitioning across simulated devices.

A row shard's cost is dominated by its nonzero count, not its row count —
power-law matrices (the pruned-transformer corpus) put most of the work in
a few heavy rows, so splitting rows evenly can leave one device with most
of the nonzeros. This module reuses the paper's row-swizzle machinery
(Section V-C) to balance *cost*:

1. :func:`~repro.core.swizzle.row_swizzle` orders rows by decreasing
   length;
2. :func:`~repro.core.swizzle.bundle_rows` groups the sorted order into
   bundles (locality: a bundle's rows have similar length and stay on one
   device);
3. bundles are assigned greedily, heaviest first, to the least-loaded
   device — the classic LPT schedule, whose max load provably stays within
   ``mean + max_bundle_weight`` of perfect balance (property-tested in
   tests/test_dist.py).

Everything is deterministic: stable sort, first-minimum tie-breaks, no RNG.

:class:`ShardPlan` captures one matrix's partition for ``k`` devices (row
or 2-D strategy) and is what :class:`~repro.dist.group.DeviceGroup` caches
through the two-tier plan cache (``PLAN_STORE_VERSION`` 5 envelopes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.repair import TopologyDelta
from ..core.swizzle import (
    bundle_rows,
    bundle_weights,
    merge_swizzle,
    row_swizzle,
)
from ..reliability.errors import PlanRepairError
from ..sparse.csr import CSRMatrix

#: Rows per assignment unit. Bundles keep neighbouring similar-length rows
#: on one device (the same locality argument as warp-level row bundling).
DEFAULT_BUNDLE_SIZE = 8

STRATEGIES = ("row", "2d")


def row_block_partition(n_rows: int, k: int) -> list[np.ndarray]:
    """Naive contiguous row blocks of near-equal *row count* (the
    comparison baseline the cost-balanced partitioner beats)."""
    if k < 1:
        raise ValueError("need at least one device")
    bounds = np.linspace(0, n_rows, k + 1).astype(np.int64)
    return [
        np.arange(bounds[i], bounds[i + 1], dtype=np.int64) for i in range(k)
    ]


def cost_balanced_partition(
    row_lengths: np.ndarray,
    k: int,
    bundle_size: int = DEFAULT_BUNDLE_SIZE,
    order: np.ndarray | None = None,
) -> list[np.ndarray]:
    """Assign rows to ``k`` devices so per-device nonzero totals balance.

    Returns ``k`` sorted row-index arrays (sorted for gather locality; the
    device-local kernel re-swizzles internally anyway). Deterministic for a
    given input: the sort is stable and ties go to the lowest device id.

    ``order`` is the decreasing-length row order when the caller already
    has it (e.g. a repaired swizzle from
    :func:`~repro.core.swizzle.merge_swizzle`); it must equal
    ``row_swizzle(row_lengths)``.
    """
    if k < 1:
        raise ValueError("need at least one device")
    lengths = np.asarray(row_lengths)
    if order is None:
        order = row_swizzle(lengths)
    bundles = bundle_rows(order, bundle_size)
    weights = bundle_weights(lengths, order, bundle_size)
    loads = np.zeros(k, dtype=np.float64)
    assigned: list[list[np.ndarray]] = [[] for _ in range(k)]
    # ``order`` is sorted by decreasing row length, so bundle weights are
    # already (near-)non-increasing: iterating in order is LPT.
    for bundle, weight in zip(bundles, weights):
        dev = int(np.argmin(loads))
        loads[dev] += float(weight)
        assigned[dev].append(bundle)
    return [
        np.sort(np.concatenate(parts).astype(np.int64))
        if parts
        else np.empty(0, dtype=np.int64)
        for parts in assigned
    ]


def partition_loads(
    row_lengths: np.ndarray, parts: list[np.ndarray]
) -> np.ndarray:
    """Per-device nonzero totals under a row partition."""
    lengths = np.asarray(row_lengths)
    return np.array(
        [int(lengths[p].sum()) if len(p) else 0 for p in parts],
        dtype=np.int64,
    )


def partition_stats(row_lengths: np.ndarray, parts: list[np.ndarray]) -> dict:
    """Balance metrics for a row partition: max/mean device load etc."""
    loads = partition_loads(row_lengths, parts)
    mean = float(loads.mean()) if len(loads) else 0.0
    peak = int(loads.max()) if len(loads) else 0
    return {
        "k": len(parts),
        "loads": loads.tolist(),
        "max_load": peak,
        "mean_load": mean,
        "max_over_mean": (peak / mean) if mean > 0 else 1.0,
    }


def _grid_for(k: int) -> tuple[int, int]:
    """Pick a (rows, cols) device grid for 2-D sharding: the most square
    factorization with the row dimension at least as large (rows carry the
    skew, so they get the finer cost-balanced split)."""
    kc = int(np.sqrt(k))
    while kc > 1 and k % kc:
        kc -= 1
    return k // kc, kc


@dataclass
class ShardPlan:
    """How one matrix's work is split across ``k`` simulated devices.

    ``strategy="row"``: device ``d`` owns the rows ``device_rows[d]`` at
    full width (``grid == (k, 1)``).

    ``strategy="2d"``: the devices form a ``grid = (kr, kc)`` mesh; device
    ``d = i * kc + j`` owns rows ``device_rows[i]`` restricted to column
    range ``col_ranges[j]``. Row groups are cost-balanced; column ranges
    are even width (dense-operand shards must be uniform).

    Plans are pure numpy + ints, so they pickle into PlanStore envelopes.
    """

    k: int
    strategy: str
    grid: tuple[int, int]
    device_rows: list[np.ndarray]
    col_ranges: list[tuple[int, int]]
    loads: np.ndarray
    bundle_size: int = DEFAULT_BUNDLE_SIZE
    stats: dict = field(default_factory=dict)
    #: Decreasing-length row order the partition was derived from; repair
    #: state for :func:`repair_shard_plan` (``None`` on pre-v6 plans).
    row_order: np.ndarray | None = None

    @property
    def max_load(self) -> int:
        return int(self.loads.max()) if len(self.loads) else 0

    @property
    def mean_load(self) -> float:
        return float(self.loads.mean()) if len(self.loads) else 0.0

    @property
    def max_over_mean(self) -> float:
        mean = self.mean_load
        return (self.max_load / mean) if mean > 0 else 1.0

    def device_tile(self, d: int) -> tuple[np.ndarray, tuple[int, int]]:
        """The (rows, column range) device ``d`` owns."""
        kr, kc = self.grid
        if not (0 <= d < self.k):
            raise ValueError(f"device {d} outside the {self.k}-device group")
        return self.device_rows[d // kc], self.col_ranges[d % kc]


def plan_shards(
    a: CSRMatrix,
    k: int,
    strategy: str = "row",
    bundle_size: int = DEFAULT_BUNDLE_SIZE,
    order: np.ndarray | None = None,
) -> ShardPlan:
    """Build the :class:`ShardPlan` for one topology (uncached; the
    :class:`~repro.dist.group.DeviceGroup` layers plan caching on top).

    ``order`` optionally supplies the decreasing-length row order (the
    repair path's merged swizzle); when ``None`` it is computed fresh.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown shard strategy {strategy!r}; expected one of "
            f"{STRATEGIES}"
        )
    lengths = a.row_lengths
    if order is None:
        order = row_swizzle(lengths)
    if strategy == "row" or k == 1:
        grid = (k, 1)
        device_rows = cost_balanced_partition(
            lengths, k, bundle_size, order=order
        )
        col_ranges = [(0, a.shape[1])]
        loads = partition_loads(lengths, device_rows)
    else:
        grid = _grid_for(k)
        kr, kc = grid
        device_rows = cost_balanced_partition(
            lengths, kr, bundle_size, order=order
        )
        bounds = np.linspace(0, a.shape[1], kc + 1).astype(np.int64)
        col_ranges = [
            (int(bounds[j]), int(bounds[j + 1])) for j in range(kc)
        ]
        # Actual per-tile nnz (column splits are data-dependent).
        loads = np.zeros(k, dtype=np.int64)
        rows_of_nnz = np.repeat(np.arange(a.shape[0]), lengths)
        cols = a.column_indices.astype(np.int64)
        tile_col = np.searchsorted(bounds[1:-1], cols, side="right")
        group_of_row = np.zeros(a.shape[0], dtype=np.int64)
        for i, rows in enumerate(device_rows):
            group_of_row[rows] = i
        flat = group_of_row[rows_of_nnz] * kc + tile_col
        np.add.at(loads, flat, 1)
    plan = ShardPlan(
        k=k,
        strategy="row" if (strategy == "row" or k == 1) else "2d",
        grid=grid,
        device_rows=device_rows,
        col_ranges=col_ranges,
        loads=loads,
        bundle_size=bundle_size,
        row_order=order,
    )
    plan.stats = {
        "max_load": plan.max_load,
        "mean_load": plan.mean_load,
        "max_over_mean": plan.max_over_mean,
    }
    return plan


def repair_shard_plan(
    plan: ShardPlan, a: CSRMatrix, delta: TopologyDelta
) -> ShardPlan:
    """Re-balance a :class:`ShardPlan` after a row-targeted topology edit.

    Merges the edited rows into the ancestor's swizzle order
    (:func:`~repro.core.swizzle.merge_swizzle`, O(rows + edits log edits))
    instead of re-sorting, then reruns the cheap bundling + LPT assignment
    over the merged order — bit-identical to :func:`plan_shards` from
    scratch (property-tested in tests/test_dynamic.py). Raises
    :class:`~repro.reliability.errors.PlanRepairError` when the ancestor
    predates repair state or shapes disagree; the caller falls back to a
    cold plan.
    """
    if plan.row_order is None:
        raise PlanRepairError(
            "ancestor shard plan carries no row_order (pre-repair store "
            "entry); cold re-plan required"
        )
    if a.shape[0] != len(plan.row_order):
        raise PlanRepairError(
            f"shard-plan repair row mismatch: ancestor ordered "
            f"{len(plan.row_order)} rows, child has {a.shape[0]}"
        )
    order = merge_swizzle(plan.row_order, a.row_lengths, delta.rows)
    return plan_shards(
        a, plan.k, plan.strategy, plan.bundle_size, order=order
    )
