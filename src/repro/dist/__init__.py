"""Multi-GPU sharded execution over simulated devices.

Scales past one simulated V100 (ROADMAP item 3): cost-balanced row and
2-D sharding of SpMM/SDDMM across a :class:`DeviceGroup` of K devices —
each with its own plan cache and :class:`~repro.gpu.allocator.DeviceAllocator`
— with collective communication priced by the
:class:`~repro.gpu.interconnect.InterconnectSpec` fabric model and
overlap-aware combined runtimes (see DESIGN.md Section 15).

Quick start::

    from repro.dist import DeviceGroup, sharded_spmm_cost

    group = DeviceGroup(4)                   # 4 x V100 on NVLink
    result = sharded_spmm_cost(a, 64, group)
    result.runtime_s                          # max compute + exposed comm
    result.interconnect_bound_fraction        # how much the fabric costs
"""

from .group import DeviceGroup, collective_execution
from .partition import (
    DEFAULT_BUNDLE_SIZE,
    STRATEGIES,
    ShardPlan,
    cost_balanced_partition,
    partition_loads,
    partition_stats,
    plan_shards,
    repair_shard_plan,
    row_block_partition,
)
from .sharded import (
    ShardedExecution,
    sharded_sddmm,
    sharded_sddmm_cost,
    sharded_spmm,
    sharded_spmm_cost,
)

__all__ = [
    "DeviceGroup",
    "collective_execution",
    "ShardPlan",
    "plan_shards",
    "repair_shard_plan",
    "cost_balanced_partition",
    "row_block_partition",
    "partition_loads",
    "partition_stats",
    "DEFAULT_BUNDLE_SIZE",
    "STRATEGIES",
    "ShardedExecution",
    "sharded_spmm",
    "sharded_spmm_cost",
    "sharded_sddmm",
    "sharded_sddmm_cost",
]
