"""The selector protocol: one interface for every config-selection policy.

An :class:`ExecutionContext` resolves ``selector=`` arguments through
:func:`resolve_selector` and calls ``build_spmm``/``build_sddmm`` on the
result; nothing outside :mod:`repro.tune` constructs kernel configs
directly. Three policies ship:

- ``heuristic`` — the paper's fixed rules (Section VII). Cheap enough
  that winners live only in the in-memory plan cache (``persist=False``).
- ``oracle``   — exhaustively costs the shared candidate menu
  (Section VII-D1's "oracle kernel selector"). Persisted.
- ``tuned``    — pruned hill-climbing search seeded by the heuristic
  (:mod:`repro.tune.search`). Returns a :class:`TuningResult` carrying
  search stats; persisted so tuning amortizes across sweeps/processes.

Custom selectors register via :func:`register_selector`, or pass any
object with ``name``/``persist``/``build_spmm``/``build_sddmm`` directly
as the ``selector=`` argument.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..core.config import Precision, SddmmConfig, SpmmConfig
from ..sparse.csr import CSRMatrix
from .heuristics import select_sddmm_config, select_spmm_config
from .search import (
    TuningResult,
    oracle_sddmm_config,
    oracle_spmm_config,
    tune_sddmm_config,
    tune_spmm_config,
)


@runtime_checkable
class Selector(Protocol):
    """A config-selection policy.

    ``build_*`` may return a bare config or a :class:`TuningResult`
    wrapping one; the context unwraps and caches either. ``persist``
    selectors write winners through to the on-disk :class:`PlanStore`
    (worth it when selection costs more than a heuristic call).
    """

    name: str
    persist: bool

    def build_spmm(
        self, context, a: CSRMatrix, n: int, precision: Precision
    ) -> SpmmConfig | TuningResult: ...

    def build_sddmm(
        self, context, mask: CSRMatrix, k: int, precision: Precision
    ) -> SddmmConfig | TuningResult: ...


class HeuristicSelector:
    """The paper's published selection rules."""

    name = "heuristic"
    persist = False

    def build_spmm(self, context, a, n, precision):
        del context
        return select_spmm_config(a, n, precision)

    def build_sddmm(self, context, mask, k, precision):
        del context, mask
        return select_sddmm_config(k, precision)


class OracleSelector:
    """Exhaustive costing of the shared candidate menu."""

    name = "oracle"
    persist = True

    def build_spmm(self, context, a, n, precision):
        return oracle_spmm_config(a, n, context.device, precision)

    def build_sddmm(self, context, mask, k, precision):
        return oracle_sddmm_config(mask, k, context.device, precision)


class TunedSelector:
    """Pruned hill-climbing search; returns a stats-carrying result."""

    name = "tuned"
    persist = True

    def build_spmm(self, context, a, n, precision):
        return tune_spmm_config(a, n, context.device, precision)

    def build_sddmm(self, context, mask, k, precision):
        return tune_sddmm_config(mask, k, context.device, precision)


SELECTOR_REGISTRY: dict[str, Selector] = {}


def register_selector(selector: Selector) -> Selector:
    """Make a selector resolvable by name (``selector="<name>"``)."""
    for attr in ("name", "persist", "build_spmm", "build_sddmm"):
        if not hasattr(selector, attr):
            raise TypeError(
                f"selector {selector!r} does not implement the Selector "
                f"protocol (missing {attr!r})"
            )
    SELECTOR_REGISTRY[selector.name] = selector
    return selector


register_selector(HeuristicSelector())
register_selector(OracleSelector())
register_selector(TunedSelector())

#: Registered selector names (back-compat for ``ops.context.SELECTORS``).
SELECTORS = tuple(SELECTOR_REGISTRY)


def resolve_selector(selector) -> Selector:
    """Resolve a ``selector=`` argument: a registered name or a policy
    object implementing the protocol."""
    if isinstance(selector, str):
        try:
            return SELECTOR_REGISTRY[selector]
        except KeyError:
            raise ValueError(
                f"unknown selector {selector!r}; expected one of "
                f"{tuple(SELECTOR_REGISTRY)} or a Selector instance"
            ) from None
    if isinstance(selector, Selector):
        return selector
    raise ValueError(
        f"selector must be a registered name or implement the Selector "
        f"protocol, got {selector!r}"
    )
