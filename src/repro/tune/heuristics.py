"""The paper's fixed selection heuristics (Section VII, first paragraph).

For SpMM the paper selects "the n-dimension tile size to be N, rounded up
to a power of 2, up to a maximum of 64"; for SDDMM a fixed n-dimension tile
of 32; and for both "the widest vector memory operations possible". These
functions are the ``heuristic`` selector's policy and the seed every other
selector starts from; call sites outside :mod:`repro.tune` should resolve
configs through the selector protocol (:func:`repro.tune.resolve_selector`)
rather than importing these directly.
"""

from __future__ import annotations

import numpy as np

from ..core.config import Precision, SddmmConfig, SpmmConfig
from ..core.selection import MAX_TILE_X, next_power_of_two, widest_vector_width
from ..sparse.csr import CSRMatrix


def operand_precision(matrix: CSRMatrix) -> Precision:
    """Precision regime implied by a sparse operand's value dtype."""
    return "mixed" if matrix.values.dtype == np.float16 else "fp32"


def select_spmm_config(
    a: CSRMatrix, n: int, precision: Precision = "fp32"
) -> SpmmConfig:
    """The paper's SpMM heuristic: tile-N = min(64, next_pow2(N)), widest
    vector width that divides both the tile and N."""
    del a  # the published heuristic keys only on the problem's N dimension
    tile = min(MAX_TILE_X, next_power_of_two(n))
    vw = widest_vector_width(tile, n)
    return SpmmConfig(
        block_items_x=tile,
        block_items_k=32,
        vector_width=vw,
        precision=precision,
    )


def select_sddmm_config(k: int, precision: Precision = "fp32") -> SddmmConfig:
    """The paper's SDDMM heuristic: n-dimension tile 32, widest vectors."""
    return SddmmConfig(
        nonzeros_per_block=32,
        vector_width=widest_vector_width(k),
        precision=precision,
    )


def default_spmm_config(a: CSRMatrix, n: int) -> SpmmConfig:
    """Heuristic config with precision derived from the sparse operand."""
    return select_spmm_config(a, n, operand_precision(a))


def default_sddmm_config(mask: CSRMatrix, k: int) -> SddmmConfig:
    """Heuristic config with precision derived from the mask's values.

    This is the operand-derived analogue of :func:`default_spmm_config`;
    convenience paths that used to call ``select_sddmm_config(k)`` with the
    fp32 default go through here so an fp16 mask is costed with fp16 value
    bytes and int16 index bytes.
    """
    return select_sddmm_config(k, operand_precision(mask))
