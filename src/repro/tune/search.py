"""Cost-model-driven config search: oracle and pruned hill climbing.

The simulator makes every candidate costable without running numerics, so
the ``tuned`` selector searches per topology fingerprint:

1. cost the heuristic seed (the floor — the tuner never returns a config
   it costed slower than the seed);
2. cost the shared candidate menu (:mod:`repro.tune.space`), which is
   exactly what the oracle does, so a tuned config is never worse than
   the oracle's pick either;
3. hill-climb from the best config via legality-filtered one-knob
   neighborhood moves until a round yields no improvement (bounded
   rounds), reaching knobs the menu holds fixed (``block_items_k``, the
   boolean toggles).

Candidate costing runs inside the simulated executor, so injected
executor-site launch faults can fire mid-search; a candidate that fails to
cost is skipped, and if *everything* fails — seed included — the search
falls back to the heuristic config (``fell_back=True``) instead of
crashing.

Module-level wall-clock accounting (:func:`tuning_seconds`) lets the
autotune benchmark assert that a warm plan store bounds tuning overhead.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from ..core.config import Precision, SddmmConfig, SpmmConfig
from ..gpu.device import DeviceSpec
from ..gpu.executor import execute
from ..sparse.csr import CSRMatrix
from .heuristics import select_sddmm_config, select_spmm_config
from .space import (
    sddmm_candidates,
    sddmm_neighbors,
    spmm_candidates,
    spmm_neighbors,
)

#: Hill-climbing round cap; each round costs every neighbor of the
#: incumbent, so the search is bounded even on pathological cost surfaces.
MAX_ROUNDS = 4

_tuning_seconds = 0.0


def tuning_seconds() -> float:
    """Total wall-clock seconds spent inside config search this process."""
    return _tuning_seconds


def reset_tuning_seconds() -> None:
    global _tuning_seconds
    _tuning_seconds = 0.0


@dataclass(frozen=True)
class TuningResult:
    """Winner plus search stats; this is what the PlanStore persists.

    ``runtime_s``/``seed_runtime_s`` are *simulated* kernel runtimes;
    ``candidates_costed`` counts distinct configs costed (menu + neighbor
    moves, deduplicated); ``fell_back`` marks a search in which no
    candidate could be costed at all, where ``config`` is the heuristic
    seed and the runtimes are infinite.
    """

    op: str
    config: SpmmConfig | SddmmConfig
    runtime_s: float
    seed_config: SpmmConfig | SddmmConfig
    seed_runtime_s: float
    candidates_costed: int
    rounds: int
    fell_back: bool = False

    @property
    def speedup_over_seed(self) -> float:
        """Simulated seed-runtime / tuned-runtime (>= 1 by construction)."""
        if not math.isfinite(self.runtime_s) or self.runtime_s <= 0:
            return 1.0
        return self.seed_runtime_s / self.runtime_s


def _hill_climb(
    op: str,
    seed,
    menu: Iterable,
    neighbors_of: Callable,
    cost: Callable[[object], float],
    max_rounds: int,
) -> TuningResult:
    global _tuning_seconds
    start = time.perf_counter()
    costed: dict = {}

    def runtime_of(config) -> float:
        if config not in costed:
            try:
                costed[config] = float(cost(config))
            except Exception:
                # Injected launch faults (or an unexpectedly illegal
                # candidate) kill this candidate only, never the search.
                costed[config] = math.inf
        return costed[config]

    try:
        seed_runtime = runtime_of(seed)
        best, best_runtime = seed, seed_runtime
        for config in menu:
            runtime = runtime_of(config)
            if runtime < best_runtime:
                best, best_runtime = config, runtime
        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            improved = False
            for config in neighbors_of(best):
                runtime = runtime_of(config)
                if runtime < best_runtime:
                    best, best_runtime, improved = config, runtime, True
            if not improved:
                break
        fell_back = not math.isfinite(best_runtime)
        if fell_back:
            best = seed  # nothing costed: hand back the heuristic config
        return TuningResult(
            op=op,
            config=best,
            runtime_s=best_runtime,
            seed_config=seed,
            seed_runtime_s=seed_runtime,
            candidates_costed=len(costed),
            rounds=rounds,
            fell_back=fell_back,
        )
    finally:
        _tuning_seconds += time.perf_counter() - start


def tune_spmm_config(
    a: CSRMatrix,
    n: int,
    device: DeviceSpec,
    precision: Precision = "fp32",
    max_rounds: int = MAX_ROUNDS,
) -> TuningResult:
    """Search the SpMM config space for one (matrix, n) problem."""
    from ..core.spmm import build_launch

    def cost(config: SpmmConfig) -> float:
        return execute(build_launch(a, n, config, device), device).runtime_s

    return _hill_climb(
        "spmm",
        select_spmm_config(a, n, precision),
        spmm_candidates(n, precision),
        lambda config: spmm_neighbors(config, n),
        cost,
        max_rounds,
    )


def tune_sddmm_config(
    mask: CSRMatrix,
    k: int,
    device: DeviceSpec,
    precision: Precision = "fp32",
    max_rounds: int = MAX_ROUNDS,
) -> TuningResult:
    """Search the SDDMM config space for one (mask, k) problem."""
    from ..core.sddmm import build_launch

    def cost(config: SddmmConfig) -> float:
        launch, drag = build_launch(mask, k, config, device)
        return execute(launch, device).add_overhead(drag).runtime_s

    return _hill_climb(
        "sddmm",
        select_sddmm_config(k, precision),
        sddmm_candidates(k, precision),
        lambda config: sddmm_neighbors(config, k),
        cost,
        max_rounds,
    )


def oracle_spmm_config(
    a: CSRMatrix, n: int, device: DeviceSpec, precision: Precision = "fp32"
) -> SpmmConfig:
    """Pick the fastest SpMM config by costing every candidate (no numerics).

    This is the "oracle kernel selector" the MobileNet evaluation applies to
    the four 1x1 convolutions where the heuristic mispredicts. It costs the
    same candidate menu the tuner's first round does.
    """
    from ..core.spmm import build_launch

    best: tuple[float, SpmmConfig] | None = None
    for config in spmm_candidates(n, precision):
        runtime = execute(build_launch(a, n, config, device), device).runtime_s
        if best is None or runtime < best[0]:
            best = (runtime, config)
    if best is None:
        raise ValueError(f"no legal SpMM configuration for N={n}")
    return best[1]


def oracle_sddmm_config(
    mask: CSRMatrix, k: int, device: DeviceSpec, precision: Precision = "fp32"
) -> SddmmConfig:
    """Pick the fastest SDDMM config by costing every candidate."""
    from ..core.sddmm import build_launch

    best: tuple[float, SddmmConfig] | None = None
    for config in sddmm_candidates(k, precision):
        launch, drag = build_launch(mask, k, config, device)
        runtime = execute(launch, device).add_overhead(drag).runtime_s
        if best is None or runtime < best[0]:
            best = (runtime, config)
    if best is None:
        raise ValueError(f"no legal SDDMM configuration for K={k}")
    return best[1]
