"""Search space over the real knobs on ``SpmmConfig``/``SddmmConfig``.

Two enumerations per kernel:

- ``*_candidates`` — the pruned menu the oracle costs exhaustively and the
  tuner costs in its first round, so both selectors share one enumeration
  instead of two drifting menus. Output is deduplicated (mixed precision
  force-clears ``index_prescale``, which can alias otherwise-distinct
  knob tuples).
- ``*_neighbors`` — one-knob moves around a config for hill climbing:
  step ``block_items_x``/``block_items_k``/``warps_per_block``/
  ``vector_width`` to the adjacent menu value, flip each boolean toggle.

Every emitted config is legality-filtered: construction runs the
``__post_init__`` validators, SpMM configs must additionally satisfy the
subwarp-tiling rules (:func:`repro.core.tiling.derive_tiling`), and vector
widths must divide the problem's N (SpMM) or K (SDDMM) dimension.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, Sequence

from ..core.config import Precision, SddmmConfig, SpmmConfig
from ..core.selection import next_power_of_two
from ..core.tiling import derive_tiling

#: Menu values for each stepped SpMM knob.
SPMM_TILES = (8, 16, 32, 64)
SPMM_BLOCK_K = (16, 32, 64)
SPMM_WARPS = (2, 4, 8)
VECTOR_WIDTHS = (1, 2, 4)

#: SpMM boolean toggles the neighborhood flips.
SPMM_TOGGLES = ("roma", "load_balance", "residue_unroll", "index_prescale")

#: Menu values for each stepped SDDMM knob.
SDDMM_STRIPS = (8, 16, 32)
SDDMM_TOGGLES = ("load_balance",)


def _legal_spmm(n: int, **knobs) -> SpmmConfig | None:
    """Construct a config, returning None when any legality rule rejects it."""
    try:
        config = SpmmConfig(**knobs)
        derive_tiling(config)
    except ValueError:
        return None
    if config.vector_width > 1 and n % config.vector_width:
        return None
    return config


def _legal_sddmm(k: int, **knobs) -> SddmmConfig | None:
    try:
        config = SddmmConfig(**knobs)
    except ValueError:
        return None
    if config.vector_width > 1 and k % config.vector_width:
        return None
    return config


def _dedupe(configs: Iterator) -> list:
    """Order-preserving dedupe (frozen dataclasses hash by value)."""
    return list(dict.fromkeys(c for c in configs if c is not None))


def spmm_candidates(n: int, precision: Precision = "fp32") -> list[SpmmConfig]:
    """Pruned SpMM menu shared by the oracle and the tuner's first round.

    Pruning: tiles wider than ``next_pow2(n)`` are skipped (beyond 8) since
    the extra columns are pure waste, and illegal (tile, vector, warp)
    combinations are filtered by construction.
    """

    def enumerate_menu() -> Iterator[SpmmConfig | None]:
        for tile in SPMM_TILES:
            if tile > next_power_of_two(n) and tile > 8:
                continue
            for vw in VECTOR_WIDTHS:
                for warps in SPMM_WARPS:
                    yield _legal_spmm(
                        n,
                        block_items_x=tile,
                        block_items_k=32,
                        warps_per_block=warps,
                        vector_width=vw,
                        precision=precision,
                    )

    return _dedupe(enumerate_menu())


def sddmm_candidates(k: int, precision: Precision = "fp32") -> list[SddmmConfig]:
    """Pruned SDDMM menu: strip length x vector width."""

    def enumerate_menu() -> Iterator[SddmmConfig | None]:
        for strip in SDDMM_STRIPS:
            for vw in VECTOR_WIDTHS:
                yield _legal_sddmm(
                    k,
                    nonzeros_per_block=strip,
                    vector_width=vw,
                    precision=precision,
                )

    return _dedupe(enumerate_menu())


def _stepped(menu: Sequence[int], current: int) -> list[int]:
    """Adjacent menu values (both directions) for one stepped knob."""
    ordered = sorted(set(menu) | {current})
    i = ordered.index(current)
    return [ordered[j] for j in (i - 1, i + 1) if 0 <= j < len(ordered)]


def spmm_neighbors(config: SpmmConfig, n: int) -> list[SpmmConfig]:
    """Legal one-knob moves around ``config`` for hill climbing.

    Covers the knobs the candidate menu holds fixed (``block_items_k`` and
    every boolean toggle) plus steps of the menu knobs, so the tuner can
    reach configurations the oracle never costs.
    """

    def enumerate_moves() -> Iterator[SpmmConfig | None]:
        for tile in _stepped(SPMM_TILES, config.block_items_x):
            yield _legal_spmm(n, **_knobs(config, block_items_x=tile))
        for bk in _stepped(SPMM_BLOCK_K, config.block_items_k):
            yield _legal_spmm(n, **_knobs(config, block_items_k=bk))
        for warps in _stepped(SPMM_WARPS, config.warps_per_block):
            yield _legal_spmm(n, **_knobs(config, warps_per_block=warps))
        for vw in _stepped(VECTOR_WIDTHS, config.vector_width):
            yield _legal_spmm(n, **_knobs(config, vector_width=vw))
        for toggle in SPMM_TOGGLES:
            yield _legal_spmm(
                n, **_knobs(config, **{toggle: not getattr(config, toggle)})
            )

    moves = _dedupe(enumerate_moves())
    return [c for c in moves if c != config]


def sddmm_neighbors(config: SddmmConfig, k: int) -> list[SddmmConfig]:
    """Legal one-knob moves around an SDDMM config."""

    def enumerate_moves() -> Iterator[SddmmConfig | None]:
        for strip in _stepped(SDDMM_STRIPS, config.nonzeros_per_block):
            yield _legal_sddmm(k, nonzeros_per_block=strip, **_sddmm_rest(config))
        for vw in _stepped(VECTOR_WIDTHS, config.vector_width):
            try:
                yield replace(config, vector_width=vw)
            except ValueError:
                yield None
        for toggle in SDDMM_TOGGLES:
            yield replace(config, **{toggle: not getattr(config, toggle)})

    moves = _dedupe(
        c
        for c in enumerate_moves()
        if c is not None
        and not (c.vector_width > 1 and k % c.vector_width)
    )
    return [c for c in moves if c != config]


def _knobs(config: SpmmConfig, **overrides) -> dict:
    knobs = {
        "block_items_x": config.block_items_x,
        "block_items_k": config.block_items_k,
        "warps_per_block": config.warps_per_block,
        "vector_width": config.vector_width,
        "roma": config.roma,
        "load_balance": config.load_balance,
        "residue_unroll": config.residue_unroll,
        "index_prescale": config.index_prescale,
        "precision": config.precision,
    }
    knobs.update(overrides)
    return knobs


def _sddmm_rest(config: SddmmConfig) -> dict:
    return {
        "vector_width": config.vector_width,
        "load_balance": config.load_balance,
        "precision": config.precision,
        "scale_by_values": config.scale_by_values,
        "transposed_rhs": config.transposed_rhs,
        "dynamic_parallelism": config.dynamic_parallelism,
    }
