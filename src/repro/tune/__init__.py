"""Config selection and autotuning for the sparse kernels.

Everything that turns a problem (matrix, dimension, precision) into a
kernel config lives here: the paper's heuristics, the candidate search
space, the oracle and hill-climbing searches, and the selector protocol
the execution context dispatches through.
"""

from .heuristics import (
    default_sddmm_config,
    default_spmm_config,
    operand_precision,
    select_sddmm_config,
    select_spmm_config,
)
from .search import (
    MAX_ROUNDS,
    TuningResult,
    oracle_sddmm_config,
    oracle_spmm_config,
    reset_tuning_seconds,
    tune_sddmm_config,
    tune_spmm_config,
    tuning_seconds,
)
from .selector import (
    SELECTOR_REGISTRY,
    SELECTORS,
    HeuristicSelector,
    OracleSelector,
    Selector,
    TunedSelector,
    register_selector,
    resolve_selector,
)
from .space import (
    sddmm_candidates,
    sddmm_neighbors,
    spmm_candidates,
    spmm_neighbors,
)

__all__ = [
    "MAX_ROUNDS",
    "SELECTOR_REGISTRY",
    "SELECTORS",
    "HeuristicSelector",
    "OracleSelector",
    "Selector",
    "TunedSelector",
    "TuningResult",
    "default_sddmm_config",
    "default_spmm_config",
    "operand_precision",
    "oracle_sddmm_config",
    "oracle_spmm_config",
    "register_selector",
    "reset_tuning_seconds",
    "resolve_selector",
    "sddmm_candidates",
    "sddmm_neighbors",
    "select_sddmm_config",
    "select_spmm_config",
    "spmm_candidates",
    "spmm_neighbors",
    "tune_sddmm_config",
    "tune_spmm_config",
    "tuning_seconds",
]
