"""Memory-transaction accounting: coalescing, alignment, and vector widths.

GPUs service a warp's global-memory access as a set of 32-byte sector
transactions. The quantities the paper's techniques optimize — transactions
per request, wasted sectors from misalignment, and instruction counts saved
by 2-/4-wide vector loads — are computed here and charged by the kernels.

All functions are pure and vectorized over numpy arrays so that a kernel can
cost thousands of thread blocks in a single call.
"""

from __future__ import annotations

import numpy as np

from .device import DeviceSpec

#: Supported vector memory widths, in 4-byte elements (float/int32).
VECTOR_WIDTHS = (1, 2, 4)


def validate_vector_width(vector_width: int) -> None:
    """Raise ``ValueError`` unless ``vector_width`` is 1, 2 or 4."""
    if vector_width not in VECTOR_WIDTHS:
        raise ValueError(
            f"vector_width must be one of {VECTOR_WIDTHS}, got {vector_width}"
        )


def sectors_for_contiguous(
    nbytes: np.ndarray | int,
    start_offset_bytes: np.ndarray | int = 0,
    *,
    sector_bytes: int = 32,
) -> np.ndarray | int:
    """Number of 32B sectors touched by a contiguous access of ``nbytes``.

    ``start_offset_bytes`` is the byte offset of the first element within a
    sector-aligned region; a misaligned start can straddle an extra sector.
    """
    nbytes = np.asarray(nbytes)
    start = np.asarray(start_offset_bytes) % sector_bytes
    end = start + nbytes
    return np.where(nbytes > 0, (end + sector_bytes - 1) // sector_bytes, 0)


def load_instructions(
    n_elements: np.ndarray | int,
    active_threads: int,
    vector_width: int,
) -> np.ndarray | int:
    """Warp-level load instructions to read ``n_elements`` 4-byte elements.

    ``active_threads`` threads cooperate; each instruction moves
    ``active_threads * vector_width`` elements. Partial trailing loads still
    cost a full instruction (predicated lanes are not free issue slots).
    """
    validate_vector_width(vector_width)
    if active_threads <= 0:
        raise ValueError("active_threads must be positive")
    per_inst = active_threads * vector_width
    n = np.asarray(n_elements)
    return (n + per_inst - 1) // per_inst


def aligned_extent(
    offsets: np.ndarray | int,
    lengths: np.ndarray | int,
    vector_width: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply reverse-offset memory alignment (ROMA) to CSR row extents.

    Given element ``offsets`` into a value/index array and row ``lengths``
    (in elements), back each offset up to the nearest ``vector_width``-aligned
    element and grow the length accordingly, exactly as the kernel prelude in
    the paper (Section V-B2) does. Returns ``(aligned_offsets,
    aligned_lengths)``. With ``vector_width == 1`` this is the identity.
    """
    validate_vector_width(vector_width)
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if np.any(lengths < 0):
        raise ValueError("row lengths must be non-negative")
    backup = offsets % vector_width
    return offsets - backup, lengths + backup


def dram_bytes_with_reuse(
    total_bytes: float,
    unique_bytes: float,
    l2_capacity: int,
) -> float:
    """DRAM traffic after L2 reuse for a streaming working set.

    A kernel that touches ``unique_bytes`` of distinct data a total of
    ``total_bytes`` times sees DRAM traffic between those two bounds: if the
    distinct working set fits in L2 every re-reference hits, otherwise hits
    decay with the ratio of cache to working set (a standard streaming-reuse
    approximation; see DESIGN.md Section 5).
    """
    if total_bytes < 0 or unique_bytes < 0:
        raise ValueError("byte counts must be non-negative")
    if unique_bytes > total_bytes + 1e-6:
        raise ValueError("unique_bytes cannot exceed total_bytes")
    if total_bytes == 0:
        return 0.0
    if unique_bytes <= l2_capacity:
        return float(unique_bytes)
    hit_rate = l2_capacity / unique_bytes
    rereads = total_bytes - unique_bytes
    return float(unique_bytes + rereads * (1.0 - hit_rate))


def l1_hit_fraction(
    loads_per_element: float, working_set_bytes: float, l1_capacity: float
) -> float:
    """Fraction of re-reference traffic an SM's L1 cache absorbs.

    ``loads_per_element`` is how many times each distinct element is read
    while resident work shares the SM (e.g. rows per SM x matrix density for
    SpMM's dense operand — the subwarp-locality effect of Section V-B1).
    The first access always misses, and hits are further limited by how much
    of the working set the L1 can cover.
    """
    if loads_per_element <= 1.0:
        return 0.0
    if working_set_bytes < 0 or l1_capacity < 0:
        raise ValueError("sizes must be non-negative")
    reuse = 1.0 - 1.0 / loads_per_element
    coverage = 1.0 if working_set_bytes == 0 else min(
        1.0, l1_capacity / working_set_bytes
    )
    return reuse * coverage


def latency_hiding_factor(resident_warps: float, device: DeviceSpec) -> float:
    """Fraction of peak bandwidth/throughput reachable at a given occupancy.

    With few resident warps an SM cannot cover DRAM latency; effectiveness
    grows roughly linearly until ``device.warps_to_saturate`` warps are
    resident (the square root softens the knee, matching the gentle roll-off
    measured on Volta-class parts).
    """
    if resident_warps <= 0:
        return 0.0
    x = min(1.0, resident_warps / device.warps_to_saturate)
    return float(np.sqrt(x * (2.0 - x)))


def flip_bit(array: np.ndarray, element_index: int, bit: int) -> int:
    """Flip one bit of one element of an integer buffer, in place.

    Models an uncorrected memory error (ECC disabled or a double-bit upset)
    in device-resident metadata — the fault class the reliability layer's
    deep validation (checksums over CSR structure arrays) exists to catch.
    Returns the element's original value so a repair path can restore it.
    """
    if array.dtype.kind not in "iu":
        raise TypeError(f"flip_bit targets integer buffers, got {array.dtype}")
    width = array.dtype.itemsize * 8
    if not 0 <= bit < width:
        raise ValueError(f"bit {bit} out of range for {array.dtype}")
    if not 0 <= element_index < array.size:
        raise ValueError(
            f"element {element_index} out of range for size {array.size}"
        )
    flat = array.reshape(-1)
    original = int(flat[element_index])
    unsigned = flat.view(f"u{array.dtype.itemsize}")
    unsigned[element_index] ^= np.asarray(1, dtype=unsigned.dtype) << bit
    return original


def row_major_tile_bytes(
    rows: int, cols: int, row_stride: int, element_bytes: int
) -> int:
    """Bytes spanned by a ``rows x cols`` tile of a row-major matrix.

    Used for working-set estimates; the tile occupies ``rows`` strips of
    ``cols * element_bytes`` bytes each (stride is irrelevant to the touched
    footprint, but validated for sanity).
    """
    if cols > row_stride:
        raise ValueError("tile wider than the matrix row stride")
    return rows * cols * element_bytes
