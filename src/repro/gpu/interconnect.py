"""Interconnect cost model: NVLink/PCIe-class links between simulated GPUs.

Single-device execution charges every byte to the HBM roofline; past one
device the binding constraint shifts to the links *between* devices
("At-Scale Sparse Deep Neural Network Inference", PAPERS.md). This module
prices the three collectives sharded SpMM/SDDMM execution needs —
all-gather, reduce-scatter, all-reduce — on the simulated clock, using the
standard ring-algorithm cost model (the same shape NCCL's rings follow):

- a ring collective over ``k`` devices moves ``(k - 1)`` chunks of
  ``nbytes / k`` through each device's link budget, paying the link
  latency once per step;
- an all-reduce is a reduce-scatter followed by an all-gather, i.e. twice
  the volume of either.

Topology matters only through contention: on a switched point-to-point
fabric (``"ring"``: NVLink) every device drives its full link budget
concurrently, while on a shared bus (``"shared"``: PCIe through one host
bridge) all ``k`` devices split the same pipe, so per-device bandwidth is
divided by the participant count.

``k == 1`` is exactly free — zero seconds, zero steps — so single-device
sharded dispatch stays bit-identical in cost to the unsharded path.
"""

from __future__ import annotations

from dataclasses import dataclass

TOPOLOGIES = ("ring", "shared")


@dataclass(frozen=True)
class InterconnectSpec:
    """One class of device-to-device fabric.

    ``link_bandwidth`` is bytes/s per link per direction; a device's total
    egress budget is ``link_bandwidth * links_per_device``. ``kind`` is the
    short label used for telemetry/backend attribution ("nvlink", "pcie").
    """

    name: str
    kind: str
    link_bandwidth: float
    links_per_device: int = 1
    link_latency_s: float = 2.0e-6
    topology: str = "ring"

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; expected one of "
                f"{TOPOLOGIES}"
            )
        if self.link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        if self.links_per_device < 1:
            raise ValueError("links_per_device must be >= 1")

    @property
    def device_bandwidth(self) -> float:
        """Total per-device egress bandwidth in bytes/s."""
        return self.link_bandwidth * self.links_per_device

    def effective_bandwidth(self, k: int) -> float:
        """Per-device bandwidth available during a k-way collective."""
        if self.topology == "shared" and k > 1:
            return self.device_bandwidth / k
        return self.device_bandwidth


#: V100-class NVLink 2.0: six 25 GB/s links per device, switched fabric.
NVLINK2 = InterconnectSpec(
    name="NVLink 2.0 (6x25GB/s)",
    kind="nvlink",
    link_bandwidth=25e9,
    links_per_device=6,
    link_latency_s=2.0e-6,
    topology="ring",
)

#: PCIe 3.0 x16 through one host bridge: every device shares the pipe.
PCIE3 = InterconnectSpec(
    name="PCIe 3.0 x16 (shared bridge)",
    kind="pcie",
    link_bandwidth=16e9,
    links_per_device=1,
    link_latency_s=5.0e-6,
    topology="shared",
)

INTERCONNECTS = {"nvlink": NVLINK2, "pcie": PCIE3}


def get_interconnect(name: str | InterconnectSpec) -> InterconnectSpec:
    """Resolve an interconnect by kind string (or pass a spec through)."""
    if isinstance(name, InterconnectSpec):
        return name
    try:
        return INTERCONNECTS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown interconnect {name!r}; expected one of "
            f"{sorted(INTERCONNECTS)}"
        ) from None


@dataclass(frozen=True)
class CollectiveCost:
    """One priced collective: what moved, over how many devices, how long."""

    op: str
    nbytes: int
    k: int
    seconds: float
    steps: int

    def as_dict(self) -> dict:
        return {
            "op": self.op,
            "nbytes": self.nbytes,
            "k": self.k,
            "seconds": self.seconds,
            "steps": self.steps,
        }


def _ring_cost(
    op: str, spec: InterconnectSpec, nbytes: int, k: int, passes: int
) -> CollectiveCost:
    """``passes`` rounds of (k-1) ring steps, each moving nbytes/k."""
    if k < 1:
        raise ValueError("collective needs at least one device")
    if nbytes < 0:
        raise ValueError("collective payload must be non-negative")
    if k == 1 or nbytes == 0:
        # A one-device "collective" is a no-op: the data is already where
        # it needs to be, and no link traffic may be charged.
        return CollectiveCost(op=op, nbytes=int(nbytes), k=k, seconds=0.0, steps=0)
    steps = passes * (k - 1)
    chunk = nbytes / k
    bandwidth = spec.effective_bandwidth(k)
    seconds = steps * (chunk / bandwidth + spec.link_latency_s)
    return CollectiveCost(
        op=op, nbytes=int(nbytes), k=k, seconds=seconds, steps=steps
    )


def all_gather(spec: InterconnectSpec, nbytes: int, k: int) -> CollectiveCost:
    """Every device ends with the full ``nbytes`` payload (each contributed
    ``nbytes / k``): one ring pass."""
    return _ring_cost("all_gather", spec, nbytes, k, passes=1)


def reduce_scatter(
    spec: InterconnectSpec, nbytes: int, k: int
) -> CollectiveCost:
    """Element-wise reduction of ``nbytes`` per device, each device keeping
    its ``nbytes / k`` shard: one ring pass."""
    return _ring_cost("reduce_scatter", spec, nbytes, k, passes=1)


def all_reduce(spec: InterconnectSpec, nbytes: int, k: int) -> CollectiveCost:
    """Every device ends with the full reduced ``nbytes``: reduce-scatter
    then all-gather, i.e. two ring passes."""
    return _ring_cost("all_reduce", spec, nbytes, k, passes=2)


def broadcast(spec: InterconnectSpec, nbytes: int, k: int) -> CollectiveCost:
    """Pipelined ring broadcast of ``nbytes`` from one root to all."""
    if k <= 1 or nbytes == 0:
        return CollectiveCost(
            op="broadcast", nbytes=int(nbytes), k=k, seconds=0.0, steps=0
        )
    bandwidth = spec.effective_bandwidth(k)
    seconds = nbytes / bandwidth + (k - 1) * spec.link_latency_s
    return CollectiveCost(
        op="broadcast", nbytes=int(nbytes), k=k, seconds=seconds, steps=k - 1
    )
