"""GPU substrate: device models, occupancy, memory transactions, the Volta
thread-block scheduler, and the kernel-launch executor.

This package is the hardware stand-in described in DESIGN.md Section 2: the
paper's kernels are CUDA on a V100; here they are costed, scheduled, and
timed on a transaction-level model of the same machine, while their numerics
run exactly in numpy.
"""

from .device import GTX1080, V100, DeviceSpec, get_device
from .executor import (
    BlockCosts,
    ExecutionResult,
    KernelLaunch,
    PhaseTimes,
    execute,
    register_completion_observer,
    register_launch_observer,
    unregister_completion_observer,
    unregister_launch_observer,
)
from .memory import (
    VECTOR_WIDTHS,
    aligned_extent,
    dram_bytes_with_reuse,
    latency_hiding_factor,
    load_instructions,
    sectors_for_contiguous,
    validate_vector_width,
)
from .interconnect import (
    INTERCONNECTS,
    NVLINK2,
    PCIE3,
    CollectiveCost,
    InterconnectSpec,
    all_gather,
    all_reduce,
    broadcast,
    get_interconnect,
    reduce_scatter,
)
from .occupancy import BlockResources, Occupancy, compute_occupancy
from .scheduler import (
    ScheduleResult,
    linear_block_index,
    simulate_schedule,
    simulate_schedule_reference,
    volta_first_wave_sm,
)

# The allocator imports the reliability error taxonomy, which imports the
# executor; keep it last so a bare ``import repro.gpu`` resolves the loop
# against already-initialized submodules.
from .allocator import (  # noqa: E402
    CAP_ENV_VAR,
    Allocation,
    DeviceAllocator,
    aligned_nbytes,
    capacity_from_env,
    estimate_nbytes,
    format_capacity,
    parse_capacity,
)

__all__ = [
    "DeviceSpec",
    "V100",
    "GTX1080",
    "get_device",
    "BlockCosts",
    "KernelLaunch",
    "ExecutionResult",
    "PhaseTimes",
    "execute",
    "register_launch_observer",
    "unregister_launch_observer",
    "register_completion_observer",
    "unregister_completion_observer",
    "BlockResources",
    "Occupancy",
    "compute_occupancy",
    "ScheduleResult",
    "simulate_schedule",
    "simulate_schedule_reference",
    "volta_first_wave_sm",
    "linear_block_index",
    "VECTOR_WIDTHS",
    "validate_vector_width",
    "sectors_for_contiguous",
    "load_instructions",
    "aligned_extent",
    "dram_bytes_with_reuse",
    "latency_hiding_factor",
    "DeviceAllocator",
    "Allocation",
    "CAP_ENV_VAR",
    "aligned_nbytes",
    "capacity_from_env",
    "estimate_nbytes",
    "parse_capacity",
    "format_capacity",
    "InterconnectSpec",
    "CollectiveCost",
    "NVLINK2",
    "PCIE3",
    "INTERCONNECTS",
    "get_interconnect",
    "all_gather",
    "reduce_scatter",
    "all_reduce",
    "broadcast",
]
