"""GPU device specifications for the performance simulator.

The simulator charges costs against a :class:`DeviceSpec`, which captures the
architectural quantities the paper's analysis depends on: SM count, warp
width, peak math throughput, memory bandwidth, cache and shared-memory sizes,
occupancy limits, and allocation alignment (the CUDA 256-byte guarantee that
makes the first CSR row vector-aligned, see paper footnote 3).

Two presets are provided, matching the hardware used in the paper's
evaluation: the Nvidia V100 (all kernel benchmarks) and the GTX 1080 (the
memory-constrained sparse-Transformer experiment in Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural description of a CUDA-class GPU.

    All bandwidths are in bytes/second and capacities in bytes. Peak FLOP
    rates count fused multiply-adds as two operations, matching vendor specs.
    """

    name: str
    num_sms: int
    warp_size: int = 32
    core_clock_hz: float = 1.53e9
    #: Peak single-precision throughput in FLOP/s (FMA counted as 2).
    fp32_peak_flops: float = 15.7e12
    #: Sustainable DRAM bandwidth (vendor peak; efficiency applied separately).
    dram_bandwidth: float = 900e9
    dram_capacity: int = 16 * 1024**3
    #: Host-to-device link bandwidth (PCIe 3.0 x16 on both paper devices);
    #: charged when an evicted operand has to be re-uploaded.
    pcie_bandwidth: float = 16e9
    l2_capacity: int = 6 * 1024**2
    #: Aggregate L2 bandwidth across the device.
    l2_bandwidth: float = 2.5e12
    #: Per-SM shared-memory bandwidth (128 bytes/cycle on Volta). On Volta
    #: the L1 cache shares this data path, so L1 hits are charged here too.
    shared_bandwidth_per_sm: float = 128 * 1.53e9
    shared_mem_per_sm: int = 96 * 1024
    #: Unified L1/shared storage per SM; carving out shared memory shrinks
    #: the L1 (the paper's Section VI-A trade-off).
    l1_capacity_per_sm: int = 128 * 1024
    max_threads_per_sm: int = 2048
    max_warps_per_sm: int = 64
    max_blocks_per_sm: int = 32
    registers_per_sm: int = 65536
    max_threads_per_block: int = 1024
    #: CUDA allocation guarantee: every cudaMalloc is at least 256B aligned.
    allocation_alignment: int = 256
    #: Memory transaction granularity (one L2 sector).
    sector_bytes: int = 32
    #: Warp instructions issued per SM per cycle (4 schedulers on Volta).
    issue_width: int = 4
    #: Resident warps per SM needed to hide DRAM latency / reach peak BW.
    warps_to_saturate: int = 16
    #: Fraction of vendor-peak DRAM bandwidth achievable by tuned kernels.
    dram_efficiency: float = 0.82
    #: Fixed cost to launch a kernel (driver + grid setup), in seconds.
    launch_overhead_s: float = 2.0e-6
    #: Number of SMs addressed round-robin by the first scheduling wave
    #: before wrapping to the second block per SM (Volta: 40 TPCs x 2).
    scheduler_row_width: int = field(default=0)

    def __post_init__(self) -> None:
        if self.scheduler_row_width == 0:
            object.__setattr__(self, "scheduler_row_width", self.num_sms // 2)

    @property
    def fma_per_sm_per_cycle(self) -> float:
        """FP32 FMA lanes per SM per cycle implied by the peak rating."""
        return self.fp32_peak_flops / (2.0 * self.num_sms * self.core_clock_hz)

    @property
    def effective_dram_bandwidth(self) -> float:
        """DRAM bandwidth achievable by a well-tuned streaming kernel."""
        return self.dram_bandwidth * self.dram_efficiency

    def peak_fraction(self, flops: float, seconds: float) -> float:
        """Fraction of single-precision peak achieved by ``flops`` in ``seconds``."""
        if seconds <= 0.0:
            return 0.0
        return flops / seconds / self.fp32_peak_flops


#: Nvidia Tesla V100-SXM2-16GB — the paper's primary benchmarking device.
V100 = DeviceSpec(
    name="Tesla V100-SXM2-16GB",
    num_sms=80,
    core_clock_hz=1.53e9,
    fp32_peak_flops=15.7e12,
    dram_bandwidth=900e9,
    dram_capacity=16 * 1024**3,
    l2_capacity=6 * 1024**2,
)

#: Nvidia GeForce GTX 1080 — used in Table III to show the sparse Transformer
#: fits where the dense model runs out of memory.
GTX1080 = DeviceSpec(
    name="GeForce GTX 1080",
    num_sms=20,
    core_clock_hz=1.73e9,
    fp32_peak_flops=8.87e12,
    dram_bandwidth=320e9,
    dram_capacity=8 * 1024**3,
    l2_capacity=2 * 1024**2,
    l2_bandwidth=1.0e12,
    shared_bandwidth_per_sm=128 * 1.73e9,
    shared_mem_per_sm=96 * 1024,
    max_blocks_per_sm=32,
    warps_to_saturate=16,
    scheduler_row_width=20,
)


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by (case-insensitive) short name."""
    table = {"v100": V100, "gtx1080": GTX1080, "1080": GTX1080}
    try:
        return table[name.lower().replace(" ", "").replace("-", "")]
    except KeyError as exc:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(table)}"
        ) from exc
