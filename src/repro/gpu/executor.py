"""Kernel-launch executor: turns per-block cost vectors into a runtime.

A kernel implementation (ours or a baseline) describes one launch as a
:class:`KernelLaunch` — a grid of thread blocks, per-block resource usage,
and per-block counted costs (FMA instructions, warp instructions issued,
DRAM/L2/shared-memory bytes). The executor:

1. computes occupancy (resident blocks per SM),
2. converts each block's costs into a duration using a roofline with a
   latency-hiding factor tied to occupancy,
3. schedules the blocks with the Volta scheduler model, and
4. rolls everything up into an :class:`ExecutionResult`.

This is the single place where counted work becomes time; every experiment
in the paper is regenerated through this path, so relative results across
kernels come from their counted work, never from per-experiment constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .device import DeviceSpec
from .memory import latency_hiding_factor
from .occupancy import BlockResources, Occupancy, compute_occupancy
from .scheduler import ScheduleResult, simulate_schedule


@dataclass
class BlockCosts:
    """Per-thread-block counted costs, vectorized over the whole grid.

    Every field is either a scalar (uniform across blocks) or an array of
    shape ``(n_blocks,)``.

    - ``fma_instructions``: warp-level FMA instructions issued (predicated
      lanes still occupy the instruction, so divergence is charged here).
    - ``other_instructions``: every non-FMA warp instruction issued (loads,
      stores, integer/address arithmetic, prelude, masking, reductions).
    - ``dram_bytes`` / ``l2_bytes``: bytes serviced by DRAM / by L2 hits.
    - ``l1_bytes``: bytes serviced by L1 hits (on Volta the L1 shares the
      shared-memory data path, so these are charged together).
    - ``smem_bytes``: shared-memory bytes moved (stores + loads).
    """

    fma_instructions: np.ndarray | float = 0.0
    other_instructions: np.ndarray | float = 0.0
    dram_bytes: np.ndarray | float = 0.0
    l2_bytes: np.ndarray | float = 0.0
    l1_bytes: np.ndarray | float = 0.0
    smem_bytes: np.ndarray | float = 0.0

    def broadcast(self, n_blocks: int) -> "BlockCosts":
        """Return a copy with every field as a float64 ``(n_blocks,)`` array."""
        def expand(v: np.ndarray | float) -> np.ndarray:
            arr = np.asarray(v, dtype=np.float64)
            if arr.ndim == 0:
                return np.full(n_blocks, float(arr))
            if arr.shape != (n_blocks,):
                raise ValueError(
                    f"cost vector shape {arr.shape} != grid size ({n_blocks},)"
                )
            return arr

        return BlockCosts(
            fma_instructions=expand(self.fma_instructions),
            other_instructions=expand(self.other_instructions),
            dram_bytes=expand(self.dram_bytes),
            l2_bytes=expand(self.l2_bytes),
            l1_bytes=expand(self.l1_bytes),
            smem_bytes=expand(self.smem_bytes),
        )


@dataclass
class KernelLaunch:
    """One kernel launch: a grid of blocks plus their costs and resources."""

    name: str
    n_blocks: int
    resources: BlockResources
    costs: BlockCosts
    #: Useful floating-point operations (for throughput reporting only).
    flops: float = 0.0
    #: Fraction of the SM's issue/math rate an irregular kernel sustains
    #: once latency is hidden: gather-dependent loads, address chains, and
    #: divergence keep sparse kernels off the dense kernels' pipelines.
    #: Calibrated once per kernel family, never per experiment.
    pipeline_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.n_blocks <= 0:
            raise ValueError("a launch needs at least one thread block")
        if not 0.0 < self.pipeline_efficiency <= 1.0:
            raise ValueError("pipeline_efficiency must be in (0, 1]")

    def batched(self, h: int) -> "KernelLaunch":
        """Scale the grid along z for ``h`` shared-topology batch items.

        Each item contributes an identical slab of thread blocks (same
        per-block costs and resources — the topology is shared, so the work
        distribution repeats exactly), so the cost vectors tile ``h`` times
        and the grid grows to ``h * n_blocks``. The whole stack goes down
        in ONE launch: ``h - 1`` per-launch overheads are amortized away
        relative to dispatching the items one by one, which is exactly the
        paper's Section VII-C1 batching argument.
        """
        if h <= 0:
            raise ValueError("batch size must be positive")
        if h == 1:
            return self
        costs = self.costs.broadcast(self.n_blocks)
        return KernelLaunch(
            name=f"{self.name}_x{h}",
            n_blocks=self.n_blocks * h,
            resources=self.resources,
            costs=BlockCosts(
                fma_instructions=np.tile(costs.fma_instructions, h),
                other_instructions=np.tile(costs.other_instructions, h),
                dram_bytes=np.tile(costs.dram_bytes, h),
                l2_bytes=np.tile(costs.l2_bytes, h),
                l1_bytes=np.tile(costs.l1_bytes, h),
                smem_bytes=np.tile(costs.smem_bytes, h),
            ),
            flops=self.flops * h,
            pipeline_efficiency=self.pipeline_efficiency,
        )


#: Phase names, in attribution-priority order (ties go to the earliest).
PHASE_NAMES = ("compute", "l1", "l2", "dram", "imbalance", "overhead")


@dataclass(frozen=True)
class PhaseTimes:
    """Attribution of one launch's simulated runtime to kernel phases.

    Each block's serial time is charged entirely to its bottleneck phase
    (the roofline term that set its duration): ``compute`` (FMA issue /
    instruction issue), ``l1`` (shared-memory/L1 data path), ``l2``, or
    ``dram``. Dividing the per-phase busy time by the number of execution
    slots gives the perfectly-balanced share of the makespan; whatever the
    scheduler adds on top is ``imbalance`` (load-imbalance idle time,
    Figure 7's quantity), and the fixed launch cost is ``overhead``.

    Invariant: the six components sum to the launch's ``runtime_s`` exactly
    (up to float rounding) — the report layer asserts this within 1%.
    """

    compute_s: float = 0.0
    l1_s: float = 0.0
    l2_s: float = 0.0
    dram_s: float = 0.0
    imbalance_s: float = 0.0
    overhead_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (
            self.compute_s + self.l1_s + self.l2_s + self.dram_s
            + self.imbalance_s + self.overhead_s
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "compute": self.compute_s,
            "l1": self.l1_s,
            "l2": self.l2_s,
            "dram": self.dram_s,
            "imbalance": self.imbalance_s,
            "overhead": self.overhead_s,
        }

    def __add__(self, other: "PhaseTimes") -> "PhaseTimes":
        return PhaseTimes(
            compute_s=self.compute_s + other.compute_s,
            l1_s=self.l1_s + other.l1_s,
            l2_s=self.l2_s + other.l2_s,
            dram_s=self.dram_s + other.dram_s,
            imbalance_s=self.imbalance_s + other.imbalance_s,
            overhead_s=self.overhead_s + other.overhead_s,
        )

    def with_overhead(self, seconds: float) -> "PhaseTimes":
        """Copy with extra serial (non-kernel) time in the overhead phase."""
        from dataclasses import replace

        return replace(self, overhead_s=self.overhead_s + seconds)

    def bottleneck(self) -> str:
        """Coarse classification of where this launch's time went:
        ``"compute"`` (FMA/issue), ``"memory"`` (l1 + l2 + dram data
        paths), or ``"overhead"`` (imbalance + launch cost) — whichever
        bucket dominates. Ties break toward memory, then compute: on a
        roofline, a balanced kernel is the memory-bound regime's edge."""
        memory = self.l1_s + self.l2_s + self.dram_s
        other = self.imbalance_s + self.overhead_s
        if memory >= self.compute_s and memory >= other:
            return "memory"
        if self.compute_s >= other:
            return "compute"
        return "overhead"


@dataclass
class ExecutionResult:
    """Simulated outcome of one or more kernel launches."""

    name: str
    runtime_s: float
    flops: float
    dram_bytes: float
    l2_bytes: float
    smem_bytes: float
    n_blocks: int
    occupancy: Occupancy | None
    l1_bytes: float = 0.0
    schedule: ScheduleResult | None = None
    #: Individual launch results when this aggregates a multi-kernel op.
    children: list["ExecutionResult"] = field(default_factory=list)
    #: Per-phase attribution of ``runtime_s`` (None for results built
    #: outside the executor, e.g. unpickled from an old plan store).
    phases: PhaseTimes | None = None

    @property
    def throughput_flops(self) -> float:
        """Useful FLOP/s (0 when runtime is 0)."""
        return self.flops / self.runtime_s if self.runtime_s > 0 else 0.0

    def peak_fraction(self, device: DeviceSpec) -> float:
        return self.throughput_flops / device.fp32_peak_flops

    def add_overhead(self, seconds: float) -> "ExecutionResult":
        """Copy with extra serial time (e.g. early-exit scheduler drag)."""
        if seconds < 0:
            raise ValueError("overhead must be non-negative")
        from dataclasses import replace

        phases = getattr(self, "phases", None)
        return replace(
            self,
            runtime_s=self.runtime_s + seconds,
            phases=phases.with_overhead(seconds) if phases is not None else None,
        )

    @staticmethod
    def sequence(name: str, parts: list["ExecutionResult"]) -> "ExecutionResult":
        """Combine launches executed back-to-back (e.g. transpose + SDDMM)."""
        if not parts:
            raise ValueError("need at least one launch to sequence")
        part_phases = [getattr(p, "phases", None) for p in parts]
        phases = None
        if all(p is not None for p in part_phases):
            phases = part_phases[0]
            for p in part_phases[1:]:
                phases = phases + p
        return ExecutionResult(
            name=name,
            runtime_s=sum(p.runtime_s for p in parts),
            flops=sum(p.flops for p in parts),
            dram_bytes=sum(p.dram_bytes for p in parts),
            l2_bytes=sum(p.l2_bytes for p in parts),
            smem_bytes=sum(p.smem_bytes for p in parts),
            l1_bytes=sum(p.l1_bytes for p in parts),
            n_blocks=sum(p.n_blocks for p in parts),
            occupancy=parts[0].occupancy,
            children=list(parts),
            phases=phases,
        )


#: Observers called at the top of every :func:`execute` with
#: ``(launch, device)``. The reliability layer's fault injector registers
#: here to fail or perturb launches *inside* the simulated executor (its
#: ``site="executor"`` faults) — an observer may raise
#: :class:`~repro.reliability.errors.KernelLaunchError` to abort the launch
#: exactly where a real ``cudaLaunchKernel`` would fail.
_LAUNCH_OBSERVERS: list[Callable[[KernelLaunch, DeviceSpec], None]] = []


def register_launch_observer(
    observer: Callable[[KernelLaunch, DeviceSpec], None],
) -> None:
    """Install a callback invoked before every simulated launch."""
    if observer not in _LAUNCH_OBSERVERS:
        _LAUNCH_OBSERVERS.append(observer)


def unregister_launch_observer(
    observer: Callable[[KernelLaunch, DeviceSpec], None],
) -> None:
    """Remove a previously installed launch observer (missing is a no-op)."""
    try:
        _LAUNCH_OBSERVERS.remove(observer)
    except ValueError:
        pass


#: Observers called at the bottom of every :func:`execute` with
#: ``(launch, device, result)`` — after scheduling, with the phase
#: attribution attached. The observability layer's kernel-phase profiler
#: registers here. Like launch observers, a raising completion observer
#: propagates to the caller but never corrupts the observer list.
_COMPLETION_OBSERVERS: list[
    Callable[[KernelLaunch, DeviceSpec, ExecutionResult], None]
] = []


def register_completion_observer(
    observer: Callable[[KernelLaunch, DeviceSpec, ExecutionResult], None],
) -> None:
    """Install a callback invoked after every simulated launch completes."""
    if observer not in _COMPLETION_OBSERVERS:
        _COMPLETION_OBSERVERS.append(observer)


def unregister_completion_observer(
    observer: Callable[[KernelLaunch, DeviceSpec, ExecutionResult], None],
) -> None:
    """Remove a completion observer (missing is a no-op)."""
    try:
        _COMPLETION_OBSERVERS.remove(observer)
    except ValueError:
        pass


def execute(launch: KernelLaunch, device: DeviceSpec) -> ExecutionResult:
    """Simulate one kernel launch on ``device`` and return its result."""
    for observer in tuple(_LAUNCH_OBSERVERS):
        observer(launch, device)
    occ = compute_occupancy(launch.resources, device)
    costs = launch.costs.broadcast(launch.n_blocks)

    # Blocks actually resident per SM: capped by how many the grid provides.
    waves = -(-launch.n_blocks // device.num_sms)
    resident = min(occ.blocks_per_sm, waves)
    resident_warps = resident * occ.warps_per_block
    hide = latency_hiding_factor(resident_warps, device)

    clock = device.core_clock_hz
    warp_fma_per_cycle = device.fma_per_sm_per_cycle / device.warp_size
    math_t = costs.fma_instructions / (warp_fma_per_cycle * clock)
    issue_t = (costs.fma_instructions + costs.other_instructions) / (
        device.issue_width * clock
    )
    smem_t = (costs.smem_bytes + costs.l1_bytes) / device.shared_bandwidth_per_sm
    dram_t = costs.dram_bytes * device.num_sms / device.effective_dram_bandwidth
    l2_t = costs.l2_bytes * device.num_sms / device.l2_bandwidth

    rate = hide * launch.pipeline_efficiency
    serial = np.maximum.reduce([math_t, issue_t, smem_t, dram_t, l2_t]) / rate
    # An SM time-shares its resident blocks, so its finish time is the sum
    # of their serial times at the SM's full rate: schedule at SM
    # granularity (occupancy already shaped the rate via latency hiding).
    # This is what makes guided self-scheduling work — a heavy block
    # sharing an SM with light ones drains as a unit of SM time, not as an
    # independent slot.
    sched = simulate_schedule(serial, device, 1)
    runtime = sched.makespan + device.launch_overhead_s

    # Phase attribution: charge each block's serial time to its bottleneck
    # roofline term, normalized by the schedule's slot count; the makespan's
    # excess over that balanced share is scheduler-imbalance idle time.
    per_phase = np.stack([np.maximum(math_t, issue_t), smem_t, l2_t, dram_t])
    bottleneck = np.argmax(per_phase, axis=0)
    busy = np.bincount(bottleneck, weights=serial, minlength=4)
    n_slots = device.num_sms  # simulate_schedule(serial, device, 1) slots
    balanced = float(np.sum(serial)) / n_slots
    phases = PhaseTimes(
        compute_s=float(busy[0]) / n_slots,
        l1_s=float(busy[1]) / n_slots,
        l2_s=float(busy[2]) / n_slots,
        dram_s=float(busy[3]) / n_slots,
        imbalance_s=max(0.0, sched.makespan - balanced),
        overhead_s=device.launch_overhead_s,
    )

    result = ExecutionResult(
        name=launch.name,
        runtime_s=runtime,
        flops=launch.flops,
        dram_bytes=float(np.sum(costs.dram_bytes)),
        l2_bytes=float(np.sum(costs.l2_bytes)),
        smem_bytes=float(np.sum(costs.smem_bytes)),
        l1_bytes=float(np.sum(costs.l1_bytes)),
        n_blocks=launch.n_blocks,
        occupancy=occ,
        schedule=sched,
        phases=phases,
    )
    for observer in tuple(_COMPLETION_OBSERVERS):
        observer(launch, device, result)
    return result
