"""Thread-block scheduling: the reverse-engineered Volta scheduler + a
greedy discrete-event makespan simulation.

Section V-C1 of the paper reverse engineers the Volta thread-block scheduler:
blocks in the first wave land on SM

    sm_idx = 2 * (block_idx mod 40) + (block_idx / 40) mod 2

(for an 80-SM part; ``block_idx = blockIdx.x + blockIdx.y * gridDim.x``), and
after the first wave blocks are dispatched in ``block_idx`` order as
resources free up. The row-swizzle load-balancing heuristics are designed
around exactly this behaviour, so the simulator reproduces it: the first wave
is placed by the closed-form mapping and the remainder by an online greedy
("first free execution slot gets the next block") discrete-event simulation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .device import DeviceSpec


def volta_first_wave_sm(block_idx: np.ndarray | int, device: DeviceSpec) -> np.ndarray:
    """SM index receiving ``block_idx`` in the first wave (Volta mapping).

    Vectorized over ``block_idx``. Only meaningful for indices smaller than
    the first-wave size (``num_sms * blocks_per_sm``); larger indices wrap
    the same round-robin pattern, matching observed hardware behaviour.
    """
    idx = np.asarray(block_idx, dtype=np.int64)
    if np.any(idx < 0):
        raise ValueError("block indices must be non-negative")
    row = device.scheduler_row_width
    return (2 * (idx % row) + (idx // row) % 2) % device.num_sms


def linear_block_index(
    block_x: np.ndarray | int, block_y: np.ndarray | int, grid_dim_x: int
) -> np.ndarray:
    """``block_idx = blockIdx.x + blockIdx.y * gridDim.x`` (paper, Sec. V-C1)."""
    return np.asarray(block_x, dtype=np.int64) + np.asarray(
        block_y, dtype=np.int64
    ) * int(grid_dim_x)


#: Beyond this many blocks per slot the discrete-event schedule is replaced
#: by its converged work-conserving bound (greedy self-balances at depth).
SATURATION_ROUNDS = 32


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one launch's blocks onto execution slots."""

    makespan: float
    #: Busy time accumulated by each slot, shape ``(n_slots,)``.
    slot_busy: np.ndarray
    #: Finish time of each block in issue order, shape ``(n_blocks,)``.
    block_finish: np.ndarray

    @property
    def imbalance(self) -> float:
        """Makespan divided by the perfectly-balanced lower bound (>= 1)."""
        ideal = float(np.sum(self.slot_busy)) / len(self.slot_busy)
        if ideal <= 0.0:
            return 1.0
        return self.makespan / ideal


def simulate_schedule(
    durations: np.ndarray,
    device: DeviceSpec,
    blocks_per_sm: int,
) -> ScheduleResult:
    """Greedy discrete-event schedule of blocks onto SM execution slots.

    Each SM hosts ``blocks_per_sm`` concurrent block slots. The first wave is
    placed with the Volta closed-form mapping; every later block is issued,
    in order, to the slot that frees first (ties broken by slot id, matching
    the in-order resource-driven dispatch the paper describes).
    """
    durations = np.ascontiguousarray(durations, dtype=np.float64)
    if durations.ndim != 1:
        raise ValueError("durations must be a 1-D array")
    if np.any(durations < 0):
        raise ValueError("durations must be non-negative")
    n_blocks = len(durations)
    n_slots = device.num_sms * blocks_per_sm
    slot_busy = np.zeros(n_slots)
    block_finish = np.zeros(n_blocks)
    if n_blocks == 0:
        return ScheduleResult(0.0, slot_busy, block_finish)

    if n_blocks > SATURATION_ROUNDS * n_slots:
        # Deeply-saturated launch: every slot processes many blocks, so the
        # greedy schedule self-balances and the makespan converges to the
        # work-conserving bound plus a sub-round tail.
        total = float(durations.sum())
        tail = 0.5 * (float(durations.mean()) + float(durations.max()))
        makespan = total / n_slots + tail
        slot_busy[:] = total / n_slots
        np.cumsum(durations, out=block_finish)
        block_finish /= n_slots
        return ScheduleResult(makespan, slot_busy, block_finish)

    if durations.max() == durations.min():
        # Uniform blocks: the greedy schedule degenerates to round-robin
        # layers; compute it in closed form (hot path for balanced kernels).
        d = float(durations[0])
        per_slot = np.full(n_slots, n_blocks // n_slots, dtype=np.int64)
        per_slot[: n_blocks % n_slots] += 1
        block_finish = (np.arange(n_blocks) // n_slots + 1) * d
        slot_busy = per_slot * d
        return ScheduleResult(float(block_finish[-1]), slot_busy, block_finish)

    # First wave: round-robin over SMs via the Volta mapping, filling each
    # SM's slots one layer at a time.
    first_wave = min(n_blocks, n_slots)
    idx = np.arange(first_wave)
    sm = volta_first_wave_sm(idx % device.num_sms, device)
    layer = idx // device.num_sms
    slots = sm * blocks_per_sm + layer

    heap: list[tuple[float, int]] = []
    for b in range(first_wave):
        s = int(slots[b])
        finish = durations[b]
        slot_busy[s] += durations[b]
        block_finish[b] = finish
        heapq.heappush(heap, (finish, s))

    for b in range(first_wave, n_blocks):
        free_at, s = heapq.heappop(heap)
        finish = free_at + durations[b]
        slot_busy[s] += durations[b]
        block_finish[b] = finish
        heapq.heappush(heap, (finish, s))

    makespan = float(np.max(block_finish))
    return ScheduleResult(makespan, slot_busy, block_finish)
