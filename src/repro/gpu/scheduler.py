"""Thread-block scheduling: the reverse-engineered Volta scheduler + a
greedy discrete-event makespan simulation.

Section V-C1 of the paper reverse engineers the Volta thread-block scheduler:
blocks in the first wave land on SM

    sm_idx = 2 * (block_idx mod 40) + (block_idx / 40) mod 2

(for an 80-SM part; ``block_idx = blockIdx.x + blockIdx.y * gridDim.x``), and
after the first wave blocks are dispatched in ``block_idx`` order as
resources free up. The row-swizzle load-balancing heuristics are designed
around exactly this behaviour, so the simulator reproduces it: the first wave
is placed by the closed-form mapping and the remainder by an online greedy
("first free execution slot gets the next block") discrete-event simulation.

Two implementations of the greedy remainder are provided:

- :func:`simulate_schedule` — the production path. The first wave is placed
  in one vectorized step and later blocks are assigned in *rounds*: slots
  are ordered by ``(free time, slot id)`` with one stable argsort, and the
  longest prefix of pending blocks whose greedy choice is provably the
  next untouched slot is committed in bulk. Each accepted block performs
  the same two-operand additions as the event loop, in the same order, so
  the results are bitwise identical to the oracle.
- :func:`simulate_schedule_reference` — the original per-block ``heapq``
  event loop, kept as the equivalence oracle for tests and as executable
  documentation of the hardware behaviour being modelled.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .device import DeviceSpec


def volta_first_wave_sm(block_idx: np.ndarray | int, device: DeviceSpec) -> np.ndarray:
    """SM index receiving ``block_idx`` in the first wave (Volta mapping).

    Vectorized over ``block_idx``. Only meaningful for indices smaller than
    the first-wave size (``num_sms * blocks_per_sm``); larger indices wrap
    the same round-robin pattern, matching observed hardware behaviour.
    """
    idx = np.asarray(block_idx, dtype=np.int64)
    if np.any(idx < 0):
        raise ValueError("block indices must be non-negative")
    row = device.scheduler_row_width
    return (2 * (idx % row) + (idx // row) % 2) % device.num_sms


def linear_block_index(
    block_x: np.ndarray | int, block_y: np.ndarray | int, grid_dim_x: int
) -> np.ndarray:
    """``block_idx = blockIdx.x + blockIdx.y * gridDim.x`` (paper, Sec. V-C1)."""
    return np.asarray(block_x, dtype=np.int64) + np.asarray(
        block_y, dtype=np.int64
    ) * int(grid_dim_x)


#: Beyond this many blocks per slot the discrete-event schedule is replaced
#: by its converged work-conserving bound (greedy self-balances at depth).
SATURATION_ROUNDS = 32


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one launch's blocks onto execution slots."""

    makespan: float
    #: Busy time accumulated by each slot, shape ``(n_slots,)``, float64.
    slot_busy: np.ndarray
    #: Finish time of each block in issue order, shape ``(n_blocks,)``, float64.
    block_finish: np.ndarray

    @property
    def imbalance(self) -> float:
        """Makespan divided by the perfectly-balanced lower bound (>= 1)."""
        ideal = float(np.sum(self.slot_busy)) / len(self.slot_busy)
        if ideal <= 0.0:
            return 1.0
        return self.makespan / ideal


def _validated_durations(durations: np.ndarray) -> np.ndarray:
    durations = np.ascontiguousarray(durations, dtype=np.float64)
    if durations.ndim != 1:
        raise ValueError("durations must be a 1-D array")
    if np.any(durations < 0):
        raise ValueError("durations must be non-negative")
    return durations


def _saturated_result(durations: np.ndarray, n_slots: int) -> ScheduleResult:
    """Deeply-saturated launch: every slot processes many blocks, so the
    greedy schedule self-balances and the makespan converges to the
    work-conserving bound plus a sub-round tail."""
    total = float(durations.sum())
    tail = 0.5 * (float(durations.mean()) + float(durations.max()))
    makespan = total / n_slots + tail
    slot_busy = np.full(n_slots, total / n_slots, dtype=np.float64)
    block_finish = np.empty(len(durations), dtype=np.float64)
    np.cumsum(durations, out=block_finish)
    block_finish /= n_slots
    return ScheduleResult(makespan, slot_busy, block_finish)


def _uniform_result(durations: np.ndarray, n_slots: int) -> ScheduleResult:
    """Uniform blocks: the greedy schedule degenerates to round-robin
    layers; compute it in closed form (hot path for balanced kernels)."""
    n_blocks = len(durations)
    d = float(durations[0])
    per_slot = np.full(n_slots, n_blocks // n_slots, dtype=np.int64)
    per_slot[: n_blocks % n_slots] += 1
    block_finish = ((np.arange(n_blocks) // n_slots + 1) * d).astype(np.float64)
    slot_busy = per_slot.astype(np.float64) * d
    return ScheduleResult(float(block_finish[-1]), slot_busy, block_finish)


def _first_wave_slots(
    n_blocks: int, device: DeviceSpec, blocks_per_sm: int
) -> np.ndarray:
    """Slot of each first-wave block: round-robin over SMs via the Volta
    mapping, filling each SM's slots one layer at a time."""
    first_wave = min(n_blocks, device.num_sms * blocks_per_sm)
    idx = np.arange(first_wave)
    sm = volta_first_wave_sm(idx % device.num_sms, device)
    layer = idx // device.num_sms
    return sm * blocks_per_sm + layer


def simulate_schedule(
    durations: np.ndarray,
    device: DeviceSpec,
    blocks_per_sm: int,
) -> ScheduleResult:
    """Greedy discrete-event schedule of blocks onto SM execution slots.

    Each SM hosts ``blocks_per_sm`` concurrent block slots. The first wave is
    placed with the Volta closed-form mapping; every later block is issued,
    in order, to the slot that frees first (ties broken by slot id, matching
    the in-order resource-driven dispatch the paper describes).

    The remainder is computed with a vectorized round-based simulation that
    is bitwise-equivalent to the per-block event loop kept in
    :func:`simulate_schedule_reference`.
    """
    durations = _validated_durations(durations)
    n_blocks = len(durations)
    n_slots = device.num_sms * blocks_per_sm
    if n_blocks == 0:
        return ScheduleResult(
            0.0, np.zeros(n_slots), np.zeros(0, dtype=np.float64)
        )
    if n_blocks > SATURATION_ROUNDS * n_slots:
        return _saturated_result(durations, n_slots)
    if durations.max() == durations.min():
        return _uniform_result(durations, n_slots)

    slots0 = _first_wave_slots(n_blocks, device, blocks_per_sm)
    first_wave = len(slots0)
    d0 = durations[:first_wave]

    slot_busy = np.zeros(n_slots)
    block_finish = np.empty(n_blocks, dtype=np.float64)
    block_finish[:first_wave] = d0

    # The event loop's state is one heap *entry per first-wave block*, not
    # per slot: if the Volta mapping sends two first-wave blocks to one slot
    # the entries act as independent capacity, and a slot the mapping never
    # touches never participates. For real parts (even SM counts) the
    # mapping is a permutation of the slots, so entries == slots and the
    # state can be indexed by slot id directly — the fast path below.
    counts = np.bincount(slots0, minlength=n_slots)
    permutation = first_wave == n_slots and int(counts.max()) <= 1

    # Round-based greedy: order entries once per round by (free time, slot
    # id) — the heap's lexicographic tie-break — then commit the longest
    # prefix of pending blocks for which the greedy choice is certain.
    # Block i of a round may take the i-th earliest entry only if that entry
    # frees *strictly before* every finish time created earlier in the
    # round (otherwise a just-refilled entry would win, or the tie-break
    # needs the full ordering — both resolved by the next round's sort).
    # Each accepted block performs the identical `free + d` and `busy += d`
    # operations as the event loop, in the same order, so the results match
    # the oracle bitwise, not just approximately.
    if permutation:
        slot_free = np.zeros(n_slots)
        slot_free[slots0] = d0
        slot_busy[slots0] = d0
        b = first_wave
        while b < n_blocks:
            # Entry id == slot id here, so a stable argsort of the free
            # times alone reproduces the (free, slot) ordering.
            order = np.argsort(slot_free, kind="stable")
            free = np.take(slot_free, order)
            take = min(n_slots, n_blocks - b)
            d = durations[b : b + take]
            finish = free[:take] + d
            # running_min[i] = min finish created by blocks 0..i of the
            # round; block i+1 is undecided unless its entry frees earlier.
            running_min = np.minimum.accumulate(finish)
            undecided = free[1:take] >= running_min[: take - 1]
            first = int(undecided.argmax()) if take > 1 else 0
            k = first + 1 if take > 1 and undecided[first] else take
            sel = order[:k]
            slot_free[sel] = finish[:k]
            slot_busy[sel] += d[:k]
            block_finish[b : b + k] = finish[:k]
            b += k
    else:
        entry_free = d0.copy()
        entry_slot = slots0.astype(np.int64)
        np.add.at(slot_busy, entry_slot, d0)
        b = first_wave
        while b < n_blocks:
            order = np.lexsort((entry_slot, entry_free))
            free = np.take(entry_free, order)
            take = min(first_wave, n_blocks - b)
            d = durations[b : b + take]
            finish = free[:take] + d
            running_min = np.minimum.accumulate(finish)
            undecided = free[1:take] >= running_min[: take - 1]
            first = int(undecided.argmax()) if take > 1 else 0
            k = first + 1 if take > 1 and undecided[first] else take
            sel = order[:k]
            entry_free[sel] = finish[:k]
            # np.add.at is unbuffered: duplicate slots accumulate in block
            # order, exactly like the event loop's per-block `+=`.
            np.add.at(slot_busy, entry_slot[sel], d[:k])
            block_finish[b : b + k] = finish[:k]
            b += k

    return ScheduleResult(float(np.max(block_finish)), slot_busy, block_finish)


def simulate_schedule_reference(
    durations: np.ndarray,
    device: DeviceSpec,
    blocks_per_sm: int,
) -> ScheduleResult:
    """The original per-block ``heapq`` event loop (equivalence oracle).

    Shares the empty/saturated/uniform closed forms with
    :func:`simulate_schedule` — the two differ only in how the greedy
    remainder after the first wave is computed.
    """
    durations = _validated_durations(durations)
    n_blocks = len(durations)
    n_slots = device.num_sms * blocks_per_sm
    if n_blocks == 0:
        return ScheduleResult(
            0.0, np.zeros(n_slots), np.zeros(0, dtype=np.float64)
        )
    if n_blocks > SATURATION_ROUNDS * n_slots:
        return _saturated_result(durations, n_slots)
    if durations.max() == durations.min():
        return _uniform_result(durations, n_slots)

    slots0 = _first_wave_slots(n_blocks, device, blocks_per_sm)
    first_wave = len(slots0)
    slot_busy = np.zeros(n_slots)
    block_finish = np.zeros(n_blocks, dtype=np.float64)

    heap: list[tuple[float, int]] = []
    for b in range(first_wave):
        s = int(slots0[b])
        finish = durations[b]
        slot_busy[s] += durations[b]
        block_finish[b] = finish
        heapq.heappush(heap, (finish, s))

    for b in range(first_wave, n_blocks):
        free_at, s = heapq.heappop(heap)
        finish = free_at + durations[b]
        slot_busy[s] += durations[b]
        block_finish[b] = finish
        heapq.heappush(heap, (finish, s))

    makespan = float(np.max(block_finish))
    return ScheduleResult(makespan, slot_busy, block_finish)
