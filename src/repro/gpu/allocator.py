"""Capacity-aware caching device allocator: the finite-HBM model.

:mod:`repro.gpu.memory` models memory *traffic*; this module models memory
*capacity*. A :class:`DeviceAllocator` owns one device's DRAM
(:attr:`~repro.gpu.device.DeviceSpec.dram_capacity` by default, overridable
with the ``REPRO_HBM_CAP`` environment variable) and hands out
:class:`Allocation` handles the dispatch layer charges tensors, CSR
metadata, and resident kernel plans against.

The design follows the caching allocators real frameworks use (PyTorch's
``CUDACachingAllocator`` shape):

- **segments** stand in for ``cudaMalloc`` regions. A cache miss reserves a
  new segment (small requests are rounded up to :data:`MIN_SEGMENT_BYTES`
  so they pool); reserving beyond capacity raises
  :class:`~repro.reliability.errors.DeviceOOMError`.
- **blocks** subdivide segments. ``free()`` does not return memory to the
  device — the block goes onto a size-bucketed free list (the *cache*) and
  is merged with free neighbours, so a steady-state workload stops paying
  reservation churn entirely.
- **allocation** first searches the free lists (best-fit over power-of-two
  buckets, splitting when the remainder is worth keeping), and only then
  reserves a new segment.
- :meth:`flush_cache` releases fully-free segments back to the device —
  stage one of the OOM degradation ladder (DESIGN.md Section 14).

Accounting invariant (property-tested in tests/test_allocator.py)::

    allocated_bytes + cached_bytes == reserved_bytes <= capacity

Fragmentation is reported as ``1 - largest_available / total_available``
where *available* counts both cached blocks and unreserved capacity: 0.0
means one request could take everything that is free, 1.0 means the free
bytes are unusable dust.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field

import numpy as np

from ..reliability.errors import DeviceOOMError
from .device import DeviceSpec

#: Environment variable overriding every allocator's capacity (bytes, or a
#: suffixed size like ``4G`` / ``512M``); ``off`` disables accounting.
CAP_ENV_VAR = "REPRO_HBM_CAP"

#: Smallest segment reserved from the device; sub-MiB requests pool into
#: shared segments instead of reserving one region each.
MIN_SEGMENT_BYTES = 1 << 20

#: A free block is split when the remainder is at least this large;
#: smaller tails stay attached to the allocation (internal fragmentation).
MIN_SPLIT_BYTES = 512

_UNITS = {
    "k": 1024,
    "kb": 1024,
    "kib": 1024,
    "m": 1024**2,
    "mb": 1024**2,
    "mib": 1024**2,
    "g": 1024**3,
    "gb": 1024**3,
    "gib": 1024**3,
    "t": 1024**4,
    "tb": 1024**4,
    "tib": 1024**4,
}


def parse_capacity(text: str) -> int | None:
    """Parse a human capacity string (``"4G"``, ``"512m"``, ``"1073741824"``).

    Unit suffixes are case-insensitive (``4G`` == ``4g``; ``KB``/``KiB``
    style spellings both mean powers of 1024). Returns ``None`` for
    ``"off"`` / ``"none"`` / ``""`` (accounting disabled). Raises
    ``ValueError`` for anything unintelligible or negative — a negative
    capacity is always a configuration mistake, not a request for zero.
    """
    raw = text.strip().lower()
    if raw in ("", "off", "none", "unlimited"):
        return None
    value: int | None = None
    for suffix, factor in sorted(_UNITS.items(), key=lambda kv: -len(kv[0])):
        if raw.endswith(suffix):
            value = int(float(raw[: -len(suffix)]) * factor)
            break
    if value is None:
        value = int(raw)
    if value < 0:
        raise ValueError(f"capacity must be non-negative, got {text!r}")
    return value


def format_capacity(nbytes: int | None) -> str:
    """Render a capacity the way :func:`parse_capacity` reads it.

    Picks the largest power-of-1024 unit that divides ``nbytes`` exactly, so
    ``parse_capacity(format_capacity(x)) == x`` for every valid capacity
    (``None`` round-trips through ``"off"``).
    """
    if nbytes is None:
        return "off"
    if nbytes < 0:
        raise ValueError(f"capacity must be non-negative, got {nbytes}")
    for suffix, factor in (("T", 1024**4), ("G", 1024**3),
                           ("M", 1024**2), ("K", 1024)):
        if nbytes and nbytes % factor == 0:
            return f"{nbytes // factor}{suffix}"
    return str(nbytes)


def capacity_from_env(default: int) -> int | None:
    """The effective capacity honouring ``REPRO_HBM_CAP``.

    Returns ``default`` when the variable is unset, ``None`` when it
    explicitly disables accounting, else the parsed override.
    """
    raw = os.environ.get(CAP_ENV_VAR)
    if raw is None:
        return default
    return parse_capacity(raw)


def aligned_nbytes(nbytes: int, alignment: int) -> int:
    """Round a request up to the device allocation alignment."""
    if nbytes <= 0:
        return alignment
    return -(-nbytes // alignment) * alignment


def estimate_nbytes(obj, _depth: int = 0) -> int:
    """Rough device footprint of a plan-like object.

    Sums every reachable numpy array's ``nbytes`` (swizzled row orders,
    ROMA extents, per-block cost vectors...) plus a small fixed overhead
    per object — enough fidelity for capacity accounting without a
    serialization pass. Recursion is bounded so self-referential plans
    cannot loop.
    """
    if _depth > 4 or obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (int, float, bool, str, bytes)):
        return 0
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(estimate_nbytes(item, _depth + 1) for item in obj)
    if isinstance(obj, dict):
        return sum(estimate_nbytes(v, _depth + 1) for v in obj.values())
    inner = getattr(obj, "__dict__", None)
    if inner is None:
        return 0
    return 256 + sum(estimate_nbytes(v, _depth + 1) for v in inner.values())


class _Block:
    """One contiguous range inside a segment."""

    __slots__ = ("segment", "offset", "size", "free")

    def __init__(self, segment: "_Segment", offset: int, size: int) -> None:
        self.segment = segment
        self.offset = offset
        self.size = size
        self.free = False


class _Segment:
    """One reserved device region (the ``cudaMalloc`` stand-in)."""

    __slots__ = ("base", "size", "blocks")

    def __init__(self, base: int, size: int) -> None:
        self.base = base
        self.size = size
        self.blocks: list[_Block] = []

    @property
    def all_free(self) -> bool:
        return all(b.free for b in self.blocks)


@dataclass
class Allocation:
    """A live device allocation (``free()`` it through its allocator)."""

    id: int
    nbytes: int  #: rounded (charged) size, not the requested size
    requested: int
    tag: str
    _block: _Block | None = field(default=None, repr=False, compare=False)

    @property
    def freed(self) -> bool:
        return self._block is None


class DeviceAllocator:
    """Size-bucketed caching allocator over one device's finite DRAM.

    ``capacity=None`` reads ``REPRO_HBM_CAP`` and falls back to the
    device's ``dram_capacity``. All byte counters are plain ints; the hot
    path (cached hit) is one bucket lookup and a list pop.
    """

    def __init__(
        self, device: DeviceSpec, capacity: int | None = None
    ) -> None:
        self.device = device
        if capacity is None:
            capacity = capacity_from_env(device.dram_capacity)
            if capacity is None:
                capacity = device.dram_capacity
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.alignment = int(device.allocation_alignment)
        self._segments: list[_Segment] = []
        #: bucket exponent -> free blocks (the cache).
        self._free_lists: dict[int, list[_Block]] = {}
        self._next_base = 0
        self._ids = itertools.count(1)
        # Gauges.
        self.allocated_bytes = 0
        self.cached_bytes = 0
        self.peak_allocated_bytes = 0
        self.peak_reserved_bytes = 0
        #: Live bytes per tag ("tensor", "plan", "workspace", ...).
        self.allocated_by_tag: dict[str, int] = {}
        # Counters.
        self.alloc_count = 0
        self.free_count = 0
        self.segment_count = 0
        self.oom_count = 0
        self.flush_count = 0
        self.flushed_bytes = 0

    # ------------------------------------------------------------------
    # Derived gauges
    # ------------------------------------------------------------------
    @property
    def reserved_bytes(self) -> int:
        """Bytes reserved from the device (in-use + cached)."""
        return self.allocated_bytes + self.cached_bytes

    @property
    def free_bytes(self) -> int:
        """Bytes a request could still obtain (cached + unreserved)."""
        return self.capacity - self.allocated_bytes

    def largest_available(self) -> int:
        """The biggest single request that could currently succeed."""
        largest = self.capacity - self.reserved_bytes
        for blocks in self._free_lists.values():
            for block in blocks:
                if block.size > largest:
                    largest = block.size
        return largest

    @property
    def fragmentation(self) -> float:
        """``1 - largest_available / free_bytes`` (0 when nothing is free)."""
        free = self.free_bytes
        if free <= 0:
            return 0.0
        return 1.0 - self.largest_available() / free

    # ------------------------------------------------------------------
    # Allocate / free
    # ------------------------------------------------------------------
    def _bucket(self, size: int) -> int:
        return max(MIN_SPLIT_BYTES, size).bit_length()

    def _push_free(self, block: _Block) -> None:
        block.free = True
        self._free_lists.setdefault(self._bucket(block.size), []).append(block)
        self.cached_bytes += block.size

    def _pop_free(self, block: _Block) -> None:
        bucket = self._free_lists.get(self._bucket(block.size))
        if bucket is not None:
            try:
                bucket.remove(block)
            except ValueError:
                pass
        block.free = False
        self.cached_bytes -= block.size

    def _find_cached(self, size: int) -> _Block | None:
        """Best-fit over the size buckets >= the request's bucket."""
        for exp in range(self._bucket(size), 64):
            blocks = self._free_lists.get(exp)
            if not blocks:
                continue
            best = None
            for block in blocks:
                if block.size >= size and (
                    best is None or block.size < best.size
                ):
                    best = block
            if best is not None:
                return best
        return None

    def _split(self, block: _Block, size: int) -> _Block:
        """Carve ``size`` bytes off ``block``, re-caching the remainder."""
        self._pop_free(block)
        remainder = block.size - size
        if remainder >= max(MIN_SPLIT_BYTES, self.alignment):
            tail = _Block(block.segment, block.offset + size, remainder)
            segment_blocks = block.segment.blocks
            tail_index = segment_blocks.index(block) + 1
            segment_blocks.insert(tail_index, tail)
            block.size = size
            self._push_free(tail)
        return block

    def allocate(self, nbytes: int, tag: str = "tensor") -> Allocation:
        """Charge ``nbytes`` (rounded to the device alignment) of DRAM.

        Raises :class:`DeviceOOMError` when neither the free-list cache nor
        the unreserved capacity can satisfy the request; the error carries
        an allocator snapshot for diagnosis.
        """
        size = aligned_nbytes(int(nbytes), self.alignment)
        block = self._find_cached(size)
        if block is not None:
            block = self._split(block, size)
        else:
            segment_size = max(size, MIN_SEGMENT_BYTES)
            if self.reserved_bytes + segment_size > self.capacity:
                # A tight fit may still be reservable without the pooling
                # round-up.
                segment_size = size
            if self.reserved_bytes + segment_size > self.capacity:
                self.oom_count += 1
                raise DeviceOOMError(
                    f"device OOM on {self.device.name}: requested "
                    f"{size} bytes with {self.free_bytes} free "
                    f"({self.cached_bytes} cached) of {self.capacity}",
                    requested=size,
                    capacity=self.capacity,
                    snapshot=self.snapshot(),
                )
            segment = _Segment(self._next_base, segment_size)
            self._next_base += segment_size
            self._segments.append(segment)
            self.segment_count += 1
            block = _Block(segment, 0, segment_size)
            segment.blocks.append(block)
            if segment_size > size:
                self._push_free(block)
                block = self._split(block, size)
        self.allocated_bytes += block.size
        self.peak_allocated_bytes = max(
            self.peak_allocated_bytes, self.allocated_bytes
        )
        self.peak_reserved_bytes = max(
            self.peak_reserved_bytes, self.reserved_bytes
        )
        self.alloc_count += 1
        self.allocated_by_tag[tag] = (
            self.allocated_by_tag.get(tag, 0) + block.size
        )
        return Allocation(
            id=next(self._ids),
            nbytes=block.size,
            requested=int(nbytes),
            tag=tag,
            _block=block,
        )

    def free(self, allocation: Allocation) -> None:
        """Return an allocation to the cache (idempotent)."""
        block = allocation._block
        if block is None:
            return
        allocation._block = None
        self.allocated_bytes -= block.size
        self.allocated_by_tag[allocation.tag] -= block.size
        self.free_count += 1
        self._push_free(block)
        self._merge_neighbours(block)

    def _merge_neighbours(self, block: _Block) -> None:
        """Coalesce ``block`` with free neighbours in its segment."""
        blocks = block.segment.blocks
        index = blocks.index(block)
        # Merge the right neighbour in, then fold into the left neighbour.
        if index + 1 < len(blocks) and blocks[index + 1].free:
            right = blocks[index + 1]
            self._pop_free(block)
            self._pop_free(right)
            block.size += right.size
            blocks.pop(index + 1)
            self._push_free(block)
        if index > 0 and blocks[index - 1].free:
            left = blocks[index - 1]
            self._pop_free(left)
            self._pop_free(block)
            left.size += block.size
            blocks.pop(index)
            self._push_free(left)

    # ------------------------------------------------------------------
    # Cache management (stage one of the OOM ladder)
    # ------------------------------------------------------------------
    def flush_cache(self) -> int:
        """Release every fully-free segment back to the device.

        Returns the bytes released. Partially-used segments stay reserved
        (their free blocks remain cached) — freeing those requires evicting
        the live allocations first, which is the ladder's stage two.
        """
        released = 0
        keep: list[_Segment] = []
        for segment in self._segments:
            if segment.all_free:
                for block in segment.blocks:
                    self._pop_free(block)
                released += segment.size
            else:
                keep.append(segment)
        self._segments = keep
        self.flush_count += 1
        self.flushed_bytes += released
        return released

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def would_fit(self, *nbytes: int) -> bool:
        """Whether allocations of these sizes could fit an *empty* device
        (the static Table III check: alignment-rounded sum vs capacity)."""
        total = sum(aligned_nbytes(int(n), self.alignment) for n in nbytes)
        return total <= self.capacity

    def check_invariant(self) -> None:
        """Assert the accounting identity (tests call this after every op)."""
        segment_total = sum(s.size for s in self._segments)
        if self.allocated_bytes + self.cached_bytes != segment_total:
            raise AssertionError(
                f"allocated {self.allocated_bytes} + cached "
                f"{self.cached_bytes} != reserved {segment_total}"
            )
        if segment_total > self.capacity:
            raise AssertionError(
                f"reserved {segment_total} exceeds capacity {self.capacity}"
            )
        cached = sum(
            b.size for blocks in self._free_lists.values() for b in blocks
        )
        if cached != self.cached_bytes:
            raise AssertionError(
                f"free-list bytes {cached} != cached gauge {self.cached_bytes}"
            )

    def snapshot(self) -> dict:
        """Plain-dict gauge/counter snapshot (attached to OOM errors)."""
        return {
            "device": self.device.name,
            "capacity_bytes": self.capacity,
            "allocated_bytes": self.allocated_bytes,
            "cached_bytes": self.cached_bytes,
            "reserved_bytes": self.reserved_bytes,
            "free_bytes": self.free_bytes,
            "peak_allocated_bytes": self.peak_allocated_bytes,
            "peak_reserved_bytes": self.peak_reserved_bytes,
            "largest_available_bytes": self.largest_available(),
            "fragmentation": self.fragmentation,
            "segments": len(self._segments),
            "allocated_by_tag": dict(self.allocated_by_tag),
            "alloc_count": self.alloc_count,
            "free_count": self.free_count,
            "oom_count": self.oom_count,
            "flush_count": self.flush_count,
            "flushed_bytes": self.flushed_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeviceAllocator({self.device.name!r}, "
            f"allocated={self.allocated_bytes}, cached={self.cached_bytes}, "
            f"capacity={self.capacity})"
        )
