"""CUDA occupancy calculator.

Occupancy — how many thread blocks are resident per SM — controls how well a
kernel can hide memory latency. The paper's 1-D tiling argument is an
occupancy argument: sharding the output into more, smaller blocks lets small
problems fill the machine. This module reproduces the standard occupancy
computation from the CUDA occupancy calculator: resident blocks are limited
by the per-SM thread, warp, block, register, and shared-memory budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec


@dataclass(frozen=True)
class BlockResources:
    """Per-thread-block resource requirements of a compiled kernel."""

    threads: int
    shared_mem_bytes: int = 0
    registers_per_thread: int = 32

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise ValueError("a thread block needs at least one thread")
        if self.shared_mem_bytes < 0 or self.registers_per_thread < 0:
            raise ValueError("resources must be non-negative")

    def warps(self, device: DeviceSpec) -> int:
        """Warps per block (partial warps round up to a full scheduler slot)."""
        return -(-self.threads // device.warp_size)


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy computation for one kernel on one device."""

    blocks_per_sm: int
    warps_per_block: int
    limiting_factor: str

    @property
    def resident_warps(self) -> int:
        return self.blocks_per_sm * self.warps_per_block

    def fraction(self, device: DeviceSpec) -> float:
        """Occupancy as a fraction of the device's maximum resident warps."""
        return self.resident_warps / device.max_warps_per_sm


def compute_occupancy(res: BlockResources, device: DeviceSpec) -> Occupancy:
    """Resident blocks per SM for a kernel with the given resource usage."""
    if res.threads > device.max_threads_per_block:
        raise ValueError(
            f"{res.threads} threads/block exceeds device limit "
            f"{device.max_threads_per_block}"
        )
    if res.shared_mem_bytes > device.shared_mem_per_sm:
        raise ValueError(
            f"{res.shared_mem_bytes}B shared memory exceeds per-SM capacity "
            f"{device.shared_mem_per_sm}B"
        )

    warps = res.warps(device)
    limits = {
        "blocks": device.max_blocks_per_sm,
        "threads": device.max_threads_per_sm // res.threads,
        "warps": device.max_warps_per_sm // warps,
    }
    if res.shared_mem_bytes > 0:
        limits["shared_memory"] = device.shared_mem_per_sm // res.shared_mem_bytes
    if res.registers_per_thread > 0:
        limits["registers"] = device.registers_per_sm // (
            res.registers_per_thread * res.threads
        )

    limiting = min(limits, key=lambda k: limits[k])
    blocks = limits[limiting]
    if blocks <= 0:
        raise ValueError(
            f"kernel cannot run: zero occupancy (limited by {limiting})"
        )
    return Occupancy(
        blocks_per_sm=blocks, warps_per_block=warps, limiting_factor=limiting
    )
