"""Sparse recurrent-network problem grid (Section VII-A2, Figure 10).

The MergeSpmm and ASpT kernels only support restricted shapes (batch
divisible by 32; rows divisible by 256), so the paper compares on RNN, GRU,
and LSTM weight-matrix problems, "generated ... with random uniform
sparsity", sweeping state sizes 1k-8k, sparsities 70/80/90 %, and batch
sizes 32/128.

The M dimension follows the gate structure of each cell: an RNN weight is
``h x h``, a GRU stacks 3 gates (``3h x h``), an LSTM 4 (``4h x h``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csr import CSRMatrix
from .spec import MatrixSpec

#: Gate multiplier per cell type.
CELL_GATES = {"rnn": 1, "gru": 3, "lstm": 4}

STATE_SIZES = (1024, 2048, 4096, 8192)
SPARSITIES = (0.7, 0.8, 0.9)
BATCH_SIZES = (32, 128)


@dataclass(frozen=True)
class RnnProblem:
    """One benchmark point of the Figure 10 grid."""

    cell: str
    state_size: int
    sparsity: float
    batch_size: int
    seed: int

    @property
    def m(self) -> int:
        return CELL_GATES[self.cell] * self.state_size

    @property
    def k(self) -> int:
        return self.state_size

    @property
    def n(self) -> int:
        return self.batch_size

    @property
    def label(self) -> str:
        """The paper's "M/K/N/sparsity" problem label."""
        return f"{self.m}/{self.k}/{self.n}/{int(self.sparsity * 100)}%"

    def spec(self) -> MatrixSpec:
        """Uniform-random sparsity: the row-length CoV of a Bernoulli mask,
        std/mean = sqrt((1-p)/(p*K))."""
        density = 1.0 - self.sparsity
        cov = float(np.sqrt(self.sparsity / (density * self.k)))
        return MatrixSpec(
            name=f"{self.cell}/{self.label}",
            model=self.cell,
            layer="recurrent_weight",
            rows=self.m,
            cols=self.k,
            sparsity=self.sparsity,
            row_cov=cov,
            seed=self.seed,
        )

    def materialize(self) -> CSRMatrix:
        return self.spec().materialize()

    def dense_operand(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed + 1)
        return rng.standard_normal((self.k, self.n)).astype(np.float32)


def problem_grid(
    cells: tuple[str, ...] = ("rnn", "gru", "lstm"),
    state_sizes: tuple[int, ...] = STATE_SIZES,
    sparsities: tuple[float, ...] = SPARSITIES,
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
    seed: int = 7,
) -> list[RnnProblem]:
    """The full Figure 10 grid (72 problems by default)."""
    for cell in cells:
        if cell not in CELL_GATES:
            raise ValueError(f"unknown cell type {cell!r}")
    problems = []
    counter = 0
    for cell in cells:
        for h in state_sizes:
            for sp in sparsities:
                for b in batch_sizes:
                    problems.append(
                        RnnProblem(cell, h, sp, b, seed=seed + counter)
                    )
                    counter += 1
    return problems
