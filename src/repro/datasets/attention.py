"""Sparse attention masks for the Transformer experiment (Figure 11).

The paper's sparse Transformer uses a fixed attention connectivity: "a dense
band of size 256 along the diagonal and random sparsity off-diagonal sampled
with probability inversely proportional to the distance from the diagonal",
with off-diagonal sparsity 95 %. The upper triangle is masked (causal
attention), the mask is shared across heads and layers, and it stays fixed
through training.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix


def banded_random_mask(
    sequence_length: int,
    band: int = 256,
    off_diagonal_sparsity: float = 0.95,
    seed: int = 0,
) -> CSRMatrix:
    """Build the Figure 11 attention mask as a CSR indicator matrix.

    Row ``i`` may attend to column ``j <= i`` (causal). Columns within
    ``band`` of the diagonal are always connected; farther columns are kept
    with probability ``(1 - off_diagonal_sparsity) * band / (i - j)`` —
    inversely proportional to distance, scaled so the *average* off-diagonal
    density matches the target on long rows.
    """
    if sequence_length <= 0:
        raise ValueError("sequence length must be positive")
    if band <= 0:
        raise ValueError("band must be positive")
    if not 0.0 <= off_diagonal_sparsity < 1.0:
        raise ValueError("off-diagonal sparsity must be in [0, 1)")
    rng = np.random.default_rng(seed)
    density = 1.0 - off_diagonal_sparsity

    row_offsets = np.zeros(sequence_length + 1, dtype=np.int64)
    all_cols: list[np.ndarray] = []
    for i in range(sequence_length):
        band_start = max(0, i - band + 1)
        cols = [np.arange(band_start, i + 1)]
        if band_start > 0:
            # Keep probability ∝ 1/distance, normalized per row so the
            # expected off-band density hits the target.
            distance = i - np.arange(band_start)  # in (band-1, i]
            weights = 1.0 / distance
            p = np.minimum(1.0, density * band_start * weights / weights.sum())
            keep = rng.random(band_start) < p
            cols.insert(0, np.nonzero(keep)[0])
        row_cols = np.concatenate(cols)
        all_cols.append(row_cols)
        row_offsets[i + 1] = row_offsets[i] + len(row_cols)

    column_indices = np.concatenate(all_cols).astype(np.int32)
    values = np.ones(int(row_offsets[-1]), dtype=np.float32)
    return CSRMatrix(
        (sequence_length, sequence_length), row_offsets, column_indices, values
    )


def dense_causal_mask(sequence_length: int) -> CSRMatrix:
    """All-to-all causal attention (the dense baseline's connectivity)."""
    rows = np.arange(1, sequence_length + 1, dtype=np.int64)
    row_offsets = np.zeros(sequence_length + 1, dtype=np.int64)
    np.cumsum(rows, out=row_offsets[1:])
    column_indices = np.concatenate(
        [np.arange(i + 1) for i in range(sequence_length)]
    ).astype(np.int32)
    values = np.ones(int(row_offsets[-1]), dtype=np.float32)
    return CSRMatrix(
        (sequence_length, sequence_length), row_offsets, column_indices, values
    )


def mask_statistics(mask: CSRMatrix, band: int = 256) -> dict[str, float]:
    """Summary used to validate Figure 11's construction."""
    n = mask.n_rows
    lengths = mask.row_lengths
    tri = n * (n + 1) / 2.0
    off_band = 0
    off_band_kept = 0
    for i in range(n):
        band_start = max(0, i - band + 1)
        off_band += band_start
        off_band_kept += int(lengths[i]) - (i - band_start + 1)
    return {
        "causal_sparsity": 1.0 - mask.nnz / tri,
        "off_band_density": off_band_kept / off_band if off_band else 0.0,
        "mean_row_length": float(lengths.mean()),
    }
