"""Matrix-property statistics for the Section II study (Figure 2).

The paper characterizes sparse matrices by three properties:

- **sparsity** — fraction of zero entries;
- **average row length** — mean nonzeros per row (work per row);
- **row-length coefficient of variation (CoV)** — std/mean of the row
  lengths, a proxy for load imbalance.

These are computed either from a materialized CSR matrix or directly from a
row-length vector (so whole corpora can be characterized without building
every matrix).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csr import CSRMatrix


@dataclass(frozen=True)
class MatrixStats:
    """The Figure 2 property triple for one matrix."""

    rows: int
    cols: int
    nnz: int
    sparsity: float
    avg_row_length: float
    row_cov: float


def row_length_cov(row_lengths: np.ndarray) -> float:
    """Coefficient of variation of a row-length vector (0 for empty/uniform)."""
    lengths = np.asarray(row_lengths, dtype=np.float64)
    if lengths.size == 0:
        return 0.0
    mean = lengths.mean()
    if mean == 0:
        return 0.0
    return float(lengths.std() / mean)


def stats_from_row_lengths(
    row_lengths: np.ndarray, n_cols: int
) -> MatrixStats:
    """Compute the property triple from row lengths alone."""
    lengths = np.asarray(row_lengths, dtype=np.int64)
    if np.any(lengths < 0) or (lengths.size and lengths.max() > n_cols):
        raise ValueError("row lengths must lie in [0, n_cols]")
    rows = len(lengths)
    nnz = int(lengths.sum())
    total = rows * n_cols
    return MatrixStats(
        rows=rows,
        cols=n_cols,
        nnz=nnz,
        sparsity=1.0 - nnz / total if total else 0.0,
        avg_row_length=nnz / rows if rows else 0.0,
        row_cov=row_length_cov(lengths),
    )


def stats_from_matrix(a: CSRMatrix) -> MatrixStats:
    """Compute the property triple from a materialized CSR matrix."""
    return stats_from_row_lengths(a.row_lengths, a.n_cols)


@dataclass(frozen=True)
class CorpusSummary:
    """Aggregate statistics over a corpus (means of the per-matrix triples)."""

    n_matrices: int
    mean_sparsity: float
    mean_avg_row_length: float
    mean_row_cov: float


def summarize(stats: list[MatrixStats]) -> CorpusSummary:
    """Aggregate per-matrix stats into the Figure 2 corpus summary."""
    if not stats:
        raise ValueError("cannot summarize an empty corpus")
    return CorpusSummary(
        n_matrices=len(stats),
        mean_sparsity=float(np.mean([s.sparsity for s in stats])),
        mean_avg_row_length=float(np.mean([s.avg_row_length for s in stats])),
        mean_row_cov=float(np.mean([s.row_cov for s in stats])),
    )


def contrast(dl: CorpusSummary, sci: CorpusSummary) -> dict[str, float]:
    """The paper's headline ratios: DL matrices are ~13.4x less sparse,
    have ~2.3x longer rows, and ~25x less row-length variation.

    "x times less sparse" follows the paper's convention of comparing the
    *density* (1 - sparsity) of the two corpora.
    """
    return {
        "density_ratio": (1.0 - dl.mean_sparsity) / (1.0 - sci.mean_sparsity),
        "row_length_ratio": dl.mean_avg_row_length / sci.mean_avg_row_length,
        "cov_ratio": sci.mean_row_cov / dl.mean_row_cov,
    }
