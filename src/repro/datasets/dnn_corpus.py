"""Synthetic corpus of deep-learning sparse matrices (Section II).

The paper's dataset holds 3,012 weight matrices from 49 models: ResNet-50
and Transformer trained with four sparsification algorithms at several
sparsity targets (from the study of Gale, Elsen & Hooker 2019). The raw
checkpoints are not redistributable, so per DESIGN.md Section 2 this module
generates a corpus with the same *marginals* the kernels actually see:

- the published layer shapes of ResNet-50's convolutions (as im2col GEMMs)
  and the Transformer base model's attention/FFN projections;
- sparsities spanning the study's 50-98 % range;
- row-length CoV per sparsification algorithm: magnitude pruning and
  state-of-the-art regularizers leave mildly imbalanced rows, while
  variational dropout is noisier.

The generated corpus reproduces Figure 2's aggregate statistics (verified in
``benchmarks/bench_fig02_matrix_study.py``).
"""

from __future__ import annotations

import numpy as np

from .spec import MatrixSpec

#: Sparsification algorithms in the source study, with the row-length CoV
#: their unstructured masks typically exhibit.
ALGORITHMS: dict[str, float] = {
    "magnitude_pruning": 0.16,
    "l0_regularization": 0.22,
    "variational_dropout": 0.42,
    "random_pruning": 0.08,
}

#: Sparsity targets of the source study's sweep.
SPARSITIES = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98)

#: Transformer-base projection shapes (rows, cols) and the sequence-product
#: N dimensions benchmarked (batch 1 and batch 8 of 128-token sequences).
TRANSFORMER_LAYERS: list[tuple[str, int, int]] = (
    [(f"encoder_{i}_attn_{p}", 512, 512) for i in range(6) for p in "qkvo"]
    + [(f"encoder_{i}_ffn_in", 2048, 512) for i in range(6)]
    + [(f"encoder_{i}_ffn_out", 512, 2048) for i in range(6)]
    + [(f"decoder_{i}_attn_{p}", 512, 512) for i in range(6) for p in "qkvo"]
    + [(f"decoder_{i}_ffn_in", 2048, 512) for i in range(6)]
    + [(f"decoder_{i}_ffn_out", 512, 2048) for i in range(6)]
)
TRANSFORMER_BATCH_COLUMNS = (128, 1024)

#: ResNet-50 convolutions as im2col GEMMs: (name, C_out, C_in * kh * kw,
#: spatial H*W at that stage). 1x1 and 3x3 convolutions from each stage.
RESNET_LAYERS: list[tuple[str, int, int, int]] = (
    [(f"stage1_block{i}_1x1a", 64, 256, 3136) for i in range(3)]
    + [(f"stage1_block{i}_3x3", 64, 576, 3136) for i in range(3)]
    + [(f"stage1_block{i}_1x1b", 256, 64, 3136) for i in range(3)]
    + [(f"stage2_block{i}_1x1a", 128, 512, 784) for i in range(4)]
    + [(f"stage2_block{i}_3x3", 128, 1152, 784) for i in range(4)]
    + [(f"stage2_block{i}_1x1b", 512, 128, 784) for i in range(4)]
    + [(f"stage3_block{i}_1x1a", 256, 1024, 196) for i in range(6)]
    + [(f"stage3_block{i}_3x3", 256, 2304, 196) for i in range(6)]
    + [(f"stage3_block{i}_1x1b", 1024, 256, 196) for i in range(6)]
    + [(f"stage4_block{i}_1x1a", 512, 2048, 49) for i in range(3)]
    + [(f"stage4_block{i}_3x3", 512, 4608, 49) for i in range(3)]
    + [(f"stage4_block{i}_1x1b", 2048, 512, 49) for i in range(3)]
    + [
        ("stage1_downsample", 256, 64, 3136),
        ("stage2_downsample", 512, 256, 784),
        ("stage3_downsample", 1024, 512, 196),
        ("stage4_downsample", 2048, 1024, 49),
        ("fc", 1000, 2048, 1),
    ]
)
RESNET_INFERENCE_BATCH = 1
RESNET_TRAINING_BATCH = 256


def _resnet_batch_columns(spatial: int) -> tuple[int, int]:
    """(inference, training) N dimensions; inference padded to a multiple of
    4 for vector memory instructions (Section VII-A1)."""
    infer = RESNET_INFERENCE_BATCH * spatial
    infer += (-infer) % 4
    # The training batch keeps dense-operand sizes manageable for the
    # simulator by capping the spatial product contribution.
    train = min(RESNET_TRAINING_BATCH * spatial, 12544)
    return infer, train


def build_corpus(seed: int = 0) -> list[MatrixSpec]:
    """Generate the full synthetic corpus (3,012 matrix specs, 49 models)."""
    specs: list[MatrixSpec] = []
    rng = np.random.default_rng(seed)
    model_id = 0
    # 4 algorithms x 7 sparsities x (Transformer + ResNet) = 56 model slots;
    # the source study kept 49 models above its quality thresholds, so the
    # 7 weakest (highest-sparsity variational/random variants) are dropped.
    dropped = {
        ("variational_dropout", 0.98, "transformer"),
        ("variational_dropout", 0.98, "resnet50"),
        ("random_pruning", 0.98, "transformer"),
        ("random_pruning", 0.98, "resnet50"),
        ("random_pruning", 0.95, "transformer"),
        ("random_pruning", 0.95, "resnet50"),
        ("variational_dropout", 0.95, "resnet50"),
    }
    for algorithm, base_cov in ALGORITHMS.items():
        for sparsity in SPARSITIES:
            for arch in ("transformer", "resnet50"):
                if (algorithm, sparsity, arch) in dropped:
                    continue
                model = f"{arch}/{algorithm}/s{int(sparsity * 100)}"
                cov = base_cov * (0.8 + 0.4 * rng.random())
                if arch == "transformer":
                    for layer, rows, cols in TRANSFORMER_LAYERS:
                        specs.append(
                            MatrixSpec(
                                name=f"{model}/{layer}",
                                model=model,
                                layer=layer,
                                rows=rows,
                                cols=cols,
                                sparsity=sparsity,
                                row_cov=cov,
                                seed=int(rng.integers(2**31)),
                                batch_columns=TRANSFORMER_BATCH_COLUMNS,
                            )
                        )
                else:
                    for layer, rows, cols, spatial in RESNET_LAYERS:
                        specs.append(
                            MatrixSpec(
                                name=f"{model}/{layer}",
                                model=model,
                                layer=layer,
                                rows=rows,
                                cols=cols,
                                sparsity=sparsity,
                                row_cov=cov,
                                seed=int(rng.integers(2**31)),
                                batch_columns=_resnet_batch_columns(spatial),
                            )
                        )
                model_id += 1
    # The source study's per-model matrix counts vary slightly; trim the
    # synthetic corpus evenly to the paper's exact total of 3,012 matrices.
    target = 3012
    if len(specs) > target:
        keep = np.linspace(0, len(specs) - 1, target).round().astype(int)
        specs = [specs[i] for i in keep]
    return specs


def sample_corpus(
    n: int, seed: int = 0, corpus: list[MatrixSpec] | None = None
) -> list[MatrixSpec]:
    """Deterministic stratified sample of the corpus for benchmarking.

    The full 3,012-matrix sweep is hours of simulation; benchmarks use an
    evenly strided sample that preserves the model/sparsity strata (the
    corpus is generated in stratum order).
    """
    if corpus is None:
        corpus = build_corpus(seed)
    if n <= 0:
        raise ValueError("sample size must be positive")
    if n >= len(corpus):
        return list(corpus)
    idx = np.linspace(0, len(corpus) - 1, n).round().astype(int)
    return [corpus[i] for i in idx]
