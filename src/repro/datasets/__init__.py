"""Workload datasets: the Section II matrix corpora, the RNN problem grid,
attention masks, and CoV-controlled imbalance matrices."""

from . import dnn_corpus, suitesparse
from .attention import banded_random_mask, dense_causal_mask, mask_statistics
from .imbalance import (
    FIG7_K,
    FIG7_M,
    FIG7_N,
    FIG7_SPARSITY,
    NEURAL_NETWORK_COV,
    cov_sweep,
    imbalanced_matrix,
    imbalanced_spec,
)
from .rnn import CELL_GATES, RnnProblem, problem_grid
from .spec import MatrixSpec, materialize_rows, row_lengths_with_cov
from .statistics import (
    CorpusSummary,
    MatrixStats,
    contrast,
    row_length_cov,
    stats_from_matrix,
    stats_from_row_lengths,
    summarize,
)

__all__ = [
    "MatrixSpec",
    "row_lengths_with_cov",
    "materialize_rows",
    "MatrixStats",
    "CorpusSummary",
    "row_length_cov",
    "stats_from_matrix",
    "stats_from_row_lengths",
    "summarize",
    "contrast",
    "dnn_corpus",
    "suitesparse",
    "RnnProblem",
    "problem_grid",
    "CELL_GATES",
    "banded_random_mask",
    "dense_causal_mask",
    "mask_statistics",
    "imbalanced_spec",
    "imbalanced_matrix",
    "cov_sweep",
    "NEURAL_NETWORK_COV",
    "FIG7_M",
    "FIG7_K",
    "FIG7_N",
    "FIG7_SPARSITY",
]
