"""Synthetic SuiteSparse-like corpus (the scientific side of Figure 2).

The paper contrasts its deep-learning matrices with 2,833 matrices from the
SuiteSparse Matrix Collection — circuit simulation, computational fluid
dynamics, quantum chemistry, structural FEM, graphs, and more. Those
matrices are extremely sparse (99 %+), have short rows, and power-law-like
row-length distributions (high CoV).

This generator produces a corpus with the same family structure and the
collection's well-known aggregate marginals, so the Figure 2 comparison can
be regenerated without shipping gigabytes of source matrices.
"""

from __future__ import annotations

import numpy as np

from .spec import MatrixSpec

#: (family, matrix-count weight, dimension range, mean row length range,
#:  row CoV range). Marginals follow the collection's published statistics.
FAMILIES: list[tuple[str, float, tuple[int, int], tuple[float, float], tuple[float, float]]] = [
    ("circuit_simulation", 0.18, (1_000, 60_000), (4.0, 30.0), (3.0, 14.0)),
    ("fem_structural", 0.22, (2_000, 60_000), (60.0, 300.0), (0.3, 2.0)),
    ("cfd", 0.12, (3_000, 80_000), (50.0, 250.0), (0.5, 3.0)),
    ("graph_network", 0.18, (1_000, 120_000), (3.0, 60.0), (4.0, 20.0)),
    ("optimization", 0.15, (1_000, 50_000), (8.0, 80.0), (2.0, 12.0)),
    ("quantum_chemistry", 0.08, (1_000, 30_000), (100.0, 500.0), (0.4, 2.5)),
    ("miscellaneous", 0.07, (500, 40_000), (5.0, 100.0), (1.5, 10.0)),
]

#: Size of the SuiteSparse Matrix Collection snapshot the paper used.
CORPUS_SIZE = 2833


def build_corpus(seed: int = 1, size: int = CORPUS_SIZE) -> list[MatrixSpec]:
    """Generate the synthetic scientific-computing corpus."""
    if size <= 0:
        raise ValueError("corpus size must be positive")
    rng = np.random.default_rng(seed)
    names, weights = zip(*[(f[0], f[1]) for f in FAMILIES])
    weights = np.asarray(weights) / np.sum(weights)
    specs: list[MatrixSpec] = []
    by_name = {f[0]: f for f in FAMILIES}
    counts = rng.multinomial(size, weights)
    for family_name, count in zip(names, counts):
        _, _, dim_range, row_range, cov_range = by_name[family_name]
        for i in range(count):
            # Log-uniform dimensions: the collection spans many decades.
            dim = int(
                np.exp(rng.uniform(np.log(dim_range[0]), np.log(dim_range[1])))
            )
            mean_row = rng.uniform(*row_range)
            cov = rng.uniform(*cov_range)
            nnz = int(mean_row * dim)
            sparsity = 1.0 - nnz / (dim * dim)
            sparsity = min(max(sparsity, 0.0), 1.0 - 1.0 / (dim * dim))
            specs.append(
                MatrixSpec(
                    name=f"suitesparse/{family_name}/{i}",
                    model=f"suitesparse/{family_name}",
                    layer=family_name,
                    rows=dim,
                    cols=dim,
                    sparsity=sparsity,
                    row_cov=cov,
                    seed=int(rng.integers(2**31)),
                )
            )
    return specs
