"""CoV-controlled matrices for the load-balancing study (Figure 7).

Figure 7 benchmarks SpMM (M=8192, K=2048, N=128, 75 % sparse) on matrices
whose row-length coefficient of variation is swept from 0 (perfectly
balanced) upward, comparing the standard row ordering against row-swizzle
load balancing. The paper marks the average CoV of its DNN dataset on the
same axis.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix
from .spec import MatrixSpec

#: The Figure 7 problem configuration.
FIG7_M = 8192
FIG7_K = 2048
FIG7_N = 128
FIG7_SPARSITY = 0.75

#: Average row-length CoV of the paper's DNN dataset (the gray marker line).
NEURAL_NETWORK_COV = 0.31


def imbalanced_spec(
    cov: float,
    m: int = FIG7_M,
    k: int = FIG7_K,
    sparsity: float = FIG7_SPARSITY,
    seed: int = 3,
) -> MatrixSpec:
    """A matrix spec with the target CoV and fixed total nonzeros."""
    if cov < 0:
        raise ValueError("CoV must be non-negative")
    return MatrixSpec(
        name=f"imbalance/cov{cov:.2f}",
        model="imbalance_study",
        layer=f"cov{cov:.2f}",
        rows=m,
        cols=k,
        sparsity=sparsity,
        row_cov=cov,
        seed=seed,
    )


def imbalanced_matrix(cov: float, **kwargs) -> CSRMatrix:
    """Materialize a Figure 7 matrix with the requested imbalance."""
    return imbalanced_spec(cov, **kwargs).materialize()


def cov_sweep(
    covs: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0),
) -> list[MatrixSpec]:
    """The Figure 7 x-axis sweep."""
    return [imbalanced_spec(c) for c in covs]


def dense_operand(n: int = FIG7_N, k: int = FIG7_K, seed: int = 4) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((k, n)).astype(np.float32)
