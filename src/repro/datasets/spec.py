"""Matrix specifications: lazy descriptors that materialize to CSR.

A corpus of thousands of matrices (Section II) is too large to hold
materialized; a :class:`MatrixSpec` carries everything needed to (a) compute
the Figure 2 property statistics from row lengths alone and (b) materialize
the matrix deterministically when a benchmark actually runs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse.csr import CSRMatrix
from .statistics import MatrixStats, stats_from_row_lengths


def row_lengths_with_cov(
    rows: int,
    cols: int,
    target_nnz: int,
    target_cov: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw a row-length vector with a given total and CoV.

    Lengths follow a lognormal shape (sigma chosen so the CoV matches),
    rescaled to the exact total and clipped to ``[0, cols]``. A CoV of 0
    degenerates to near-uniform lengths.
    """
    if target_nnz < 0 or target_nnz > rows * cols:
        raise ValueError("target_nnz out of range")
    if target_cov < 0:
        raise ValueError("CoV must be non-negative")
    if rows == 0 or target_nnz == 0:
        return np.zeros(rows, dtype=np.int64)
    if target_cov == 0.0:
        base = np.full(rows, target_nnz // rows, dtype=np.int64)
        base[: target_nnz % rows] += 1
        return base
    # Clipping to [0, cols] shrinks the realized CoV below the lognormal's
    # nominal one; a few corrective iterations re-inflate sigma to hit the
    # target (within sampling noise).
    sigma = np.sqrt(np.log1p(target_cov**2))
    for _ in range(4):
        raw = rng.lognormal(mean=0.0, sigma=sigma, size=rows)
        lengths = np.clip(raw / raw.sum() * target_nnz, 0, cols)
        mean = lengths.mean()
        realized = lengths.std() / mean if mean else 0.0
        if realized >= 0.97 * target_cov or realized == 0.0:
            break
        sigma *= min(1.6, target_cov / max(realized, 1e-9))
    lengths = np.clip(np.round(lengths), 0, cols).astype(np.int64)
    # Fix the total after rounding/clipping by nudging random rows.
    delta = target_nnz - int(lengths.sum())
    step = 1 if delta > 0 else -1
    while delta != 0:
        candidates = (
            np.nonzero(lengths < cols)[0] if step > 0 else np.nonzero(lengths > 0)[0]
        )
        take = min(abs(delta), len(candidates))
        if take == 0:
            break
        picks = rng.choice(candidates, size=take, replace=False)
        lengths[picks] += step
        delta -= step * take
    return lengths


def materialize_rows(
    row_lengths: np.ndarray,
    cols: int,
    rng: np.random.Generator,
    dtype=np.float32,
) -> CSRMatrix:
    """Build a CSR matrix with the given row lengths and uniform-random,
    sorted column positions; values are standard normal."""
    lengths = np.asarray(row_lengths, dtype=np.int64)
    offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    nnz = int(offsets[-1])
    indices = np.empty(nnz, dtype=np.int64)
    pos = 0
    # Sample each row's columns without replacement by ranking one uniform
    # draw per candidate column. An argpartition pulls each chunk's k-max
    # smallest candidates in O(cols), and only those are fully ranked —
    # chunked so the scratch stays ~32 MB.
    chunk = max(1, (4 << 20) // max(cols, 1))
    for start in range(0, len(lengths), chunk):
        ls = lengths[start : start + chunk]
        kmax = int(ls.max()) if len(ls) else 0
        if kmax == 0:
            continue
        u = rng.random((len(ls), cols))
        if kmax < cols:
            part = np.argpartition(u, kmax - 1, axis=1)[:, :kmax]
            ranks = np.argsort(np.take_along_axis(u, part, axis=1), axis=1)
            order = np.take_along_axis(part, ranks, axis=1)
        else:
            order = np.argsort(u, axis=1)
        for j in range(len(ls)):
            length = int(ls[j])
            if length:
                chosen = np.sort(order[j, :length])
                indices[pos : pos + length] = chosen
                pos += length
    from ..sparse.csr import INDEX_DTYPE_FOR_VALUES

    idt = INDEX_DTYPE_FOR_VALUES[np.dtype(dtype)]
    values = rng.standard_normal(nnz).astype(dtype)
    return CSRMatrix((len(lengths), cols), offsets, indices.astype(idt), values)


@dataclass(frozen=True)
class MatrixSpec:
    """A lazily-materialized sparse matrix in a corpus.

    ``model``/``layer`` tag provenance (which synthetic model and which
    layer shape the matrix represents); ``seed`` makes materialization
    deterministic.
    """

    name: str
    model: str
    layer: str
    rows: int
    cols: int
    sparsity: float
    row_cov: float
    seed: int
    #: Dense-operand column counts to benchmark (training and inference).
    batch_columns: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.sparsity < 1.0:
            raise ValueError(f"sparsity {self.sparsity} out of [0, 1)")
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("matrix dimensions must be positive")

    @property
    def target_nnz(self) -> int:
        return max(1, round((1.0 - self.sparsity) * self.rows * self.cols))

    def row_lengths(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return row_lengths_with_cov(
            self.rows, self.cols, self.target_nnz, self.row_cov, rng
        )

    def stats(self) -> MatrixStats:
        return stats_from_row_lengths(self.row_lengths(), self.cols)

    def materialize(self, dtype=np.float32) -> CSRMatrix:
        rng = np.random.default_rng(self.seed)
        lengths = row_lengths_with_cov(
            self.rows, self.cols, self.target_nnz, self.row_cov, rng
        )
        return materialize_rows(lengths, self.cols, rng, dtype=dtype)
