"""Parallel corpus sweeps with a shared persistent plan store.

A corpus sweep times every kernel on hundreds-to-thousands of matrices
(Section II of the paper sweeps the full DNN corpus). Three properties make
this embarrassingly parallel but annoying in practice, and this module
handles all three:

- **Sharding** — the (spec, kernel, n) task list is chunked across a
  :class:`~concurrent.futures.ProcessPoolExecutor`; chunks keep one spec's
  tasks contiguous so each worker materializes a matrix once per chunk.
- **Warm starts** — every worker attaches the same disk-backed
  :class:`~repro.ops.store.PlanStore` (atomic writes, no locks) and installs
  its context as the process default, so kernel timers resolve plans from
  the shared store. Finished measurements are *also* persisted as
  result-level store entries keyed by the spec's repr, so a warm re-run
  skips even matrix materialization.
- **Streaming + resume** — completed rows are appended to a JSONL file as
  chunks finish; ``resume=True`` reads it back and skips every task already
  measured, so an interrupted 10k-row sweep restarts where it stopped.

``workers <= 1`` runs chunks in-process (no pool), which keeps tests and
debugging simple — monkeypatched kernels and in-memory stores behave
normally there.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .. import ops
from ..datasets.spec import MatrixSpec
from ..gpu.device import DeviceSpec
from .runner import SPMM_BATCHED_KERNELS, SPMM_KERNELS, _measure


@dataclass(frozen=True)
class SweepTask:
    """One (matrix spec, kernel, batch size[, stack depth]) measurement.

    ``h`` is the batched-execution stack depth: ``h > 1`` times the kernel
    through the batched dispatch path (one z-scaled launch for the whole
    stack) instead of the single-operand one.
    """

    spec: MatrixSpec
    kernel: str
    n: int
    h: int = 1
    selector: str = "heuristic"
    #: Simulated device count: ``> 1`` row-shards the measurement across a
    #: :class:`repro.dist.DeviceGroup` of this size.
    devices: int = 1
    #: Dynamic-sparsity churn: ``> 0`` applies this many drop/grow topology
    #: mutations before timing, registering each delta so the dispatch path
    #: exercises incremental plan repair (DESIGN.md §17).
    mutations: int = 0

    @property
    def row_key(self) -> str:
        """Stable identity used for resume bookkeeping and store keys.

        Unbatched heuristic single-device static tasks keep the historical
        ``spec|kernel|n`` form so resume files written before the ``h``,
        ``selector``, ``devices``, and ``mutations`` dimensions existed
        still match; batched tasks append ``|h{h}``, non-heuristic
        selectors append ``|sel:{selector}``, sharded tasks append
        ``|d{devices}``, and mutated tasks append ``|m{mutations}``.
        """
        key = f"{self.spec.name}|{self.kernel}|{self.n}"
        if self.h != 1:
            key = f"{key}|h{self.h}"
        if self.selector != "heuristic":
            key = f"{key}|sel:{self.selector}"
        if self.devices != 1:
            key = f"{key}|d{self.devices}"
        if self.mutations != 0:
            key = f"{key}|m{self.mutations}"
        return key


@dataclass
class SweepReport:
    """What a sweep did and how fast it went."""

    total_tasks: int
    measured: int
    from_store: int
    resumed: int
    failed: int
    #: Rows that died of device memory exhaustion (``status="oom"``) —
    #: counted separately from ``failed`` so a capacity-constrained sweep
    #: is distinguishable from a buggy one.
    oom: int
    workers: int
    wall_s: float
    store_counters: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def rows_per_s(self) -> float:
        done = self.measured + self.from_store
        return done / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict:
        out = asdict(self)
        out["rows_per_s"] = self.rows_per_s
        return out


def build_tasks(
    specs: Iterable[MatrixSpec],
    kernels: Sequence[str],
    n: int | Sequence[int] = 64,
    h: int | Sequence[int] = 1,
    selector: str = "heuristic",
    devices: int | Sequence[int] = 1,
    mutations: int | Sequence[int] = 0,
) -> list[SweepTask]:
    """Expand specs × kernels × batch sizes × stack depths × device counts
    × mutation counts into tasks.

    A spec's own ``batch_columns`` (when set) override the sweep-level
    ``n``; unknown kernel names fail fast here rather than inside a worker.
    Stack depths above 1 require the kernel to have a batched timer.
    ``selector`` picks the config-selection policy every task dispatches
    with (validated here so a typo fails before the pool spins up).
    ``devices`` counts above 1 row-shard the measurement across a
    :class:`repro.dist.DeviceGroup`; the sharded timer has no batched
    variant, so ``h > 1`` cannot combine with ``devices > 1``.
    ``mutations`` counts above 0 run that many drop/grow topology updates
    through the dispatch path before timing (dynamic sparsity; the delta
    registration makes plans repair rather than rebuild); the mutated
    timer is single-stack single-device, so it cannot combine with
    ``h > 1`` or ``devices > 1``.
    """
    from ..tune import resolve_selector

    selector = resolve_selector(selector).name
    stacks = (h,) if isinstance(h, int) else tuple(h)
    device_counts = (
        (devices,) if isinstance(devices, int) else tuple(devices)
    )
    mutation_counts = (
        (mutations,) if isinstance(mutations, int) else tuple(mutations)
    )
    for k in device_counts:
        if k < 1:
            raise ValueError(f"devices must be >= 1, got {k}")
    for m in mutation_counts:
        if m < 0:
            raise ValueError(f"mutations must be >= 0, got {m}")
    needs_batched = any(depth > 1 for depth in stacks)
    if needs_batched and any(k > 1 for k in device_counts):
        raise ValueError(
            "h > 1 cannot combine with devices > 1: the sharded timer "
            "dispatches single-stack SpMM per device"
        )
    if any(m > 0 for m in mutation_counts) and (
        needs_batched or any(k > 1 for k in device_counts)
    ):
        raise ValueError(
            "mutations > 0 cannot combine with h > 1 or devices > 1: the "
            "mutated timer dispatches single-stack SpMM on one device"
        )
    for name in kernels:
        if name not in SPMM_KERNELS:
            raise ValueError(
                f"unknown kernel {name!r}; known: {sorted(SPMM_KERNELS)}"
            )
        if needs_batched and name not in SPMM_BATCHED_KERNELS:
            raise ValueError(
                f"kernel {name!r} has no batched timer; "
                f"batched kernels: {sorted(SPMM_BATCHED_KERNELS)}"
            )
    tasks = []
    batches = (n,) if isinstance(n, int) else tuple(n)
    for spec in specs:
        spec_batches = spec.batch_columns or batches
        for kernel in kernels:
            for cols in spec_batches:
                for depth in stacks:
                    for k in device_counts:
                        for m in mutation_counts:
                            tasks.append(
                                SweepTask(
                                    spec=spec, kernel=kernel, n=int(cols),
                                    h=int(depth), selector=selector,
                                    devices=int(k), mutations=int(m),
                                )
                            )
    return tasks


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-process context cache: (device, store path) -> ExecutionContext.
#: Pool workers populate it once via the initializer; the in-process path
#: reuses the same mechanism.
_WORKER_CONTEXTS: dict[tuple, "ops.ExecutionContext"] = {}

#: Per-process tracing state for traced sweeps: (device, store path) ->
#: (Tracer, PhaseProfiler). Built lazily on the first traced chunk.
_WORKER_TRACERS: dict[tuple, tuple] = {}

#: Per-process DeviceGroup cache for sharded tasks:
#: (device, k, store path) -> DeviceGroup. Groups are long-lived like
#: worker contexts, so shard plans and per-device plan caches stay warm
#: across a chunk's tasks.
_WORKER_GROUPS: dict[tuple, object] = {}


def _worker_group(device: DeviceSpec, k: int, store_path: str | None):
    key = (device, k, store_path)
    group = _WORKER_GROUPS.get(key)
    if group is None:
        from ..dist import DeviceGroup

        group = DeviceGroup(k, device, store=store_path)
        _WORKER_GROUPS[key] = group
    return group


def _worker_context(
    device: DeviceSpec, store_path: str | None
) -> "ops.ExecutionContext":
    key = (device, store_path)
    ctx = _WORKER_CONTEXTS.get(key)
    if ctx is None:
        ctx = ops.ExecutionContext(device, store=store_path)
        _WORKER_CONTEXTS[key] = ctx
    # Bench timers resolve the implicit default context, so the sweep's
    # store-backed context must be installed as that default — on every
    # chunk, not just the first: a reset_default_contexts() between sweeps
    # would otherwise leave timers dispatching through a fresh untraced
    # context while this one (and its tracer) sits idle.
    ops.set_default_context(ctx)
    return ctx


def _init_worker(device: DeviceSpec, store_path: str | None) -> None:
    """Pool initializer: build this process's store-backed context once."""
    _worker_context(device, store_path)


def reset_worker_state() -> None:
    """Drop this process's cached sweep contexts and tracers.

    Long-lived processes (tests, benchmarks) that run several sweeps and
    want each to start cold — empty plan cache, fresh tracer — call this
    between runs. Pool workers never need it: they are created per sweep.
    Detaches every cached :class:`PhaseProfiler` from the global completion
    observers so stale tracers stop collecting launches.
    """
    for _tracer, profiler in _WORKER_TRACERS.values():
        profiler.stop()
    _WORKER_TRACERS.clear()
    _WORKER_CONTEXTS.clear()
    _WORKER_GROUPS.clear()


def _row_store_key(device: DeviceSpec, task: SweepTask) -> tuple:
    # h == 1 / heuristic selection / one device / no mutations keeps the
    # historical 5-tuple so pre-batching store entries still hit; batched
    # tasks append the stack depth (int), non-heuristic selectors the
    # selector name (str), sharded tasks a ("devices", k) pair, and
    # mutated tasks a ("mutations", m) pair — the suffix types all
    # differ, so they cannot collide.
    key = ("sweep_row", device, repr(task.spec), task.kernel, task.n)
    if task.h != 1:
        key = key + (task.h,)
    if task.selector != "heuristic":
        key = key + (task.selector,)
    if task.devices != 1:
        key = key + (("devices", task.devices),)
    if task.mutations != 0:
        key = key + (("mutations", task.mutations),)
    return key


def _worker_tracer(ctx, key: tuple):
    """This process's (tracer, profiler) pair for traced sweeps.

    Built once per worker: the tracer attaches to the worker's context (so
    every dispatch opens a span) and a :class:`PhaseProfiler` streams each
    simulated launch into it as ``launch`` records.
    """
    pair = _WORKER_TRACERS.get(key)
    if pair is None:
        from ..obs.profiler import PhaseProfiler
        from ..obs.tracing import Tracer

        tracer = Tracer(process="sweep-worker")
        profiler = PhaseProfiler(tracer=tracer, device=ctx.device).start()
        ctx.attach_tracer(tracer)
        pair = (tracer, profiler)
        _WORKER_TRACERS[key] = pair
    return pair


def _run_chunk(
    tasks: list[SweepTask],
    device: DeviceSpec,
    store_path: str | None,
    trace: bool = False,
) -> tuple[list[dict], dict]:
    """Measure one chunk of tasks; returns (rows, counter deltas).

    Counters are *deltas* across this chunk — workers are long-lived and
    their stats are cumulative, so the parent sums deltas instead of
    re-reading totals (which would double-count across chunks). With
    ``trace=True`` the chunk's new trace records (each task wrapped in a
    ``sweep.task`` span, plus per-launch phase records) ride back in
    ``deltas["trace"]`` for the parent to merge into one stream.
    """
    ctx = _worker_context(device, store_path)
    tracer = None
    if trace:
        tracer, _ = _worker_tracer(ctx, (device, store_path))
        spans0, launches0 = len(tracer.spans), len(tracer.launches)
    store = ctx.store
    store_before = store.stats.as_dict() if store is not None else {}
    hits0, misses0 = ctx.telemetry.cache_hits, ctx.telemetry.cache_misses

    by_spec: dict[MatrixSpec, list[SweepTask]] = {}
    for task in tasks:
        by_spec.setdefault(task.spec, []).append(task)

    rows: list[dict] = []
    from_store = 0
    try:
        from_store = _measure_chunk(
            by_spec, rows, device, store, store_path, tracer
        )
    except Exception as exc:
        # _measure converts expected failures into failed rows, so anything
        # escaping here is a genuine worker crash: ship the postmortem
        # window before the pool swallows the process. The JSONL artifact
        # (REPRO_FLIGHT_DIR) is the durable record — instance attributes do
        # not survive the pool's exception pickling, but attach() still
        # serves the in-process (workers <= 1) path.
        if ctx.flight is not None:
            ctx.flight.record("worker_crash", "sweep", error=type(exc).__name__)
            ctx.flight.attach(exc, "sweep_worker_crash")
        raise

    store_after = store.stats.as_dict() if store is not None else {}
    deltas = {
        "from_store": from_store,
        "cache_hits": ctx.telemetry.cache_hits - hits0,
        "cache_misses": ctx.telemetry.cache_misses - misses0,
        "store": {
            k: store_after[k] - store_before[k] for k in store_after
        },
    }
    if tracer is not None:
        deltas["trace"] = (
            [tracer.meta_record()]
            + [span.to_record() for span in tracer.spans[spans0:]]
            + tracer.launches[launches0:]
        )
    return rows, deltas


def _measure_chunk(
    by_spec, rows, device, store, store_path, tracer
) -> int:
    """The measurement loop of one chunk; returns the from-store count."""
    from_store = 0
    for spec, group in by_spec.items():
        matrix = None
        for task in group:
            if store is not None:
                cached, status = store.fetch(_row_store_key(device, task))
                if status == "hit":
                    cached["row_key"] = task.row_key
                    rows.append(cached)
                    from_store += 1
                    continue
            if matrix is None:
                matrix = spec.materialize()
            timer = (
                SPMM_KERNELS[task.kernel]
                if task.h == 1
                else SPMM_BATCHED_KERNELS[task.kernel]
            )
            dgroup = None
            if task.devices > 1:
                dgroup = _worker_group(device, task.devices, store_path)
                if tracer is not None:
                    dgroup.attach_tracer(tracer)
            if tracer is not None:
                with tracer.span(
                    "sweep.task",
                    category="sweep",
                    spec=spec.name,
                    kernel=task.kernel,
                    n=task.n,
                    h=task.h,
                    selector=task.selector,
                    devices=task.devices,
                    mutations=task.mutations,
                ):
                    row = asdict(
                        _measure(
                            timer, spec.name, task.kernel, matrix, task.n,
                            device, h=task.h, selector=task.selector,
                            group=dgroup, mutations=task.mutations,
                        )
                    )
            else:
                row = asdict(
                    _measure(
                        timer, spec.name, task.kernel, matrix, task.n, device,
                        h=task.h, selector=task.selector, group=dgroup,
                        mutations=task.mutations,
                    )
                )
            if store is not None and row["status"] == "ok":
                store.save(_row_store_key(device, task), dict(row))
            row["row_key"] = task.row_key
            rows.append(row)
    return from_store


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
def _chunk_tasks(
    tasks: list[SweepTask], chunk_size: int
) -> list[list[SweepTask]]:
    """Pack tasks into chunks, keeping each spec's tasks contiguous.

    A chunk closes once it reaches ``chunk_size``, but never in the middle
    of a spec's group — splitting a group would materialize the matrix in
    two workers.
    """
    by_spec: dict[MatrixSpec, list[SweepTask]] = {}
    for task in tasks:
        by_spec.setdefault(task.spec, []).append(task)
    chunks: list[list[SweepTask]] = []
    current: list[SweepTask] = []
    for group in by_spec.values():
        current.extend(group)
        if len(current) >= chunk_size:
            chunks.append(current)
            current = []
    if current:
        chunks.append(current)
    return chunks


def _load_done_keys(out_path: Path) -> set[str]:
    """Row keys already present in a partial JSONL output (for resume)."""
    done: set[str] = set()
    try:
        text = out_path.read_text()
    except OSError:
        return done
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue  # truncated trailing line from an interrupted run
        key = row.get("row_key")
        if key:
            done.add(key)
    return done


def run_sweep(
    specs: Iterable[MatrixSpec],
    kernels: Sequence[str],
    device: DeviceSpec,
    *,
    n: int | Sequence[int] = 64,
    h: int | Sequence[int] = 1,
    selector: str = "heuristic",
    devices: int | Sequence[int] = 1,
    mutations: int | Sequence[int] = 0,
    workers: int = 1,
    chunk_size: int = 8,
    store_path: str | Path | None = None,
    out_path: str | Path | None = None,
    resume: bool = False,
    trace_path: str | Path | None = None,
) -> tuple[list[dict], SweepReport]:
    """Sweep ``kernels`` over ``specs`` on ``device``; returns (rows, report).

    - ``workers > 1`` shards chunks across a process pool whose workers all
      share ``store_path`` (plans and finished rows persist there);
      ``workers <= 1`` runs in-process.
    - ``out_path`` streams rows to JSONL as chunks complete; with
      ``resume=True`` tasks whose ``row_key`` already appears there are
      skipped and the existing rows are returned alongside the new ones.
    - ``trace_path`` captures a trace of the sweep to JSONL: every measured
      task becomes a ``sweep.task`` span and every simulated launch a phase
      record; worker records merge into the one file as chunks complete,
      keeping their own pid rows (worker wall clocks have per-process
      epochs, so cross-process alignment is approximate). Summarize it with
      ``python -m repro.obs.report <trace_path>``.
    - ``h`` adds a batched-execution dimension: each depth above 1 times
      the kernel through the batched dispatch path (one z-scaled launch
      per stack) and suffixes the row key with ``|h{depth}``.
    - ``selector`` picks the config-selection policy every task dispatches
      with (``"heuristic"``, ``"oracle"``, or ``"tuned"``); non-default
      selectors suffix the row key with ``|sel:{selector}``, so tuned and
      heuristic sweeps resume independently from one JSONL, and tuned
      winners persist in the shared plan store for warm re-runs.
    - ``devices`` adds a multi-GPU sharding dimension: each count above 1
      times the task through a cached :class:`~repro.dist.DeviceGroup`
      (row-sharded, outputs left sharded as in a chained pipeline) and
      suffixes the row key with ``|d{count}``, so sharded and
      single-device sweeps resume independently from one JSONL.
    - ``mutations`` adds a dynamic-sparsity dimension: each count above 0
      applies that many seeded drop/grow topology updates through the
      dispatch path before timing (plans repair incrementally from the
      registered deltas) and suffixes the row key with ``|m{count}``, so
      static and dynamic sweeps resume independently from one JSONL.
    """
    tasks = build_tasks(
        specs, kernels, n=n, h=h, selector=selector, devices=devices,
        mutations=mutations,
    )
    total = len(tasks)
    out_file = Path(out_path) if out_path is not None else None
    store_str = str(store_path) if store_path is not None else None
    trace_file = Path(trace_path) if trace_path is not None else None
    if trace_file is not None:
        from ..obs.tracing import Tracer

        # Fresh stream headed by the driver's meta record; worker records
        # (each chunk ships its own meta) append as chunks complete.
        trace_file.write_text(
            json.dumps(Tracer(process="sweep-driver").meta_record()) + "\n"
        )

    resumed_rows: list[dict] = []
    if out_file is not None and resume:
        done = _load_done_keys(out_file)
        if done:
            for line in out_file.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if row.get("row_key") in done:
                    resumed_rows.append(row)
            tasks = [t for t in tasks if t.row_key not in done]
    elif out_file is not None and not resume:
        out_file.write_text("")  # fresh run truncates any stale partial

    chunks = _chunk_tasks(tasks, chunk_size)
    rows: list[dict] = []
    totals = {
        "from_store": 0,
        "cache_hits": 0,
        "cache_misses": 0,
        "store": {"hits": 0, "misses": 0, "writes": 0, "evictions": 0},
    }

    def _absorb(chunk_rows: list[dict], deltas: dict) -> None:
        rows.extend(chunk_rows)
        totals["from_store"] += deltas["from_store"]
        totals["cache_hits"] += deltas["cache_hits"]
        totals["cache_misses"] += deltas["cache_misses"]
        for k, v in deltas["store"].items():
            totals["store"][k] = totals["store"].get(k, 0) + v
        if out_file is not None and chunk_rows:
            with out_file.open("a") as fh:
                for row in chunk_rows:
                    fh.write(json.dumps(row) + "\n")
        trace_records = deltas.get("trace")
        if trace_file is not None and trace_records:
            with trace_file.open("a") as fh:
                for record in trace_records:
                    fh.write(json.dumps(record) + "\n")

    trace = trace_file is not None
    start = time.perf_counter()
    if workers <= 1 or len(chunks) <= 1:
        for chunk in chunks:
            _absorb(*_run_chunk(chunk, device, store_str, trace))
    else:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(device, store_str),
        ) as pool:
            futures = [
                pool.submit(_run_chunk, chunk, device, store_str, trace)
                for chunk in chunks
            ]
            for future in as_completed(futures):
                _absorb(*future.result())
    wall = time.perf_counter() - start

    oom = sum(1 for row in rows if row.get("status") == "oom")
    failed = sum(
        1 for row in rows if row.get("status") not in ("ok", "oom")
    )
    report = SweepReport(
        total_tasks=total,
        measured=len(rows) - totals["from_store"],
        from_store=totals["from_store"],
        resumed=len(resumed_rows),
        failed=failed,
        oom=oom,
        workers=max(1, workers),
        wall_s=wall,
        store_counters=dict(totals["store"]),
        cache_hits=totals["cache_hits"],
        cache_misses=totals["cache_misses"],
    )
    return resumed_rows + rows, report


def warm_store(
    specs: Iterable[MatrixSpec],
    kernels: Sequence[str],
    device: DeviceSpec,
    store_path: str | Path,
    **kwargs,
) -> SweepReport:
    """Pre-populate a plan store by running the sweep once (no JSONL)."""
    _, report = run_sweep(
        specs, kernels, device, store_path=store_path, **kwargs
    )
    return report
