"""Benchmark runner: cost-only kernel timing over problem lists.

Benchmarks sweep thousands of problems; numerics are covered by the test
suite, so the runner times kernels through the :mod:`repro.ops` cost paths
(topology in, simulated runtime out) without paying for numpy matmuls.
Repeated problems — the same matrix at several batch sizes, or several
kernels on one topology — hit the per-device plan cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .. import ops
from ..core.config import SddmmConfig, SpmmConfig
from ..gpu.device import DeviceSpec
from ..gpu.executor import ExecutionResult
from ..sparse.csr import CSRMatrix

SpmmTimer = Callable[[CSRMatrix, int, DeviceSpec], ExecutionResult]
SddmmTimer = Callable[[CSRMatrix, int, DeviceSpec], ExecutionResult]


# ----------------------------------------------------------------------
# SpMM timers (cost-only)
# ----------------------------------------------------------------------
def sputnik_spmm_time(
    a: CSRMatrix, n: int, device: DeviceSpec, config: SpmmConfig | None = None
) -> ExecutionResult:
    return ops.spmm_cost(a, n, device, config)


def cusparse_spmm_time(
    a: CSRMatrix, n: int, device: DeviceSpec, precision: str = "fp32"
) -> ExecutionResult:
    return ops.spmm_cost(a, n, device, backend="cusparse", precision=precision)


def merge_spmm_time(a: CSRMatrix, n: int, device: DeviceSpec) -> ExecutionResult:
    return ops.spmm_cost(a, n, device, backend="merge")


def aspt_spmm_time(a: CSRMatrix, n: int, device: DeviceSpec) -> ExecutionResult:
    return ops.spmm_cost(a, n, device, backend="aspt")


def dense_spmm_time(a: CSRMatrix, n: int, device: DeviceSpec) -> ExecutionResult:
    """The dense-GEMM equivalent of the sparse problem (Figure 1's line)."""
    return ops.spmm_cost(a, n, device, backend="dense")


# ----------------------------------------------------------------------
# SDDMM timers (cost-only); ``k`` is the dot-product (inner) dimension.
# ----------------------------------------------------------------------
def sputnik_sddmm_time(
    mask: CSRMatrix, k: int, device: DeviceSpec, config: SddmmConfig | None = None
) -> ExecutionResult:
    return ops.sddmm_cost(mask, k, device, config)


def cusparse_sddmm_time(mask: CSRMatrix, k: int, device: DeviceSpec) -> ExecutionResult:
    """Constrained GEMM plus the explicit operand transpose, as timed in
    the paper's benchmarks."""
    return ops.sddmm_cost(mask, k, device, backend="cusparse")


def aspt_sddmm_time(mask: CSRMatrix, k: int, device: DeviceSpec) -> ExecutionResult:
    return ops.sddmm_cost(mask, k, device, backend="aspt")


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
@dataclass
class BenchRow:
    """One (problem, kernel) measurement."""

    problem: str
    kernel: str
    m: int
    k: int
    n: int
    nnz: int
    runtime_s: float
    flops: float

    @property
    def throughput_flops(self) -> float:
        return self.flops / self.runtime_s if self.runtime_s > 0 else 0.0


def run_spmm_suite(
    problems: list[tuple[str, CSRMatrix, int]],
    kernels: dict[str, SpmmTimer],
    device: DeviceSpec,
) -> list[BenchRow]:
    """Time every kernel on every (label, matrix, n) problem."""
    rows = []
    for label, a, n in problems:
        for name, timer in kernels.items():
            result = timer(a, n, device)
            rows.append(
                BenchRow(
                    problem=label,
                    kernel=name,
                    m=a.n_rows,
                    k=a.n_cols,
                    n=n,
                    nnz=a.nnz,
                    runtime_s=result.runtime_s,
                    flops=2.0 * a.nnz * n,
                )
            )
    return rows


def run_sddmm_suite(
    problems: list[tuple[str, CSRMatrix, int]],
    kernels: dict[str, SddmmTimer],
    device: DeviceSpec,
) -> list[BenchRow]:
    """Time every SDDMM kernel on every (label, mask, inner-dim) problem."""
    rows = []
    for label, mask, k in problems:
        for name, timer in kernels.items():
            result = timer(mask, k, device)
            rows.append(
                BenchRow(
                    problem=label,
                    kernel=name,
                    m=mask.n_rows,
                    k=mask.n_cols,
                    n=k,
                    nnz=mask.nnz,
                    runtime_s=result.runtime_s,
                    flops=2.0 * mask.nnz * k,
                )
            )
    return rows
