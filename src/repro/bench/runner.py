"""Benchmark runner: cost-only kernel timing over problem lists.

Benchmarks sweep thousands of problems; numerics are covered by the test
suite, so the runner times kernels through their ``build_launch`` paths
(topology in, simulated runtime out) without paying for numpy matmuls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..baselines import aspt, cusparse
from ..baselines.merge_spmm import spmm_launch as merge_spmm_launch
from ..baselines.cublas import gemm_execution, transpose_execution
from ..core.sddmm import build_launch as sddmm_build_launch
from ..core.spmm import build_launch as spmm_build_launch
from ..core.config import SddmmConfig, SpmmConfig
from ..core.selection import select_sddmm_config, select_spmm_config
from ..gpu.device import DeviceSpec
from ..gpu.executor import ExecutionResult, execute
from ..sparse.csr import CSRMatrix

SpmmTimer = Callable[[CSRMatrix, int, DeviceSpec], ExecutionResult]
SddmmTimer = Callable[[CSRMatrix, int, DeviceSpec], ExecutionResult]


# ----------------------------------------------------------------------
# SpMM timers (cost-only)
# ----------------------------------------------------------------------
def sputnik_spmm_time(
    a: CSRMatrix, n: int, device: DeviceSpec, config: SpmmConfig | None = None
) -> ExecutionResult:
    if config is None:
        precision = "mixed" if a.values.dtype == np.float16 else "fp32"
        config = select_spmm_config(a, n, precision)
    return execute(spmm_build_launch(a, n, config, device), device)


def cusparse_spmm_time(
    a: CSRMatrix, n: int, device: DeviceSpec, precision: str = "fp32"
) -> ExecutionResult:
    return execute(cusparse.spmm_launch(a, n, device, precision), device)


def merge_spmm_time(a: CSRMatrix, n: int, device: DeviceSpec) -> ExecutionResult:
    return execute(merge_spmm_launch(a, n, device), device)


def aspt_spmm_time(a: CSRMatrix, n: int, device: DeviceSpec) -> ExecutionResult:
    launch = aspt._panel_launch(a, n, device, "aspt_spmm", 2.0 * a.nnz * n)
    return execute(launch, device)


def dense_spmm_time(a: CSRMatrix, n: int, device: DeviceSpec) -> ExecutionResult:
    """The dense-GEMM equivalent of the sparse problem (Figure 1's line)."""
    return gemm_execution(a.n_rows, n, a.n_cols, device)


# ----------------------------------------------------------------------
# SDDMM timers (cost-only); ``k`` is the dot-product (inner) dimension.
# ----------------------------------------------------------------------
def sputnik_sddmm_time(
    mask: CSRMatrix, k: int, device: DeviceSpec, config: SddmmConfig | None = None
) -> ExecutionResult:
    if config is None:
        config = select_sddmm_config(k)
    launch, drag = sddmm_build_launch(mask, k, config, device)
    return execute(launch, device).add_overhead(drag)


def cusparse_sddmm_time(mask: CSRMatrix, k: int, device: DeviceSpec) -> ExecutionResult:
    """Constrained GEMM plus the explicit operand transpose, as timed in
    the paper's benchmarks."""
    config = SddmmConfig(nonzeros_per_block=32, vector_width=1, load_balance=False)
    launch, drag = sddmm_build_launch(mask, k, config, device)
    costs = launch.costs.broadcast(launch.n_blocks)
    costs.fma_instructions = costs.fma_instructions * cusparse.SDDMM_GENERIC_FACTOR
    costs.other_instructions = (
        costs.other_instructions * cusparse.SDDMM_GENERIC_FACTOR
    )
    from ..gpu.executor import KernelLaunch

    gemm_part = execute(
        KernelLaunch(
            name="cusparse_constrained_gemm",
            n_blocks=launch.n_blocks,
            resources=launch.resources,
            costs=costs,
            flops=launch.flops,
            pipeline_efficiency=cusparse.PIPELINE_EFFICIENCY,
        ),
        device,
    )
    trans = transpose_execution(mask.n_cols, k, device)
    return ExecutionResult.sequence(
        "cusparse_sddmm+transpose", [trans, gemm_part]
    ).add_overhead(drag)


def aspt_sddmm_time(mask: CSRMatrix, k: int, device: DeviceSpec) -> ExecutionResult:
    launch = aspt._panel_launch(
        mask, k, device, "aspt_sddmm", 2.0 * mask.nnz * k, mode="sddmm"
    )
    return execute(launch, device)


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
@dataclass
class BenchRow:
    """One (problem, kernel) measurement."""

    problem: str
    kernel: str
    m: int
    k: int
    n: int
    nnz: int
    runtime_s: float
    flops: float

    @property
    def throughput_flops(self) -> float:
        return self.flops / self.runtime_s if self.runtime_s > 0 else 0.0


def run_spmm_suite(
    problems: list[tuple[str, CSRMatrix, int]],
    kernels: dict[str, SpmmTimer],
    device: DeviceSpec,
) -> list[BenchRow]:
    """Time every kernel on every (label, matrix, n) problem."""
    rows = []
    for label, a, n in problems:
        for name, timer in kernels.items():
            result = timer(a, n, device)
            rows.append(
                BenchRow(
                    problem=label,
                    kernel=name,
                    m=a.n_rows,
                    k=a.n_cols,
                    n=n,
                    nnz=a.nnz,
                    runtime_s=result.runtime_s,
                    flops=2.0 * a.nnz * n,
                )
            )
    return rows


def run_sddmm_suite(
    problems: list[tuple[str, CSRMatrix, int]],
    kernels: dict[str, SddmmTimer],
    device: DeviceSpec,
) -> list[BenchRow]:
    """Time every SDDMM kernel on every (label, mask, inner-dim) problem."""
    rows = []
    for label, mask, k in problems:
        for name, timer in kernels.items():
            result = timer(mask, k, device)
            rows.append(
                BenchRow(
                    problem=label,
                    kernel=name,
                    m=mask.n_rows,
                    k=mask.n_cols,
                    n=k,
                    nnz=mask.nnz,
                    runtime_s=result.runtime_s,
                    flops=2.0 * mask.nnz * k,
                )
            )
    return rows
