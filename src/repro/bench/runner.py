"""Benchmark runner: cost-only kernel timing over problem lists.

Benchmarks sweep thousands of problems; numerics are covered by the test
suite, so the runner times kernels through the :mod:`repro.ops` cost paths
(topology in, simulated runtime out) without paying for numpy matmuls.
Repeated problems — the same matrix at several batch sizes, or several
kernels on one topology — hit the per-device plan cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .. import ops
from ..core.config import SddmmConfig, SpmmConfig
from ..gpu.device import DeviceSpec
from ..gpu.executor import ExecutionResult
from ..sparse.csr import CSRMatrix

SpmmTimer = Callable[[CSRMatrix, int, DeviceSpec], ExecutionResult]
SddmmTimer = Callable[[CSRMatrix, int, DeviceSpec], ExecutionResult]
BatchedSpmmTimer = Callable[[CSRMatrix, int, int, DeviceSpec], ExecutionResult]


# ----------------------------------------------------------------------
# SpMM timers (cost-only)
# ----------------------------------------------------------------------
def sputnik_spmm_time(
    a: CSRMatrix,
    n: int,
    device: DeviceSpec,
    config: SpmmConfig | None = None,
    *,
    selector: str = "heuristic",
) -> ExecutionResult:
    return ops.spmm_cost(a, n, device, config, selector=selector)


def cusparse_spmm_time(
    a: CSRMatrix,
    n: int,
    device: DeviceSpec,
    precision: str = "fp32",
    *,
    selector: str = "heuristic",
) -> ExecutionResult:
    return ops.spmm_cost(a, n, device, backend="cusparse", precision=precision)


def merge_spmm_time(
    a: CSRMatrix, n: int, device: DeviceSpec, *, selector: str = "heuristic"
) -> ExecutionResult:
    return ops.spmm_cost(a, n, device, backend="merge")


def aspt_spmm_time(
    a: CSRMatrix, n: int, device: DeviceSpec, *, selector: str = "heuristic"
) -> ExecutionResult:
    return ops.spmm_cost(a, n, device, backend="aspt")


def dense_spmm_time(
    a: CSRMatrix, n: int, device: DeviceSpec, *, selector: str = "heuristic"
) -> ExecutionResult:
    """The dense-GEMM equivalent of the sparse problem (Figure 1's line)."""
    return ops.spmm_cost(a, n, device, backend="dense")


# ----------------------------------------------------------------------
# Batched SpMM timers (cost-only): ``h`` stacked dense operands over one
# shared topology, costed as a single z-scaled launch.
# ----------------------------------------------------------------------
def sputnik_spmm_batched_time(
    a: CSRMatrix, n: int, h: int, device: DeviceSpec, *,
    selector: str = "heuristic",
) -> ExecutionResult:
    return ops.spmm_batched_cost(a, n, h, device, selector=selector)


# ----------------------------------------------------------------------
# Sharded SpMM timer (cost-only): row-sharded across a DeviceGroup, with
# interconnect collectives priced on the simulated clock. Outputs stay
# sharded (``gather_output=False``): sweep rows measure the steady-state
# regime where the next sharded op consumes the row-partitioned result.
# ----------------------------------------------------------------------
def sharded_spmm_time(
    a: CSRMatrix,
    n: int,
    group,
    kernel: str = "sputnik",
    *,
    selector: str = "heuristic",
    strategy: str = "row",
):
    from ..dist import sharded_spmm_cost

    return sharded_spmm_cost(
        a, n, group, strategy=strategy, backend=kernel, selector=selector,
        gather_output=False,
    )


def dense_spmm_batched_time(
    a: CSRMatrix, n: int, h: int, device: DeviceSpec, *,
    selector: str = "heuristic",
) -> ExecutionResult:
    return ops.spmm_batched_cost(a, n, h, device, backend="dense")


# ----------------------------------------------------------------------
# SDDMM timers (cost-only); ``k`` is the dot-product (inner) dimension.
# ----------------------------------------------------------------------
def sputnik_sddmm_time(
    mask: CSRMatrix,
    k: int,
    device: DeviceSpec,
    config: SddmmConfig | None = None,
    *,
    selector: str = "heuristic",
) -> ExecutionResult:
    return ops.sddmm_cost(mask, k, device, config, selector=selector)


def cusparse_sddmm_time(
    mask: CSRMatrix, k: int, device: DeviceSpec, *, selector: str = "heuristic"
) -> ExecutionResult:
    """Constrained GEMM plus the explicit operand transpose, as timed in
    the paper's benchmarks."""
    return ops.sddmm_cost(mask, k, device, backend="cusparse")


def aspt_sddmm_time(
    mask: CSRMatrix, k: int, device: DeviceSpec, *, selector: str = "heuristic"
) -> ExecutionResult:
    return ops.sddmm_cost(mask, k, device, backend="aspt")


# ----------------------------------------------------------------------
# Named kernel registries
# ----------------------------------------------------------------------
#: SpMM timers by name, so sweep configurations (and worker processes) can
#: refer to kernels by string instead of shipping callables around.
SPMM_KERNELS: dict[str, SpmmTimer] = {
    "sputnik": sputnik_spmm_time,
    "cusparse": cusparse_spmm_time,
    "merge": merge_spmm_time,
    "aspt": aspt_spmm_time,
    "dense": dense_spmm_time,
}

#: SDDMM timers by name (see :data:`SPMM_KERNELS`).
SDDMM_KERNELS: dict[str, SddmmTimer] = {
    "sputnik": sputnik_sddmm_time,
    "cusparse": cusparse_sddmm_time,
    "aspt": aspt_sddmm_time,
}

#: Batched SpMM timers by name. Sweeps with ``h > 1`` look kernels up here,
#: so only backends with a registered batched implementation appear.
SPMM_BATCHED_KERNELS: dict[str, BatchedSpmmTimer] = {
    "sputnik": sputnik_spmm_batched_time,
    "dense": dense_spmm_batched_time,
}


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
@dataclass
class BenchRow:
    """One (problem, kernel) measurement.

    ``status`` is ``"ok"`` for a completed measurement, ``"oom"`` when the
    kernel died of device memory exhaustion (even after the eviction
    ladder), and ``"failed"`` for any other raise — a SuiteSparse-scale
    sweep must survive one pathological matrix instead of aborting, so
    failures become rows (``runtime_s`` is NaN, ``error`` holds the
    classified exception).

    ``runtime_s`` is *simulated device* time; ``wall_s`` is the harness
    wall-clock the measurement itself took (planning + cost model), and
    ``telemetry`` is the context's aggregate counter delta attributable to
    this row (launches, cache traffic, simulated seconds) — so a slow row
    is diagnosable as plan-build cost vs. cache churn after the fact.
    """

    problem: str
    kernel: str
    m: int
    k: int
    n: int
    nnz: int
    runtime_s: float
    flops: float
    h: int = 1
    selector: str = "heuristic"
    #: Simulated device count the row was measured on (1 = unsharded;
    #: > 1 = row-sharded across a DeviceGroup, runtime_s is the group
    #: runtime and telemetry carries the comm/imbalance breakdown).
    devices: int = 1
    #: Drop/grow topology mutations applied through the dispatch path
    #: before the timed measurement (0 = static topology; > 0 = dynamic
    #: sparsity, telemetry carries the plan_repairs count).
    mutations: int = 0
    status: str = "ok"
    error: str = ""
    wall_s: float = 0.0
    telemetry: dict[str, int | float] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.status != "ok"

    @property
    def throughput_flops(self) -> float:
        if self.failed or self.runtime_s <= 0:
            return 0.0
        return self.flops / self.runtime_s


def _telemetry_totals(ctx) -> dict[str, int | float]:
    """The aggregate counters a per-row delta is computed over."""
    t = ctx.telemetry
    return {
        "launches": t.launches,
        "cache_hits": t.cache_hits,
        "cache_misses": t.cache_misses,
        "simulated_seconds": t.simulated_seconds,
        "oom_events": t.oom_events,
        "plan_evictions": t.plan_evictions,
        "bytes_evicted": t.bytes_evicted,
        "plan_repairs": t.plan_repairs,
        "plan_repair_rows": t.plan_repair_rows,
    }


def _oom_failure(exc: Exception) -> bool:
    """Whether a raised measurement failure is memory exhaustion.

    True for a direct :class:`DeviceOOMError` and for a fallback chain
    that died with OOM as its final error — those rows get
    ``status="oom"`` so capacity exhaustion is distinguishable from
    kernel failures in sweep JSONL output.
    """
    from ..reliability.errors import DeviceOOMError, FallbackExhaustedError

    if isinstance(exc, DeviceOOMError):
        return True
    if isinstance(exc, FallbackExhaustedError):
        return any(a.error == "DeviceOOMError" for a in exc.attempts)
    return False


def _group_telemetry_totals(group) -> dict[str, int | float]:
    """Aggregate counters summed over every context of a DeviceGroup."""
    totals: dict[str, int | float] = {}
    for ctx in group.contexts:
        for key, value in _telemetry_totals(ctx).items():
            totals[key] = totals.get(key, 0) + value
    return totals


def _mutate_and_time(
    timer, matrix: CSRMatrix, dim: int, device, mutations: int, kwargs: dict
):
    """Time a kernel under topology churn (the dynamic-sparsity path).

    Applies ``mutations`` seeded drop/grow updates; each one registers its
    :class:`~repro.core.repair.TopologyDelta` with the default context and
    re-dispatches the timer, so plans repair incrementally step over step.
    Returns the final step's result (steady-state dispatch cost).
    """
    from ..nn.dynamic import drop_grow_update, select_rows

    ctx = ops.default_context(device)
    rng = np.random.default_rng(0xD15)
    grad = rng.standard_normal(tuple(matrix.shape)).astype(np.float32)
    result = timer(matrix, dim, device, **kwargs)  # warm the parent plan
    work = matrix
    for _ in range(mutations):
        rows = select_rows(work, 0.05, rng)
        if rows.size == 0:
            break
        work, delta = drop_grow_update(work, grad, rows, 0.3)
        ctx.register_topology_delta(delta)
        result = timer(work, dim, device, **kwargs)
    return result


def _measure(
    timer, label: str, name: str, matrix: CSRMatrix, dim: int, device,
    h: int = 1, selector: str = "heuristic", group=None, mutations: int = 0,
) -> BenchRow:
    """Run one timer, converting a raised kernel failure into a failed row.

    Each row records its wall-clock duration and the delta of the shared
    context's aggregate telemetry across the call. ``h > 1`` calls a
    batched timer (``timer(matrix, dim, h, device)``) and scales the
    nominal flop count by the stack depth. ``selector`` picks the config
    selection policy the timer dispatches with (and is recorded in the
    row).

    ``group`` (a :class:`repro.dist.DeviceGroup` with ``k > 1``) measures
    the row row-sharded across the group instead — ``timer`` is bypassed,
    ``name`` doubles as the per-device backend, ``runtime_s`` is the
    group runtime (max compute + exposed comm), and the comm breakdown
    rides in the telemetry delta.

    ``mutations > 0`` measures under dynamic sparsity: that many seeded
    drop/grow topology updates run through the dispatch path first (each
    delta registered so plans repair incrementally), and the row reports
    the final — steady-state — dispatch; the telemetry delta's
    ``plan_repairs`` shows how many plans repaired instead of rebuilding.
    """
    devices = group.k if group is not None else 1
    base = dict(
        problem=label,
        kernel=name,
        m=matrix.n_rows,
        k=matrix.n_cols,
        n=dim,
        nnz=matrix.nnz,
        flops=2.0 * matrix.nnz * dim * h,
        h=h,
        selector=selector,
        devices=devices,
        mutations=mutations,
    )
    sharded = group is not None and group.k > 1
    if sharded:
        before = _group_telemetry_totals(group)
    else:
        ctx = ops.default_context(device)
        before = _telemetry_totals(ctx)
    # Ad-hoc timers (tests, custom suites) predate the selector dimension;
    # only registered timers are guaranteed to accept the keyword, so the
    # default rides on their own default instead of being passed.
    kwargs = {} if selector == "heuristic" else {"selector": selector}
    start = time.perf_counter()
    try:
        if sharded:
            result = sharded_spmm_time(
                matrix, dim, group, kernel=name, selector=selector
            )
        elif mutations > 0:
            result = _mutate_and_time(
                timer, matrix, dim, device, mutations, kwargs
            )
        else:
            result = (
                timer(matrix, dim, device, **kwargs)
                if h == 1
                else timer(matrix, dim, h, device, **kwargs)
            )
    except Exception as exc:  # noqa: BLE001 - the sweep must keep going
        wall_s = time.perf_counter() - start
        after = (
            _group_telemetry_totals(group) if sharded
            else _telemetry_totals(ctx)
        )
        return BenchRow(
            runtime_s=float("nan"),
            status="oom" if _oom_failure(exc) else "failed",
            error=f"{type(exc).__name__}: {exc}",
            wall_s=wall_s,
            telemetry={k: after[k] - before[k] for k in after},
            **base,
        )
    wall_s = time.perf_counter() - start
    after = (
        _group_telemetry_totals(group) if sharded else _telemetry_totals(ctx)
    )
    telemetry = {k: after[k] - before[k] for k in after}
    if sharded:
        telemetry["exposed_comm_s"] = result.exposed_comm_s
        telemetry["interconnect_bound"] = result.interconnect_bound_fraction
        telemetry["compute_imbalance"] = result.compute_imbalance
    return BenchRow(
        runtime_s=result.runtime_s,
        wall_s=wall_s,
        telemetry=telemetry,
        **base,
    )


def run_spmm_suite(
    problems: list[tuple[str, CSRMatrix, int]],
    kernels: dict[str, SpmmTimer],
    device: DeviceSpec,
) -> list[BenchRow]:
    """Time every kernel on every (label, matrix, n) problem.

    A kernel failure on one matrix yields a ``status="failed"`` row and the
    sweep continues.
    """
    return [
        _measure(timer, label, name, a, n, device)
        for label, a, n in problems
        for name, timer in kernels.items()
    ]


def run_sddmm_suite(
    problems: list[tuple[str, CSRMatrix, int]],
    kernels: dict[str, SddmmTimer],
    device: DeviceSpec,
) -> list[BenchRow]:
    """Time every SDDMM kernel on every (label, mask, inner-dim) problem.

    Per-matrix failures become ``status="failed"`` rows, like
    :func:`run_spmm_suite`.
    """
    return [
        _measure(timer, label, name, mask, k, device)
        for label, mask, k in problems
        for name, timer in kernels.items()
    ]


def reliability_counters(
    device: DeviceSpec | None = None,
    context=None,
) -> dict[str, dict[str, int | float]]:
    """Per-(op, backend) telemetry — including retries, fallbacks, degraded
    completions, and injected faults — for the context a sweep ran in.

    Benchmarks report this next to their timing tables so a sweep that
    survived via fallback is distinguishable from a clean one.
    """
    if context is None:
        context = (
            ops.default_context(device)
            if device is not None
            else ops.default_context()
        )
    return context.telemetry_snapshot()
