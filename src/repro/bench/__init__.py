"""Benchmark harness: cost-only kernel timers, problem sweeps, and the
speedup statistics the paper's tables report."""

from .report import (
    SpeedupStats,
    format_table,
    geometric_mean,
    pair_rows,
    paper_comparison,
    peak_fraction,
    speedup_stats,
)
from .runner import (
    SDDMM_KERNELS,
    SPMM_KERNELS,
    BenchRow,
    aspt_sddmm_time,
    aspt_spmm_time,
    cusparse_sddmm_time,
    cusparse_spmm_time,
    dense_spmm_time,
    merge_spmm_time,
    reliability_counters,
    run_sddmm_suite,
    run_spmm_suite,
    sputnik_sddmm_time,
    sputnik_spmm_time,
)
from .sweep import (
    SweepReport,
    SweepTask,
    build_tasks,
    run_sweep,
    warm_store,
)

__all__ = [
    "BenchRow",
    "SPMM_KERNELS",
    "SDDMM_KERNELS",
    "SweepTask",
    "SweepReport",
    "build_tasks",
    "run_sweep",
    "warm_store",
    "run_spmm_suite",
    "run_sddmm_suite",
    "reliability_counters",
    "sputnik_spmm_time",
    "sputnik_sddmm_time",
    "cusparse_spmm_time",
    "cusparse_sddmm_time",
    "merge_spmm_time",
    "aspt_spmm_time",
    "aspt_sddmm_time",
    "dense_spmm_time",
    "SpeedupStats",
    "speedup_stats",
    "pair_rows",
    "geometric_mean",
    "format_table",
    "paper_comparison",
    "peak_fraction",
]
