"""Benchmark statistics and table/figure formatting.

The paper reports geometric-mean and peak speedups over a baseline, the
fraction of problems on which the kernel wins, and peak achieved throughput
(Table I); these helpers compute them from :class:`BenchRow` sweeps and
render aligned text tables for the benchmark logs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import DeviceSpec
from .runner import BenchRow


def geometric_mean(values: np.ndarray | list[float]) -> float:
    """Geometric mean (all values must be positive)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric mean of nothing")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


@dataclass(frozen=True)
class SpeedupStats:
    """The Table I statistics block for one kernel-vs-baseline pairing."""

    kernel: str
    baseline: str
    n_problems: int
    geomean_speedup: float
    peak_speedup: float
    min_speedup: float
    fraction_faster: float
    peak_throughput_flops: float

    def row(self) -> str:
        return (
            f"{self.kernel:>18s} vs {self.baseline:<18s} "
            f"geomean {self.geomean_speedup:6.2f}x  peak {self.peak_speedup:7.2f}x  "
            f"wins {100 * self.fraction_faster:5.1f}%  "
            f"peak TFLOPs {self.peak_throughput_flops / 1e12:5.2f}"
        )


def pair_rows(
    rows: list[BenchRow], kernel: str, baseline: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Align kernel and baseline runtimes by problem label.

    Returns ``(kernel_times, baseline_times, kernel_throughputs)`` over the
    problems both ran.
    """
    k_rows = {r.problem: r for r in rows if r.kernel == kernel}
    b_rows = {r.problem: r for r in rows if r.kernel == baseline}
    common = sorted(set(k_rows) & set(b_rows))
    if not common:
        raise ValueError(f"no common problems between {kernel} and {baseline}")
    kt = np.array([k_rows[p].runtime_s for p in common])
    bt = np.array([b_rows[p].runtime_s for p in common])
    thr = np.array([k_rows[p].throughput_flops for p in common])
    return kt, bt, thr


def speedup_stats(
    rows: list[BenchRow], kernel: str, baseline: str
) -> SpeedupStats:
    """Compute the paper's speedup statistics for one pairing."""
    kt, bt, thr = pair_rows(rows, kernel, baseline)
    speedups = bt / kt
    return SpeedupStats(
        kernel=kernel,
        baseline=baseline,
        n_problems=len(kt),
        geomean_speedup=geometric_mean(speedups),
        peak_speedup=float(speedups.max()),
        min_speedup=float(speedups.min()),
        fraction_faster=float(np.mean(speedups > 1.0)),
        peak_throughput_flops=float(thr.max()),
    )


def peak_fraction(stats: SpeedupStats, device: DeviceSpec) -> float:
    """Peak throughput as a fraction of the device's fp32 peak."""
    return stats.peak_throughput_flops / device.fp32_peak_flops


def format_table(
    headers: list[str], rows: list[list[str]], title: str = ""
) -> str:
    """Render an aligned text table (the benchmarks' printed artifact)."""
    if any(len(r) != len(headers) for r in rows):
        raise ValueError("row width must match headers")
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def paper_comparison(
    quantity: str, paper_value: float, measured: float
) -> str:
    """One EXPERIMENTS.md-style 'paper vs measured' line."""
    ratio = measured / paper_value if paper_value else float("inf")
    return (
        f"{quantity}: paper {paper_value:g}, measured {measured:g} "
        f"({ratio:.2f}x of paper)"
    )
