"""Deterministic fault injection for the sparse-op dispatch stack.

A :class:`FaultInjector` is attached to an
:class:`~repro.ops.context.ExecutionContext` and consulted by the dispatch
layer before every kernel attempt. Each :class:`FaultSpec` names a fault
*kind*, an optional ``(op, backend)`` filter, and a firing rule — either a
seeded per-launch probability (``rate``) or a fixed cadence (``every``) —
so an entire chaos schedule is reproducible from one integer seed.

Fault kinds and the real-GPU failure they stand in for:

- ``"launch"`` — transient kernel-launch failure (``cudaErrorLaunchFailure``,
  watchdog preemption). Raised as :class:`KernelLaunchError`; retryable.
- ``"bitflip"`` — an uncorrected memory error in device-resident CSR
  metadata (one bit of one column index). Caught by
  :meth:`CSRMatrix.validate_deep`'s checksum; the injector can *repair* the
  flip (modelling a host re-upload), making the fault retryable.
- ``"plan_poison"`` — corruption of cached kernel-plan state. Surfaces as
  :class:`PlanCorruptionError` on the next cache hit; recovery evicts the
  entry and re-plans.
- ``"latency"`` — a straggler launch (thermal throttle, PCIe contention):
  adds ``latency_s`` of simulated time to the attempt, never an error.
- ``"oom"`` — a device allocation failure (``cudaErrorMemoryAllocation``)
  at an arbitrary dispatch point, regardless of actual allocator state.
  Raised as :class:`~repro.reliability.errors.DeviceOOMError`; recovery
  runs the policy's degradation ladder (flush → evict → backend fallback).
- ``"repair"`` — a failure mid plan-repair (the incremental dynamic-sparsity
  path): raised as :class:`~repro.reliability.errors.PlanRepairError` from
  the context's repair attempt, which falls back to a cold re-plan — the
  chaos suite asserts a repair fault can never surface a corrupt plan.

``site="executor"`` moves a ``"launch"`` fault inside
:func:`repro.gpu.executor.execute` (matched by launch name), so failures
originate exactly where a real launch would die — mid-plan-build included.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..gpu.executor import (
    register_launch_observer,
    unregister_launch_observer,
)
from ..gpu.memory import flip_bit
from .errors import DeviceOOMError, KernelLaunchError, PlanRepairError

FAULT_KINDS = ("launch", "bitflip", "plan_poison", "latency", "oom", "repair")
SITES = ("dispatch", "executor")


@dataclass(frozen=True)
class FaultSpec:
    """One fault source: what to inject, where, and how often."""

    kind: str
    op: str | None = None  # match any operator when None
    backend: str | None = None  # match any backend when None
    rate: float = 0.0  # per-matching-launch firing probability
    every: int | None = None  # fire on every Nth matching launch instead
    max_faults: int | None = None  # stop firing after this many injections
    latency_s: float = 1e-3  # "latency" kind: simulated stall per fault
    site: str = "dispatch"
    name_contains: str | None = None  # executor site: launch-name filter

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected {FAULT_KINDS}"
            )
        if self.site not in SITES:
            raise ValueError(f"unknown site {self.site!r}; expected {SITES}")
        if self.site == "executor" and self.kind != "launch":
            raise ValueError(
                "site='executor' supports only kind='launch' faults"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.every is not None and self.every < 1:
            raise ValueError("every must be >= 1")
        if self.rate and self.every:
            raise ValueError("give rate or every, not both")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")


@dataclass
class InjectedFault:
    """Log entry for one injected fault (the schedule tests assert on)."""

    index: int
    kind: str
    op: str
    backend: str
    site: str
    detail: str = ""


@dataclass
class _PendingRepair:
    array: np.ndarray
    element: int
    original: int


class FaultInjector:
    """Seeded, schedulable fault source shared by one execution context."""

    def __init__(
        self, specs: list[FaultSpec] | tuple[FaultSpec, ...], seed: int = 0
    ) -> None:
        self.specs = list(specs)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.log: list[InjectedFault] = []
        self.enabled = True
        self._matches: dict[int, int] = {}  # spec index -> matching launches
        self._fired: dict[int, int] = {}  # spec index -> injected faults
        self._repairs: list[_PendingRepair] = []
        self._ctx = None

    # ------------------------------------------------------------------
    # Schedule bookkeeping
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restart the schedule from the seed (log cleared)."""
        self.rng = np.random.default_rng(self.seed)
        self.log.clear()
        self._matches.clear()
        self._fired.clear()
        self._repairs.clear()

    def faults_of_kind(self, kind: str) -> list[InjectedFault]:
        return [f for f in self.log if f.kind == kind]

    def _matches_spec(self, spec: FaultSpec, op: str, backend: str) -> bool:
        return (spec.op is None or spec.op == op) and (
            spec.backend is None or spec.backend == backend
        )

    def _should_fire(self, i: int, spec: FaultSpec) -> bool:
        self._matches[i] = self._matches.get(i, 0) + 1
        fired = self._fired.get(i, 0)
        if spec.max_faults is not None and fired >= spec.max_faults:
            return False
        if spec.every is not None:
            fire = self._matches[i] % spec.every == 0
        else:
            fire = bool(self.rng.random() < spec.rate)
        if fire:
            self._fired[i] = fired + 1
        return fire

    def _record(self, spec: FaultSpec, op: str, backend: str, detail: str):
        fault = InjectedFault(
            index=len(self.log),
            kind=spec.kind,
            op=op,
            backend=backend,
            site=spec.site,
            detail=detail,
        )
        self.log.append(fault)
        return fault

    # ------------------------------------------------------------------
    # Dispatch-site injection
    # ------------------------------------------------------------------
    def on_launch(self, ctx, op: str, backend: str, operands=()) -> float:
        """Called by the dispatch layer before each kernel attempt.

        May corrupt operands/plan state in place, raise
        :class:`KernelLaunchError`, or return extra simulated latency
        seconds to charge to the attempt.
        """
        if not self.enabled:
            return 0.0
        latency = 0.0
        for i, spec in enumerate(self.specs):
            if spec.site != "dispatch":
                continue
            if not self._matches_spec(spec, op, backend):
                continue
            if not self._should_fire(i, spec):
                continue
            if spec.kind == "latency":
                latency += spec.latency_s
                self._record(spec, op, backend, f"+{spec.latency_s:g}s")
                ctx.telemetry.record_fault(op, backend)
            elif spec.kind == "bitflip":
                detail = self._flip_operand_bit(operands)
                if detail is None:
                    continue  # nothing corruptible; not a fault
                self._record(spec, op, backend, detail)
                ctx.telemetry.record_fault(op, backend)
            elif spec.kind == "plan_poison":
                detail = self._poison_plan(ctx, op)
                if detail is None:
                    continue  # empty cache; nothing to poison
                self._record(spec, op, backend, detail)
                ctx.telemetry.record_fault(op, backend)
            elif spec.kind == "oom":
                self._record(spec, op, backend, "simulated allocation failure")
                ctx.telemetry.record_fault(op, backend)
                recorder = getattr(ctx.telemetry, "record_oom", None)
                if recorder is not None:
                    recorder(op, backend)
                memory = getattr(ctx, "memory", None)
                raise DeviceOOMError(
                    f"injected allocation failure for {op}/{backend} "
                    f"(fault #{len(self.log) - 1})",
                    requested=0,
                    capacity=memory.capacity if memory is not None else 0,
                    snapshot=(
                        memory.snapshot() if memory is not None else None
                    ),
                )
            elif spec.kind == "launch":
                self._record(spec, op, backend, "simulated launch failure")
                ctx.telemetry.record_fault(op, backend)
                raise KernelLaunchError(
                    f"injected launch failure for {op}/{backend} "
                    f"(fault #{len(self.log) - 1})"
                )
        return latency

    def _flip_operand_bit(self, operands) -> str | None:
        """Flip one bit of one column index of the first sparse operand."""
        for matrix in operands:
            indices = getattr(matrix, "column_indices", None)
            if indices is None or indices.size == 0:
                continue
            element = int(self.rng.integers(indices.size))
            bit = int(self.rng.integers(indices.dtype.itemsize * 8))
            original = flip_bit(indices, element, bit)
            self._repairs.append(_PendingRepair(indices, element, original))
            return f"column_indices[{element}] bit {bit}"
        return None

    def _poison_plan(self, ctx, op: str) -> str | None:
        """Corrupt one cached plan/config entry belonging to ``op``."""
        keys = [
            k
            for k in ctx.plans.keys()
            if isinstance(k, tuple) and k and str(k[0]).startswith(op)
        ]
        if not keys:
            return None
        key = keys[int(self.rng.integers(len(keys)))]
        ctx.plans.poison(key)
        return f"poisoned {key[0]!r} entry"

    def on_repair(self, ctx, op: str, backend: str) -> None:
        """Called by the context before each plan-repair attempt.

        Fires ``kind="repair"`` specs by raising
        :class:`PlanRepairError`; the repair path catches it and falls
        back to a cold re-plan, so the fault costs planning time only.
        """
        if not self.enabled:
            return
        for i, spec in enumerate(self.specs):
            if spec.kind != "repair" or spec.site != "dispatch":
                continue
            if not self._matches_spec(spec, op, backend):
                continue
            if not self._should_fire(i, spec):
                continue
            self._record(spec, op, backend, "injected repair failure")
            ctx.telemetry.record_fault(op, backend)
            raise PlanRepairError(
                f"injected plan-repair failure for {op}/{backend} "
                f"(fault #{len(self.log) - 1})"
            )

    def repair(self, operands=()) -> bool:
        """Undo pending metadata corruption (modelling a host re-upload).

        Returns True if anything was restored; the dispatch layer only
        retries an :class:`InvalidTopologyError` after a successful repair.
        """
        del operands  # all pending flips are restored unconditionally
        if not self._repairs:
            return False
        while self._repairs:
            pending = self._repairs.pop()
            pending.array.reshape(-1)[pending.element] = pending.original
        return True

    # ------------------------------------------------------------------
    # Executor-site injection
    # ------------------------------------------------------------------
    def _on_executor_launch(self, launch, device) -> None:
        del device
        if not self.enabled:
            return
        for i, spec in enumerate(self.specs):
            if spec.site != "executor":
                continue
            if spec.name_contains and spec.name_contains not in launch.name:
                continue
            if not self._should_fire(i, spec):
                continue
            self._record(spec, launch.name, "(executor)", "executor fault")
            if self._ctx is not None:
                self._ctx.telemetry.record_fault(launch.name, "(executor)")
            raise KernelLaunchError(
                f"injected executor launch failure in {launch.name!r}"
            )

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, ctx) -> "FaultInjector":
        """Arm this injector on ``ctx`` (and the simulated executor)."""
        ctx.injector = self
        self._ctx = ctx
        register_launch_observer(self._on_executor_launch)
        return self

    def detach(self, ctx) -> None:
        if ctx.injector is self:
            ctx.injector = None
        self._ctx = None
        unregister_launch_observer(self._on_executor_launch)

    @contextmanager
    def attached(self, ctx):
        """``with injector.attached(ctx): ...`` — scoped chaos."""
        self.attach(ctx)
        try:
            yield self
        finally:
            self.detach(ctx)
