"""Numerical guardrails: opt-in output validation for sparse kernels.

The paper's mixed-precision path (Section V-D3) stores fp16 values whose
representable range tops out at 65504 — long sparse rows with moderate
magnitudes saturate to ``inf`` on the output cast without any exception.
These guardrails make that failure mode loud and recoverable:

- :func:`check_finite_result` scans a kernel output for NaN/Inf and raises
  a classified :class:`NumericalError` — ``kind="fp16_overflow"`` when the
  output is half precision (recoverable: the dispatch layer re-runs the
  kernel in fp32 as *degraded mode*), ``kind="nonfinite"`` otherwise
  (terminal: full-precision NaN/Inf means the inputs are bad).
- :func:`guarded` scopes ``numpy``'s overflow warning off around a guarded
  attempt, so chaos CI can run with ``-W error::RuntimeWarning`` and still
  exercise the saturation path: only *unguarded* overflows abort.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Any

import numpy as np

from .errors import NumericalError


def output_values(output: Any) -> np.ndarray:
    """The numeric payload of a kernel output (dense array or CSR values)."""
    values = getattr(output, "values", None)
    if values is not None:
        return np.asarray(values)
    return np.asarray(output)


def scan_output(output: Any) -> dict[str, int]:
    """Count non-finite entries in a kernel output: ``{"nan": n, "inf": n}``."""
    values = output_values(output)
    if values.dtype.kind != "f":
        return {"nan": 0, "inf": 0}
    return {
        "nan": int(np.isnan(values).sum()),
        "inf": int(np.isinf(values).sum()),
    }


def check_finite_result(result: Any, op: str, backend: str) -> None:
    """Raise :class:`NumericalError` if a kernel result has NaN/Inf output.

    ``result`` is a :class:`~repro.core.types.KernelResult`; fp16 outputs
    containing ``inf`` (and no NaN) are classified as recoverable overflow,
    anything else non-finite as terminal.
    """
    issues = scan_output(result.output)
    if not issues["nan"] and not issues["inf"]:
        return
    values = output_values(result.output)
    if values.dtype == np.float16 and not issues["nan"]:
        raise NumericalError(
            f"{op}/{backend}: {issues['inf']} fp16 outputs overflowed the "
            "half-precision range (Section V-D3); degraded fp32 re-run "
            "applies",
            kind="fp16_overflow",
        )
    raise NumericalError(
        f"{op}/{backend}: non-finite output "
        f"({issues['nan']} NaN, {issues['inf']} Inf)",
        kind="nonfinite",
    )


def validate_operands(operands) -> None:
    """Deep-validate every sparse operand that supports it."""
    for operand in operands:
        deep = getattr(operand, "validate_deep", None)
        if deep is not None:
            deep()


@contextmanager
def _overflow_silenced():
    with np.errstate(over="ignore"):
        yield


def guarded(active: bool = True):
    """Context for a guarded kernel attempt.

    When active, numpy's overflow warning is suppressed for the attempt —
    the guardrail detects and classifies the saturation itself, so under
    ``-W error::RuntimeWarning`` only unguarded overflow aborts a run.
    """
    return _overflow_silenced() if active else nullcontext()
