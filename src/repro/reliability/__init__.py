"""repro.reliability — fault injection and graceful degradation.

Three pieces, wired through :mod:`repro.ops`:

- :class:`FaultInjector` — deterministic, seeded fault source (transient
  launch failures, CSR-metadata bit flips, plan-cache poisoning, latency
  spikes) attached to an execution context, so every failure path in the
  dispatch layer is testable;
- :class:`FallbackPolicy` / :func:`run_with_policy` — per-op backend
  fallback chains with retry and deterministic backoff accounted in
  simulated time, driven by the structured error taxonomy in
  :mod:`repro.reliability.errors`;
- numerical guardrails (:mod:`repro.reliability.guardrails`) — NaN/Inf
  scans, fp16-overflow detection with automatic fp32 degraded-mode
  re-runs, and deep CSR validation via structure checksums.

Quick start::

    from repro import ops
    from repro.reliability import FallbackPolicy, FaultInjector, FaultSpec

    policy = FallbackPolicy(["sputnik", "cusparse", "dense"], max_attempts=3)
    ctx = ops.ExecutionContext(V100)
    chaos = FaultInjector([FaultSpec("launch", backend="sputnik", rate=0.1)],
                          seed=1234)
    with chaos.attached(ctx):
        y = ops.spmm(a, b, context=ctx, backend=policy)
    print(y.reliability)           # DispatchReport: retries, fallbacks, ...
    print(ctx.telemetry_snapshot())
"""

from .errors import (
    AttemptRecord,
    DeviceOOMError,
    FallbackExhaustedError,
    InvalidTopologyError,
    KernelLaunchError,
    NumericalError,
    PlanCorruptionError,
    ReliabilityError,
    classify,
)
from .guardrails import (
    check_finite_result,
    guarded,
    scan_output,
    validate_operands,
)
from .injector import FAULT_KINDS, FaultInjector, FaultSpec, InjectedFault
from .policy import (
    DEFAULT_CHAIN,
    DispatchReport,
    FallbackPolicy,
    as_policy,
    run_with_policy,
)

__all__ = [
    "ReliabilityError",
    "KernelLaunchError",
    "InvalidTopologyError",
    "NumericalError",
    "PlanCorruptionError",
    "DeviceOOMError",
    "FallbackExhaustedError",
    "AttemptRecord",
    "classify",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "FAULT_KINDS",
    "FallbackPolicy",
    "DispatchReport",
    "DEFAULT_CHAIN",
    "as_policy",
    "run_with_policy",
    "check_finite_result",
    "scan_output",
    "validate_operands",
    "guarded",
]
