"""Fallback chains with retry/backoff for the operator dispatch layer.

A :class:`FallbackPolicy` names an ordered backend chain (e.g.
``["sputnik", "cusparse", "dense"]``) plus per-backend retry limits and a
deterministic exponential backoff that is *accounted in simulated time*:
every second spent backing off is added to the successful attempt's
simulated :class:`~repro.gpu.executor.ExecutionResult`, so reliability has
a visible, reproducible performance cost instead of a hidden wall-clock
one.

:func:`run_with_policy` is the single retry loop every operator wrapper
funnels through. Classification drives control flow:

- :class:`KernelLaunchError` — retry the same backend (with backoff), then
  fall back;
- :class:`PlanCorruptionError` — evict the poisoned cache entry, re-plan,
  retry;
- :class:`InvalidTopologyError` — retry only if the fault injector can
  repair the operand (host re-upload model), otherwise terminal;
- :class:`NumericalError` with ``kind="fp16_overflow"`` — degraded mode:
  re-run the attempt in fp32 (when the operator provides an upcast path),
  flagged on the returned report; any other kind is terminal;
- an exhausted chain raises :class:`FallbackExhaustedError` carrying the
  full attempt history.

Everything is recorded twice: per-call in a :class:`DispatchReport`
(attached to the returned :class:`~repro.core.types.KernelResult` and to
``context.last_dispatch_report``) and cumulatively in the context's
per-(op, backend) telemetry.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace

from . import guardrails
from .errors import (
    AttemptRecord,
    DeviceOOMError,
    FallbackExhaustedError,
    InvalidTopologyError,
    KernelLaunchError,
    NumericalError,
    PlanCorruptionError,
    classify,
)

#: Default chain for callers that just want "make it survive".
DEFAULT_CHAIN = ("sputnik", "cusparse", "dense")


@dataclass(frozen=True)
class FallbackPolicy:
    """Backend chain + retry/backoff/guardrail configuration."""

    backends: tuple[str, ...]
    #: Attempts per backend before falling to the next one.
    max_attempts: int = 2
    #: First retry waits this many simulated seconds; doubles per retry.
    backoff_base_s: float = 1e-4
    backoff_factor: float = 2.0
    #: Run the numerical guardrails on every output.
    validate: bool = False
    #: On fp16 overflow, re-run in fp32 (degraded mode) instead of failing.
    recompute_fp32: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "backends", tuple(self.backends))
        if not self.backends:
            raise ValueError("a fallback policy needs at least one backend")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")


def as_policy(backend, validate: bool | None = None) -> FallbackPolicy:
    """Coerce a backend string / chain / policy into a FallbackPolicy."""
    if isinstance(backend, FallbackPolicy):
        policy = backend
    elif isinstance(backend, str):
        policy = FallbackPolicy(backends=(backend,))
    else:
        policy = FallbackPolicy(backends=tuple(backend))
    if validate is not None and validate != policy.validate:
        policy = replace(policy, validate=validate)
    return policy


@dataclass
class DispatchReport:
    """What one policy-dispatched operator call actually did."""

    op: str
    requested: tuple[str, ...]
    backend_used: str | None = None
    attempts: list[AttemptRecord] = field(default_factory=list)
    retries: int = 0
    fallbacks: int = 0
    degraded: bool = False
    #: True when the producing backend is bitwise-exact w.r.t. the chain's
    #: primary backend (same reference numerics) and no degraded re-run
    #: happened — i.e. the output is identical to a fault-free run.
    exact: bool = True
    backoff_s: float = 0.0
    injected_latency_s: float = 0.0

    @property
    def clean(self) -> bool:
        """True when the call saw no faults at all."""
        return (
            not self.retries
            and not self.fallbacks
            and not self.degraded
            and not self.injected_latency_s
        )


def _finish(ctx, result, report, extra_seconds):
    """Attach the report and charge backoff/latency to simulated time."""
    ctx.last_dispatch_report = report
    if hasattr(result, "execution"):  # KernelResult
        execution = result.execution
        if extra_seconds > 0:
            execution = execution.add_overhead(extra_seconds)
        return dataclasses.replace(
            result, execution=execution, reliability=report
        )
    if extra_seconds > 0:  # cost-only ExecutionResult
        result = result.add_overhead(extra_seconds)
    return result


def run_with_policy(
    ctx,
    op: str,
    policy: FallbackPolicy,
    attempt,
    *,
    operands=(),
    fp32_attempt=None,
    registered=None,
    exact_backends=None,
):
    """Run ``attempt(backend)`` under a fallback policy.

    ``registered`` (when given) filters the chain to backends that exist
    for ``op`` — a chain like ``["sputnik", "cusparse", "dense"]`` applies
    unchanged to ops that only register a subset. ``exact_backends`` is the
    set whose numerics are mutually bitwise-exact (for the report's
    ``exact`` flag).
    """
    chain = [
        b for b in policy.backends if registered is None or b in registered
    ]
    if not chain:
        raise KeyError(
            f"operator {op!r} has no registered backend in "
            f"{policy.backends}; available: {sorted(registered or ())}"
        )
    report = DispatchReport(op=op, requested=policy.backends)
    telemetry = ctx.telemetry
    injector = ctx.injector
    check_operands = policy.validate or injector is not None
    extra_s = 0.0
    # Reliability events land on whatever dispatch span is currently open
    # (the operator wrappers open one per call when a tracer is attached),
    # and in the context's always-on flight recorder so a later postmortem
    # window shows the retries/fallbacks that preceded the failure.
    tracer = getattr(ctx, "tracer", None)
    span = tracer.current if tracer is not None else None
    flight = getattr(ctx, "flight", None)

    def succeed(backend, attempt_no, result, outcome="ok", error=""):
        report.backend_used = backend
        report.attempts.append(
            AttemptRecord(backend, attempt_no, outcome, error)
        )
        report.exact = (
            not report.degraded
            and (exact_backends is None or backend in exact_backends)
            and (exact_backends is None or chain[0] in exact_backends)
        )
        return _finish(ctx, result, report, extra_s)

    # OOM degradation ladder state, shared across the whole chain: stage 0
    # flushes the allocator's segment cache, stage 1 evicts cold residency;
    # each stage runs at most once per call and refunds the attempt it
    # interrupted when it reclaimed something. Past both stages, an OOM is
    # an ordinary retryable fault — retries burn attempts, then the chain
    # falls back to a lower-footprint backend, then exhausts.
    oom_stage = 0

    for backend_index, backend in enumerate(chain):
        attempt_no = 0
        while attempt_no < policy.max_attempts:
            attempt_no += 1
            error: Exception | None = None
            try:
                if injector is not None:
                    stall = injector.on_launch(ctx, op, backend, operands)
                    if stall:
                        extra_s += stall
                        report.injected_latency_s += stall
                        if span is not None:
                            span.event(
                                "injected_latency",
                                backend=backend,
                                seconds=stall,
                            )
                        if flight is not None:
                            flight.record(
                                "injected_latency",
                                op,
                                backend=backend,
                                seconds=stall,
                            )
                if check_operands:
                    guardrails.validate_operands(operands)
                with guardrails.guarded(active=policy.validate):
                    result = attempt(backend)
                if policy.validate and hasattr(result, "execution"):
                    guardrails.check_finite_result(result, op, backend)
            except KernelLaunchError as exc:
                error = exc
            except DeviceOOMError as exc:
                error = exc
                freed = 0
                while oom_stage < 2 and not freed:
                    if oom_stage == 0:
                        flush = getattr(ctx, "flush_device_cache", None)
                        freed = flush() if flush is not None else 0
                        if span is not None:
                            span.event(
                                "oom_flush", backend=backend, bytes_freed=freed
                            )
                    else:
                        evict = getattr(ctx, "evict_device_bytes", None)
                        freed = (
                            evict(
                                max(getattr(exc, "requested", 0), 1),
                                op,
                                backend,
                            )
                            if evict is not None
                            else 0
                        )
                        if span is not None:
                            span.event(
                                "oom_evict",
                                kind="ladder",
                                backend=backend,
                                bytes_freed=freed,
                            )
                    oom_stage += 1
                if freed:
                    # A ladder stage reclaimed memory: the interrupted
                    # attempt is refunded rather than burned.
                    attempt_no -= 1
                    continue
            except PlanCorruptionError as exc:
                if exc.key is not None:
                    ctx.plans.evict(exc.key)
                error = exc
            except InvalidTopologyError as exc:
                repaired = (
                    injector.repair(operands) if injector is not None else False
                )
                if not repaired:
                    telemetry.record_failure(op, backend)
                    report.attempts.append(
                        AttemptRecord(
                            backend, attempt_no, "failed", classify(exc)
                        )
                    )
                    ctx.last_dispatch_report = report
                    if span is not None:
                        span.event(
                            "failure", backend=backend, error=classify(exc)
                        )
                    if flight is not None:
                        flight.record(
                            "failure", op, backend=backend, error=classify(exc)
                        )
                        flight.attach(exc, "failure")
                    raise
                error = exc
            except NumericalError as exc:
                if (
                    exc.kind == "fp16_overflow"
                    and policy.recompute_fp32
                    and fp32_attempt is not None
                ):
                    with guardrails.guarded(active=True):
                        result = fp32_attempt(backend)
                    guardrails.check_finite_result(result, op, backend)
                    report.degraded = True
                    telemetry.record_degraded(op, backend)
                    if span is not None:
                        span.event(
                            "degraded", backend=backend, error=classify(exc)
                        )
                    if flight is not None:
                        flight.record(
                            "degraded", op, backend=backend, error=classify(exc)
                        )
                    return succeed(
                        backend, attempt_no, result, "degraded", classify(exc)
                    )
                telemetry.record_failure(op, backend)
                report.attempts.append(
                    AttemptRecord(backend, attempt_no, "failed", classify(exc))
                )
                ctx.last_dispatch_report = report
                if span is not None:
                    span.event(
                        "failure", backend=backend, error=classify(exc)
                    )
                if flight is not None:
                    flight.record(
                        "failure", op, backend=backend, error=classify(exc)
                    )
                    flight.attach(exc, "failure")
                raise
            else:
                return succeed(backend, attempt_no, result)

            # Retryable fault: back off, fall back, or give up.
            if attempt_no < policy.max_attempts:
                wait = policy.backoff_base_s * (
                    policy.backoff_factor ** (attempt_no - 1)
                )
                extra_s += wait
                report.backoff_s += wait
                report.retries += 1
                telemetry.record_retry(op, backend)
                telemetry.record_backoff(op, backend, wait)
                report.attempts.append(
                    AttemptRecord(backend, attempt_no, "retry", classify(error))
                )
                if span is not None:
                    span.event(
                        "retry",
                        backend=backend,
                        attempt=attempt_no,
                        error=classify(error),
                        backoff_s=wait,
                    )
                if flight is not None:
                    flight.record(
                        "retry",
                        op,
                        backend=backend,
                        attempt=attempt_no,
                        error=classify(error),
                        backoff_s=wait,
                    )
            elif backend_index < len(chain) - 1:
                report.fallbacks += 1
                telemetry.record_fallback(op, backend)
                report.attempts.append(
                    AttemptRecord(
                        backend, attempt_no, "fallback", classify(error)
                    )
                )
                if span is not None:
                    span.event(
                        "fallback",
                        backend=backend,
                        next=chain[backend_index + 1],
                        error=classify(error),
                    )
                if flight is not None:
                    flight.record(
                        "fallback",
                        op,
                        backend=backend,
                        next=chain[backend_index + 1],
                        error=classify(error),
                    )
            else:
                report.attempts.append(
                    AttemptRecord(backend, attempt_no, "failed", classify(error))
                )
                telemetry.record_failure(op, backend)
                ctx.last_dispatch_report = report
                if span is not None:
                    span.event(
                        "failure", backend=backend, error=classify(error)
                    )
                snapshot = None
                if isinstance(error, DeviceOOMError):
                    snap = getattr(ctx, "memory_snapshot", None)
                    snapshot = (
                        snap() if snap is not None else error.snapshot
                    )
                exhausted = FallbackExhaustedError(
                    op=op, attempts=report.attempts, snapshot=snapshot
                )
                if flight is not None:
                    flight.record(
                        "failure", op, backend=backend, error=classify(error)
                    )
                    flight.attach(exhausted, "fallback_exhausted")
                raise exhausted from error

    raise AssertionError("unreachable: the chain loop always returns/raises")
