"""Structured error taxonomy for the sparse-op reliability layer.

Every failure the dispatch layer can observe is classified into one of four
concrete error types so retry/fallback policies can tell *retryable* faults
(a transient launch failure, a poisoned plan-cache entry, a correctable
metadata corruption) from *fatal* ones (a topology that is corrupt with no
way to re-fetch it, non-finite numerics in a full-precision run). The
mapping to real-GPU failure modes is documented in DESIGN.md Section 9.

This module is a leaf: it imports nothing from the rest of the package so
any layer (``sparse``, ``gpu``, ``ops``) can raise or catch these errors
without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class ReliabilityError(RuntimeError):
    """Base class for every classified failure in the sparse-op stack."""

    #: Whether a retry (possibly after repair) can succeed. Subclasses
    #: override; policies consult this instead of isinstance chains.
    retryable = False

    #: Postmortem window attached by the flight recorder when a terminal
    #: error escapes (see :meth:`repro.obs.flight.FlightRecorder.attach`):
    #: ``flight_records`` is the last-N-events window as trace-schema JSONL
    #: records, ``flight_dump`` the artifact path when ``REPRO_FLIGHT_DIR``
    #: is configured. ``None`` on errors raised with recording disabled.
    flight_records = None
    flight_dump = None


class KernelLaunchError(ReliabilityError):
    """A kernel launch failed transiently (the CUDA-land analogue is
    ``cudaErrorLaunchFailure`` / a watchdog timeout): retry the launch."""

    retryable = True


class InvalidTopologyError(ReliabilityError):
    """CSR/CSC metadata violates a structural invariant or its checksum.

    Retryable only when the corruption can be repaired (the fault injector
    re-uploads the pristine host copy, modelling a device re-fetch after an
    ECC event); otherwise terminal — no backend can compute with corrupt
    offsets or indices.
    """

    retryable = False


class NumericalError(ReliabilityError):
    """Guardrail violation in a kernel output (NaN/Inf, fp16 overflow).

    ``kind`` distinguishes recoverable saturation (``"fp16_overflow"`` —
    degraded-mode fp32 re-run applies) from unrecoverable non-finite
    results in full precision (``"nonfinite"``).
    """

    retryable = False

    def __init__(self, message: str, kind: str = "nonfinite") -> None:
        super().__init__(message)
        self.kind = kind


class PlanCorruptionError(ReliabilityError):
    """A cached kernel plan failed its integrity check.

    Retryable: evicting the poisoned entry and re-planning from the
    (uncorrupted) matrix structure always recovers.
    """

    retryable = True

    def __init__(self, message: str, key: Any = None) -> None:
        super().__init__(message)
        self.key = key


class PlanRepairError(ReliabilityError):
    """Incremental plan repair could not produce a consistent plan.

    Raised when a repaired plan's invariants fail (column histogram drifts
    from the matrix, delta rows out of range, parent state missing) or when
    the fault injector targets a repair. Retryable: the dispatch layer
    falls back to a cold re-plan from the (uncorrupted) child topology, so
    a repair failure can never surface a corrupt plan.
    """

    retryable = True


class DeviceOOMError(ReliabilityError):
    """A device allocation exceeded the remaining HBM capacity.

    Retryable: the dispatch policy runs a degradation ladder before giving
    up — flush the allocator's cached segments, evict cold plans/tensors
    (spilling plans to the persistent store), then fall back to a
    lower-footprint backend. ``snapshot`` is the allocator's gauge/counter
    dict at the moment of exhaustion, for post-mortem diagnosis.
    """

    retryable = True

    def __init__(
        self,
        message: str,
        requested: int = 0,
        capacity: int = 0,
        snapshot: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.requested = requested
        self.capacity = capacity
        self.snapshot = snapshot


@dataclass
class AttemptRecord:
    """One dispatch attempt inside a fallback chain."""

    backend: str
    attempt: int
    outcome: str  # "ok" | "retry" | "fallback" | "degraded" | "failed"
    error: str = ""


@dataclass
class FallbackExhaustedError(ReliabilityError):
    """Terminal error: every backend in the fallback chain was exhausted."""

    op: str
    attempts: list[AttemptRecord] = field(default_factory=list)
    #: Allocator gauge/counter snapshot when the chain died under memory
    #: pressure (``None`` for non-OOM exhaustion).
    snapshot: dict | None = None

    retryable = False

    def __post_init__(self) -> None:
        tried = ", ".join(
            f"{a.backend}#{a.attempt}:{a.error or a.outcome}"
            for a in self.attempts
        )
        super().__init__(
            f"operator {self.op!r}: fallback chain exhausted after "
            f"{len(self.attempts)} attempts ({tried})"
        )


def classify(error: BaseException) -> str:
    """Short taxonomy label for telemetry/report strings."""
    if isinstance(error, ReliabilityError):
        return type(error).__name__
    return f"unclassified:{type(error).__name__}"
