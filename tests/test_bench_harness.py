"""Tests for the benchmark harness (runner + report)."""

import numpy as np
import pytest

from repro.bench import (
    BenchRow,
    aspt_sddmm_time,
    aspt_spmm_time,
    cusparse_sddmm_time,
    cusparse_spmm_time,
    dense_spmm_time,
    format_table,
    geometric_mean,
    merge_spmm_time,
    pair_rows,
    paper_comparison,
    run_sddmm_suite,
    run_spmm_suite,
    speedup_stats,
    sputnik_sddmm_time,
    sputnik_spmm_time,
)
from tests.conftest import random_sparse


class TestStatistics:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def make_rows(self):
        return [
            BenchRow("p1", "a", 1, 1, 1, 1, runtime_s=1.0, flops=10.0),
            BenchRow("p1", "b", 1, 1, 1, 1, runtime_s=2.0, flops=10.0),
            BenchRow("p2", "a", 1, 1, 1, 1, runtime_s=1.0, flops=10.0),
            BenchRow("p2", "b", 1, 1, 1, 1, runtime_s=8.0, flops=10.0),
        ]

    def test_speedup_stats(self):
        stats = speedup_stats(self.make_rows(), "a", "b")
        assert stats.geomean_speedup == pytest.approx(4.0)
        assert stats.peak_speedup == pytest.approx(8.0)
        assert stats.fraction_faster == 1.0
        assert stats.n_problems == 2

    def test_pair_rows_requires_overlap(self):
        rows = [BenchRow("p1", "a", 1, 1, 1, 1, 1.0, 1.0)]
        with pytest.raises(ValueError):
            pair_rows(rows, "a", "b")

    def test_format_table(self):
        text = format_table(["x", "y"], [["1", "22"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "22" in lines[-1]

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(["x"], [["1", "2"]])

    def test_paper_comparison_line(self):
        line = paper_comparison("geomean", 3.58, 3.3)
        assert "paper 3.58" in line and "measured 3.3" in line


class TestTimers:
    def test_all_spmm_timers_run(self, rng, device):
        a = random_sparse(rng, 256, 128, 0.3)
        for timer in (
            sputnik_spmm_time,
            cusparse_spmm_time,
            merge_spmm_time,
            aspt_spmm_time,
            dense_spmm_time,
        ):
            result = timer(a, 32, device)
            assert result.runtime_s > 0

    def test_all_sddmm_timers_run(self, rng, device):
        mask = random_sparse(rng, 256, 128, 0.3)
        for timer in (sputnik_sddmm_time, cusparse_sddmm_time, aspt_sddmm_time):
            result = timer(mask, 32, device)
            assert result.runtime_s > 0

    def test_mixed_precision_timer(self, rng, device):
        a16 = random_sparse(rng, 128, 128, 0.3, dtype=np.float16)
        result = sputnik_spmm_time(a16, 64, device)
        assert "mixed" in result.name


class TestSuites:
    def test_spmm_suite_rows(self, rng, device):
        problems = [("p", random_sparse(rng, 64, 64, 0.3), 32)]
        rows = run_spmm_suite(
            problems, {"sputnik": sputnik_spmm_time, "dense": dense_spmm_time}, device
        )
        assert len(rows) == 2
        assert {r.kernel for r in rows} == {"sputnik", "dense"}
        assert all(r.flops == 2.0 * problems[0][1].nnz * 32 for r in rows)

    def test_sddmm_suite_rows(self, rng, device):
        problems = [("p", random_sparse(rng, 64, 64, 0.3), 16)]
        rows = run_sddmm_suite(problems, {"sputnik": sputnik_sddmm_time}, device)
        assert len(rows) == 1 and rows[0].n == 16

    def test_throughput_property(self):
        row = BenchRow("p", "k", 1, 1, 1, 1, runtime_s=2.0, flops=8.0)
        assert row.throughput_flops == 4.0
