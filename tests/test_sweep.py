"""Tests for the parallel sweep executor (repro.bench.sweep).

Everything runs with ``workers=1`` (in-process) except one small smoke test
of the actual process pool — in-process keeps monkeypatching and tmp-path
stores working naturally.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import build_tasks, run_sweep
from repro.bench import sweep as sweep_mod
from repro.datasets import MatrixSpec
from repro.gpu import V100
from repro import ops


def make_specs(n: int, rows: int = 128, cols: int = 96) -> list[MatrixSpec]:
    return [
        MatrixSpec(
            name=f"t{i}",
            model="test",
            layer=f"l{i}",
            rows=rows,
            cols=cols,
            sparsity=0.85,
            row_cov=0.25,
            seed=500 + i,
        )
        for i in range(n)
    ]


@pytest.fixture(autouse=True)
def _isolate_default_contexts():
    """run_sweep installs store-backed default contexts; keep them from
    leaking into other tests."""
    yield
    ops.reset_default_contexts()
    sweep_mod.reset_worker_state()


class TestBuildTasks:
    def test_cross_product(self):
        tasks = build_tasks(make_specs(3), ["sputnik", "dense"], n=64)
        assert len(tasks) == 6
        assert {t.kernel for t in tasks} == {"sputnik", "dense"}
        assert all(t.n == 64 for t in tasks)

    def test_multiple_batch_sizes(self):
        tasks = build_tasks(make_specs(2), ["sputnik"], n=[32, 64])
        assert len(tasks) == 4
        assert sorted({t.n for t in tasks}) == [32, 64]

    def test_spec_batch_columns_override(self):
        spec = MatrixSpec(
            name="b", model="m", layer="l", rows=64, cols=64,
            sparsity=0.5, row_cov=0.1, seed=1, batch_columns=(8, 16),
        )
        tasks = build_tasks([spec], ["sputnik"], n=64)
        assert sorted(t.n for t in tasks) == [8, 16]

    def test_unknown_kernel_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            build_tasks(make_specs(1), ["sputnik", "nope"])

    def test_row_keys_unique(self):
        tasks = build_tasks(make_specs(4), ["sputnik", "cusparse"], n=[32, 64])
        keys = [t.row_key for t in tasks]
        assert len(set(keys)) == len(keys)


class TestRunSweepInProcess:
    def test_row_counts_and_fields(self):
        rows, report = run_sweep(
            make_specs(3), ["sputnik", "cusparse"], V100, n=32, workers=1
        )
        assert len(rows) == 6
        assert report.total_tasks == 6
        assert report.measured == 6
        assert report.failed == 0
        for row in rows:
            assert row["status"] == "ok"
            assert row["runtime_s"] > 0
            assert row["row_key"]

    def test_warm_store_serves_rows(self, tmp_path):
        specs = make_specs(3)
        store = tmp_path / "store"
        cold_rows, cold = run_sweep(
            specs, ["sputnik"], V100, n=32, workers=1, store_path=store
        )
        warm_rows, warm = run_sweep(
            specs, ["sputnik"], V100, n=32, workers=1, store_path=store
        )
        assert cold.from_store == 0
        assert warm.from_store == 3
        assert warm.measured == 0
        assert warm.store_counters["hits"] == 3
        cold_t = {r["row_key"]: r["runtime_s"] for r in cold_rows}
        warm_t = {r["row_key"]: r["runtime_s"] for r in warm_rows}
        assert cold_t == warm_t

    def test_jsonl_streaming(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        rows, _ = run_sweep(
            make_specs(2), ["sputnik"], V100, n=32, workers=1, out_path=out
        )
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert len(lines) == len(rows) == 2
        assert {l["row_key"] for l in lines} == {r["row_key"] for r in rows}

    def test_resume_skips_done_rows(self, tmp_path):
        specs = make_specs(4)
        out = tmp_path / "rows.jsonl"
        all_rows, _ = run_sweep(
            specs, ["sputnik"], V100, n=32, workers=1, out_path=out
        )
        # Simulate an interrupted run: keep only the first two rows.
        lines = out.read_text().splitlines()
        out.write_text("\n".join(lines[:2]) + "\n")
        rows, report = run_sweep(
            specs, ["sputnik"], V100, n=32, workers=1, out_path=out,
            resume=True,
        )
        assert report.resumed == 2
        assert report.measured == 2
        assert len(rows) == 4
        assert {r["row_key"] for r in rows} == {r["row_key"] for r in all_rows}
        # The JSONL now holds the full result set again.
        final = [json.loads(l) for l in out.read_text().splitlines()]
        assert len(final) == 4

    def test_resume_tolerates_truncated_trailing_line(self, tmp_path):
        specs = make_specs(2)
        out = tmp_path / "rows.jsonl"
        run_sweep(specs, ["sputnik"], V100, n=32, workers=1, out_path=out)
        with out.open("a") as fh:
            fh.write('{"row_key": "half-written')  # kill -9 mid-append
        rows, report = run_sweep(
            specs, ["sputnik"], V100, n=32, workers=1, out_path=out,
            resume=True,
        )
        assert report.resumed == 2
        assert len(rows) == 2

    def test_fresh_run_truncates_stale_output(self, tmp_path):
        out = tmp_path / "rows.jsonl"
        out.write_text('{"row_key": "stale"}\n')
        rows, _ = run_sweep(
            make_specs(1), ["sputnik"], V100, n=32, workers=1, out_path=out
        )
        lines = out.read_text().splitlines()
        assert len(lines) == len(rows) == 1
        assert json.loads(lines[0])["row_key"] != "stale"

    def test_failed_kernel_becomes_failed_row(self, monkeypatch):
        def boom(a, n, device, config=None):
            raise RuntimeError("synthetic kernel failure")

        monkeypatch.setitem(sweep_mod.SPMM_KERNELS, "sputnik", boom)
        rows, report = run_sweep(
            make_specs(2), ["sputnik", "dense"], V100, n=32, workers=1
        )
        assert len(rows) == 4
        assert report.failed == 2
        failed = [r for r in rows if r["status"] == "failed"]
        assert all(r["kernel"] == "sputnik" for r in failed)
        assert all("synthetic kernel failure" in r["error"] for r in failed)

    def test_failed_rows_not_persisted(self, tmp_path, monkeypatch):
        """A failure must be retried on the next run, not served from disk."""
        def boom(a, n, device, config=None):
            raise RuntimeError("flaky")

        store = tmp_path / "store"
        monkeypatch.setitem(sweep_mod.SPMM_KERNELS, "sputnik", boom)
        _, first = run_sweep(
            make_specs(1), ["sputnik"], V100, n=32, workers=1,
            store_path=store,
        )
        assert first.failed == 1
        monkeypatch.undo()
        rows, second = run_sweep(
            make_specs(1), ["sputnik"], V100, n=32, workers=1,
            store_path=store,
        )
        assert second.failed == 0
        assert second.measured == 1
        assert rows[0]["status"] == "ok"

    def test_chunking_keeps_spec_groups_together(self):
        tasks = build_tasks(make_specs(3), ["sputnik", "dense"], n=32)
        chunks = sweep_mod._chunk_tasks(tasks, chunk_size=3)
        for chunk in chunks:
            specs_in_chunk = [t.spec.name for t in chunk]
            # A spec's tasks never straddle a chunk boundary.
            for other in chunks:
                if other is not chunk:
                    assert not set(specs_in_chunk) & {
                        t.spec.name for t in other
                    }


class TestRunSweepParallel:
    def test_parallel_matches_sequential(self, tmp_path):
        specs = make_specs(4)
        seq_rows, _ = run_sweep(specs, ["sputnik"], V100, n=32, workers=1)
        par_rows, report = run_sweep(
            specs, ["sputnik"], V100, n=32, workers=2, chunk_size=1,
            store_path=tmp_path / "store",
        )
        assert report.workers == 2
        seq = {r["row_key"]: r["runtime_s"] for r in seq_rows}
        par = {r["row_key"]: r["runtime_s"] for r in par_rows}
        assert seq == par
