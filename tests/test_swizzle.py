"""Tests for row-swizzle load balancing (Section V-C)."""

import numpy as np
import pytest

from repro.core import (
    bundle_rows,
    bundle_weights,
    identity_swizzle,
    paired_first_wave_order,
    row_swizzle,
    swizzled_row_groups,
)


class TestRowSwizzle:
    def test_is_a_permutation(self, rng):
        lengths = rng.integers(0, 50, size=64)
        order = row_swizzle(lengths)
        assert sorted(order) == list(range(64))

    def test_sorted_by_decreasing_length(self, rng):
        lengths = rng.integers(0, 50, size=64)
        order = row_swizzle(lengths)
        assert np.all(np.diff(lengths[order]) <= 0)

    def test_stable_for_ties(self):
        order = row_swizzle(np.array([5, 5, 5, 9]))
        assert list(order) == [3, 0, 1, 2]

    def test_rejects_negative_lengths(self):
        with pytest.raises(ValueError):
            row_swizzle(np.array([1, -2]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            row_swizzle(np.ones((2, 2)))

    def test_identity_swizzle(self):
        assert list(identity_swizzle(5)) == [0, 1, 2, 3, 4]


class TestBundling:
    def test_bundles_partition_rows(self, rng):
        order = row_swizzle(rng.integers(0, 50, size=70))
        bundles = bundle_rows(order, 8)
        flat = np.concatenate(bundles)
        assert sorted(flat) == list(range(70))

    def test_last_bundle_may_be_partial(self):
        bundles = bundle_rows(np.arange(10), 4)
        assert [len(b) for b in bundles] == [4, 4, 2]

    def test_bundle_size_validation(self):
        with pytest.raises(ValueError):
            bundle_rows(np.arange(4), 0)

    def test_sorted_bundles_have_monotone_weights(self, rng):
        """Sorted order -> bundle heaviness non-increasing: the binning
        heuristic schedules heavy bundles first."""
        lengths = rng.integers(0, 100, size=128)
        order = row_swizzle(lengths)
        weights = bundle_weights(lengths, order, 8)
        assert np.all(np.diff(weights) <= 0)

    def test_bundle_weights_conserve_work(self, rng):
        lengths = rng.integers(0, 100, size=50)
        weights = bundle_weights(lengths, identity_swizzle(50), 8)
        assert weights.sum() == lengths.sum()

    def test_sorted_bundles_group_similar_rows(self, rng):
        """Row bundling: in-bundle length spread is smaller when sorted."""
        lengths = rng.integers(0, 100, size=256)
        def spread(order):
            grouped = lengths[np.asarray(order[:256])].reshape(-1, 8)
            return float(np.mean(grouped.max(axis=1) - grouped.min(axis=1)))
        assert spread(row_swizzle(lengths)) < spread(identity_swizzle(256))


class TestPairedFirstWave:
    def test_is_a_permutation(self, rng):
        lengths = rng.integers(0, 100, size=100)
        order = paired_first_wave_order(lengths, wave_size=16)
        assert sorted(order) == list(range(100))

    def test_heaviest_wave_first(self, rng):
        lengths = rng.integers(0, 100, size=64)
        order = paired_first_wave_order(lengths, wave_size=16)
        first = set(order[:16])
        top16 = set(np.argsort(-lengths)[:16])
        assert first == top16

    def test_serpentine_pairing_balances_slots(self):
        lengths = np.arange(8)[::-1]  # 7..0
        order = paired_first_wave_order(lengths, wave_size=4)
        # Slot sums of (wave0[i], wave1[i]) should all be equal: 7+0 = 6+1...
        slot_sums = lengths[order[:4]] + lengths[order[4:]]
        assert len(set(slot_sums.tolist())) == 1

    def test_wave_size_validation(self):
        with pytest.raises(ValueError):
            paired_first_wave_order(np.array([1]), 0)


class TestSwizzledRowGroups:
    def test_groups_cover_all_rows(self, small_sparse):
        _, groups = swizzled_row_groups(small_sparse, 8)
        present = groups[groups >= 0]
        assert sorted(present) == list(range(small_sparse.n_rows))

    def test_padding_uses_minus_one(self, small_sparse):
        _, groups = swizzled_row_groups(small_sparse, 7)
        pad = (-small_sparse.n_rows) % 7
        assert (groups == -1).sum() == pad

    def test_disabled_keeps_natural_order(self, small_sparse):
        order, groups = swizzled_row_groups(small_sparse, 8, enabled=False)
        assert np.array_equal(order, np.arange(small_sparse.n_rows))
        assert groups[0, 0] == 0

    def test_enabled_puts_heaviest_row_first(self, small_sparse):
        _, groups = swizzled_row_groups(small_sparse, 8, enabled=True)
        assert groups[0, 0] == int(np.argmax(small_sparse.row_lengths))
