"""Tests for the tiling geometry and kernel configurations."""

import numpy as np
import pytest

from repro.core import SddmmConfig, SpmmConfig, derive_tiling, value_dtype
from repro.core.selection import next_power_of_two, widest_vector_width
from repro.tune import select_sddmm_config, select_spmm_config


class TestSpmmConfig:
    def test_defaults_enable_everything(self):
        c = SpmmConfig()
        assert c.roma and c.load_balance and c.residue_unroll and c.index_prescale
        assert c.vector_width == 4

    def test_tile_must_be_vector_multiple(self):
        with pytest.raises(ValueError):
            SpmmConfig(block_items_x=30, vector_width=4)

    def test_block_items_k_must_be_vector_multiple(self):
        with pytest.raises(ValueError):
            SpmmConfig(block_items_k=30, vector_width=4)

    def test_mixed_precision_disables_prescale(self):
        """Section V-D3: int16 indices cannot hold pre-scaled offsets."""
        c = SpmmConfig(precision="mixed", index_prescale=True)
        assert not c.index_prescale
        assert c.element_bytes == 2 and c.index_bytes == 2

    def test_fp32_bytes(self):
        c = SpmmConfig()
        assert c.element_bytes == 4 and c.index_bytes == 4

    @pytest.mark.parametrize(
        "opt", ["vector", "roma", "load_balance", "residue_unroll", "index_prescale"]
    )
    def test_without_each_optimization(self, opt):
        c = SpmmConfig().without(opt)
        if opt == "vector":
            assert c.vector_width == 1
        elif opt == "roma":
            assert not c.roma
        elif opt == "load_balance":
            assert not c.load_balance
        elif opt == "residue_unroll":
            assert not c.residue_unroll
        else:
            assert not c.index_prescale

    def test_unknown_optimization_rejected(self):
        with pytest.raises(ValueError):
            SpmmConfig().without("magic")

    def test_bad_precision_rejected(self):
        with pytest.raises(ValueError):
            SpmmConfig(precision="fp64")

    def test_value_dtype_helper(self):
        assert value_dtype("fp32") == np.dtype(np.float32)
        assert value_dtype("mixed") == np.dtype(np.float16)


class TestSddmmConfig:
    def test_defaults(self):
        c = SddmmConfig()
        assert c.nonzeros_per_block == 32 and c.vector_width == 4

    def test_strip_bounds(self):
        with pytest.raises(ValueError):
            SddmmConfig(nonzeros_per_block=0)
        with pytest.raises(ValueError):
            SddmmConfig(nonzeros_per_block=64)

    def test_scalar_variant_uses_smaller_strips(self):
        c = SddmmConfig().without("vector")
        assert c.vector_width == 1 and c.nonzeros_per_block < 32


class TestDeriveTiling:
    def test_subwarp_tiling_for_narrow_tiles(self):
        """Tile narrower than a warp's vector footprint -> multiple subwarps
        share the warp (Section V-B1)."""
        t = derive_tiling(SpmmConfig(block_items_x=32, vector_width=4))
        assert t.subwarp_threads == 8
        assert t.subwarps_per_warp == 4
        assert t.thread_items_x == 4
        assert t.block_items_y == 16  # 4 warps x 4 subwarps

    def test_full_warp_per_tile(self):
        t = derive_tiling(SpmmConfig(block_items_x=128, vector_width=4))
        assert t.subwarp_threads == 32
        assert t.subwarps_per_warp == 1
        assert t.thread_items_x == 4

    def test_scalar_tile_one(self):
        t = derive_tiling(SpmmConfig(block_items_x=1, vector_width=1))
        assert t.subwarps_per_warp == 32
        assert t.block_items_y == 128

    def test_threads_per_block(self):
        t = derive_tiling(SpmmConfig(warps_per_block=4))
        assert t.threads_per_block == 128

    def test_grid_covers_output(self):
        t = derive_tiling(SpmmConfig(block_items_x=64, vector_width=4))
        gx, gy = t.grid(100, 129)
        assert gx * 64 >= 129 and (gx - 1) * 64 < 129
        assert gy * t.block_items_y >= 100

    def test_grid_rejects_empty(self):
        t = derive_tiling(SpmmConfig())
        with pytest.raises(ValueError):
            t.grid(0, 4)


class TestSelectionHeuristics:
    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(33) == 64
        assert next_power_of_two(64) == 64
        with pytest.raises(ValueError):
            next_power_of_two(0)

    def test_widest_vector_width(self):
        assert widest_vector_width(128) == 4
        assert widest_vector_width(6) == 2
        assert widest_vector_width(7) == 1
        assert widest_vector_width(8, 12) == 4

    def test_spmm_heuristic_caps_tile_at_64(self, small_sparse):
        c = select_spmm_config(small_sparse, 512)
        assert c.block_items_x == 64

    def test_spmm_heuristic_rounds_to_pow2(self, small_sparse):
        c = select_spmm_config(small_sparse, 20)
        assert c.block_items_x == 32
        assert c.vector_width == widest_vector_width(32, 20)

    def test_sddmm_heuristic_fixed_tile(self):
        c = select_sddmm_config(128)
        assert c.nonzeros_per_block == 32 and c.vector_width == 4
        assert select_sddmm_config(33).vector_width == 1


class TestSelectionEdgeCases:
    """Satellite coverage for the selection heuristic's boundary behavior:
    non-power-of-two N, N above the tile cap, and odd-dimension vector
    fallback — each config must also drive the kernel to exact numerics."""

    def _run(self, rng, a, n, config):
        from repro.core import spmm
        from repro.gpu import V100

        b = rng.standard_normal((a.n_cols, n)).astype(np.float32)
        out = spmm(a, b, V100, config).output
        ref = a.to_dense().astype(np.float32) @ b
        assert np.allclose(out, ref, atol=1e-4)

    @pytest.mark.parametrize("n", [3, 5, 6, 12, 20, 48, 96, 100])
    def test_non_power_of_two_n_rounds_up_and_runs(self, rng, small_sparse, n):
        c = select_spmm_config(small_sparse, n)
        assert c.block_items_x == min(64, next_power_of_two(n))
        # The vector width must divide both the tile and the real N, or the
        # kernel's vector loads would run off the batch.
        assert c.block_items_x % c.vector_width == 0
        assert n % c.vector_width == 0
        self._run(rng, small_sparse, n, c)

    @pytest.mark.parametrize("n", [65, 100, 129, 512])
    def test_n_above_tile_cap_clamps_to_max_tile(self, rng, small_sparse, n):
        from repro.core.selection import MAX_TILE_X

        c = select_spmm_config(small_sparse, n)
        assert c.block_items_x == MAX_TILE_X
        if n == 100:  # 100 = 4*25: vectors stay wide despite the odd tile fit
            assert c.vector_width == 4
        self._run(rng, small_sparse, n, c)

    @pytest.mark.parametrize("n,expected_vw", [(7, 1), (33, 1), (6, 2), (66, 2)])
    def test_odd_dims_fall_back_to_narrow_vectors(
        self, rng, small_sparse, n, expected_vw
    ):
        c = select_spmm_config(small_sparse, n)
        assert c.vector_width == expected_vw
        self._run(rng, small_sparse, n, c)

    def test_sddmm_odd_k_falls_back_to_scalar(self):
        assert select_sddmm_config(7).vector_width == 1
        assert select_sddmm_config(10).vector_width == 2

    def test_pad_batch_for_vectors_restores_vector_width(self, rng):
        from repro.core.selection import pad_batch_for_vectors

        b = rng.standard_normal((16, 10)).astype(np.float32)
        padded = pad_batch_for_vectors(b)
        assert padded.shape == (16, 12)
        assert (padded[:, 10:] == 0).all()
        assert widest_vector_width(padded.shape[1]) == 4
        # Already-aligned batches pass through untouched.
        assert pad_batch_for_vectors(padded) is padded
