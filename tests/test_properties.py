"""Property-based tests (hypothesis) on the core data structures and the
invariants DESIGN.md Section 6 calls out."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import SpmmConfig, align_rows, row_swizzle, spmm
from repro.core.sddmm import sddmm
from repro.gpu import V100, aligned_extent, simulate_schedule
from repro.sparse import (
    CSRMatrix,
    pad_rows,
    sddmm_reference,
    sparse_softmax_reference,
    spmm_reference,
    transpose,
)

settings.register_profile("repro", deadline=None, max_examples=40)
settings.load_profile("repro")


@st.composite
def sparse_matrices(draw, max_rows=24, max_cols=24):
    rows = draw(st.integers(1, max_rows))
    cols = draw(st.integers(1, max_cols))
    density = draw(st.floats(0.05, 0.9))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    dense = (rng.random((rows, cols)) < density) * rng.standard_normal((rows, cols))
    return CSRMatrix.from_dense(dense.astype(np.float32))


class TestCsrProperties:
    @given(sparse_matrices())
    def test_dense_roundtrip(self, a):
        assert np.array_equal(CSRMatrix.from_dense(a.to_dense()).to_dense(), a.to_dense())

    @given(sparse_matrices())
    def test_scipy_roundtrip(self, a):
        b = CSRMatrix.from_scipy(a.to_scipy())
        assert np.allclose(b.to_dense(), a.to_dense(), atol=1e-6)

    @given(sparse_matrices())
    def test_row_lengths_consistent(self, a):
        assert a.row_lengths.sum() == a.nnz
        assert np.all(a.row_lengths >= 0)

    @given(sparse_matrices())
    def test_transpose_involution(self, a):
        assert np.array_equal(transpose(transpose(a)).to_dense(), a.to_dense())

    @given(sparse_matrices())
    def test_transpose_matches_scipy(self, a):
        assert np.allclose(
            transpose(a).to_dense(), a.to_scipy().T.toarray(), atol=1e-6
        )

    @given(sparse_matrices(), st.sampled_from([2, 3, 4, 8]))
    def test_padding_preserves_values(self, a, multiple):
        padded = pad_rows(a, multiple)
        assert np.allclose(padded.to_dense(), a.to_dense(), atol=1e-6)
        nonempty = a.row_lengths > 0
        assert np.all(padded.row_lengths[nonempty] % multiple == 0)


class TestKernelProperties:
    @given(sparse_matrices(), st.integers(1, 5), st.integers(0, 2**31 - 1))
    def test_spmm_matches_reference_for_any_matrix(self, a, n_mul, seed):
        n = 4 * n_mul
        rng = np.random.default_rng(seed)
        b = rng.standard_normal((a.n_cols, n)).astype(np.float32)
        config = SpmmConfig(block_items_x=4, vector_width=4, block_items_k=4)
        out = spmm(a, b, V100, config).output
        assert np.allclose(out, spmm_reference(a, b), atol=1e-3)

    @given(sparse_matrices(), st.integers(1, 4), st.integers(0, 2**31 - 1))
    def test_sddmm_matches_reference_for_any_mask(self, mask, k_mul, seed):
        if mask.nnz == 0:
            return
        k = 4 * k_mul
        rng = np.random.default_rng(seed)
        lhs = rng.standard_normal((mask.n_rows, k)).astype(np.float32)
        rhs = rng.standard_normal((mask.n_cols, k)).astype(np.float32)
        out = sddmm(lhs, rhs, mask, V100).output
        assert np.allclose(
            out.values, sddmm_reference(lhs, rhs, mask).values, atol=1e-3
        )

    @given(sparse_matrices())
    def test_softmax_rows_sum_to_one(self, a):
        if a.nnz == 0:
            return
        out = sparse_softmax_reference(a)
        sums = np.asarray(out.to_scipy().sum(axis=1)).ravel()
        nonempty = a.row_lengths > 0
        assert np.allclose(sums[nonempty], 1.0, atol=1e-4)
        assert np.all(out.values >= 0)

    @given(sparse_matrices(), st.sampled_from([2, 4]))
    def test_roma_never_changes_row_content(self, a, vw):
        aligned = align_rows(a, vw)
        assert np.all(aligned.offsets % vw == 0)
        assert np.all(aligned.prefix >= 0) and np.all(aligned.prefix < vw)
        # Masked reconstruction equals original rows.
        for i in range(a.n_rows):
            off, pre = aligned.offsets[i], aligned.prefix[i]
            row = a.values[off + pre : off + aligned.lengths[i]]
            lo, hi = a.row_offsets[i], a.row_offsets[i + 1]
            assert np.array_equal(row, a.values[lo:hi])


class TestSwizzleScheduleProperties:
    @given(
        hnp.arrays(
            np.int64, st.integers(1, 200), elements=st.integers(0, 1000)
        )
    )
    def test_swizzle_is_permutation_sorted_desc(self, lengths):
        order = row_swizzle(lengths)
        assert sorted(order) == list(range(len(lengths)))
        assert np.all(np.diff(lengths[order]) <= 0)

    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 300),
            elements=st.floats(0.0, 10.0, allow_nan=False),
        )
    )
    def test_schedule_conserves_work_and_bounds(self, durations):
        res = simulate_schedule(durations, V100, 1)
        assert res.slot_busy.sum() == pytest.approx(durations.sum(), rel=1e-9, abs=1e-9)
        assert res.makespan >= (durations.max() if len(durations) else 0.0) - 1e-12
        assert res.makespan >= durations.sum() / V100.num_sms - 1e-9
        assert res.imbalance >= 1.0 - 1e-9

    @given(
        hnp.arrays(np.int64, st.integers(1, 64), elements=st.integers(0, 64)),
        st.integers(1, 8),
        st.integers(0, 2**31 - 1),
    )
    def test_aligned_extent_invariants(self, lengths, vw_pick, seed):
        vw = [1, 2, 4][vw_pick % 3]
        rng = np.random.default_rng(seed)
        offsets = np.cumsum(np.concatenate([[0], lengths[:-1]]))
        new_off, new_len = aligned_extent(offsets, lengths, vw)
        assert np.all(new_off % vw == 0)
        assert np.all(new_off <= offsets)
        assert np.all(new_off + new_len == offsets + lengths)
