"""Tests for repro.gpu.occupancy — the CUDA occupancy calculator."""

import pytest

from repro.gpu import V100, BlockResources, compute_occupancy


class TestBlockResources:
    def test_warps_round_up(self):
        assert BlockResources(threads=33).warps(V100) == 2
        assert BlockResources(threads=32).warps(V100) == 1

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            BlockResources(threads=0)

    def test_negative_resources_rejected(self):
        with pytest.raises(ValueError):
            BlockResources(threads=32, shared_mem_bytes=-1)


class TestLimits:
    def test_thread_limited(self):
        occ = compute_occupancy(
            BlockResources(threads=1024, registers_per_thread=16), V100
        )
        assert occ.blocks_per_sm == 2
        assert occ.limiting_factor == "threads"

    def test_block_limited_for_tiny_blocks(self):
        occ = compute_occupancy(
            BlockResources(threads=32, registers_per_thread=16), V100
        )
        assert occ.blocks_per_sm == V100.max_blocks_per_sm
        assert occ.limiting_factor == "blocks"

    def test_shared_memory_limited(self):
        occ = compute_occupancy(
            BlockResources(
                threads=64, shared_mem_bytes=48 * 1024, registers_per_thread=16
            ),
            V100,
        )
        assert occ.blocks_per_sm == 2
        assert occ.limiting_factor == "shared_memory"

    def test_register_limited(self):
        occ = compute_occupancy(
            BlockResources(threads=256, registers_per_thread=128), V100
        )
        assert occ.limiting_factor == "registers"
        assert occ.blocks_per_sm == 2

    def test_too_many_threads_per_block_rejected(self):
        with pytest.raises(ValueError, match="exceeds device limit"):
            compute_occupancy(BlockResources(threads=2048), V100)

    def test_oversized_shared_memory_rejected(self):
        with pytest.raises(ValueError, match="per-SM capacity"):
            compute_occupancy(
                BlockResources(threads=32, shared_mem_bytes=100 * 1024), V100
            )

    def test_zero_occupancy_rejected(self):
        with pytest.raises(ValueError, match="zero occupancy"):
            compute_occupancy(
                BlockResources(threads=1024, registers_per_thread=255), V100
            )


class TestOccupancyProperties:
    def test_resident_warps_and_fraction(self):
        occ = compute_occupancy(
            BlockResources(threads=128, registers_per_thread=32), V100
        )
        assert occ.resident_warps == occ.blocks_per_sm * 4
        assert 0.0 < occ.fraction(V100) <= 1.0

    def test_full_occupancy_possible(self):
        occ = compute_occupancy(
            BlockResources(threads=256, registers_per_thread=32), V100
        )
        assert occ.fraction(V100) == pytest.approx(1.0)
