"""Tests for the workload datasets (Section II corpora and benchmark grids)."""

import numpy as np
import pytest

from repro.datasets import (
    CELL_GATES,
    MatrixSpec,
    NEURAL_NETWORK_COV,
    banded_random_mask,
    contrast,
    cov_sweep,
    dense_causal_mask,
    dnn_corpus,
    imbalanced_matrix,
    imbalanced_spec,
    mask_statistics,
    materialize_rows,
    problem_grid,
    row_length_cov,
    row_lengths_with_cov,
    stats_from_matrix,
    stats_from_row_lengths,
    suitesparse,
    summarize,
)


class TestSpec:
    def test_row_lengths_hit_exact_total(self, rng):
        lengths = row_lengths_with_cov(100, 200, 5000, 0.3, rng)
        assert lengths.sum() == 5000
        assert np.all(lengths >= 0) and np.all(lengths <= 200)

    def test_cov_close_to_target(self, rng):
        lengths = row_lengths_with_cov(2000, 500, 100000, 0.8, rng)
        assert row_length_cov(lengths) == pytest.approx(0.8, rel=0.15)

    def test_zero_cov_near_uniform(self, rng):
        lengths = row_lengths_with_cov(10, 100, 1000, 0.0, rng)
        assert lengths.max() - lengths.min() <= 1

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            row_lengths_with_cov(4, 4, 17, 0.1, rng)  # nnz > rows*cols
        with pytest.raises(ValueError):
            row_lengths_with_cov(4, 4, 4, -0.1, rng)

    def test_materialize_rows_structure(self, rng):
        lengths = np.array([3, 0, 5])
        a = materialize_rows(lengths, 16, rng)
        assert np.array_equal(a.row_lengths, lengths)
        for i in range(3):
            row = a.column_indices[a.row_offsets[i] : a.row_offsets[i + 1]]
            assert np.all(np.diff(row) > 0)  # sorted, no duplicates

    def test_spec_deterministic(self):
        s = MatrixSpec("t", "m", "l", 64, 48, 0.7, 0.2, seed=9)
        a, b = s.materialize(), s.materialize()
        assert np.array_equal(a.column_indices, b.column_indices)
        assert np.array_equal(a.values, b.values)

    def test_spec_stats_match_materialized(self):
        s = MatrixSpec("t", "m", "l", 64, 48, 0.7, 0.2, seed=9)
        assert s.stats().nnz == s.materialize().nnz

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MatrixSpec("t", "m", "l", 64, 48, 1.0, 0.2, seed=0)
        with pytest.raises(ValueError):
            MatrixSpec("t", "m", "l", 0, 48, 0.5, 0.2, seed=0)


class TestStatistics:
    def test_cov_of_uniform_is_zero(self):
        assert row_length_cov(np.full(10, 7)) == 0.0

    def test_cov_of_empty(self):
        assert row_length_cov(np.array([])) == 0.0

    def test_stats_from_row_lengths(self):
        s = stats_from_row_lengths(np.array([2, 4]), 8)
        assert s.nnz == 6 and s.sparsity == pytest.approx(1 - 6 / 16)
        assert s.avg_row_length == 3.0

    def test_stats_validation(self):
        with pytest.raises(ValueError):
            stats_from_row_lengths(np.array([9]), 8)

    def test_stats_from_matrix(self, small_sparse):
        s = stats_from_matrix(small_sparse)
        assert s.nnz == small_sparse.nnz

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestDnnCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return dnn_corpus.build_corpus()

    def test_paper_counts(self, corpus):
        assert len(corpus) == 3012
        assert len({s.model for s in corpus}) == 49

    def test_sample_is_deterministic_and_stratified(self, corpus):
        s1 = dnn_corpus.sample_corpus(100, corpus=corpus)
        s2 = dnn_corpus.sample_corpus(100, corpus=corpus)
        assert [a.name for a in s1] == [b.name for b in s2]
        assert len({s.model for s in s1}) > 20

    def test_sample_validation(self, corpus):
        with pytest.raises(ValueError):
            dnn_corpus.sample_corpus(0, corpus=corpus)

    def test_figure2_contrast_ratios(self, corpus):
        """The headline Figure 2 numbers: DL matrices ~13.4x less sparse,
        ~2.3x longer rows, ~25x lower CoV than SuiteSparse."""
        dl = summarize([s.stats() for s in corpus])
        sci = summarize([s.stats() for s in suitesparse.build_corpus()])
        ratios = contrast(dl, sci)
        assert ratios["density_ratio"] == pytest.approx(13.4, rel=0.2)
        assert ratios["row_length_ratio"] == pytest.approx(2.3, rel=0.25)
        assert ratios["cov_ratio"] == pytest.approx(25.0, rel=0.25)

    def test_batch_columns_padded_for_vectors(self, corpus):
        for s in corpus:
            for n in s.batch_columns:
                assert n % 4 == 0


class TestSuitesparse:
    def test_corpus_size(self):
        assert len(suitesparse.build_corpus()) == suitesparse.CORPUS_SIZE

    def test_extremely_sparse(self):
        sample = suitesparse.build_corpus()[:100]
        assert all(s.sparsity > 0.95 for s in sample)

    def test_square_matrices(self):
        sample = suitesparse.build_corpus()[:50]
        assert all(s.rows == s.cols for s in sample)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            suitesparse.build_corpus(size=0)


class TestRnnGrid:
    def test_grid_size(self):
        assert len(problem_grid()) == 3 * 4 * 3 * 2

    def test_gate_structure(self):
        assert CELL_GATES == {"rnn": 1, "gru": 3, "lstm": 4}
        lstm = [p for p in problem_grid() if p.cell == "lstm"][0]
        assert lstm.m == 4 * lstm.state_size

    def test_label_format(self):
        p = problem_grid()[0]
        assert p.label == f"{p.m}/{p.k}/{p.n}/{int(p.sparsity * 100)}%"

    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError):
            problem_grid(cells=("transformer",))

    def test_uniform_sparsity_cov(self):
        """Bernoulli masks have CoV ~= sqrt(s / ((1-s) K))."""
        p = [g for g in problem_grid() if g.state_size == 1024][0]
        a = p.materialize()
        expected = np.sqrt(p.sparsity / ((1 - p.sparsity) * p.k))
        assert row_length_cov(a.row_lengths) == pytest.approx(expected, rel=0.3)


class TestAttentionMasks:
    def test_causal(self):
        m = banded_random_mask(128, band=16, seed=0)
        dense = m.to_dense()
        assert np.all(np.triu(dense, k=1) == 0)

    def test_band_fully_connected(self):
        m = banded_random_mask(128, band=16, seed=0)
        dense = m.to_dense()
        for i in range(128):
            lo = max(0, i - 15)
            assert np.all(dense[i, lo : i + 1] == 1)

    def test_off_band_density_matches_target(self):
        m = banded_random_mask(2048, band=64, off_diagonal_sparsity=0.95, seed=1)
        stats = mask_statistics(m, band=64)
        assert stats["off_band_density"] == pytest.approx(0.05, abs=0.01)

    def test_dense_causal_mask_count(self):
        m = dense_causal_mask(64)
        assert m.nnz == 64 * 65 // 2

    def test_validation(self):
        with pytest.raises(ValueError):
            banded_random_mask(0)
        with pytest.raises(ValueError):
            banded_random_mask(16, band=0)
        with pytest.raises(ValueError):
            banded_random_mask(16, off_diagonal_sparsity=1.0)


class TestImbalance:
    def test_fig7_configuration(self):
        s = imbalanced_spec(0.5)
        assert (s.rows, s.cols, s.sparsity) == (8192, 2048, 0.75)

    def test_cov_sweep_covers_axis(self):
        sweep = cov_sweep()
        assert sweep[0].row_cov == 0.0 and sweep[-1].row_cov == 2.0

    def test_realized_cov(self):
        a = imbalanced_matrix(1.0, m=2048, k=512, sparsity=0.8)
        assert row_length_cov(a.row_lengths) == pytest.approx(1.0, rel=0.2)

    def test_nn_marker_in_plausible_range(self):
        assert 0.1 < NEURAL_NETWORK_COV < 0.6

    def test_negative_cov_rejected(self):
        with pytest.raises(ValueError):
            imbalanced_spec(-0.5)
