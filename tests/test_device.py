"""Tests for repro.gpu.device."""

import pytest

from repro.gpu import GTX1080, V100, DeviceSpec, get_device


class TestPresets:
    def test_v100_headline_numbers(self):
        assert V100.num_sms == 80
        assert V100.fp32_peak_flops == pytest.approx(15.7e12)
        assert V100.dram_bandwidth == pytest.approx(900e9)
        assert V100.dram_capacity == 16 * 1024**3

    def test_gtx1080_is_smaller(self):
        assert GTX1080.num_sms < V100.num_sms
        assert GTX1080.fp32_peak_flops < V100.fp32_peak_flops
        assert GTX1080.dram_capacity == 8 * 1024**3

    def test_scheduler_row_width_defaults_to_half_the_sms(self):
        assert V100.scheduler_row_width == 40
        dev = DeviceSpec(name="x", num_sms=60)
        assert dev.scheduler_row_width == 30

    def test_explicit_scheduler_row_width_preserved(self):
        dev = DeviceSpec(name="x", num_sms=20, scheduler_row_width=20)
        assert dev.scheduler_row_width == 20


class TestDerivedQuantities:
    def test_fma_per_sm_matches_peak(self):
        # peak = 2 * sms * clock * fma_lanes
        lanes = V100.fma_per_sm_per_cycle
        assert 2 * V100.num_sms * V100.core_clock_hz * lanes == pytest.approx(
            V100.fp32_peak_flops
        )

    def test_v100_has_64_fma_lanes_per_sm(self):
        assert V100.fma_per_sm_per_cycle == pytest.approx(64.1, rel=0.01)

    def test_effective_bandwidth_below_vendor_peak(self):
        assert V100.effective_dram_bandwidth < V100.dram_bandwidth
        assert V100.effective_dram_bandwidth == pytest.approx(
            V100.dram_bandwidth * V100.dram_efficiency
        )

    def test_peak_fraction(self):
        assert V100.peak_fraction(V100.fp32_peak_flops, 1.0) == pytest.approx(1.0)
        assert V100.peak_fraction(1.0, 0.0) == 0.0


class TestLookup:
    @pytest.mark.parametrize("name", ["v100", "V100", "gtx1080", "1080"])
    def test_get_device_aliases(self, name):
        assert get_device(name) in (V100, GTX1080)

    def test_get_device_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_device("h100")
