"""Tests for the config-selection refactor and the cost-model autotuner.

Covers the :mod:`repro.tune` package end to end: the shared candidate
enumeration, the hill-climbing search's never-lose guarantee, tuned-winner
persistence through the PlanStore envelope (including corruption
self-heal), selector-qualified cache keys, the SDDMM precision regression,
span labeling, and the grep-enforced rule that nothing outside
``repro.tune`` resolves configs by calling the selection heuristics
directly.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro import ops
from repro.core import SddmmConfig, SpmmConfig, derive_tiling
from repro.gpu import V100
from repro.tune import (
    HeuristicSelector,
    TuningResult,
    oracle_spmm_config,
    resolve_selector,
    sddmm_candidates,
    select_sddmm_config,
    select_spmm_config,
    spmm_candidates,
    tune_sddmm_config,
    tune_spmm_config,
)

from tests.conftest import random_sparse

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"


class TestCandidateEnumeration:
    def test_spmm_candidates_are_deduped(self):
        cands = spmm_candidates(64)
        assert len(cands) == len(set(cands))

    def test_spmm_candidates_include_warp_variants(self):
        """The oracle and the tuner share one enumeration, and it must
        vary ``warps_per_block`` (the old oracle menu pinned it at 4)."""
        warps = {c.warps_per_block for c in spmm_candidates(64)}
        assert len(warps) >= 2

    def test_spmm_candidates_all_legal(self):
        for n in (7, 16, 64, 100):
            for c in spmm_candidates(n):
                assert isinstance(c, SpmmConfig)
                derive_tiling(c)  # raises on illegal subwarp geometry
                if c.vector_width > 1:
                    assert n % c.vector_width == 0

    def test_mixed_precision_candidates_dedupe_prescale_alias(self):
        """Mixed precision force-disables index_prescale, so toggling it
        yields identical configs — the enumeration must not double-count."""
        cands = spmm_candidates(64, precision="mixed")
        assert len(cands) == len(set(cands))
        assert all(not c.index_prescale for c in cands)

    def test_sddmm_candidates_deduped_and_legal(self):
        cands = sddmm_candidates(32)
        assert len(cands) == len(set(cands))
        assert all(isinstance(c, SddmmConfig) for c in cands)
        assert {c.nonzeros_per_block for c in cands} >= {8, 16, 32}


class TestSearch:
    @pytest.mark.parametrize("n", [16, 48, 64])
    def test_tuned_never_slower_than_heuristic(self, rng, n):
        a = random_sparse(rng, 96, 64, 0.25)
        result = tune_spmm_config(a, n, V100)
        assert isinstance(result, TuningResult)
        assert result.runtime_s <= result.seed_runtime_s
        assert result.seed_config == select_spmm_config(a, n)
        assert not result.fell_back
        assert result.candidates_costed >= len(spmm_candidates(n))
        assert result.speedup_over_seed >= 1.0

    def test_tuned_at_least_matches_oracle(self, rng):
        """The tuner costs the full oracle menu before climbing, so it can
        only improve on the oracle's pick."""
        a = random_sparse(rng, 80, 56, 0.3)
        from repro.core.spmm import build_launch
        from repro.gpu.executor import execute

        oracle_cfg = oracle_spmm_config(a, 64, V100)
        t_oracle = execute(build_launch(a, 64, oracle_cfg, V100), V100).runtime_s
        tuned = tune_spmm_config(a, 64, V100)
        assert tuned.runtime_s <= t_oracle * (1 + 1e-12)

    def test_sddmm_tuned_never_slower(self, rng):
        mask = random_sparse(rng, 64, 64, 0.2)
        result = tune_sddmm_config(mask, 32, V100)
        assert result.runtime_s <= result.seed_runtime_s
        assert result.seed_config == select_sddmm_config(32)
        assert not result.fell_back

    def test_search_is_deterministic(self, rng):
        a = random_sparse(rng, 96, 64, 0.25)
        first = tune_spmm_config(a, 48, V100)
        second = tune_spmm_config(a, 48, V100)
        assert first.config == second.config
        assert first.runtime_s == second.runtime_s


class TestSelectorDispatch:
    def test_selector_cache_keys_never_collide(self, rng):
        """One context, all three selectors on the same problem: each gets
        its own plan-cache entry, qualified by the selector name."""
        a = random_sparse(rng, 64, 48, 0.3)
        ctx = ops.ExecutionContext(V100)
        configs = {}
        for name in ("heuristic", "oracle", "tuned"):
            configs[name] = ctx.spmm_config(a, 32, selector=name)
        keys = [k for k in ctx.plans.keys() if k[0] == "spmm_config"]
        assert len(keys) == 3
        assert {k[-1] for k in keys} == {"heuristic", "oracle", "tuned"}
        # Tuned must genuinely beat the heuristic here, so a key collision
        # would be observable as a wrong config.
        assert configs["tuned"] != configs["heuristic"]

    def test_invalid_selector_fails_fast(self):
        with pytest.raises(ValueError, match="selector"):
            resolve_selector("bogus")

    def test_custom_selector_instance_dispatches(self, rng):
        a = random_sparse(rng, 64, 48, 0.3)
        sel = HeuristicSelector()
        result = ops.spmm_cost(a, 32, V100, selector=sel)
        assert result.runtime_s > 0

    def test_cost_dispatch_agrees_with_search(self, rng):
        a = random_sparse(rng, 64, 48, 0.3)
        ctx = ops.ExecutionContext(V100)
        via_ops = ops.spmm_cost(a, 32, context=ctx, selector="tuned")
        direct = tune_spmm_config(a, 32, V100)
        assert via_ops.runtime_s == pytest.approx(direct.runtime_s, rel=1e-9)


class TestPlanStoreRoundTrip:
    def test_tuned_winner_round_trips_through_store(self, rng, tmp_path):
        a = random_sparse(rng, 64, 48, 0.3)
        store = tmp_path / "plans"
        ctx = ops.ExecutionContext(V100, store=str(store))
        cfg = ctx.spmm_config(a, 32, selector="tuned")

        fresh = ops.ExecutionContext(V100, store=str(store))
        cfg2 = fresh.spmm_config(a, 32, selector="tuned")
        assert cfg2 == cfg
        assert fresh.telemetry.store_hits >= 1
        assert fresh.telemetry.store_misses == 0

    def test_corrupt_store_entries_self_heal(self, rng, tmp_path):
        a = random_sparse(rng, 64, 48, 0.3)
        store = tmp_path / "plans"
        ctx = ops.ExecutionContext(V100, store=str(store))
        cfg = ctx.spmm_config(a, 32, selector="tuned")

        plan_files = list(store.rglob("*"))
        assert any(f.is_file() for f in plan_files)
        for f in plan_files:
            if f.is_file():
                f.write_bytes(b"not a pickle")

        healed = ops.ExecutionContext(V100, store=str(store))
        cfg2 = healed.spmm_config(a, 32, selector="tuned")
        assert cfg2 == cfg  # deterministic search rebuilds the same winner
        assert healed.telemetry.store_evictions >= 1

    def test_heuristic_selection_is_not_persisted(self, rng, tmp_path):
        """Heuristic configs are cheap to recompute; only searched winners
        (oracle/tuned) earn disk entries."""
        a = random_sparse(rng, 64, 48, 0.3)
        store = tmp_path / "plans"
        ctx = ops.ExecutionContext(V100, store=str(store))
        before = ctx.store.stats.writes
        ctx.spmm_config(a, 32, selector="heuristic")
        assert ctx.store.stats.writes == before


class TestSddmmPrecisionRegression:
    def test_fp16_mask_resolves_mixed_config(self, rng):
        """The old convenience path costed every SDDMM as fp32 even for
        fp16 masks; sddmm_config must derive precision from the operand."""
        mask16 = random_sparse(rng, 64, 64, 0.2, dtype=np.float16)
        ctx = ops.ExecutionContext(V100)
        cfg = ctx.sddmm_config(mask16, 32)
        assert cfg.precision == "mixed"
        assert cfg.value_dtype == np.dtype(np.float16)

    def test_fp32_mask_keeps_fp32_config(self, rng):
        mask = random_sparse(rng, 64, 64, 0.2)
        ctx = ops.ExecutionContext(V100)
        cfg = ctx.sddmm_config(mask, 32)
        assert cfg.precision == "fp32"

    def test_mixed_config_costs_cheaper_than_fp32(self, rng):
        """The fp16 regime moves half the value bytes, so the same mask
        must cost strictly cheaper under the mixed config."""
        mask16 = random_sparse(rng, 96, 96, 0.25, dtype=np.float16)
        mask32 = mask16.astype(np.float32)
        t16 = ops.sddmm_cost(mask16, 64, V100)
        t32 = ops.sddmm_cost(mask32, 64, V100)
        assert t16.runtime_s < t32.runtime_s


class TestSpanLabeling:
    def test_spans_record_selector_and_search_stats(self, rng):
        from repro.obs.tracing import Tracer

        a = random_sparse(rng, 64, 48, 0.3)
        ctx = ops.ExecutionContext(V100)
        tracer = Tracer(process="test")
        ctx.attach_tracer(tracer)
        ops.spmm_cost(a, 32, context=ctx, selector="tuned")
        labeled = [s for s in tracer.spans if s.attrs.get("selector")]
        assert labeled, "no span carried a selector attribute"
        attrs = labeled[-1].attrs
        assert attrs["selector"] == "tuned"
        assert attrs["candidates_costed"] > 0
        assert attrs["tuning_fell_back"] is False


class TestSelectionIsCentralized:
    #: Direct config-construction entry points that only repro.tune may
    #: reference; every other layer goes through the selector protocol.
    FORBIDDEN = re.compile(
        r"\b(select_spmm_config|select_sddmm_config|"
        r"oracle_spmm_config|oracle_sddmm_config|spmm_candidates|"
        r"sddmm_candidates)\b"
    )

    def test_no_direct_selection_outside_tune(self):
        offenders = []
        for path in SRC_ROOT.rglob("*.py"):
            if SRC_ROOT / "tune" in path.parents:
                continue
            for i, line in enumerate(path.read_text().splitlines(), 1):
                if self.FORBIDDEN.search(line):
                    offenders.append(f"{path.relative_to(SRC_ROOT)}:{i}")
        assert not offenders, (
            "direct select_*/oracle_*/candidate calls outside repro.tune: "
            + ", ".join(offenders)
        )
