"""Tests for the repro.ops dispatch layer: plan-cache invariants, the
kernel registry, telemetry, and bitwise equivalence with the direct core
kernel entry points."""

import numpy as np
import pytest

from repro import core, ops
from repro.baselines import cusparse_spmm
from repro.core import SddmmConfig, SpmmConfig
from repro.gpu import GTX1080, V100
from repro.ops import ExecutionContext, PlanCache, matrix_fingerprint
from repro.sparse import CSRMatrix
from repro.sparse.csc import csr_to_csc
from tests.conftest import random_sparse


@pytest.fixture
def ctx():
    return ExecutionContext(V100)


def dense_batch(rng, rows, cols):
    return rng.standard_normal((rows, cols)).astype(np.float32)


class TestPlanCacheInvariants:
    def test_repeat_call_hits_and_is_bitwise_identical(self, rng, ctx):
        a = random_sparse(rng, 96, 64, 0.3)
        b = dense_batch(rng, 64, 32)
        first = ops.spmm(a, b, context=ctx)
        stats = ctx.telemetry.stats[("spmm", "sputnik")]
        assert stats.cache_hits == 0 and stats.cache_misses == 1

        second = ops.spmm(a, b, context=ctx)
        assert stats.cache_hits == 1 and stats.cache_misses == 1
        assert (second.output == first.output).all()
        assert second.execution.runtime_s == first.execution.runtime_s

    def test_cached_result_matches_uncached_core_call(self, rng, ctx):
        """The dispatch layer must not perturb numerics or simulated cost."""
        a = random_sparse(rng, 96, 64, 0.3)
        b = dense_batch(rng, 64, 32)
        direct = core.spmm(a, b, V100)
        for _ in range(2):  # miss, then hit
            routed = ops.spmm(a, b, context=ctx)
            assert (routed.output == direct.output).all()
            assert routed.execution.runtime_s == direct.execution.runtime_s

    def test_equal_topology_rebuilt_matrix_still_hits(self, rng, ctx):
        """Identity is structural (content hash), not Python object id."""
        dense = (rng.random((64, 48)) < 0.3) * rng.standard_normal((64, 48))
        a1 = CSRMatrix.from_dense(dense.astype(np.float32))
        a2 = CSRMatrix.from_dense(dense.astype(np.float32))
        b = dense_batch(rng, 48, 16)
        ops.spmm(a1, b, context=ctx)
        ops.spmm(a2, b, context=ctx)
        stats = ctx.telemetry.stats[("spmm", "sputnik")]
        assert stats.cache_hits == 1

    def test_value_update_keeps_plan(self, rng, ctx):
        """Plans depend on structure only: new values on the same topology
        reuse the plan but produce the new numerics."""
        a = random_sparse(rng, 64, 48, 0.3)
        b = dense_batch(rng, 48, 16)
        ops.spmm(a, b, context=ctx)
        a2 = a.with_values(a.values * 2.0)
        result = ops.spmm(a2, b, context=ctx)
        stats = ctx.telemetry.stats[("spmm", "sputnik")]
        assert stats.cache_hits == 1
        assert np.allclose(result.output, core.spmm(a2, b, V100).output)

    def test_topology_mutation_invalidates(self, rng, ctx):
        a = CSRMatrix.from_dense(np.eye(32, dtype=np.float32))
        b = dense_batch(rng, 32, 16)
        ops.spmm(a, b, context=ctx)
        fp_before = matrix_fingerprint(a)
        # Move row 0's nonzero from column 0 to column 1 in place.
        a.column_indices[0] = 1
        assert matrix_fingerprint(a) != fp_before
        ops.spmm(a, b, context=ctx)
        stats = ctx.telemetry.stats[("spmm", "sputnik")]
        assert stats.cache_hits == 0 and stats.cache_misses == 2

    def test_different_batch_width_is_a_different_plan(self, rng, ctx):
        a = random_sparse(rng, 64, 48, 0.3)
        ops.spmm(a, dense_batch(rng, 48, 16), context=ctx)
        ops.spmm(a, dense_batch(rng, 48, 32), context=ctx)
        stats = ctx.telemetry.stats[("spmm", "sputnik")]
        assert stats.cache_hits == 0 and stats.cache_misses == 2

    def test_explicit_config_keys_the_plan(self, rng, ctx):
        a = random_sparse(rng, 64, 48, 0.3)
        b = dense_batch(rng, 48, 16)
        ops.spmm(a, b, config=SpmmConfig(vector_width=1, block_items_x=32), context=ctx)
        ops.spmm(a, b, config=SpmmConfig(vector_width=2, block_items_x=16), context=ctx)
        stats = ctx.telemetry.stats[("spmm", "sputnik")]
        assert stats.cache_misses == 2

    def test_devices_do_not_share_plans(self, rng):
        a = random_sparse(rng, 64, 48, 0.3)
        b = dense_batch(rng, 48, 16)
        v100 = ExecutionContext(V100)
        gtx = ExecutionContext(GTX1080)
        r1 = ops.spmm(a, b, context=v100)
        r2 = ops.spmm(a, b, context=gtx)
        assert gtx.telemetry.stats[("spmm", "sputnik")].cache_misses == 1
        assert r1.execution.runtime_s != r2.execution.runtime_s

    def test_sddmm_softmax_csc_and_matmul_plans_cache(self, rng, ctx):
        mask = random_sparse(rng, 64, 64, 0.25)
        lhs = dense_batch(rng, 64, 32)
        rhs = dense_batch(rng, 64, 32)
        for _ in range(2):
            ops.sddmm(lhs, rhs, mask, context=ctx)
            ops.sparse_softmax(mask, context=ctx)
            ops.csc_spmm(dense_batch(rng, 8, 64), csr_to_csc(mask), context=ctx)
            ops.matmul(lhs, rhs.T, context=ctx)
        for op, backend in [
            ("sddmm", "sputnik"),
            ("sparse_softmax", "sputnik"),
            ("csc_spmm", "sputnik"),
            ("matmul", "cublas"),
        ]:
            stats = ctx.telemetry.stats[(op, backend)]
            assert stats.cache_hits >= 1, (op, backend)

    def test_lru_eviction_bounds_the_cache(self, rng):
        ctx = ExecutionContext(V100, max_plans=2)
        a = random_sparse(rng, 64, 48, 0.3)
        for n in (8, 16, 24, 32):
            ops.spmm_cost(a, n, context=ctx)
        assert len(ctx.plans) <= 2
        # The oldest entry was evicted: calling it again misses.
        ops.spmm_cost(a, 8, context=ctx)
        stats = ctx.telemetry.stats[("spmm", "sputnik")]
        assert stats.cache_hits == 0


class TestOperatorEquivalence:
    """ops.* must reproduce the direct kernel entry points bit for bit."""

    def test_sddmm_matches_core(self, rng, ctx):
        mask = random_sparse(rng, 64, 48, 0.25)
        lhs = dense_batch(rng, 64, 16)
        rhs = dense_batch(rng, 48, 16)
        direct = core.sddmm(lhs, rhs, mask, V100)
        routed = ops.sddmm(lhs, rhs, mask, context=ctx)
        assert (routed.output.values == direct.output.values).all()
        assert routed.execution.runtime_s == direct.execution.runtime_s

    def test_sparse_softmax_matches_core(self, rng, ctx):
        a = random_sparse(rng, 48, 48, 0.3)
        direct = core.sparse_softmax(a, V100, scale=0.5)
        routed = ops.sparse_softmax(a, scale=0.5, context=ctx)
        assert (routed.output.values == direct.output.values).all()
        assert routed.execution.runtime_s == direct.execution.runtime_s

    def test_csc_spmm_matches_core(self, rng, ctx):
        a = csr_to_csc(random_sparse(rng, 48, 64, 0.3))
        b = dense_batch(rng, 16, 48)
        direct = core.spmm_csc(b, a, V100)
        routed = ops.csc_spmm(b, a, context=ctx)
        assert (routed.output == direct.output).all()
        assert routed.execution.runtime_s == direct.execution.runtime_s

    def test_cusparse_backend_matches_baseline(self, rng, ctx):
        a = random_sparse(rng, 64, 48, 0.3)
        b = dense_batch(rng, 48, 16)
        direct = cusparse_spmm(a, b, V100)
        routed = ops.spmm(a, b, backend="cusparse", context=ctx)
        assert (routed.output == direct.output).all()
        assert routed.execution.runtime_s == direct.execution.runtime_s

    def test_cost_paths_match_run_paths(self, rng, ctx):
        a = random_sparse(rng, 64, 48, 0.3)
        b = dense_batch(rng, 48, 16)
        run = ops.spmm(a, b, context=ctx)
        cost = ops.spmm_cost(a, 16, context=ctx)
        assert cost.runtime_s == run.execution.runtime_s

    def test_oracle_selector_matches_oracle_config(self, rng, ctx):
        from repro.tune import oracle_spmm_config

        a = random_sparse(rng, 64, 48, 0.3)
        b = dense_batch(rng, 48, 20)
        config = oracle_spmm_config(a, 20, V100)
        direct = core.spmm(a, b, V100, config)
        routed = ops.spmm(a, b, selector="oracle", context=ctx)
        assert routed.execution.runtime_s == direct.execution.runtime_s


class TestRegistry:
    def test_available_lists_builtins(self):
        spmm_backends = ops.available("spmm")
        assert {"sputnik", "cusparse", "merge", "aspt", "dense"} <= set(
            spmm_backends
        )
        assert "matmul/cublas" in ops.available()

    def test_unknown_backend_is_a_helpful_error(self):
        with pytest.raises(KeyError, match="available"):
            ops.get_impl("spmm", "nope")
        with pytest.raises(KeyError, match="unknown operator"):
            ops.get_impl("conv2d", "sputnik")

    def test_baseline_backends_reject_sputnik_configs(self, rng, ctx):
        a = random_sparse(rng, 64, 48, 0.3)
        b = dense_batch(rng, 48, 16)
        with pytest.raises(ValueError, match="config"):
            ops.spmm(a, b, config=SpmmConfig(), backend="cusparse", context=ctx)
        with pytest.raises(ValueError, match="config"):
            ops.sddmm_cost(a, 16, config=SddmmConfig(), backend="aspt", context=ctx)

    def test_custom_backend_registration(self, rng, ctx):
        calls = []

        def fake_run(c, a, b, config, selector):
            calls.append(a)
            return core.spmm(a, b, c.device)

        from repro.ops import registry

        ops.register(
            ops.KernelImpl("spmm", "test_fake", "test backend", run=fake_run)
        )
        try:
            a = random_sparse(rng, 32, 32, 0.3)
            ops.spmm(a, dense_batch(rng, 32, 8), backend="test_fake", context=ctx)
            assert calls == [a]
        finally:
            registry._REGISTRY.pop(("spmm", "test_fake"), None)


class TestContextsAndTelemetry:
    def test_default_context_is_shared_per_device(self):
        ops.reset_default_contexts()
        try:
            assert ops.default_context(V100) is ops.default_context(V100)
            assert ops.default_context(V100) is not ops.default_context(GTX1080)
        finally:
            ops.reset_default_contexts()

    def test_device_and_context_must_agree(self, rng, ctx):
        a = random_sparse(rng, 32, 32, 0.3)
        with pytest.raises(ValueError, match="conflicts"):
            ops.spmm(a, dense_batch(rng, 32, 8), GTX1080, context=ctx)

    def test_telemetry_accumulates_simulated_time(self, rng, ctx):
        a = random_sparse(rng, 64, 48, 0.3)
        b = dense_batch(rng, 48, 16)
        r1 = ops.spmm(a, b, context=ctx)
        r2 = ops.spmm(a, b, context=ctx)
        stats = ctx.telemetry.stats[("spmm", "sputnik")]
        assert stats.launches == 2
        assert stats.simulated_seconds == pytest.approx(
            r1.execution.runtime_s + r2.execution.runtime_s
        )
        assert "spmm/sputnik" in ctx.telemetry.summary()
        assert ctx.telemetry.launches == 2

    def test_invalid_selector_rejected(self, rng, ctx):
        a = random_sparse(rng, 32, 32, 0.3)
        with pytest.raises(ValueError, match="selector"):
            ops.spmm(a, dense_batch(rng, 32, 8), selector="magic", context=ctx)


class TestFingerprintAndCacheUnits:
    def test_fingerprint_ignores_values(self, rng):
        a = random_sparse(rng, 32, 32, 0.3)
        assert matrix_fingerprint(a) == matrix_fingerprint(
            a.with_values(a.values * 3.0)
        )

    def test_fingerprint_distinguishes_dtype(self, rng):
        a = random_sparse(rng, 32, 32, 0.3)
        assert matrix_fingerprint(a) != matrix_fingerprint(a.astype(np.float16))

    def test_fingerprint_distinguishes_csr_from_csc(self, rng):
        a = random_sparse(rng, 32, 32, 0.3)
        assert matrix_fingerprint(a) != matrix_fingerprint(csr_to_csc(a))

    def test_fingerprint_rejects_dense(self):
        with pytest.raises(TypeError):
            matrix_fingerprint(np.eye(4))

    def test_plan_cache_lru_order(self):
        cache = PlanCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2

    def test_plan_cache_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)
