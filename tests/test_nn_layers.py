"""Tests for the NN substrate: layers, activations, batch norm, convs."""

import numpy as np
import pytest
import scipy.signal

from repro.nn import (
    BatchNorm,
    Linear,
    Profile,
    SparseLinear,
    bias_relu,
    depthwise_conv,
    fuse_into_dense,
    fuse_into_depthwise,
    fuse_into_sparse,
    im2col,
    relu,
    sparse_conv3x3_operands,
)
from repro.sparse import CSRMatrix
from tests.conftest import random_sparse


class TestLinearLayers:
    def test_dense_linear(self, rng, device):
        w = rng.standard_normal((16, 12)).astype(np.float32)
        x = rng.standard_normal((12, 5)).astype(np.float32)
        p = Profile()
        out = Linear(w).forward(x, device, p)
        assert np.allclose(out, w @ x, atol=1e-4)
        assert len(p.records) == 1

    def test_sparse_linear_forward(self, rng, device):
        w = random_sparse(rng, 64, 48, 0.3)
        layer = SparseLinear(w)
        x = rng.standard_normal((48, 16)).astype(np.float32)
        out = layer.forward(x, device)
        assert np.allclose(out, layer.reference_forward(x), atol=1e-4)

    def test_sparse_linear_backward_weight_grad(self, rng, device):
        """δW = δY Xᵀ ∘ I[W]: check against the dense gradient masked to
        the weight's support (Section IV-B)."""
        w = random_sparse(rng, 32, 24, 0.4)
        layer = SparseLinear(w)
        x = rng.standard_normal((24, 8)).astype(np.float32)
        gy = rng.standard_normal((32, 8)).astype(np.float32)
        grad_w, grad_x = layer.backward(x, gy, device)
        dense_grad = gy @ x.T
        support = w.to_dense() != 0
        assert np.allclose(grad_w.to_dense()[support], dense_grad[support], atol=1e-3)
        assert np.all(grad_w.to_dense()[~support] == 0)
        assert np.allclose(grad_x, w.to_dense().T @ gy, atol=1e-3)

    def test_backward_profiles_sddmm_and_spmm(self, rng, device):
        w = random_sparse(rng, 32, 24, 0.4)
        layer = SparseLinear(w)
        p = Profile()
        layer.backward(
            rng.standard_normal((24, 8)).astype(np.float32),
            rng.standard_normal((32, 8)).astype(np.float32),
            device,
            p,
        )
        names = set(p.by_kernel())
        assert "sputnik_sddmm" in names and "sputnik_spmm_fp32" in names

    def test_update_values_keeps_topology(self, rng, device):
        w = random_sparse(rng, 16, 16, 0.5)
        layer = SparseLinear(w)
        layer.update_values(np.zeros(w.nnz, np.float32))
        x = rng.standard_normal((16, 4)).astype(np.float32)
        assert np.allclose(layer.forward(x, device), 0, atol=1e-6)


class TestActivations:
    def test_relu(self, rng, device):
        x = rng.standard_normal((8, 8)).astype(np.float32)
        out, _ = relu(x, device)
        assert np.array_equal(out, np.maximum(x, 0))

    def test_bias_relu(self, rng, device):
        x = rng.standard_normal((4, 10)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        out, execution = bias_relu(x, b, device)
        assert np.allclose(out, np.maximum(x + b[:, None], 0), atol=1e-6)
        assert execution.runtime_s > 0

    def test_bias_shape_validated(self, device):
        with pytest.raises(ValueError):
            bias_relu(np.ones((4, 10), np.float32), np.ones(5, np.float32), device)


class TestBatchNorm:
    def make_bn(self, rng, ch):
        return BatchNorm(
            gamma=rng.uniform(0.5, 1.5, ch),
            beta=rng.uniform(-0.2, 0.2, ch),
            running_mean=rng.standard_normal(ch) * 0.2,
            running_var=rng.uniform(0.5, 2.0, ch),
        )

    def test_dense_fusion_equivalence(self, rng):
        bn = self.make_bn(rng, 16)
        w = rng.standard_normal((16, 12)).astype(np.float32)
        x = rng.standard_normal((12, 9)).astype(np.float32)
        fw, fb = fuse_into_dense(w, None, bn)
        fused = fw @ x + fb[:, None]
        unfused = bn.apply(w @ x)
        assert np.allclose(fused, unfused, atol=1e-4)

    def test_sparse_fusion_equivalence(self, rng):
        bn = self.make_bn(rng, 32)
        w = random_sparse(rng, 32, 24, 0.4)
        x = rng.standard_normal((24, 5)).astype(np.float32)
        fw, fb = fuse_into_sparse(w, None, bn)
        fused = fw.to_dense() @ x + fb[:, None]
        unfused = bn.apply(w.to_dense() @ x)
        assert np.allclose(fused, unfused, atol=1e-4)

    def test_sparse_fusion_preserves_topology(self, rng):
        bn = self.make_bn(rng, 32)
        w = random_sparse(rng, 32, 24, 0.4)
        fw, _ = fuse_into_sparse(w, None, bn)
        assert np.array_equal(fw.column_indices, w.column_indices)

    def test_depthwise_fusion_equivalence(self, rng):
        bn = self.make_bn(rng, 8)
        f = rng.standard_normal((8, 3, 3)).astype(np.float32)
        x = rng.standard_normal((8, 6, 6)).astype(np.float32)
        ff, fb = fuse_into_depthwise(f, None, bn)
        direct = np.einsum("chwij,cij->chw", _windows(x, 3), f)
        assert np.allclose(
            np.einsum("chwij,cij->chw", _windows(x, 3), ff) + fb[:, None, None],
            bn.apply(direct),
            atol=1e-4,
        )

    def test_existing_bias_folded(self, rng):
        bn = self.make_bn(rng, 4)
        w = rng.standard_normal((4, 4)).astype(np.float32)
        bias = rng.standard_normal(4).astype(np.float32)
        x = rng.standard_normal((4, 3)).astype(np.float32)
        fw, fb = fuse_into_dense(w, bias, bn)
        assert np.allclose(
            fw @ x + fb[:, None], bn.apply(w @ x + bias[:, None]), atol=1e-4
        )

    def test_channel_mismatch_rejected(self, rng):
        bn = self.make_bn(rng, 4)
        with pytest.raises(ValueError):
            fuse_into_dense(np.ones((5, 4), np.float32), None, bn)

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            BatchNorm(np.ones(2), np.zeros(2), np.zeros(2), np.array([1.0, -1.0]))


def _windows(x, k):
    pad = k // 2
    xp = np.pad(x, [(0, 0), (pad, pad), (pad, pad)])
    return np.lib.stride_tricks.sliding_window_view(xp, (k, k), axis=(1, 2))


class TestConv:
    def test_im2col_shape(self, rng):
        x = rng.standard_normal((3, 8, 8)).astype(np.float32)
        cols = im2col(x, kernel=3, stride=1, padding=1)
        assert cols.shape == (27, 64)

    def test_im2col_conv_matches_scipy(self, rng):
        """GEMM over im2col == direct 2-D correlation."""
        x = rng.standard_normal((2, 9, 9)).astype(np.float32)
        w = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        cols = im2col(x, 3, stride=1, padding=1)
        out = (w.reshape(4, -1) @ cols).reshape(4, 9, 9)
        for o in range(4):
            direct = sum(
                scipy.signal.correlate2d(x[c], w[o, c], mode="same")
                for c in range(2)
            )
            assert np.allclose(out[o], direct, atol=1e-3)

    def test_im2col_stride(self, rng):
        x = rng.standard_normal((1, 8, 8)).astype(np.float32)
        cols = im2col(x, 3, stride=2, padding=1)
        assert cols.shape == (9, 16)

    def test_im2col_validation(self):
        with pytest.raises(ValueError):
            im2col(np.ones((4, 4)), 3)
        with pytest.raises(ValueError):
            im2col(np.ones((1, 2, 2), np.float32), 5, padding=0)

    def test_depthwise_matches_direct(self, rng, device):
        x = rng.standard_normal((4, 7, 7)).astype(np.float32)
        f = rng.standard_normal((4, 3, 3)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        out = depthwise_conv(x, f, b, device)
        direct = np.einsum("chwij,cij->chw", _windows(x, 3), f)
        expected = np.maximum(direct + b[:, None, None], 0)
        assert np.allclose(out, expected, atol=1e-4)

    def test_depthwise_stride_two(self, rng, device):
        x = rng.standard_normal((2, 8, 8)).astype(np.float32)
        f = rng.standard_normal((2, 3, 3)).astype(np.float32)
        out = depthwise_conv(x, f, np.zeros(2, np.float32), device, stride=2)
        assert out.shape == (2, 4, 4)

    def test_sparse_conv3x3_operands(self, rng, device):
        w = random_sparse(rng, 8, 18, 0.4)
        x = rng.standard_normal((2, 6, 6)).astype(np.float32)
        weight, cols = sparse_conv3x3_operands(w, x)
        assert cols.shape == (18, 36)
        # SpMM over the operands equals the dense conv-as-GEMM.
        out = weight.to_dense() @ cols
        assert out.shape == (8, 36)

    def test_sparse_conv3x3_channel_check(self, rng):
        w = random_sparse(rng, 8, 20, 0.4)
        with pytest.raises(ValueError):
            sparse_conv3x3_operands(w, np.ones((2, 6, 6), np.float32))
