"""Tests for repro.obs — tracing, metrics, and kernel-phase profiling."""

import json

import numpy as np
import pytest

from repro import ops
from repro.bench.runner import SPMM_KERNELS
from repro.bench.sweep import reset_worker_state, run_sweep
from repro.datasets.spec import MatrixSpec
from repro.gpu import V100, BlockCosts, execute
from repro.nn.mobilenet import MobileNetV1
from repro.nn.profile import Profile
from repro.obs import (
    NO_SPAN,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseProfiler,
    Tracer,
    bind_telemetry,
    build_report,
    chrome_trace_from_records,
    format_report,
    read_jsonl,
    validate_chrome_trace,
)
from repro.obs import report as report_cli
from repro.ops.context import TELEMETRY_SCHEMA
from repro.reliability import FallbackPolicy, FaultInjector, FaultSpec

from tests.conftest import random_sparse
from tests.test_executor import make_launch


@pytest.fixture(autouse=True)
def _fresh_contexts():
    ops.reset_default_contexts()
    reset_worker_state()
    yield
    ops.reset_default_contexts()
    reset_worker_state()


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_and_parent_ids(self):
        tracer = Tracer("t")
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert tracer.current is None
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert tracer.spans[1].dur_s >= tracer.spans[0].dur_s

    def test_attrs_events_and_sim_time(self):
        tracer = Tracer("t")
        with tracer.span("op", backend="sputnik") as span:
            span.set(plan_cache="hit")
            span.event("retry", backend="sputnik", attempt=1)
            span.add_sim(1e-5)
        record = span.to_record()
        assert record["args"] == {"backend": "sputnik", "plan_cache": "hit"}
        assert record["events"][0]["name"] == "retry"
        assert record["sim_s"] == pytest.approx(1e-5)

    def test_exception_marks_error(self):
        tracer = Tracer("t")
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        assert tracer.spans[0].attrs["error"] == "ValueError"
        assert tracer.current is None

    def test_noop_span_api(self):
        with NO_SPAN as span:
            span.set(a=1)
            span.event("e")
            span.add_sim(1.0)
        assert span is NO_SPAN

    def test_bad_clock_rejected(self):
        with pytest.raises(ValueError):
            Tracer("t", clock="gps")

    def test_complete_span_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Tracer("t").add_complete_span("s", ts_s=0.0, dur_s=-1.0)


class TestExport:
    def _traced(self):
        tracer = Tracer("t", pid=42)
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                inner.event("tick")
        return tracer

    def test_chrome_trace_valid(self):
        trace = self._traced().to_chrome_trace()
        assert validate_chrome_trace(trace) == []
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        assert all(e["pid"] == 42 for e in complete)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert instants and instants[0]["name"] == "tick"
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "t"

    def test_validator_catches_problems(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": 3}) != []
        bad_event = {"traceEvents": [{"ph": "X", "pid": 0, "tid": 0}]}
        assert any("name" in p for p in validate_chrome_trace(bad_event))
        nan_ts = {
            "traceEvents": [
                {
                    "name": "x",
                    "ph": "X",
                    "pid": 0,
                    "tid": 0,
                    "ts": float("nan"),
                    "dur": 1.0,
                }
            ]
        }
        assert validate_chrome_trace(nan_ts) != []

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = self._traced()
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        records = read_jsonl(path)
        assert records[0]["type"] == "meta"
        assert sum(1 for r in records if r["type"] == "span") == 2
        assert validate_chrome_trace(chrome_trace_from_records(records)) == []

    def test_read_jsonl_skips_truncated_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._traced().write_jsonl(path)
        with path.open("a") as fh:
            fh.write('{"type": "span", "trunca')
        records = read_jsonl(path)
        assert sum(1 for r in records if r["type"] == "span") == 2

    def test_merge_records_preserves_worker_rows(self):
        parent = Tracer("driver", pid=1)
        worker = Tracer("worker", pid=2)
        with worker.span("task"):
            pass
        added = parent.merge_records(worker.to_jsonl_records())
        assert added == 1  # meta records are not merged
        trace = parent.to_chrome_trace()
        assert validate_chrome_trace(trace) == []
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert pids == {2}


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_labels_and_totals(self):
        reg = MetricsRegistry()
        c = reg.counter("launches", labelnames=("op",))
        c.labels("spmm").inc()
        c.labels("spmm").inc(2)
        c.labels(op="sddmm").inc()
        assert c.value == 4
        assert reg.snapshot()["launches"]["samples"] == {
            "op=sddmm": 1.0,
            "op=spmm": 3.0,
        }

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(5)
        g.labels().dec(2)
        assert g.value == 3

    def test_unlabeled_access_on_labeled_metric_rejected(self):
        c = MetricsRegistry().counter("c", labelnames=("op",))
        with pytest.raises(ValueError):
            c.inc()
        with pytest.raises(ValueError):
            c.labels("a", "b")

    def test_histogram_buckets(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 0.1):
            h.observe(v)
        sample = h.labels().sample()
        assert sample["counts"] == [2, 1, 1]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(55.6)

    def test_histogram_bad_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(3.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("h2", buckets=())

    def test_name_reuse_same_type_ok_conflict_raises(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_reset_zeroes_pushed_metrics(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.reset()
        assert reg.counter("c").value == 0

    def test_collector_samples_in_snapshot(self):
        reg = MetricsRegistry()
        reg.register_collector(lambda: [("ext", {"k": "v"}, 7.0)])
        assert reg.snapshot()["ext"]["samples"] == {"k=v": 7.0}


class TestTelemetryBinding:
    def test_bind_telemetry_relabels_opstats(self, rng, device):
        ctx = ops.ExecutionContext(device)
        a = random_sparse(rng, 64, 48, 0.3)
        ops.spmm_cost(a, 32, context=ctx)
        reg = bind_telemetry(MetricsRegistry(), ctx.telemetry)
        snap = reg.snapshot()
        assert snap["op_launches"]["samples"]["op=spmm,backend=sputnik"] == 1
        assert "op_simulated_seconds" in snap

    def test_context_metrics_histogram_fed_by_dispatch(self, rng, device):
        ctx = ops.ExecutionContext(device)
        a = random_sparse(rng, 64, 48, 0.3)
        reg = ctx.metrics  # lazily binds + attaches the histogram
        ops.spmm_cost(a, 32, context=ctx)
        ops.spmm_cost(a, 32, context=ctx)
        snap = reg.snapshot()
        hist = snap["sim_launch_seconds"]["samples"]["op=spmm,backend=sputnik"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(
            ctx.telemetry.simulated_seconds
        )
        assert snap["plan_cache_entries"]["samples"][
            f"device={device.name}"
        ] >= 1
        assert ctx.metrics_snapshot().keys() == snap.keys()


# ----------------------------------------------------------------------
# Telemetry snapshot contract (satellite: typing/reset semantics)
# ----------------------------------------------------------------------
class TestTelemetryContract:
    def test_snapshot_matches_schema_types_exactly(self, rng, device):
        ctx = ops.ExecutionContext(device)
        a = random_sparse(rng, 64, 48, 0.3)
        ops.spmm_cost(a, 32, context=ctx)
        for row in ctx.telemetry_snapshot().values():
            assert set(row) == set(TELEMETRY_SCHEMA)
            for key, value in row.items():
                assert type(value) is TELEMETRY_SCHEMA[key], key

    def test_reset_also_resets_store_counters(self, rng, device, tmp_path):
        ctx = ops.ExecutionContext(device, store=tmp_path / "plans")
        a = random_sparse(rng, 64, 48, 0.3)
        ops.spmm_cost(a, 32, context=ctx)
        assert ctx.store.stats.misses > 0 or ctx.store.stats.writes > 0
        ctx.reset_telemetry()
        assert ctx.telemetry_snapshot() == {}
        assert ctx.store.stats.as_dict() == {
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "evictions": 0,
        }


# ----------------------------------------------------------------------
# Phase attribution
# ----------------------------------------------------------------------
class TestPhaseAttribution:
    @pytest.mark.parametrize(
        "costs",
        [
            BlockCosts(fma_instructions=1e5),
            BlockCosts(dram_bytes=1e6),
            BlockCosts(smem_bytes=5e5, l2_bytes=2e5),
            BlockCosts(
                fma_instructions=5e4, dram_bytes=3e5, l2_bytes=1e5,
                smem_bytes=1e5,
            ),
        ],
    )
    def test_phases_sum_to_runtime(self, costs):
        result = execute(make_launch(costs=costs, n_blocks=321), V100)
        assert result.phases is not None
        total = sum(result.phases.as_dict().values())
        assert total == pytest.approx(result.runtime_s, rel=0.01)

    def test_dram_bound_kernel_charges_dram(self):
        result = execute(
            make_launch(costs=BlockCosts(dram_bytes=1e6), n_blocks=8000), V100
        )
        phases = result.phases.as_dict()
        assert phases["dram"] == max(
            v for k, v in phases.items() if k not in ("imbalance", "overhead")
        )

    def test_add_overhead_charges_overhead_phase(self):
        result = execute(make_launch(), V100)
        bumped = result.add_overhead(1e-4)
        assert bumped.phases.overhead_s == pytest.approx(
            result.phases.overhead_s + 1e-4
        )
        assert sum(bumped.phases.as_dict().values()) == pytest.approx(
            bumped.runtime_s, rel=0.01
        )

    def test_sequence_sums_phases(self):
        a = execute(make_launch(), V100)
        b = execute(make_launch(costs=BlockCosts(dram_bytes=1e6)), V100)
        seq = type(a).sequence("pair", [a, b])
        assert seq.phases.total_s == pytest.approx(
            a.phases.total_s + b.phases.total_s
        )


class TestPhaseProfiler:
    def test_collects_and_aggregates(self, rng, device):
        ctx = ops.ExecutionContext(device)
        a = random_sparse(rng, 128, 96, 0.25)
        with PhaseProfiler() as prof:
            ops.spmm_cost(a, 32, context=ctx)
            ops.sddmm_cost(a, 32, context=ctx)
        assert len(prof.records) >= 2
        kernels = prof.by_kernel()
        assert all(stats.launches >= 1 for stats in kernels.values())
        for record in prof.records:
            assert sum(record.phases.values()) == pytest.approx(
                record.runtime_s, rel=0.01
            )

    def test_stops_collecting_after_exit(self, rng, device):
        ctx = ops.ExecutionContext(device)
        a = random_sparse(rng, 64, 48, 0.3)
        with PhaseProfiler() as prof:
            ops.spmm_cost(a, 32, context=ctx)
        n = len(prof.records)
        ops.sddmm_cost(a, 16, context=ctx)
        assert len(prof.records) == n

    def test_roofline_and_report(self, rng, device):
        ctx = ops.ExecutionContext(device)
        a = random_sparse(rng, 128, 96, 0.25)
        with PhaseProfiler() as prof:
            ops.spmm_cost(a, 32, context=ctx)
        points = prof.roofline(device)
        assert points and points[0]["bound"] in ("memory", "compute")
        assert 0 < points[0]["roof_fraction"] <= 1.5
        report = prof.report(device)
        assert report["launches"] == len(prof.records)
        assert "roofline" in report
        assert prof.summary().splitlines()

    def test_device_filter(self, rng, device):
        from repro.gpu import GTX1080

        ctx = ops.ExecutionContext(device)
        a = random_sparse(rng, 64, 48, 0.3)
        with PhaseProfiler(device=GTX1080) as prof:
            ops.spmm_cost(a, 32, context=ctx)
        assert prof.records == []


# ----------------------------------------------------------------------
# Traced dispatch
# ----------------------------------------------------------------------
class TestTracedDispatch:
    def test_span_per_dispatch_with_cache_annotations(self, rng, device):
        ctx = ops.ExecutionContext(device, tracer=Tracer("t"))
        a = random_sparse(rng, 64, 48, 0.3)
        ops.spmm_cost(a, 32, context=ctx)
        ops.spmm_cost(a, 32, context=ctx)
        spans = ctx.tracer.spans
        assert [s.name for s in spans] == ["spmm", "spmm"]
        assert spans[0].attrs["plan_cache"] == "miss"
        assert spans[0].attrs["plan_source"] == "built"
        assert spans[1].attrs["plan_cache"] == "hit"
        assert spans[1].attrs["plan_source"] == "memory"
        assert spans[0].attrs["backend"] == "sputnik"
        assert spans[0].sim_s > 0

    def test_store_tier_annotated(self, rng, device, tmp_path):
        a = random_sparse(rng, 64, 48, 0.3)
        warm = ops.ExecutionContext(device, store=tmp_path / "plans")
        ops.spmm_cost(a, 32, context=warm)
        cold = ops.ExecutionContext(
            device, store=tmp_path / "plans", tracer=Tracer("t")
        )
        ops.spmm_cost(a, 32, context=cold)
        assert cold.tracer.spans[0].attrs["plan_source"] == "store"

    def test_untraced_context_records_nothing(self, rng, device):
        ctx = ops.ExecutionContext(device)
        a = random_sparse(rng, 64, 48, 0.3)
        result = ops.spmm_cost(a, 32, context=ctx)
        assert ctx.tracer is None
        assert result.runtime_s > 0

    def test_policy_events_on_span(self, rng, device):
        injector = FaultInjector(
            [FaultSpec("launch", backend="sputnik", every=1, max_faults=5)],
            seed=7,
        )
        ctx = ops.ExecutionContext(device, tracer=Tracer("t"))
        ctx.injector = injector
        a = random_sparse(rng, 64, 48, 0.3)
        chain = FallbackPolicy(("sputnik", "cusparse"), max_attempts=2)
        ops.spmm_cost(a, 32, context=ctx, backend=chain)
        span = ctx.tracer.spans[-1]
        names = [e["name"] for e in span.events]
        assert "retry" in names and "fallback" in names
        assert span.attrs["backend_used"] == "cusparse"
        assert span.attrs["fallbacks"] == 1

    def test_traced_chain_exports_valid_chrome_trace(self, rng, device):
        tracer = Tracer("chain")
        ctx = ops.ExecutionContext(device, tracer=tracer)
        a = random_sparse(rng, 64, 48, 0.3)
        ops.spmm(a, np.ones((48, 8), dtype=np.float32), context=ctx,
                 backend=["sputnik", "dense"], validate=True)
        assert validate_chrome_trace(tracer.to_chrome_trace()) == []


# ----------------------------------------------------------------------
# Traced sweep + report CLI (acceptance: 20 matrices, valid Chrome JSON)
# ----------------------------------------------------------------------
def _sweep_specs(count: int) -> list[MatrixSpec]:
    return [
        MatrixSpec(
            name=f"m{i}",
            model="test",
            layer=f"l{i}",
            rows=64 + 8 * (i % 5),
            cols=48 + 8 * (i % 3),
            sparsity=0.6 + 0.05 * (i % 4),
            row_cov=0.3,
            seed=i,
        )
        for i in range(count)
    ]


class TestTracedSweep:
    def test_twenty_matrix_sweep_trace(self, device, tmp_path):
        trace_path = tmp_path / "sweep_trace.jsonl"
        rows, report = run_sweep(
            _sweep_specs(20),
            ["sputnik"],
            device,
            n=16,
            workers=1,
            trace_path=trace_path,
        )
        assert len(rows) == 20 and report.failed == 0
        records = read_jsonl(trace_path)
        assert records[0]["type"] == "meta"
        task_spans = [
            r
            for r in records
            if r["type"] == "span" and r["name"] == "sweep.task"
        ]
        assert len(task_spans) == 20
        # Per-kernel phase attributions sum to each launch's total.
        launches = [r for r in records if r["type"] == "launch"]
        assert launches
        for launch in launches:
            assert sum(launch["phases"].values()) == pytest.approx(
                launch["runtime_s"], rel=0.01
            )
        # The merged stream exports a valid Chrome trace.
        trace = chrome_trace_from_records(records)
        assert validate_chrome_trace(trace) == []
        names = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert {"sweep.task", "spmm"} <= names

    def test_untraced_sweep_writes_no_trace(self, device, tmp_path):
        rows, _ = run_sweep(
            _sweep_specs(2), ["sputnik"], device, n=16, workers=1
        )
        assert len(rows) == 2
        assert not (tmp_path / "sweep_trace.jsonl").exists()

    def test_report_cli_on_sweep_trace(self, device, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        run_sweep(
            _sweep_specs(3), ["sputnik"], device, n=16, workers=1,
            trace_path=trace_path,
        )
        assert report_cli.main([str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "span categories" in out and "sweep" in out
        assert report_cli.main([str(trace_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_spans"] > 0 and payload["kernels"]

    def test_report_cli_missing_trace(self, tmp_path, capsys):
        assert report_cli.main([str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_build_report_rollups(self, device, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        run_sweep(
            _sweep_specs(2), ["sputnik"], device, n=16, workers=1,
            trace_path=trace_path,
        )
        report = build_report(read_jsonl(trace_path))
        assert report["categories"]["sweep"]["count"] == 2
        assert format_report(report)


# ----------------------------------------------------------------------
# Profile.to_trace (acceptance: traced MobileNet forward)
# ----------------------------------------------------------------------
class TestProfileToTrace:
    def test_mobilenet_forward_trace(self, device):
        model = MobileNetV1(width=0.25, sparse=True, seed=0)
        profile = Profile()
        rng = np.random.default_rng(0)
        model.forward(
            rng.random((3, 224, 224)).astype(np.float32), device, profile
        )
        tracer = profile.to_trace("mobilenet")
        assert tracer.clock == "sim"
        trace = tracer.to_chrome_trace()
        assert validate_chrome_trace(trace) == []
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        # Root span plus one child per profiled kernel.
        assert len(complete) == len(profile.records) + 1
        root = next(e for e in complete if e["name"] == "mobilenet")
        assert root["dur"] == pytest.approx(profile.runtime_s * 1e6)
        # Children tile the simulated timeline back-to-back.
        kernels = sorted(
            (e for e in complete if e is not root), key=lambda e: e["ts"]
        )
        assert kernels[0]["ts"] == 0.0
        assert kernels[-1]["ts"] + kernels[-1]["dur"] == pytest.approx(
            root["dur"], rel=1e-6
        )
        # Phase attributions ride along and sum to each launch's runtime.
        launches = tracer.to_jsonl_records()
        launches = [r for r in launches if r["type"] == "launch"]
        assert launches
        for launch in launches:
            assert sum(launch["phases"].values()) == pytest.approx(
                launch["runtime_s"], rel=0.01
            )


# ----------------------------------------------------------------------
# Bench rows (satellite: wall clock + telemetry deltas)
# ----------------------------------------------------------------------
class TestBenchRowTelemetry:
    def test_rows_carry_wall_and_deltas(self, rng, device):
        from repro.bench.runner import run_spmm_suite

        a = random_sparse(rng, 96, 64, 0.3)
        rows = run_spmm_suite(
            [("p", a, 32)], {"sputnik": SPMM_KERNELS["sputnik"]}, device
        )
        row = rows[0]
        assert row.wall_s > 0
        assert row.telemetry["launches"] == 1
        assert row.telemetry["cache_misses"] >= 1
        assert row.telemetry["simulated_seconds"] == pytest.approx(
            row.runtime_s
        )
        # A second pass over the same problem hits the plan cache.
        again = run_spmm_suite(
            [("p", a, 32)], {"sputnik": SPMM_KERNELS["sputnik"]}, device
        )[0]
        assert again.telemetry["cache_hits"] >= 1
        assert again.telemetry["cache_misses"] == 0

    def test_failed_row_still_measured(self, device, rng):
        def broken(a, n, dev):
            raise RuntimeError("kaput")

        from repro.bench.runner import run_spmm_suite

        a = random_sparse(rng, 64, 48, 0.3)
        row = run_spmm_suite([("p", a, 16)], {"bad": broken}, device)[0]
        assert row.failed and row.wall_s >= 0
        assert row.telemetry["launches"] == 0
