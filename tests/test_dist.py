"""Multi-GPU sharded execution: partitioning, interconnect, dispatch.

Covers the ring/shared collective cost model, the LPT cost-balanced
partitioner (property-tested balance bound + determinism on power-law
topologies), ShardPlan caching through the two-tier plan store (v5
envelopes), sharded SpMM/SDDMM numerics vs the single-device kernels,
the ``shard=`` routing on the ops layer, per-device HBM accounting, the
report CLI's per-device rollup on a merged multi-device trace, the
sweep's ``devices=`` dimension, and the model-parallel Transformer
layer.
"""

import json

import numpy as np
import pytest

from repro import ops
from repro.bench.sweep import build_tasks, reset_worker_state, run_sweep
from repro.datasets import MatrixSpec
from repro.dist import (
    DEFAULT_BUNDLE_SIZE,
    DeviceGroup,
    ShardPlan,
    cost_balanced_partition,
    partition_loads,
    partition_stats,
    plan_shards,
    row_block_partition,
    sharded_sddmm,
    sharded_sddmm_cost,
    sharded_spmm,
    sharded_spmm_cost,
)
from repro.gpu import V100
from repro.gpu.interconnect import (
    NVLINK2,
    PCIE3,
    all_gather,
    all_reduce,
    broadcast,
    get_interconnect,
    reduce_scatter,
)
from repro.nn.transformer_layer import TransformerLayer
from repro.obs.report import build_report, format_report
from repro.obs.tracing import Tracer
from repro.ops.store import PLAN_STORE_VERSION
from repro.reliability.errors import DeviceOOMError
from repro.sparse import CSRMatrix

from .conftest import random_sparse


def power_law_lengths(rng, n_rows: int, alpha: float = 1.5) -> np.ndarray:
    """Pareto-ish row lengths: a few heavy rows carry most nonzeros."""
    lengths = (rng.pareto(alpha, size=n_rows) * 8).astype(np.int64) + 1
    return np.minimum(lengths, 512)


def power_law_csr(rng, n_rows: int, n_cols: int) -> CSRMatrix:
    lengths = np.minimum(power_law_lengths(rng, n_rows), n_cols)
    offsets = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    indices = np.concatenate(
        [
            np.sort(rng.choice(n_cols, size=int(ln), replace=False))
            for ln in lengths
        ]
    ).astype(np.int32)
    values = rng.standard_normal(int(offsets[-1])).astype(np.float32)
    return CSRMatrix((n_rows, n_cols), offsets, indices, values)


# ----------------------------------------------------------------------
# Interconnect cost model
# ----------------------------------------------------------------------
class TestInterconnect:
    def test_single_device_collectives_are_free(self):
        for fn in (all_gather, reduce_scatter, all_reduce, broadcast):
            cost = fn(NVLINK2, 1 << 20, 1)
            assert cost.seconds == 0.0
            assert cost.steps == 0

    def test_ring_all_gather_formula(self):
        k, nbytes = 4, 64 << 20
        cost = all_gather(NVLINK2, nbytes, k)
        bw = NVLINK2.effective_bandwidth(k)
        expected = (k - 1) * (nbytes / k / bw + NVLINK2.link_latency_s)
        assert cost.seconds == pytest.approx(expected)
        assert cost.steps == k - 1

    def test_all_reduce_is_two_passes(self):
        k, nbytes = 8, 16 << 20
        assert all_reduce(NVLINK2, nbytes, k).seconds == pytest.approx(
            2 * all_gather(NVLINK2, nbytes, k).seconds
        )

    def test_shared_topology_divides_bandwidth(self):
        assert PCIE3.effective_bandwidth(4) == pytest.approx(
            PCIE3.device_bandwidth / 4
        )
        # Ring links are point-to-point: per-device bandwidth holds at any k.
        assert NVLINK2.effective_bandwidth(8) == pytest.approx(
            NVLINK2.device_bandwidth
        )
        # Same bytes, same k: the shared fabric is strictly slower.
        assert (
            all_gather(PCIE3, 1 << 24, 4).seconds
            > all_gather(NVLINK2, 1 << 24, 4).seconds
        )

    def test_get_interconnect(self):
        assert get_interconnect("nvlink") is NVLINK2
        assert get_interconnect(PCIE3) is PCIE3
        with pytest.raises(ValueError):
            get_interconnect("carrier-pigeon")


# ----------------------------------------------------------------------
# Cost-balanced partitioning
# ----------------------------------------------------------------------
class TestPartition:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_lpt_balance_bound(self, seed, k):
        """LPT guarantee: max load <= mean load + heaviest bundle."""
        rng = np.random.default_rng(seed)
        lengths = power_law_lengths(rng, 2048)
        parts = cost_balanced_partition(lengths, k)
        loads = partition_loads(lengths, parts)
        order = np.argsort(lengths, kind="stable")[::-1]
        max_bundle = int(
            lengths[order[:DEFAULT_BUNDLE_SIZE]].sum()
        )
        assert loads.max() <= loads.mean() + max_bundle

    def test_deterministic(self):
        lengths = power_law_lengths(np.random.default_rng(42), 1024)
        first = cost_balanced_partition(lengths, 4)
        second = cost_balanced_partition(lengths.copy(), 4)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_partition_covers_all_rows_once(self):
        lengths = power_law_lengths(np.random.default_rng(7), 999)
        parts = cost_balanced_partition(lengths, 4)
        merged = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(merged, np.arange(999))

    def test_beats_naive_blocks_on_skew(self):
        """Cost balancing wins where it should: skewed topologies."""
        rng = np.random.default_rng(3)
        lengths = power_law_lengths(rng, 4096)
        # Sort so the naive contiguous split is maximally lopsided.
        lengths = np.sort(lengths)[::-1].copy()
        balanced = partition_stats(
            lengths, cost_balanced_partition(lengths, 4)
        )
        naive = partition_stats(lengths, row_block_partition(len(lengths), 4))
        assert balanced["max_over_mean"] < naive["max_over_mean"]

    def test_2d_plan_tiles(self):
        rng = np.random.default_rng(11)
        a = power_law_csr(rng, 512, 384)
        plan = plan_shards(a, 4, strategy="2d")
        assert plan.strategy == "2d"
        kr, kc = plan.grid
        assert kr * kc == 4
        assert int(plan.loads.sum()) == a.nnz
        # Every device resolves to a (rows, col-range) tile.
        for d in range(4):
            rows, (lo, hi) = plan.device_tile(d)
            assert 0 <= lo < hi <= a.shape[1]
            assert rows.dtype == np.int64

    def test_bad_strategy_and_k(self):
        rng = np.random.default_rng(0)
        a = random_sparse(rng, 32, 32, 0.3)
        with pytest.raises(ValueError):
            plan_shards(a, 2, strategy="diagonal")
        with pytest.raises(ValueError):
            cost_balanced_partition(np.ones(8), 0)


# ----------------------------------------------------------------------
# ShardPlan caching through the two-tier plan store
# ----------------------------------------------------------------------
class TestShardPlanCache:
    def test_store_version_is_6(self):
        # v6: ShardPlan carries row_order and envelopes can carry repair
        # lineage, so v5 entries must be discarded, not reinterpreted.
        assert PLAN_STORE_VERSION == 6

    def test_plan_round_trips_through_store(self, tmp_path, rng):
        a = power_law_csr(rng, 256, 256)
        first_group = DeviceGroup(4, store=str(tmp_path / "plans"))
        plan = first_group.shard_plan(a)
        assert isinstance(plan, ShardPlan)
        writes = first_group.lead.store.stats.writes
        assert writes >= 1

        second_group = DeviceGroup(4, store=str(tmp_path / "plans"))
        restored = second_group.shard_plan(a)
        assert second_group.lead.store.stats.hits == 1
        assert restored.k == plan.k and restored.strategy == plan.strategy
        np.testing.assert_array_equal(restored.loads, plan.loads)
        for mine, theirs in zip(restored.device_rows, plan.device_rows):
            np.testing.assert_array_equal(mine, theirs)

    def test_memory_tier_hit_on_second_call(self, rng):
        a = power_law_csr(rng, 128, 128)
        group = DeviceGroup(2)
        group.shard_plan(a)
        misses = group.lead.telemetry.cache_misses
        assert group.shard_plan(a) is not None
        assert group.lead.telemetry.cache_misses == misses  # memory hit


# ----------------------------------------------------------------------
# Sharded operators
# ----------------------------------------------------------------------
class TestShardedOps:
    def test_k1_cost_bit_identical(self, rng):
        a = power_law_csr(rng, 256, 256)
        group = DeviceGroup(1)
        sharded = sharded_spmm_cost(a, 64, group)
        single = ops.spmm_cost(a, 64, context=ops.ExecutionContext(V100))
        assert sharded.k == 1
        assert sharded.runtime_s == single.runtime_s  # exact, not approx
        assert sharded.exposed_comm_s == 0.0
        assert sharded.collectives == []

    def test_row_sharded_spmm_numerics_bit_identical(self, rng):
        a = power_law_csr(rng, 300, 200)
        b = rng.standard_normal((200, 32)).astype(np.float32)
        reference = ops.spmm(a, b, context=ops.ExecutionContext(V100))
        result = sharded_spmm(a, b, DeviceGroup(4))
        np.testing.assert_array_equal(result.output, reference.output)
        assert result.sharded.k == 4

    def test_2d_sharded_spmm_numerics_allclose(self, rng):
        a = power_law_csr(rng, 256, 240)
        b = rng.standard_normal((240, 16)).astype(np.float32)
        reference = ops.spmm(a, b, context=ops.ExecutionContext(V100))
        result = sharded_spmm(a, b, DeviceGroup(4), strategy="2d")
        np.testing.assert_allclose(
            result.output, reference.output, rtol=1e-5, atol=1e-5
        )

    def test_sharded_sddmm_numerics(self, rng):
        mask = power_law_csr(rng, 200, 200)
        lhs = rng.standard_normal((200, 24)).astype(np.float32)
        rhs = rng.standard_normal((200, 24)).astype(np.float32)
        reference = ops.sddmm(
            lhs, rhs, mask, context=ops.ExecutionContext(V100)
        )
        result = sharded_sddmm(lhs, rhs, mask, DeviceGroup(4))
        np.testing.assert_array_equal(
            result.output.values, reference.output.values
        )

    def test_overlap_model_accounting(self, rng):
        a = power_law_csr(rng, 512, 512)
        group = DeviceGroup(4)
        sharded = sharded_spmm_cost(a, 64, group)
        assert sharded.runtime_s == pytest.approx(
            sharded.max_compute_s + sharded.exposed_comm_s
        )
        assert 0.0 <= sharded.interconnect_bound_fraction < 1.0
        # Output collectives are fully exposed; input ones only past the
        # compute they can hide behind.
        assert sharded.exposed_comm_s >= sharded.output_comm_s
        assert sharded.exposed_comm_s <= (
            sharded.input_comm_s + sharded.output_comm_s
        )
        # Collectives land in the lead context's telemetry under the
        # interconnect kind as backend.
        totals = group.telemetry_snapshot()
        assert f"all_gather/{group.interconnect.kind}" in totals

    def test_sddmm_cost_interconnect_choice_matters(self, rng):
        a = power_law_csr(rng, 512, 512)
        nvlink = sharded_sddmm_cost(a, 64, DeviceGroup(4))
        pcie = sharded_sddmm_cost(
            a, 64, DeviceGroup(4, interconnect="pcie")
        )
        assert pcie.exposed_comm_s >= nvlink.exposed_comm_s

    def test_ops_shard_routing(self, rng):
        a = power_law_csr(rng, 128, 128)
        group = DeviceGroup(2)
        sharded = ops.spmm_cost(a, 32, shard=group)
        assert sharded.k == 2
        b = rng.standard_normal((128, 32)).astype(np.float32)
        result = ops.spmm(a, b, shard=group)
        assert result.sharded.k == 2
        with pytest.raises(ValueError):
            ops.spmm_cost(
                a, 32, shard=group, context=ops.ExecutionContext(V100)
            )


# ----------------------------------------------------------------------
# Per-device HBM accounting
# ----------------------------------------------------------------------
class TestPerDeviceMemory:
    def test_each_device_gets_its_own_allocator(self):
        group = DeviceGroup(3, memory=64 << 20)
        allocators = {id(ctx.memory) for ctx in group.contexts}
        assert len(allocators) == 3
        for ctx in group.contexts:
            assert ctx.memory.capacity == 64 << 20
        assert len(group.memory_snapshots()) == 3

    def test_sharded_dispatch_under_per_device_cap(self, rng):
        a = power_law_csr(rng, 512, 256)
        group = DeviceGroup(4, memory=256 << 20)
        sharded = sharded_spmm_cost(a, 64, group)
        assert sharded.runtime_s > 0
        for snapshot in group.memory_snapshots():
            assert snapshot is not None
            assert snapshot["peak_reserved_bytes"] <= 256 << 20

    def test_tiny_cap_raises_device_oom(self, rng):
        a = power_law_csr(rng, 512, 512)
        group = DeviceGroup(2, memory=4096)
        with pytest.raises(DeviceOOMError):
            sharded_spmm_cost(a, 256, group)


# ----------------------------------------------------------------------
# Per-device report rollup on a merged multi-device trace
# ----------------------------------------------------------------------
class TestDeviceRollup:
    def _traced_records(self, rng, k, process):
        tracer = Tracer(process=process)
        group = DeviceGroup(k, tracer=tracer)
        a = power_law_csr(rng, 256, 256)
        sharded_spmm_cost(a, 32, group)
        group.emit_memory_spans()
        return tracer.to_jsonl_records()

    def test_rollup_on_merged_trace(self, rng):
        # Two independently-traced sharded runs merged into one stream —
        # the multi-process shape a sharded sweep produces.
        merged = Tracer(process="driver")
        merged.merge_records(self._traced_records(rng, 4, "worker-a"))
        merged.merge_records(self._traced_records(rng, 2, "worker-b"))
        records = merged.to_jsonl_records()
        report = build_report(records)
        devices = report["devices"]
        assert devices is not None
        assert sorted(devices) == [0, 1, 2, 3]
        # Devices 0/1 appear in both runs, 2/3 only in the k=4 run.
        assert devices[0]["spans"] == 2
        assert devices[3]["spans"] == 1
        assert devices[0]["by_op"]["spmm"]["count"] == 2
        assert devices[0]["sim_s"] > 0
        assert devices[0]["peak_reserved_bytes"] > 0
        text = format_report(report)
        assert "per-device rollup" in text
        assert "spmm" in text

    def test_single_device_trace_has_no_rollup(self, rng):
        tracer = Tracer(process="plain")
        ctx = ops.ExecutionContext(V100, tracer=tracer)
        a = power_law_csr(rng, 64, 64)
        ops.spmm_cost(a, 16, context=ctx)
        report = build_report(tracer.to_jsonl_records())
        assert report["devices"] is None
        assert "per-device rollup" not in format_report(report)


# ----------------------------------------------------------------------
# Sweep integration
# ----------------------------------------------------------------------
def _specs(n):
    return [
        MatrixSpec(f"dist{i}", "synthetic", "l0", 512, 512, 0.85, 0.5, seed=i)
        for i in range(n)
    ]


class TestShardedSweep:
    def test_build_tasks_devices_dimension(self):
        tasks = build_tasks(_specs(2), ["sputnik"], n=[32], devices=[1, 4])
        assert len(tasks) == 4
        keys = {t.row_key for t in tasks}
        assert "dist0|sputnik|32" in keys
        assert "dist0|sputnik|32|d4" in keys

    def test_build_tasks_rejects_bad_devices(self):
        with pytest.raises(ValueError):
            build_tasks(_specs(1), ["sputnik"], devices=[0])
        with pytest.raises(ValueError):
            build_tasks(_specs(1), ["sputnik"], h=[2], devices=[2])

    def test_sharded_sweep_runs_and_resumes(self, tmp_path, rng):
        reset_worker_state()
        out = tmp_path / "rows.jsonl"
        rows, report = run_sweep(
            _specs(2), ["sputnik"], V100, n=[32], devices=[1, 2],
            store_path=tmp_path / "plans", out_path=out,
        )
        assert report.failed == 0
        assert len(rows) == 4
        sharded_rows = [r for r in rows if r["devices"] == 2]
        assert len(sharded_rows) == 2
        for row in sharded_rows:
            assert row["row_key"].endswith("|d2")
            assert "interconnect_bound" in row["telemetry"]

        reset_worker_state()
        resumed, resumed_report = run_sweep(
            _specs(2), ["sputnik"], V100, n=[32], devices=[1, 2],
            store_path=tmp_path / "plans", out_path=out, resume=True,
        )
        assert resumed_report.resumed == 4
        assert sorted(r["row_key"] for r in resumed) == sorted(
            r["row_key"] for r in rows
        )
        reset_worker_state()


# ----------------------------------------------------------------------
# Model-parallel Transformer layer
# ----------------------------------------------------------------------
class TestModelParallelTransformer:
    def _layer(self):
        return TransformerLayer(128, 8, 256, seed=3)

    def test_k1_bit_identical(self, rng):
        layer = self._layer()
        x = rng.standard_normal((64, 128)).astype(np.float32)
        reference = layer.forward(x, V100)
        out = layer.forward_sharded(x, DeviceGroup(1))
        np.testing.assert_array_equal(out, reference)
        assert layer.last_shard_report["comm_s"] == 0.0

    def test_k4_allclose_with_two_all_reduces(self, rng):
        layer = self._layer()
        x = rng.standard_normal((64, 128)).astype(np.float32)
        reference = layer.forward(x, V100)
        group = DeviceGroup(4)
        out = layer.forward_sharded(x, group)
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)
        report = layer.last_shard_report
        assert report["k"] == 4
        assert report["comm_s"] > 0
        assert report["comm_bytes"] == 2 * 64 * 128 * 4
        assert len(report["per_device_compute_s"]) == 4
        assert report["runtime_s"] == pytest.approx(
            report["compute_s"] + report["comm_s"]
        )
        # All-reduces land in the lead context's telemetry.
        totals = group.telemetry_snapshot()
        assert f"all_reduce/{group.interconnect.kind}" in totals

    def test_indivisible_heads_rejected(self, rng):
        layer = self._layer()
        x = rng.standard_normal((64, 128)).astype(np.float32)
        with pytest.raises(ValueError):
            layer.forward_sharded(x, DeviceGroup(3))
