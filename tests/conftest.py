"""Shared fixtures: deterministic RNG, small matrices, devices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import V100
from repro.sparse import CSRMatrix


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def device():
    return V100


def random_sparse(
    rng: np.random.Generator,
    rows: int,
    cols: int,
    density: float,
    dtype=np.float32,
) -> CSRMatrix:
    """Bernoulli-sparsity helper shared across test modules."""
    dense = (rng.random((rows, cols)) < density) * rng.standard_normal(
        (rows, cols)
    )
    return CSRMatrix.from_dense(dense.astype(np.float64), dtype=dtype)


@pytest.fixture
def small_sparse(rng) -> CSRMatrix:
    """64x48 matrix at ~30% density with at least one empty row."""
    dense = (rng.random((64, 48)) < 0.3) * rng.standard_normal((64, 48))
    dense[7] = 0.0
    return CSRMatrix.from_dense(dense)
